"""Extension: root-failover timing.

Section 2.3: "If the root fails, one of its neighbors will take over
its role."  The paper never quantifies how fast; this experiment does.
The root crashes at a known instant and we measure:

* **claim time** — until some live node claims the root role
  (bounded by ``heartbeat_timeout`` + one maintenance period);
* **convergence time** — until every live node follows a single root
  (one heartbeat flood after the winning claim);
* **delivery through the transition** — a workload injected right
  after the crash must still reach every live node (gossip covers the
  window in which the tree is headless).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.core.config import GoCastConfig
from repro.experiments.report import format_table
from repro.experiments.scenarios import ScenarioConfig, scale_preset
from repro.experiments.system import GoCastSystem


@dataclasses.dataclass
class FailoverOutcome:
    seed: int
    claim_time: float
    convergence_time: float
    new_root_was_neighbor: bool
    reliability_through_transition: float


@dataclasses.dataclass
class FailoverResult:
    n_nodes: int
    heartbeat_timeout: float
    outcomes: List[FailoverOutcome]

    def max_convergence(self) -> float:
        return max(o.convergence_time for o in self.outcomes)

    def format_table(self) -> str:
        rows = [
            (
                o.seed,
                o.claim_time,
                o.convergence_time,
                o.new_root_was_neighbor,
                o.reliability_through_transition,
            )
            for o in self.outcomes
        ]
        return (
            f"Failover extension — root crash recovery ({self.n_nodes} nodes, "
            f"timeout {self.heartbeat_timeout:.0f} s)\n"
            + format_table(
                ["seed", "claim (s)", "converged (s)", "neighbor took over",
                 "reliability"],
                rows,
            )
        )


def run(
    seeds: Sequence[int] = (1, 2, 3),
    n_nodes: Optional[int] = None,
    adapt_time: Optional[float] = None,
    heartbeat_period: float = 5.0,
    heartbeat_timeout: float = 12.0,
    probe_interval: float = 0.5,
) -> FailoverResult:
    default_n, default_adapt, _ = scale_preset()
    n_nodes = default_n if n_nodes is None else n_nodes
    adapt_time = default_adapt if adapt_time is None else adapt_time

    outcomes = []
    for seed in seeds:
        outcomes.append(
            _run_one(
                seed, n_nodes, adapt_time, heartbeat_period, heartbeat_timeout,
                probe_interval,
            )
        )
    return FailoverResult(
        n_nodes=n_nodes, heartbeat_timeout=heartbeat_timeout, outcomes=outcomes
    )


def _run_one(
    seed: int,
    n_nodes: int,
    adapt_time: float,
    heartbeat_period: float,
    heartbeat_timeout: float,
    probe_interval: float,
) -> FailoverOutcome:
    config = GoCastConfig(
        heartbeat_period=heartbeat_period, heartbeat_timeout=heartbeat_timeout
    )
    scenario = ScenarioConfig(
        protocol="gocast", n_nodes=n_nodes, adapt_time=adapt_time,
        n_messages=20, gocast=config, seed=seed,
    )
    system = GoCastSystem(scenario)
    system.run_adaptation()

    old_root = system.root_id
    old_neighbors = set(system.nodes[old_root].overlay.table.ids())
    crash_time = system.sim.now
    system.nodes[old_root].crash()

    end = system.schedule_workload(crash_time + 0.5)

    claim_time = float("inf")
    convergence_time = float("inf")
    new_root = None
    deadline = crash_time + 3.0 * heartbeat_timeout + 10.0
    t = crash_time
    while t < deadline:
        t += probe_interval
        system.run_until(t)
        live = system.live_nodes()
        claimants = {n.tree.root for n in live if n.tree.is_root}
        if claimants and claim_time == float("inf"):
            claim_time = system.sim.now - crash_time
        roots = {n.tree.root for n in live}
        if len(roots) == 1 and old_root not in roots:
            convergence_time = system.sim.now - crash_time
            new_root = next(iter(roots))
            break

    system.run_until(max(system.sim.now, end) + 20.0)
    receivers = sorted(system.live_node_ids())
    return FailoverOutcome(
        seed=seed,
        claim_time=claim_time,
        convergence_time=convergence_time,
        new_root_was_neighbor=new_root in old_neighbors if new_root is not None else False,
        reliability_through_transition=system.tracer.reliability(receivers),
    )
