"""Summary result (1): overlay convergence speed.

"Starting with a random structure with random links only, the overlay
converges quickly to a stable state under our adaptation protocols.
The number of changed links per second drops exponentially over time."

Every link add/drop is timestamped by the nodes into a shared
:class:`~repro.sim.trace.TraceRecorder`; bucketing the timestamps gives
the changes-per-second series.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.experiments.report import format_table, sparkline
from repro.experiments.scenarios import ScenarioConfig, scale_preset
from repro.experiments.system import GoCastSystem


@dataclasses.dataclass
class AdaptationResult:
    n_nodes: int
    bucket_edges: List[float]
    changes_per_second: List[float]

    def early_rate(self) -> float:
        """Mean change rate over the first decile of the run."""
        k = max(1, len(self.changes_per_second) // 10)
        return float(np.mean(self.changes_per_second[:k]))

    def late_rate(self) -> float:
        """Mean change rate over the last decile of the run."""
        k = max(1, len(self.changes_per_second) // 10)
        return float(np.mean(self.changes_per_second[-k:]))

    def format_table(self) -> str:
        rows = [
            (f"{self.bucket_edges[i]:.0f}-{self.bucket_edges[i + 1]:.0f}", rate)
            for i, rate in enumerate(self.changes_per_second)
        ]
        return (
            f"R1 — link changes per second over time ({self.n_nodes} nodes)\n"
            + format_table(["window (s)", "changes/s"], rows)
            + f"\nshape: [{sparkline(self.changes_per_second)}]\n"
            f"early rate {self.early_rate():.1f}/s -> late rate {self.late_rate():.1f}/s"
        )


def run(
    n_nodes: Optional[int] = None,
    duration: Optional[float] = None,
    bucket: float = 5.0,
    seed: int = 1,
) -> AdaptationResult:
    default_n, default_adapt, _ = scale_preset()
    n_nodes = default_n if n_nodes is None else n_nodes
    duration = default_adapt if duration is None else duration

    scenario = ScenarioConfig(
        protocol="gocast", n_nodes=n_nodes, adapt_time=duration, seed=seed
    )
    system = GoCastSystem(scenario)
    system.run_adaptation()

    times, _values = system.events.series_arrays("link_changes")
    edges = np.arange(0.0, duration + bucket, bucket)
    counts, _ = np.histogram(times, bins=edges)
    # Each recorded event is one endpoint's view; a link change touches
    # two endpoints, so halve the raw counts.
    rates = counts / (2.0 * bucket)
    return AdaptationResult(
        n_nodes=n_nodes,
        bucket_edges=[float(e) for e in edges],
        changes_per_second=[float(r) for r in rates],
    )
