"""Parallel multi-trial experiment batches.

The paper's delay figures (3-6) are averages over many independent
simulator runs, while :func:`~repro.experiments.runner.run_delay_experiment`
executes exactly one trial in one process.  This module closes the gap:
:func:`run_batch` fans ``n_trials`` independent trials of one
:class:`~repro.experiments.scenarios.ScenarioConfig` across a
``ProcessPoolExecutor`` and aggregates the per-trial results into a
:class:`BatchResult` with a merged delay CDF, pooled summary statistics,
across-trial dispersion (stddev / 95% CI), and merged observability
metrics.

Determinism contract
--------------------
Trial ``i`` always runs with master seed
``RngRegistry.trial_seed(root_seed, i)`` and trials are aggregated in
trial-index order, so a batch's output is **bit-identical for any worker
count** — ``workers=1`` (in-process, the debugging path) and
``workers=8`` produce the same ``BatchResult``.  Worker payloads and
results are plain picklable data (dataclasses of scalars, dicts and
numpy arrays), making the pool safe under both the ``fork`` and
``spawn`` start methods.

``parallel_map`` is the reusable primitive underneath: an
order-preserving map over picklable payloads that stays in-process for
``workers <= 1``.  The figure drivers (fig3-fig6) build on these two
entry points.
"""

from __future__ import annotations

import dataclasses
import math
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.report import format_table
from repro.experiments.runner import (
    DelayResult,
    coverage_delay,
    run_delay_experiment,
)
from repro.experiments.scenarios import ScenarioConfig
from repro.obs import Observability
from repro.obs.metrics import merge_snapshots
from repro.sim.rng import RngRegistry

#: Trial statistics that get an across-trial :class:`StatSummary`.
BATCH_STATS = ("mean_delay", "median_delay", "p90_delay", "p99_delay", "reliability")

#: Normal-approximation 95% confidence multiplier (scipy-free; documented
#: in docs/EXPERIMENTS.md — with few trials the true t-quantile is wider).
Z95 = 1.959963984540054


def parallel_map(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    workers: int,
    mp_context=None,
) -> List[Any]:
    """Order-preserving map of ``fn`` over ``payloads``.

    ``workers <= 1`` (or a single payload) runs in-process — no pool, no
    pickling, easy debugging.  Otherwise a ``ProcessPoolExecutor`` with
    at most ``workers`` processes maps the payloads; ``fn`` must be a
    module-level function and every payload/result picklable so the map
    also works under the ``spawn`` start method (pass ``mp_context`` to
    force one).  Results always come back in payload order.
    """
    payloads = list(payloads)
    if workers <= 1 or len(payloads) <= 1:
        return [fn(payload) for payload in payloads]
    n_workers = min(workers, len(payloads))
    with ProcessPoolExecutor(max_workers=n_workers, mp_context=mp_context) as pool:
        return list(pool.map(fn, payloads))


@dataclasses.dataclass
class TrialResult:
    """Spawn-safe summary of one trial — plain arrays, dicts and scalars."""

    trial_index: int
    seed: int
    delays: np.ndarray  # sorted pooled first-delivery delays
    reliability: float
    mean_delay: float
    median_delay: float
    p90_delay: float
    p99_delay: float
    max_delay: float
    receptions_per_delivery: float
    live_receivers: int
    messages_sent: int
    expected_pairs: int
    sent_by_type: Dict[str, int]
    metrics: Optional[Dict[str, Any]] = None
    #: Engine events dispatched by the trial (deterministic for a fixed
    #: seed; the ledger's exact-comparison counter).
    events_executed: int = 0

    @classmethod
    def from_delay_result(
        cls, trial_index: int, seed: int, result: DelayResult
    ) -> "TrialResult":
        return cls(
            trial_index=trial_index,
            seed=seed,
            delays=np.sort(result.delays),
            reliability=result.reliability,
            mean_delay=result.mean_delay,
            median_delay=result.median_delay,
            p90_delay=result.p90_delay,
            p99_delay=result.p99_delay,
            max_delay=result.max_delay,
            receptions_per_delivery=result.receptions_per_delivery,
            live_receivers=result.live_receivers,
            messages_sent=result.messages_sent,
            expected_pairs=result.expected_pairs,
            sent_by_type=dict(result.sent_by_type),
            metrics=result.metrics,
            events_executed=result.events_executed,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready per-trial summary (raw delays reduced to a count)."""
        return {
            "trial_index": self.trial_index,
            "seed": self.seed,
            "n_delays": int(self.delays.size),
            "reliability": self.reliability,
            "mean_delay": self.mean_delay,
            "median_delay": self.median_delay,
            "p90_delay": self.p90_delay,
            "p99_delay": self.p99_delay,
            "max_delay": self.max_delay,
            "receptions_per_delivery": self.receptions_per_delivery,
            "live_receivers": self.live_receivers,
            "messages_sent": self.messages_sent,
            "expected_pairs": self.expected_pairs,
            "sent_by_type": dict(self.sent_by_type),
            "events_executed": self.events_executed,
        }


@dataclasses.dataclass
class StatSummary:
    """Across-trial dispersion of one scalar statistic."""

    per_trial: List[float]
    mean: float
    std: float  # sample stddev (ddof=1); 0.0 with a single trial
    ci95: float  # normal-approx 95% CI half-width of the mean

    @classmethod
    def of(cls, values: Sequence[float]) -> "StatSummary":
        arr = np.asarray(list(values), dtype=float)
        n = arr.size
        mean = float(arr.mean()) if n else float("nan")
        std = float(arr.std(ddof=1)) if n > 1 else 0.0
        ci95 = Z95 * std / math.sqrt(n) if n > 1 else 0.0
        return cls(per_trial=[float(v) for v in arr], mean=mean, std=std, ci95=ci95)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mean": self.mean,
            "std": self.std,
            "ci95": self.ci95,
            "per_trial": self.per_trial,
        }


@dataclasses.dataclass
class BatchResult:
    """Aggregate of N independent trials of one scenario.

    The pooled fields (``cdf_x``/``cdf_y``, ``mean_delay`` ...,
    ``reliability``, ``sent_by_type``) mirror
    :class:`~repro.experiments.runner.DelayResult`, so a ``BatchResult``
    drops into any code that formats or compares delay results; the
    extra ``stats`` dict adds across-trial mean/stddev/95%-CI for each
    entry of :data:`BATCH_STATS`.
    """

    scenario: ScenarioConfig
    root_seed: int
    n_trials: int
    workers: int
    trials: List[TrialResult]
    #: Pooled sorted first-delivery delays over all trials.
    delays: np.ndarray
    #: Merged CDF: pooled delays against the summed pair denominator.
    cdf_x: np.ndarray
    cdf_y: np.ndarray
    expected_pairs: int
    reliability: float
    mean_delay: float
    median_delay: float
    p90_delay: float
    p99_delay: float
    max_delay: float
    receptions_per_delivery: float
    live_receivers: int
    messages_sent: int
    sent_by_type: Dict[str, int]
    stats: Dict[str, StatSummary]
    #: :func:`~repro.obs.metrics.merge_snapshots` of the trials' metric
    #: snapshots (None when the batch ran without observability).
    metrics: Optional[Dict[str, Any]] = None
    #: Total engine events across all trials (deterministic for a fixed
    #: root seed; the ledger's exact-comparison counter).
    events_executed: int = 0

    def delay_at_coverage(self, coverage: float) -> float:
        """Delay by which the given fraction of all (msg, node) pairs was served."""
        return coverage_delay(self.cdf_x, self.cdf_y, coverage)

    def summary_row(self) -> str:
        mean = self.stats["mean_delay"]
        return (
            f"{self.scenario.protocol:>15s}  n={self.scenario.n_nodes:<5d} "
            f"trials={self.n_trials:<3d} "
            f"mean={self.mean_delay:6.3f}s±{mean.ci95:.3f}  "
            f"p50={self.median_delay:6.3f}s  p90={self.p90_delay:6.3f}s  "
            f"p99={self.p99_delay:6.3f}s  reliability={self.reliability:8.6f}"
        )

    def format_table(self) -> str:
        headers = ["stat", "pooled", "trial mean", "stddev", "95% CI"]
        rows = []
        for name in BATCH_STATS:
            summary = self.stats[name]
            rows.append(
                [name, getattr(self, name), summary.mean, summary.std, summary.ci95]
            )
        title = (
            f"Batch — {self.scenario.protocol}, n={self.scenario.n_nodes}, "
            f"fail={self.scenario.fail_fraction:.0%}, {self.n_trials} trials "
            f"(root seed {self.root_seed}, {self.workers} worker"
            f"{'s' if self.workers != 1 else ''})"
        )
        footer = (
            f"pooled pairs: {int(self.delays.size)}/{self.expected_pairs} delivered; "
            f"messages sent: {self.messages_sent}"
        )
        return f"{title}\n{format_table(headers, rows)}\n{footer}"

    def to_json_dict(self) -> Dict[str, Any]:
        """Strict-JSON payload (NaN mapped to null) for figure scripts."""
        payload = {
            "scenario": {
                "protocol": self.scenario.protocol,
                "n_nodes": self.scenario.n_nodes,
                "adapt_time": self.scenario.adapt_time,
                "n_messages": self.scenario.n_messages,
                "message_rate": self.scenario.message_rate,
                "fail_fraction": self.scenario.fail_fraction,
                "loss_rate": self.scenario.loss_rate,
                "drain_time": self.scenario.drain_time,
                "fanout": self.scenario.fanout,
            },
            "root_seed": self.root_seed,
            "n_trials": self.n_trials,
            "workers": self.workers,
            "expected_pairs": self.expected_pairs,
            "reliability": self.reliability,
            "mean_delay": self.mean_delay,
            "median_delay": self.median_delay,
            "p90_delay": self.p90_delay,
            "p99_delay": self.p99_delay,
            "max_delay": self.max_delay,
            "receptions_per_delivery": self.receptions_per_delivery,
            "live_receivers": self.live_receivers,
            "messages_sent": self.messages_sent,
            "sent_by_type": dict(self.sent_by_type),
            "stats": {name: s.to_dict() for name, s in self.stats.items()},
            "cdf": {
                "delay": [float(x) for x in self.cdf_x],
                "fraction": [float(y) for y in self.cdf_y],
            },
            "trials": [t.to_dict() for t in self.trials],
            "metrics": self.metrics,
            "events_executed": self.events_executed,
        }
        return _json_safe(payload)


def _json_safe(obj: Any) -> Any:
    """Recursively replace NaN/inf floats with None (strict JSON)."""
    if isinstance(obj, dict):
        return {k: _json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe(v) for v in obj]
    if isinstance(obj, float) and not math.isfinite(obj):
        return None
    return obj


#: Worker payload: (scenario-with-trial-seed, trial index, collect obs?,
#: health sampling period, capacity sampling period — 0 disables).
TrialPayload = Tuple[ScenarioConfig, int, bool, float, float]


def _run_trial(payload: TrialPayload) -> TrialResult:
    """Top-level (hence picklable) worker: one trial, plain-data result."""
    scenario, trial_index, collect_metrics, health_period, series_period = payload
    obs = (
        Observability(
            enabled=True,
            health_period=health_period,
            series_period=series_period,
        )
        if collect_metrics
        else None
    )
    result = run_delay_experiment(scenario, obs=obs)
    return TrialResult.from_delay_result(trial_index, scenario.seed, result)


def trial_payloads(
    scenario: ScenarioConfig,
    n_trials: int,
    root_seed: Optional[int] = None,
    collect_metrics: bool = False,
    health_period: float = 1.0,
    series_period: float = 0.0,
) -> List[TrialPayload]:
    """The deterministic per-trial payloads of a batch.

    Trial ``i`` gets master seed ``RngRegistry.trial_seed(root, i)``
    where ``root`` defaults to ``scenario.seed`` — independent of worker
    count and execution order.
    """
    root = scenario.seed if root_seed is None else int(root_seed)
    return [
        (
            dataclasses.replace(scenario, seed=RngRegistry.trial_seed(root, i)),
            i,
            collect_metrics,
            health_period,
            series_period,
        )
        for i in range(n_trials)
    ]


def aggregate_trials(
    scenario: ScenarioConfig,
    trials: Sequence[TrialResult],
    root_seed: int,
    workers: int = 1,
) -> BatchResult:
    """Fold per-trial results into a :class:`BatchResult`.

    Aggregation is order-independent by construction: trials are sorted
    by trial index first, so any scheduling of the workers yields a
    bit-identical result.
    """
    if not trials:
        raise ValueError("need at least one trial to aggregate")
    trials = sorted(trials, key=lambda t: t.trial_index)

    pooled = np.sort(np.concatenate([t.delays for t in trials]))
    expected_pairs = int(sum(t.expected_pairs for t in trials))
    if expected_pairs > 0:
        cdf_y = np.arange(1, pooled.size + 1, dtype=float) / expected_pairs
        reliability = pooled.size / expected_pairs
    else:
        pooled = np.array([])
        cdf_y = np.array([])
        reliability = 1.0
    have = pooled.size > 0

    # Pooled receptions_per_delivery: delivery-weighted mean of the
    # per-trial ratios (trials with no deliveries carry no weight).
    weights = np.array([t.delays.size for t in trials], dtype=float)
    ratios = np.array([t.receptions_per_delivery for t in trials], dtype=float)
    if weights.sum() > 0:
        mask = weights > 0
        pooled_rpd = float((ratios[mask] * weights[mask]).sum() / weights[mask].sum())
    else:
        pooled_rpd = float("nan") if np.isnan(ratios).any() else 1.0

    sent_by_type: Dict[str, int] = {}
    for trial in trials:
        for kind, count in trial.sent_by_type.items():
            sent_by_type[kind] = sent_by_type.get(kind, 0) + count

    return BatchResult(
        scenario=scenario,
        root_seed=int(root_seed),
        n_trials=len(trials),
        workers=workers,
        trials=list(trials),
        delays=pooled,
        cdf_x=pooled,
        cdf_y=cdf_y,
        expected_pairs=expected_pairs,
        reliability=reliability,
        mean_delay=float(pooled.mean()) if have else float("nan"),
        median_delay=float(np.percentile(pooled, 50)) if have else float("nan"),
        p90_delay=float(np.percentile(pooled, 90)) if have else float("nan"),
        p99_delay=float(np.percentile(pooled, 99)) if have else float("nan"),
        max_delay=float(pooled.max()) if have else float("nan"),
        receptions_per_delivery=pooled_rpd,
        live_receivers=trials[0].live_receivers,
        messages_sent=int(sum(t.messages_sent for t in trials)),
        sent_by_type=sent_by_type,
        stats={
            name: StatSummary.of([getattr(t, name) for t in trials])
            for name in BATCH_STATS
        },
        metrics=merge_snapshots(t.metrics for t in trials),
        events_executed=int(sum(t.events_executed for t in trials)),
    )


def run_batch(
    scenario: ScenarioConfig,
    n_trials: int,
    workers: int = 1,
    root_seed: Optional[int] = None,
    collect_metrics: bool = False,
    mp_context=None,
    health_period: float = 1.0,
    series_period: float = 0.0,
) -> BatchResult:
    """Run ``n_trials`` independent trials of ``scenario`` and aggregate.

    ``workers=1`` executes in-process (the debugging path); more workers
    fan trials across a ``ProcessPoolExecutor``.  The output is
    bit-identical for any worker count given the same ``root_seed``
    (which defaults to ``scenario.seed``).  ``collect_metrics`` runs
    every trial under an enabled
    :class:`~repro.obs.Observability` and merges the snapshots —
    including their health, capacity, and provenance sections, when the
    scenario produces them — into ``BatchResult.metrics`` in the parent;
    ``health_period`` and ``series_period`` tune the health monitor's
    and capacity sampler's cadences (``series_period=0`` keeps the
    capacity sampler off, the default).
    """
    if n_trials < 1:
        raise ValueError("need at least 1 trial")
    if workers < 1:
        raise ValueError("need at least 1 worker")
    root = scenario.seed if root_seed is None else int(root_seed)
    payloads = trial_payloads(
        scenario, n_trials, root, collect_metrics, health_period, series_period
    )
    trials = parallel_map(_run_trial, payloads, workers, mp_context=mp_context)
    return aggregate_trials(scenario, trials, root, workers)


def batch_ledger_sections(
    result: BatchResult, wall_s: Optional[float] = None
) -> Tuple[Dict[str, float], Dict[str, Any]]:
    """Split a batch into the ledger's (perf metrics, exact counters).

    Delay statistics count as perf-like metrics (relative tolerance):
    they are deterministic per seed but drift whenever the protocol is
    intentionally tuned, and a small tolerance keeps the regress
    sentinel's signal on real regressions.  Pair/message counts and
    ``events_executed`` are exact — any change there means the
    simulation itself diverged.
    """
    metrics: Dict[str, float] = {
        "mean_delay": result.mean_delay,
        "median_delay": result.median_delay,
        "p90_delay": result.p90_delay,
        "p99_delay": result.p99_delay,
        "max_delay": result.max_delay,
    }
    if wall_s is not None:
        metrics["wall_s"] = float(wall_s)
        if wall_s > 0 and result.events_executed:
            metrics["events_per_sec"] = result.events_executed / wall_s
    exact: Dict[str, Any] = {
        "reliability": result.reliability,
        "expected_pairs": result.expected_pairs,
        "delivered_pairs": int(result.delays.size),
        "messages_sent": result.messages_sent,
        "events_executed": result.events_executed,
    }
    return metrics, exact


def record_batch_run(
    result: BatchResult, wall_s: Optional[float] = None
) -> Optional["RunRecord"]:
    """Append one run-ledger record for a finished batch (see
    :mod:`repro.obs.ledger`; returns None when the ledger is disabled)."""
    from repro.obs.ledger import record_run

    metrics, exact = batch_ledger_sections(result, wall_s)
    scenario = result.scenario
    return record_run(
        "batch",
        f"batch:{scenario.protocol}",
        metrics=metrics,
        exact=exact,
        scenario={
            "protocol": scenario.protocol,
            "n_nodes": scenario.n_nodes,
            "adapt_time": scenario.adapt_time,
            "n_messages": scenario.n_messages,
            "fail_fraction": scenario.fail_fraction,
            "loss_rate": scenario.loss_rate,
            "n_trials": result.n_trials,
            "workers": result.workers,
        },
        seeds=[t.seed for t in result.trials],
    )
