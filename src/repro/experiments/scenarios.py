"""Scenario configuration for delay experiments.

The paper's canonical setup (Section 3): 1,024 nodes on King latencies,
500 s of overlay adaptation, then 1,000 messages injected from random
sources at 100 messages/s; ``t = r = 0.1 s``, ``C_rand = 1``,
``C_near = 5``, push-gossip fanout 5.

Pure-Python simulation is slower than the paper's C++, so every
experiment honours a scale preset: ``smoke`` (CI tests), ``default``
(benchmark runs), ``full`` (the paper's exact scale), ``paper`` (the
full 1,740-site King population with the default-scale workload —
pair it with ``REPRO_SIM_OPTS=all,lazylat`` so the latency model stays
memory-bounded).  Select with the ``REPRO_SCALE`` environment
variable.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Optional, Union

from repro.core.config import GoCastConfig

#: The five protocols of Figure 3.
PROTOCOLS = ("gocast", "proximity", "random_overlay", "push_gossip", "nowait_gossip")

#: Experiment scale presets: (n_nodes, adapt_time, n_messages).
#: ``full`` is the paper's canonical 1,024-node setup; ``paper`` runs
#: the *entire* King population (one node per measured site) with the
#: default workload, which keeps figure runs at minutes, not hours.
SCALES = {
    "smoke": (64, 30.0, 20),
    "default": (256, 120.0, 100),
    "full": (1024, 500.0, 1000),
    "paper": (1740, 120.0, 100),
}


def scale_preset(name: Optional[str] = None) -> tuple:
    """(n_nodes, adapt_time, n_messages) for the selected scale."""
    if name is None:
        name = os.environ.get("REPRO_SCALE", "default")
    if name not in SCALES:
        raise KeyError(f"unknown scale {name!r}; choose from {sorted(SCALES)}")
    return SCALES[name]


@dataclasses.dataclass
class ScenarioConfig:
    """Everything needed to reproduce one delay-CDF run."""

    protocol: str = "gocast"
    n_nodes: int = 256
    seed: int = 1
    #: Overlay adaptation phase before the workload (paper: 500 s).
    adapt_time: float = 120.0
    #: Workload: messages injected from random sources at ``message_rate``.
    n_messages: int = 100
    message_rate: float = 100.0
    payload_size: int = 1024
    #: Extra simulated time after the last injection for stragglers.
    drain_time: float = 30.0
    #: Fraction of nodes crashed at the start of the workload (paper: 0.2).
    fail_fraction: float = 0.0
    #: Freeze all maintenance/repair at failure time (the paper's
    #: stress-test rule); only meaningful when fail_fraction > 0.
    freeze_on_failure: bool = True
    #: Push-gossip / no-wait-gossip fanout.
    fanout: int = 5
    #: Gossip period for the push-gossip baseline.
    baseline_gossip_period: float = 0.1
    #: GoCast protocol parameters (also used by the overlay baselines).
    gocast: GoCastConfig = dataclasses.field(default_factory=GoCastConfig)
    #: Number of distinct latency sites (None: min(n_nodes, 1740)).
    n_sites: Optional[int] = None
    #: UDP loss rate for unreliable sends.
    loss_rate: float = 0.0
    #: Landmark count for the triangular estimator.
    n_landmarks: int = 12
    #: Initial random links initiated per node (None: C_degree / 2).
    initial_links: Optional[int] = None
    #: Chaos scenario injected during the workload: a canned scenario
    #: name or a scenario dict (see :mod:`repro.sim.scenarios`).  Kept
    #: as the plain name/dict — not a resolved Scenario — so the config
    #: stays picklable for the batch runner's worker payloads.
    chaos: Optional[Union[str, dict]] = None

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ValueError(
                f"unknown protocol {self.protocol!r}; choose from {PROTOCOLS}"
            )
        if self.n_nodes < 2:
            raise ValueError("need at least 2 nodes")
        if not 0.0 <= self.fail_fraction < 1.0:
            raise ValueError("fail_fraction must be in [0, 1)")
        if self.n_messages < 1:
            raise ValueError("need at least 1 message")
        if self.message_rate <= 0:
            raise ValueError("message_rate must be positive")
        if self.chaos is not None:
            if not self.uses_overlay:
                raise ValueError(
                    "chaos scenarios need the overlay node lifecycle; "
                    f"protocol {self.protocol!r} does not run one"
                )
            if self.fail_fraction > 0:
                raise ValueError(
                    "chaos and fail_fraction are mutually exclusive; express "
                    "the crash wave as a 'crash' phase in the scenario"
                )
            # Fail fast on unknown names / malformed dicts, at config
            # construction rather than deep inside a worker process.
            self.chaos_scenario()

    @property
    def uses_overlay(self) -> bool:
        return self.protocol in ("gocast", "proximity", "random_overlay")

    def chaos_scenario(self):
        """The resolved :class:`~repro.sim.scenarios.Scenario`, or None."""
        if self.chaos is None:
            return None
        from repro.sim.scenarios import resolve_scenario

        return resolve_scenario(self.chaos)

    def effective_gocast_config(self) -> GoCastConfig:
        """The GoCastConfig this scenario's protocol variant runs with."""
        base = dataclasses.asdict(self.gocast)
        if self.protocol == "gocast":
            base["use_tree"] = True
        elif self.protocol == "proximity":
            base["use_tree"] = False
        elif self.protocol == "random_overlay":
            base["use_tree"] = False
            base["c_rand"] = self.gocast.c_degree
            base["c_near"] = 0
        else:
            raise ValueError(f"{self.protocol} does not use the GoCast overlay")
        return GoCastConfig(**base)


def paper_scenario(protocol: str = "gocast", scale: Optional[str] = None, **overrides) -> ScenarioConfig:
    """The canonical Figure 3 scenario at the selected scale."""
    n_nodes, adapt_time, n_messages = scale_preset(scale)
    params = dict(
        protocol=protocol,
        n_nodes=n_nodes,
        adapt_time=adapt_time,
        n_messages=n_messages,
    )
    params.update(overrides)
    return ScenarioConfig(**params)
