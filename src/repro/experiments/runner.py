"""Unified delay-experiment runner (Figures 3 and 4).

``run_delay_experiment(scenario)`` executes the scenario's protocol end
to end — overlay adaptation (for the overlay protocols), the optional
crash wave, the message workload, the drain phase — and returns a
:class:`DelayResult` with the delay CDF and summary statistics the
paper reports.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Set

import numpy as np

from repro.experiments.scenarios import ScenarioConfig
from repro.experiments.system import GoCastSystem
from repro.net.king import SyntheticKingModel
from repro.net.latency import LatencyModel
from repro.obs import Observability
from repro.obs.health import HealthMonitor
from repro.obs.provenance import PathReconstructor
from repro.obs.series import CapacitySampler
from repro.obs.summary import record_link_stress
from repro.protocols.nowait_gossip import NoWaitGossipNode
from repro.protocols.push_gossip import PushGossipNode
from repro.sim.engine import Simulator
from repro.sim.failures import FailureInjector
from repro.sim.rng import RngRegistry
from repro.sim.trace import DeliveryTracer
from repro.sim.transport import Network


def coverage_delay(cdf_x: np.ndarray, cdf_y: np.ndarray, coverage: float) -> float:
    """Smallest delay at which the CDF reaches ``coverage``.

    Shared by :class:`DelayResult` and the batch runner's merged curves.
    ``side="left"`` makes exact-boundary queries map to the *first*
    delay achieving the coverage rather than the next sample: with
    ``cdf_y = [0.25, 0.5, 0.75, 1.0]``, ``coverage=0.5`` answers the
    second delay, not the third.  Coverage <= 0 is trivially satisfied
    at delay 0; coverage the run never reached (lost messages, coverage
    above the curve's top, an empty CDF) is NaN.
    """
    if coverage <= 0.0:
        return 0.0
    idx = int(np.searchsorted(cdf_y, coverage, side="left"))
    if idx >= len(cdf_x):
        return float("nan")
    return float(cdf_x[idx])


@dataclasses.dataclass
class DelayResult:
    """Outcome of one delay experiment."""

    scenario: ScenarioConfig
    delays: np.ndarray
    cdf_x: np.ndarray
    cdf_y: np.ndarray
    reliability: float
    mean_delay: float
    median_delay: float
    p90_delay: float
    p99_delay: float
    max_delay: float
    receptions_per_delivery: float
    live_receivers: int
    messages_sent: int
    sent_by_type: Dict[str, int]
    #: :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` of the run's
    #: observability metrics, when the experiment ran with an enabled
    #: :class:`~repro.obs.Observability`; None otherwise.
    metrics: Optional[Dict[str, Any]] = None
    #: Total (message, live receiver) pairs the run was accountable for —
    #: the delay-CDF denominator.  ``delays.size / expected_pairs`` is the
    #: reliability; batch aggregation needs it to merge CDFs exactly.
    expected_pairs: int = 0
    #: Total simulation events dispatched by the run's engine — the
    #: numerator of the ``repro bench`` events/sec figure.
    events_executed: int = 0

    def delay_at_coverage(self, coverage: float) -> float:
        """Delay by which the given fraction of (msg, node) pairs was served.

        NaN if the protocol never reached that coverage (lost messages).
        """
        return coverage_delay(self.cdf_x, self.cdf_y, coverage)

    def summary_row(self) -> str:
        return (
            f"{self.scenario.protocol:>15s}  n={self.scenario.n_nodes:<5d} "
            f"fail={self.scenario.fail_fraction:<4.0%} "
            f"mean={self.mean_delay:6.3f}s  p50={self.median_delay:6.3f}s  "
            f"p90={self.p90_delay:6.3f}s  p99={self.p99_delay:6.3f}s  "
            f"reliability={self.reliability:8.6f}"
        )


def run_delay_experiment(
    scenario: ScenarioConfig,
    latency: Optional[LatencyModel] = None,
    network_hook=None,
    obs: Optional[Observability] = None,
) -> DelayResult:
    """Run one scenario to completion and collect delivery statistics.

    ``network_hook(network, sim, workload_start)``, if given, is invoked
    just before the workload is scheduled — e.g. to attach a
    link-stress accumulator to :attr:`Network.on_send` at workload time.

    ``obs``, if given and enabled, instruments the run: protocol
    counters, trace events and (optionally) the callback profiler all
    accumulate into it, and the returned result carries a metrics
    snapshot.  The default keeps the uninstrumented fast path.
    """
    if scenario.uses_overlay:
        return _run_overlay_protocol(scenario, latency, network_hook, obs)
    return _run_random_gossip_protocol(scenario, latency, network_hook, obs)


def _finalize_obs(
    obs: Optional[Observability],
    sim: Simulator,
    network: Network,
    health: Optional[HealthMonitor] = None,
    capacity: Optional[CapacitySampler] = None,
) -> Optional[Dict[str, Any]]:
    """Fold end-of-run state into the metrics and snapshot them.

    The snapshot is extended with a ``health`` section (when a health
    monitor sampled the run), a ``capacity`` section (when a capacity
    sampler ran, see :mod:`repro.obs.series`) and a ``provenance``
    section (when the trace carries delivery records — i.e. the GoCast
    dissemination stack ran with tracing enabled)."""
    if obs is None:
        return None
    if obs.profiler is not None:
        obs.profiler.uninstall(sim)
    if not obs.enabled:
        return None
    record_link_stress(obs.metrics, network.link_counts)
    obs.metrics.set_gauge("sim.events_executed", sim.events_executed)
    obs.metrics.set_gauge("sim.end_time", sim.now)
    # Scheduler occupancy/reuse at end of run: visible without the
    # profiler installed, whatever REPRO_SIM_OPTS selected.
    for key, value in sim.scheduler_stats().items():
        obs.metrics.set_gauge(f"sim.sched.{key}", float(value))
    snapshot = obs.metrics.snapshot()
    if health is not None and health.samples:
        snapshot["health"] = health.to_dict()
    if capacity is not None and capacity.samples:
        snapshot["capacity"] = capacity.to_dict()
    reconstructor = PathReconstructor(obs.tracer.events())
    if reconstructor.n_deliveries:
        snapshot["provenance"] = reconstructor.summary()
    return snapshot


def _result_from_tracer(
    scenario: ScenarioConfig,
    tracer: DeliveryTracer,
    receivers: Set[int],
    network: Network,
) -> DelayResult:
    delays = tracer.delays(receivers)
    cdf_x, cdf_y = tracer.delay_cdf(sorted(receivers))
    have = delays.size > 0
    return DelayResult(
        scenario=scenario,
        delays=delays,
        cdf_x=cdf_x,
        cdf_y=cdf_y,
        reliability=tracer.reliability(sorted(receivers)),
        mean_delay=float(delays.mean()) if have else float("nan"),
        median_delay=float(np.percentile(delays, 50)) if have else float("nan"),
        p90_delay=float(np.percentile(delays, 90)) if have else float("nan"),
        p99_delay=float(np.percentile(delays, 99)) if have else float("nan"),
        max_delay=float(delays.max()) if have else float("nan"),
        receptions_per_delivery=tracer.receptions_per_delivery(),
        live_receivers=len(receivers),
        messages_sent=network.messages_sent,
        sent_by_type=dict(network.sent_by_type),
        expected_pairs=int(delays.size) + tracer.undelivered_pairs(sorted(receivers)),
    )


def _run_overlay_protocol(
    scenario: ScenarioConfig,
    latency: Optional[LatencyModel],
    network_hook=None,
    obs: Optional[Observability] = None,
) -> DelayResult:
    chaos = scenario.chaos_scenario()
    if chaos is not None and latency is None:
        # Scenario-created nodes (churn joins, restarts) allocate ids
        # past the initial population; reserve latency-model headroom.
        from repro.experiments.chaos import chaos_latency_model

        latency = chaos_latency_model(scenario, chaos)
    system = GoCastSystem(scenario, latency=latency, obs=obs)

    # Health sampling rides on a read-only periodic timer: it inspects
    # node state but never mutates it nor draws simulation randomness,
    # so the protocol schedule stays bit-identical with or without it.
    health: Optional[HealthMonitor] = None
    if obs is not None and obs.enabled and obs.health_period > 0:
        health = HealthMonitor(
            system.nodes, system.network, obs, period=obs.health_period
        )
        health.start(system.sim)

    # Capacity sampling follows the same read-only contract (see
    # repro.obs.series); off by default (series_period=0).
    capacity: Optional[CapacitySampler] = None
    if obs is not None and obs.enabled and obs.series_period > 0:
        capacity = CapacitySampler(
            system.nodes, system.network, obs, period=obs.series_period
        )
        capacity.start(system.sim)

    system.run_adaptation()

    fail_time = scenario.adapt_time
    if scenario.fail_fraction > 0:
        system.fail_random_fraction(fail_time, scenario.fail_fraction)

    chaos_end = fail_time
    engine = None
    if chaos is not None:
        from repro.experiments.chaos import build_chaos_engine

        engine = build_chaos_engine(system, chaos)
        chaos_end = engine.arm(start=fail_time)

    # The paper injects the workload right after the crash wave.
    workload_start = fail_time + 0.1
    if network_hook is not None:
        network_hook(system.network, system.sim, workload_start)
    end = system.schedule_workload(workload_start)
    system.run_until(max(end, chaos_end) + scenario.drain_time)

    receivers = system.live_node_ids()
    if engine is not None:
        # Delivery accounting over veterans only: nodes that joined,
        # left, restarted or crashed mid-run are not accountable for
        # every message (same rule as the churn extension experiment).
        receivers &= engine.veteran_ids(range(scenario.n_nodes))
    if health is not None:
        health.stop()
    if capacity is not None:
        capacity.stop()
    result = _result_from_tracer(scenario, system.tracer, receivers, system.network)
    result.events_executed = system.sim.events_executed
    result.metrics = _finalize_obs(
        obs, system.sim, system.network, health=health, capacity=capacity
    )
    return result


def _run_random_gossip_protocol(
    scenario: ScenarioConfig,
    latency: Optional[LatencyModel],
    network_hook=None,
    obs: Optional[Observability] = None,
) -> DelayResult:
    rngs = RngRegistry(scenario.seed)
    sim = Simulator()
    if obs is not None and obs.profiler is not None:
        obs.profiler.install(sim)
    if latency is None:
        latency = SyntheticKingModel(
            scenario.n_nodes, n_sites=scenario.n_sites, seed=scenario.seed
        )
    network = Network(
        sim, latency, loss_rate=scenario.loss_rate, rng=rngs.stream("net"), obs=obs
    )
    tracer = DeliveryTracer()
    membership = list(range(scenario.n_nodes))

    nodes = {}
    for node_id in membership:
        if scenario.protocol == "push_gossip":
            node = PushGossipNode(
                node_id,
                sim,
                network,
                membership,
                fanout=scenario.fanout,
                gossip_period=scenario.baseline_gossip_period,
                rng=rngs.node_stream(node_id),
                tracer=tracer,
            )
        else:
            node = NoWaitGossipNode(
                node_id,
                sim,
                network,
                membership,
                fanout=scenario.fanout,
                rng=rngs.node_stream(node_id),
                tracer=tracer,
            )
        nodes[node_id] = node
        node.start()

    capacity: Optional[CapacitySampler] = None
    if obs is not None and obs.enabled and obs.series_period > 0:
        capacity = CapacitySampler(nodes, network, obs, period=obs.series_period)
        capacity.start(sim)

    injector = FailureInjector(sim, network, rngs.stream("fail"))
    injector.on_node_failed = lambda node_id: nodes[node_id].stop()
    if scenario.fail_fraction > 0:
        injector.fail_fraction_at(0.0, scenario.fail_fraction, membership)

    workload_rng = rngs.stream("workload")

    def inject_one() -> None:
        live = sorted(network.alive_nodes())
        if live:
            source = live[workload_rng.randrange(len(live))]
            nodes[source].multicast(scenario.payload_size)

    start = 0.1
    if network_hook is not None:
        network_hook(network, sim, start)
    for i in range(scenario.n_messages):
        sim.schedule_at(start + i / scenario.message_rate, inject_one)
    end = start + scenario.n_messages / scenario.message_rate
    sim.run_until(end + scenario.drain_time)

    receivers = network.alive_nodes()
    if capacity is not None:
        capacity.stop()
    result = _result_from_tracer(scenario, tracer, receivers, network)
    result.events_executed = sim.events_executed
    result.metrics = _finalize_obs(obs, sim, network, capacity=capacity)
    return result
