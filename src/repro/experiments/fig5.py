"""Figure 5: adaptation of the overlay and the tree over time.

The run starts from an all-random overlay ("each node initiates three
random links") and lets the maintenance protocols adapt it.

* Figure 5(a): node-degree distribution at selected instants.  Paper:
  22% of nodes at degree 6 initially, 57% after 5 s, ~60% after 500 s,
  average degree 6.4.
* Figure 5(b): average one-way latency of overlay and tree links over
  time.  Paper: overlay links improve rapidly for ~60 s; tree links
  settle around 15.5 ms versus the 91 ms random-pair average.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.messages import NEARBY, RANDOM
from repro.experiments.batch import parallel_map
from repro.experiments.report import format_table
from repro.experiments.scenarios import ScenarioConfig, scale_preset
from repro.experiments.system import GoCastSystem
from repro.sim.rng import RngRegistry


@dataclasses.dataclass
class Fig5Result:
    n_nodes: int
    target_degree: int
    #: time -> degree histogram {degree: node count}
    degree_histograms: Dict[float, Dict[int, int]]
    #: time series sampled every ``sample_period``
    times: List[float]
    overlay_latency: List[float]
    tree_latency: List[float]
    random_latency: List[float]
    nearby_latency: List[float]
    final_mean_degree: float
    random_pair_latency: float

    def degree_fraction_at(self, time: float, degree: int) -> float:
        hist = self.degree_histograms[time]
        total = sum(hist.values())
        return hist.get(degree, 0) / total if total else 0.0

    def ledger_metrics(self):
        """(perf metrics, exact counters) for the run ledger.

        Everything here is deterministic simulation output (adaptation is
        fixed-seed), so the whole section goes in ``exact``.
        """
        exact = {
            "final_mean_degree": self.final_mean_degree,
            "random_pair_latency": self.random_pair_latency,
            "final_overlay_latency": self.overlay_latency[-1],
            "final_tree_latency": self.tree_latency[-1],
        }
        return {}, exact

    def format_table(self) -> str:
        times = sorted(self.degree_histograms)
        degrees = sorted({d for h in self.degree_histograms.values() for d in h})
        rows = []
        for d in degrees:
            rows.append(
                [d] + [self.degree_fraction_at(t, d) for t in times]
            )
        part_a = format_table(
            ["degree"] + [f"t={t:g}s" for t in times], rows
        )
        rows_b = [
            (t, o * 1000, tr * 1000, r * 1000, nb * 1000)
            for t, o, tr, r, nb in zip(
                self.times,
                self.overlay_latency,
                self.tree_latency,
                self.random_latency,
                self.nearby_latency,
            )
        ]
        part_b = format_table(
            ["time (s)", "overlay (ms)", "tree (ms)", "random (ms)", "nearby (ms)"],
            rows_b,
        )
        return (
            f"Figure 5a — degree distribution over time ({self.n_nodes} nodes, "
            f"target degree {self.target_degree}; final mean "
            f"{self.final_mean_degree:.2f})\n{part_a}\n\n"
            f"Figure 5b — link latency over time (random-pair average "
            f"{self.random_pair_latency * 1000:.1f} ms)\n{part_b}"
        )


#: Worker payload: (n_nodes, duration, histogram_times, sample_period, seed).
_TrialPayload = Tuple[int, float, Tuple[float, ...], float, int]


def _run_fig5_trial(payload: _TrialPayload) -> Fig5Result:
    """Top-level (picklable) worker: one adaptation run, sampled over time."""
    n_nodes, duration, histogram_times, sample_period, seed = payload
    scenario = ScenarioConfig(
        protocol="gocast", n_nodes=n_nodes, adapt_time=duration, seed=seed
    )
    system = GoCastSystem(scenario)
    system.bootstrap()

    histogram_times = sorted(set(list(histogram_times) + [duration]))
    degree_histograms: Dict[float, Dict[int, int]] = {}
    times: List[float] = []
    overlay_lat: List[float] = []
    tree_lat: List[float] = []
    random_lat: List[float] = []
    nearby_lat: List[float] = []

    sample_times = sorted(
        set(
            [t for t in histogram_times if t <= duration]
            + [i * sample_period for i in range(int(duration / sample_period) + 1)]
            + [duration]
        )
    )
    for t in sample_times:
        system.run_until(t)
        snap = system.snapshot()
        if t in histogram_times:
            degree_histograms[t] = snap.degree_histogram()
        times.append(t)
        overlay_lat.append(snap.mean_link_latency())
        tree_lat.append(snap.mean_tree_link_latency(system.latency))
        random_lat.append(snap.mean_link_latency(RANDOM))
        nearby_lat.append(snap.mean_link_latency(NEARBY))

    final = system.snapshot()
    return Fig5Result(
        n_nodes=n_nodes,
        target_degree=system.config.c_degree,
        degree_histograms=degree_histograms,
        times=times,
        overlay_latency=overlay_lat,
        tree_latency=tree_lat,
        random_latency=random_lat,
        nearby_latency=nearby_lat,
        final_mean_degree=final.mean_degree(),
        random_pair_latency=system.latency.mean_one_way(),
    )


def _merge_trials(trials: List[Fig5Result]) -> Fig5Result:
    """Average latency series and sum degree histograms across trials.

    Sample times are identical across trials (they depend only on the
    run parameters), so series merge element-wise; histogram node counts
    sum, which leaves the degree *fractions* the across-trial average.
    """
    first = trials[0]
    if len(trials) == 1:
        return first
    histograms: Dict[float, Dict[int, int]] = {}
    for trial in trials:
        for time, hist in trial.degree_histograms.items():
            merged = histograms.setdefault(time, {})
            for degree, count in hist.items():
                merged[degree] = merged.get(degree, 0) + count

    def avg(series_name: str) -> List[float]:
        stacked = np.array([getattr(t, series_name) for t in trials], dtype=float)
        return [float(v) for v in stacked.mean(axis=0)]

    return Fig5Result(
        n_nodes=first.n_nodes,
        target_degree=first.target_degree,
        degree_histograms=histograms,
        times=list(first.times),
        overlay_latency=avg("overlay_latency"),
        tree_latency=avg("tree_latency"),
        random_latency=avg("random_latency"),
        nearby_latency=avg("nearby_latency"),
        final_mean_degree=float(np.mean([t.final_mean_degree for t in trials])),
        random_pair_latency=float(np.mean([t.random_pair_latency for t in trials])),
    )


def run(
    n_nodes: Optional[int] = None,
    duration: Optional[float] = None,
    histogram_times: Sequence[float] = (0.0, 5.0, 60.0),
    sample_period: float = 10.0,
    seed: int = 1,
    trials: int = 1,
    workers: int = 1,
) -> Fig5Result:
    """Figure 5, optionally averaged over parallel independent trials.

    ``seed`` is the batch root seed; each trial's adaptation run uses a
    seed derived from (seed, trial index), and merging is trial-order
    deterministic, so the result is identical for any ``workers`` count.
    """
    default_n, default_adapt, _ = scale_preset()
    n_nodes = default_n if n_nodes is None else n_nodes
    duration = default_adapt if duration is None else duration
    payloads: List[_TrialPayload] = [
        (
            n_nodes,
            duration,
            tuple(histogram_times),
            sample_period,
            RngRegistry.trial_seed(seed, i),
        )
        for i in range(trials)
    ]
    return _merge_trials(parallel_map(_run_fig5_trial, payloads, workers))
