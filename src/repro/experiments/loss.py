"""Extension: robustness to datagram loss.

GoCast's control plane splits across two transports: overlay-neighbor
traffic rides pre-established reliable connections (TCP in the paper),
while RTT probes between non-neighbors are datagrams (UDP).  This
experiment injects datagram loss and checks that (a) dissemination is
untouched (it only uses the reliable channels) and (b) the overlay still
converges — lost probes only slow nearby-neighbor optimization, because
the probe state machine times out and moves on.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.experiments.report import format_table
from repro.experiments.scenarios import ScenarioConfig, scale_preset


@dataclasses.dataclass
class LossOutcome:
    loss_rate: float
    reliability: float
    mean_delay: float
    mean_link_latency: float


@dataclasses.dataclass
class LossResult:
    n_nodes: int
    outcomes: List[LossOutcome]

    def format_table(self) -> str:
        rows = [
            (f"{o.loss_rate:.0%}", o.reliability, o.mean_delay,
             o.mean_link_latency * 1000)
            for o in self.outcomes
        ]
        return (
            f"Loss extension — datagram loss robustness ({self.n_nodes} nodes)\n"
            + format_table(
                ["UDP loss", "reliability", "mean delay (s)", "overlay link (ms)"],
                rows,
            )
        )


def run(
    loss_rates: Sequence[float] = (0.0, 0.1, 0.3),
    n_nodes: Optional[int] = None,
    adapt_time: Optional[float] = None,
    n_messages: Optional[int] = None,
    seed: int = 1,
) -> LossResult:
    default_n, default_adapt, default_msgs = scale_preset()
    n_nodes = default_n if n_nodes is None else n_nodes
    adapt_time = default_adapt if adapt_time is None else adapt_time
    n_messages = default_msgs if n_messages is None else n_messages

    outcomes: List[LossOutcome] = []
    for loss in loss_rates:
        scenario = ScenarioConfig(
            protocol="gocast",
            n_nodes=n_nodes,
            adapt_time=adapt_time,
            n_messages=n_messages,
            loss_rate=loss,
            seed=seed,
        )
        from repro.experiments.system import GoCastSystem

        system = GoCastSystem(scenario)
        system.run_adaptation()
        link_latency = system.snapshot().mean_link_latency()
        end = system.schedule_workload(system.sim.now + 0.1)
        system.run_until(end + scenario.drain_time)
        receivers = sorted(system.live_node_ids())
        outcomes.append(
            LossOutcome(
                loss_rate=loss,
                reliability=system.tracer.reliability(receivers),
                mean_delay=system.tracer.mean_delay(receivers),
                mean_link_latency=link_latency,
            )
        )
    return LossResult(n_nodes=n_nodes, outcomes=outcomes)
