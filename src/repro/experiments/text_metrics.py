"""In-text numeric claims: degree splits and delivery redundancy.

* **T-deg** — after the overlay stabilizes, "approximately 88% of nodes
  have C_rand random neighbors and 12% have C_rand + 1"; nearby degrees
  split "about 70% at C_near and about 30% at C_near + 1".
* **T-red** — each node receives a multicast message on average 1.02
  times (2% redundancy from gossip racing the tree); enabling the
  request delay ``f = 0.3 s`` cuts the redundant probability to ~0.0005
  with almost no delay impact.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.core.config import GoCastConfig
from repro.experiments.report import format_table
from repro.experiments.runner import run_delay_experiment
from repro.experiments.scenarios import ScenarioConfig, scale_preset
from repro.experiments.system import GoCastSystem


@dataclasses.dataclass
class DegreeSplitResult:
    n_nodes: int
    c_rand: int
    c_near: int
    random_split: Dict[int, float]
    nearby_split: Dict[int, float]

    def fraction_at_target(self, kind: str) -> float:
        if kind == "random":
            return self.random_split.get(self.c_rand, 0.0)
        return self.nearby_split.get(self.c_near, 0.0)

    def format_table(self) -> str:
        rows = [
            (f"random={d}", frac) for d, frac in sorted(self.random_split.items())
        ] + [(f"nearby={d}", frac) for d, frac in sorted(self.nearby_split.items())]
        return (
            f"T-deg — converged degree split ({self.n_nodes} nodes, "
            f"C_rand={self.c_rand}, C_near={self.c_near}); paper: random "
            f"88%/12%, nearby 70%/30%\n" + format_table(["degree", "fraction"], rows)
        )


def run_degree_split(
    n_nodes: Optional[int] = None,
    adapt_time: Optional[float] = None,
    seed: int = 1,
) -> DegreeSplitResult:
    default_n, default_adapt, _ = scale_preset()
    n_nodes = default_n if n_nodes is None else n_nodes
    adapt_time = default_adapt if adapt_time is None else adapt_time
    scenario = ScenarioConfig(
        protocol="gocast", n_nodes=n_nodes, adapt_time=adapt_time, seed=seed
    )
    system = GoCastSystem(scenario)
    system.run_adaptation()

    def split(values) -> Dict[int, float]:
        hist: Dict[int, int] = {}
        for v in values:
            hist[v] = hist.get(v, 0) + 1
        total = sum(hist.values())
        return {d: c / total for d, c in sorted(hist.items())}

    nodes = system.live_nodes()
    return DegreeSplitResult(
        n_nodes=n_nodes,
        c_rand=system.config.c_rand,
        c_near=system.config.c_near,
        random_split=split(n.overlay.d_rand for n in nodes),
        nearby_split=split(n.overlay.d_near for n in nodes),
    )


@dataclasses.dataclass
class RedundancyResult:
    n_nodes: int
    #: request_delay_f -> (receptions per delivery, mean delay)
    by_f: Dict[float, tuple]

    def receptions(self, f: float) -> float:
        return self.by_f[f][0]

    def format_table(self) -> str:
        rows = [
            (f, receptions, mean_delay)
            for f, (receptions, mean_delay) in sorted(self.by_f.items())
        ]
        return (
            f"T-red — delivery redundancy vs request delay f ({self.n_nodes} "
            f"nodes); paper: 1.02 at f=0, ~1.0005 at f=0.3\n"
            + format_table(["f (s)", "receptions/delivery", "mean delay (s)"], rows)
        )


def run_redundancy(
    n_nodes: Optional[int] = None,
    adapt_time: Optional[float] = None,
    n_messages: Optional[int] = None,
    f_values=(0.0, 0.3),
    seed: int = 1,
) -> RedundancyResult:
    default_n, default_adapt, default_msgs = scale_preset()
    n_nodes = default_n if n_nodes is None else n_nodes
    adapt_time = default_adapt if adapt_time is None else adapt_time
    n_messages = default_msgs if n_messages is None else n_messages

    by_f: Dict[float, tuple] = {}
    for f in f_values:
        scenario = ScenarioConfig(
            protocol="gocast",
            n_nodes=n_nodes,
            adapt_time=adapt_time,
            n_messages=n_messages,
            gocast=GoCastConfig(request_delay_f=f),
            seed=seed,
        )
        result = run_delay_experiment(scenario)
        by_f[f] = (result.receptions_per_delivery, result.mean_delay)
    return RedundancyResult(n_nodes=n_nodes, by_f=by_f)
