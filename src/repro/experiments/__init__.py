"""Experiment harness: scenario configs, system builders, and one module
per paper table/figure (see DESIGN.md's per-experiment index).

Entry points:

* :func:`repro.experiments.runner.run_delay_experiment` — one
  delay-CDF run of any of the five protocols (Figures 3 and 4).
* :func:`repro.experiments.batch.run_batch` — N independent trials of
  one scenario fanned across worker processes, aggregated into a
  :class:`~repro.experiments.batch.BatchResult` with merged CDF and
  across-trial statistics (see docs/EXPERIMENTS.md).
* :class:`repro.experiments.system.GoCastSystem` — a fully wired GoCast
  deployment for adaptation/structure experiments (Figures 5, 6, the
  in-text numbers, and the ablations).
* ``repro.experiments.fig1`` … ``fig6`` and the ``summary results``
  modules — each regenerates one paper artifact and formats it as the
  same rows/series the paper reports.
"""

from repro.experiments.scenarios import ScenarioConfig, scale_preset
from repro.experiments.system import GoCastSystem
from repro.experiments.runner import DelayResult, run_delay_experiment
from repro.experiments.batch import BatchResult, run_batch

__all__ = [
    "BatchResult",
    "DelayResult",
    "GoCastSystem",
    "ScenarioConfig",
    "run_batch",
    "run_delay_experiment",
    "scale_preset",
]
