"""Summary result (3): overlay diameter vs system size.

"The overlay is scalable; the diameter of the overlay grows from 6 hops
to 10 hops when the system size increases from 256 nodes to 8,192
nodes." — logarithmic growth, as expected of a degree-6 overlay with one
random link per node (an expander-like structure).
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence

from repro.experiments.report import format_table
from repro.experiments.scenarios import ScenarioConfig
from repro.experiments.system import GoCastSystem


@dataclasses.dataclass
class DiameterResult:
    sizes: List[int]
    diameters: List[int]

    def growth_is_logarithmic(self) -> bool:
        """Diameter growth per doubling should stay ~constant and small."""
        if len(self.sizes) < 2:
            return True
        increments = []
        for i in range(1, len(self.sizes)):
            doublings = math.log2(self.sizes[i] / self.sizes[i - 1])
            increments.append((self.diameters[i] - self.diameters[i - 1]) / doublings)
        return all(inc <= 2.5 for inc in increments)

    def format_table(self) -> str:
        rows = list(zip(self.sizes, self.diameters))
        return (
            "R3 — overlay diameter vs size (paper: 6 hops @256 -> 10 hops "
            "@8192)\n" + format_table(["nodes", "diameter (hops)"], rows)
        )


def run(
    sizes: Sequence[int] = (64, 128, 256, 512),
    adapt_time: Optional[float] = 60.0,
    seed: int = 1,
) -> DiameterResult:
    diameters: List[int] = []
    for n in sizes:
        scenario = ScenarioConfig(
            protocol="gocast", n_nodes=n, adapt_time=adapt_time, seed=seed
        )
        system = GoCastSystem(scenario)
        system.run_adaptation()
        diameters.append(system.snapshot().diameter_hops())
    return DiameterResult(sizes=list(sizes), diameters=diameters)
