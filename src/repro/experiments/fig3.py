"""Figure 3: delay CDFs of the five protocols, without and with failures.

Figure 3(a): 1,024 nodes, no failures — GoCast reaches every node in
well under half a second while gossip multicast takes several times
longer and never reaches ~0.7% of (message, node) pairs at fanout 5.
Figure 3(b): 20% of nodes crash at workload start and no repair runs —
the overlay protocols still deliver everything to every live node;
GoCast slows (tree fragments bridged by gossip) but keeps a clear lead.

Headline: GoCast cuts delivery delay vs push gossip by ~8.9x (no
failures) and ~2.3x (20% failures) — we check mean-delay ratios.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from repro.experiments.batch import BatchResult, run_batch
from repro.experiments.report import ascii_cdf, cdf_points, format_table
from repro.experiments.scenarios import PROTOCOLS, ScenarioConfig, scale_preset

#: Coverage levels reported for each CDF curve.
COVERAGES = (0.25, 0.50, 0.75, 0.90, 0.99, 0.999)


@dataclasses.dataclass
class Fig3Result:
    fail_fraction: float
    #: protocol -> batch aggregate (single-trial batches for trials=1).
    results: Dict[str, BatchResult]

    def speedup_vs_gossip(self, stat: str = "mean_delay") -> float:
        """GoCast's delay advantage over push gossip (paper: 8.9x / 2.3x)."""
        gocast = getattr(self.results["gocast"], stat)
        gossip = getattr(self.results["push_gossip"], stat)
        return gossip / gocast

    def ledger_metrics(self):
        """(perf metrics, exact counters) for the run ledger."""
        metrics, exact = {}, {}
        for name, res in self.results.items():
            metrics[f"{name}.mean_delay"] = res.mean_delay
            metrics[f"{name}.p99_delay"] = res.p99_delay
            exact[f"{name}.reliability"] = res.reliability
            exact[f"{name}.delivered_pairs"] = int(res.delays.size)
            exact[f"{name}.events_executed"] = res.events_executed
        if "gocast" in self.results and "push_gossip" in self.results:
            metrics["speedup_vs_gossip"] = self.speedup_vs_gossip()
        return metrics, exact

    def format_table(self) -> str:
        headers = ["protocol", "mean", "p50", "p90", "p99", "reliability"] + [
            f"cdf@{c:g}" for c in COVERAGES
        ]
        rows = []
        for name, res in self.results.items():
            rows.append(
                [
                    name,
                    res.mean_delay,
                    res.median_delay,
                    res.p90_delay,
                    res.p99_delay,
                    res.reliability,
                ]
                + cdf_points(res.cdf_x, res.cdf_y, COVERAGES)
            )
        trials = max(res.n_trials for res in self.results.values())
        title = (
            f"Figure 3{'b' if self.fail_fraction > 0 else 'a'} — delay CDFs, "
            f"fail={self.fail_fraction:.0%} (delays in seconds"
            + (f"; pooled over {trials} trials" if trials > 1 else "")
            + ")"
        )
        table = format_table(headers, rows)
        curves = {name: (res.cdf_x, res.cdf_y) for name, res in self.results.items()}
        plot = ascii_cdf(curves)
        speedup = self.speedup_vs_gossip()
        return (
            f"{title}\n{table}\n{plot}\n"
            f"GoCast vs push-gossip mean-delay speedup: {speedup:.1f}x"
        )


def run(
    fail_fraction: float = 0.0,
    protocols: Sequence[str] = PROTOCOLS,
    n_nodes: Optional[int] = None,
    adapt_time: Optional[float] = None,
    n_messages: Optional[int] = None,
    seed: int = 1,
    drain_time: float = 30.0,
    trials: int = 1,
    workers: int = 1,
) -> Fig3Result:
    """Figure 3 via the batch API: ``trials`` runs per protocol, pooled.

    ``seed`` is the batch root seed — trial ``i`` of every protocol runs
    with a seed derived from (seed, i), so results are reproducible for
    any ``workers`` count.
    """
    default_n, default_adapt, default_msgs = scale_preset()
    n_nodes = default_n if n_nodes is None else n_nodes
    adapt_time = default_adapt if adapt_time is None else adapt_time
    n_messages = default_msgs if n_messages is None else n_messages

    results: Dict[str, BatchResult] = {}
    for protocol in protocols:
        scenario = ScenarioConfig(
            protocol=protocol,
            n_nodes=n_nodes,
            adapt_time=adapt_time,
            n_messages=n_messages,
            fail_fraction=fail_fraction,
            drain_time=drain_time,
            seed=seed,
        )
        results[protocol] = run_batch(
            scenario, n_trials=trials, workers=workers, root_seed=seed
        )
    return Fig3Result(fail_fraction=fail_fraction, results=results)
