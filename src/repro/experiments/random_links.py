"""Summary result (2): link latency vs the number of random links.

"The average latency of the overlay links grows almost linearly with the
number of random links, which again justifies our use of only one random
link per node."  Total degree stays at 6 while C_rand sweeps 0..5.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import GoCastConfig
from repro.experiments.report import format_table
from repro.experiments.scenarios import ScenarioConfig, scale_preset
from repro.experiments.system import GoCastSystem


@dataclasses.dataclass
class RandomLinksResult:
    n_nodes: int
    c_rand_values: List[int]
    mean_overlay_latency: List[float]

    def linear_fit_r2(self) -> float:
        """R^2 of a linear fit latency ~ C_rand (paper: "almost linear")."""
        x = np.asarray(self.c_rand_values, dtype=float)
        y = np.asarray(self.mean_overlay_latency)
        if len(x) < 3:
            return 1.0
        coeffs = np.polyfit(x, y, 1)
        pred = np.polyval(coeffs, x)
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        return 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0

    def format_table(self) -> str:
        rows = [
            (c, lat * 1000)
            for c, lat in zip(self.c_rand_values, self.mean_overlay_latency)
        ]
        return (
            f"R2 — mean overlay link latency vs C_rand ({self.n_nodes} nodes, "
            f"degree 6); linear fit R^2 = {self.linear_fit_r2():.3f}\n"
            + format_table(["C_rand", "mean link latency (ms)"], rows)
        )


def run(
    n_nodes: Optional[int] = None,
    adapt_time: Optional[float] = None,
    c_rand_values: Sequence[int] = (0, 1, 2, 3, 4, 5),
    total_degree: int = 6,
    seed: int = 1,
) -> RandomLinksResult:
    default_n, default_adapt, _ = scale_preset()
    n_nodes = default_n if n_nodes is None else n_nodes
    adapt_time = default_adapt if adapt_time is None else adapt_time

    latencies: List[float] = []
    for c_rand in c_rand_values:
        config = GoCastConfig(c_rand=c_rand, c_near=total_degree - c_rand)
        scenario = ScenarioConfig(
            protocol="gocast",
            n_nodes=n_nodes,
            adapt_time=adapt_time,
            gocast=config,
            seed=seed,
        )
        system = GoCastSystem(scenario)
        system.run_adaptation()
        latencies.append(system.snapshot().mean_link_latency())
    return RandomLinksResult(
        n_nodes=n_nodes,
        c_rand_values=list(c_rand_values),
        mean_overlay_latency=latencies,
    )
