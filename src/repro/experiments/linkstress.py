"""Summary result (4): physical bottleneck-link stress.

"Compared with a push-based gossip protocol using fanout 5, GoCast
reduces the traffic imposed on bottleneck network links by a factor of
4-7.  The network topologies used in this experiment are large-scale
snapshots of the Internet Autonomous Systems."

Both protocols disseminate the same workload over the same transit–stub
Internet hierarchy (see :class:`~repro.net.astopo.TransitStubTopology`;
member latencies are the shortest physical-path latencies, so GoCast's
proximity links genuinely stay within regions).  Every protocol message
emitted during the workload phase is routed over shortest physical
paths and counted in bytes per link.  The bottleneck metric is the load
on the long-haul (backbone + regional uplink) links: random gossip
drags nearly every delivery across them, while GoCast's tree crosses
each of them about once per message.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.analysis.linkstress import LinkStressAccumulator
from repro.experiments.report import format_table
from repro.experiments.runner import run_delay_experiment
from repro.experiments.scenarios import ScenarioConfig, scale_preset
from repro.net.astopo import TransitStubTopology


@dataclasses.dataclass
class LinkStressResult:
    n_members: int
    topology: TransitStubTopology
    #: protocol -> accumulator (with full per-link distribution)
    accumulators: Dict[str, LinkStressAccumulator]

    def backbone_load(self, protocol: str) -> tuple:
        """(max, mean) bytes over the long-haul links."""
        return self.accumulators[protocol].stress_over(
            self.topology.backbone_edges()
        )

    def stress_reduction(self) -> float:
        """Bottleneck load of push gossip relative to GoCast (paper: 4-7x)."""
        _, gossip_mean = self.backbone_load("push_gossip")
        _, gocast_mean = self.backbone_load("gocast")
        return gossip_mean / gocast_mean if gocast_mean > 0 else float("inf")

    def format_table(self) -> str:
        headers = [
            "protocol",
            "backbone max (KB)",
            "backbone mean (KB)",
            "all-links max (KB)",
            "msgs routed",
        ]
        rows = []
        for name, acc in self.accumulators.items():
            bb_max, bb_mean = self.backbone_load(name)
            rows.append(
                [name, bb_max / 1e3, bb_mean / 1e3, acc.max_stress() / 1e3,
                 acc.messages_routed]
            )
        return (
            f"R4 — long-haul link stress ({self.n_members} members, "
            f"{self.topology.n_regions} regions); paper: 4-7x reduction\n"
            + format_table(headers, rows)
            + f"\nbottleneck load reduction (gossip/GoCast): "
            f"{self.stress_reduction():.1f}x"
        )


def run(
    n_members: Optional[int] = None,
    n_regions: int = 8,
    stubs_per_region: int = 6,
    adapt_time: Optional[float] = None,
    n_messages: Optional[int] = None,
    fanout: int = 5,
    seed: int = 1,
) -> LinkStressResult:
    default_n, default_adapt, default_msgs = scale_preset()
    n_members = min(default_n, 256) if n_members is None else n_members
    adapt_time = default_adapt if adapt_time is None else adapt_time
    n_messages = default_msgs if n_messages is None else n_messages

    topology = TransitStubTopology(
        n_regions=n_regions,
        stubs_per_region=stubs_per_region,
        n_members=n_members,
        seed=seed,
    )
    # Count the dissemination path only: payload pushes, summaries and
    # pulls.  Constant-rate control traffic (RTT probes, keepalives,
    # link handshakes) is independent of the message rate and amortizes
    # to nothing at the paper's sustained 100 msgs/s, but would swamp a
    # short benchmark workload.
    dissemination_types = (
        "MulticastData", "Gossip", "RandomGossip", "PullRequest", "PullData",
    )

    def is_dissemination(msg: object) -> bool:
        return type(msg).__name__ in dissemination_types

    accumulators: Dict[str, LinkStressAccumulator] = {}
    for protocol in ("gocast", "push_gossip"):
        # Weight by bytes: multicast payloads dominate, and "traffic
        # imposed on network links" is a byte quantity — counting raw
        # messages would overweight GoCast's many tiny control packets.
        acc = LinkStressAccumulator(
            topology, weight_by_bytes=True, message_filter=is_dissemination
        )
        accumulators[protocol] = acc

        def hook(network, sim, start, acc=acc):
            # Count only workload-phase traffic (dissemination, not the
            # one-off adaptation churn).
            sim.schedule_at(start, lambda: setattr(network, "on_send", acc.on_send))

        scenario = ScenarioConfig(
            protocol=protocol,
            n_nodes=n_members,
            adapt_time=adapt_time,
            n_messages=n_messages,
            fanout=fanout,
            seed=seed,
        )
        run_delay_experiment(scenario, latency=topology.latency_model, network_hook=hook)
    return LinkStressResult(
        n_members=n_members, topology=topology, accumulators=accumulators
    )
