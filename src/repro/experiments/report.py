"""Plain-text table/series formatting for experiment outputs.

Benchmarks print these tables so a run of ``pytest benchmarks/
--benchmark-only -s`` regenerates the same rows/series the paper
reports, without any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Monospace table with right-aligned numeric-ish columns."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "nan"
        if abs(cell) >= 1000 or (cell != 0 and abs(cell) < 0.001):
            return f"{cell:.3e}"
        return f"{cell:.4f}".rstrip("0").rstrip(".")
    return str(cell)


def cdf_points(
    delays: np.ndarray, fractions: np.ndarray, coverages: Sequence[float]
) -> List[float]:
    """Delay at which each coverage level is first reached (NaN if never)."""
    out = []
    for coverage in coverages:
        idx = np.searchsorted(fractions, coverage)
        out.append(float(delays[idx]) if idx < len(delays) else float("nan"))
    return out


def ascii_cdf(
    curves: "dict[str, tuple]",
    width: int = 64,
    height: int = 16,
    x_max: Optional[float] = None,
) -> str:
    """Render delay-CDF curves as ASCII art (the shape of Figures 3/4).

    ``curves`` maps a label to ``(delays, fractions)`` arrays.  Each
    curve is drawn with its label's first letter; later curves overwrite
    earlier ones where they collide.
    """
    curves = {k: v for k, v in curves.items() if len(v[0])}
    if not curves:
        return "(no data)"
    if x_max is None:
        x_max = max(float(x[-1]) for x, _y in curves.values())
    if x_max <= 0:
        return "(no data)"
    # Pick a distinct mark per curve: first unused letter of its label,
    # falling back to a symbol palette on collision.
    marks: "dict[str, str]" = {}
    fallback = iter("*#%@+~^&")
    for label in curves:
        mark = next(
            (ch for ch in label if ch.isalnum() and ch not in marks.values()),
            None,
        )
        marks[label] = mark if mark is not None else next(fallback)

    grid = [[" "] * width for _ in range(height)]
    for label, (xs, ys) in curves.items():
        mark = marks[label]
        for col in range(width):
            x = (col + 1) / width * x_max
            idx = np.searchsorted(xs, x, side="right") - 1
            y = float(ys[idx]) if idx >= 0 else 0.0
            row = height - 1 - int(round(y * (height - 1)))
            grid[row][col] = mark
    lines = ["1.0 |" + "".join(row) for row in grid[:1]]
    lines += ["    |" + "".join(row) for row in grid[1:-1]]
    lines += ["0.0 +" + "".join(grid[-1])]
    lines.append("     0" + " " * (width - 8) + f"{x_max:.2f}s")
    legend = "  ".join(f"{marks[label]}={label}" for label in curves)
    lines.append(f"     {legend}")
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Cheap terminal sparkline for time series."""
    blocks = " .:-=+*#%@"
    values = list(values)
    if not values:
        return ""
    if len(values) > width:
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    lo, hi = min(values), max(values)
    if hi <= lo:
        return blocks[1] * len(values)
    return "".join(
        blocks[1 + int((v - lo) / (hi - lo) * (len(blocks) - 2))] for v in values
    )
