"""Figure 1: analytic reliability of push-based gossip.

"In a push-based gossip protocol with fanout F, the probability that all
nodes in a n=1024 node system receive 1 or 1,000 multicast messages."
Pure closed-form — no simulation.  Key paper checkpoints: with
fanout < 15, the probability of delivering 1,000 messages to everyone
stays below 0.5.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from repro.analysis.reliability import (
    atomic_broadcast_probability,
    min_fanout_for_reliability,
    multi_message_probability,
)
from repro.experiments.report import format_table


@dataclasses.dataclass
class Fig1Result:
    n: int
    fanouts: List[int]
    p_one_message: List[float]
    p_thousand_messages: List[float]
    min_fanout_for_half: int

    def format_table(self) -> str:
        rows = [
            (f, p1, p1000)
            for f, p1, p1000 in zip(
                self.fanouts, self.p_one_message, self.p_thousand_messages
            )
        ]
        table = format_table(["fanout F", "P[1 msg]", "P[1000 msgs]"], rows)
        return (
            f"Figure 1 — push-gossip reliability, n={self.n}\n{table}\n"
            f"min fanout for P[1000 msgs] >= 0.5: {self.min_fanout_for_half}"
        )


def run(n: int = 1024, fanouts: Sequence[int] = tuple(range(1, 26))) -> Fig1Result:
    fanouts = list(fanouts)
    return Fig1Result(
        n=n,
        fanouts=fanouts,
        p_one_message=[atomic_broadcast_probability(n, f) for f in fanouts],
        p_thousand_messages=[multi_message_probability(n, f, 1000) for f in fanouts],
        min_fanout_for_half=min_fanout_for_reliability(n, 1000, 0.5),
    )
