"""Ablations of GoCast's adaptation design choices (Section 2.2.3).

The paper motivates three deliberately non-obvious choices; each
ablation runs the adaptation phase with the paper's setting and the
rejected alternative and compares convergence cost (total link changes)
and outcome quality (mean overlay-link latency, connectivity):

* **C4 improvement factor** — adopt a candidate only if it is 2x closer
  than the neighbor it replaces ("intended to avoid futile minor
  adaptations").  Ablation: a greedy factor of ~1.0.
* **Drop threshold** — start dropping nearby neighbors only at
  C_near + 2.  Ablation: the aggressive C_near + 1, which the paper
  says "increases the number of link changes by almost one third".
* **C1 bound** — a neighbor may be replaced while its degree is at
  least C_near - 1.  Ablation: the stricter C_near, which the paper
  says produces "dramatically higher" link latencies because too few
  neighbors qualify for replacement.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.core.config import GoCastConfig
from repro.experiments.report import format_table
from repro.experiments.scenarios import ScenarioConfig, scale_preset
from repro.experiments.system import GoCastSystem


@dataclasses.dataclass
class VariantOutcome:
    mean_link_latency: float
    nearby_link_latency: float
    total_link_changes: int
    #: Link changes per second over the final third of the run — the
    #: post-convergence churn ("takes longer to stabilize" shows here).
    late_churn_rate: float
    connected: bool
    mean_degree: float


@dataclasses.dataclass
class AblationResult:
    name: str
    n_nodes: int
    outcomes: Dict[str, VariantOutcome]

    def format_table(self) -> str:
        headers = [
            "variant", "overlay (ms)", "nearby (ms)", "link changes",
            "late churn (/s)", "connected", "mean degree",
        ]
        rows = [
            (
                label,
                o.mean_link_latency * 1000,
                o.nearby_link_latency * 1000,
                o.total_link_changes,
                o.late_churn_rate,
                o.connected,
                o.mean_degree,
            )
            for label, o in self.outcomes.items()
        ]
        return f"Ablation: {self.name} ({self.n_nodes} nodes)\n" + format_table(
            headers, rows
        )


def _run_variant(config: GoCastConfig, n_nodes: int, adapt_time: float, seed: int) -> VariantOutcome:
    scenario = ScenarioConfig(
        protocol="gocast", n_nodes=n_nodes, adapt_time=adapt_time,
        gocast=config, seed=seed,
    )
    system = GoCastSystem(scenario)
    system.run_adaptation()
    snap = system.snapshot()
    times, _ = system.events.series_arrays("link_changes")
    late_start = 2.0 * adapt_time / 3.0
    late_window = adapt_time - late_start
    late_changes = float((times > late_start).sum()) / 2.0 if len(times) else 0.0
    return VariantOutcome(
        mean_link_latency=snap.mean_link_latency(),
        nearby_link_latency=snap.mean_link_latency("nearby"),
        total_link_changes=len(times) // 2,  # two endpoints per change
        late_churn_rate=late_changes / late_window,
        connected=snap.is_connected(),
        mean_degree=snap.mean_degree(),
    )


def _run_pair(
    name: str,
    paper_cfg: GoCastConfig,
    ablated_cfg: GoCastConfig,
    labels,
    n_nodes: Optional[int],
    adapt_time: Optional[float],
    seed: int,
) -> AblationResult:
    default_n, default_adapt, _ = scale_preset()
    n_nodes = default_n if n_nodes is None else n_nodes
    adapt_time = default_adapt if adapt_time is None else adapt_time
    outcomes = {
        labels[0]: _run_variant(paper_cfg, n_nodes, adapt_time, seed),
        labels[1]: _run_variant(ablated_cfg, n_nodes, adapt_time, seed),
    }
    return AblationResult(name=name, n_nodes=n_nodes, outcomes=outcomes)


def run_c4_factor(
    n_nodes: Optional[int] = None, adapt_time: Optional[float] = None, seed: int = 1
) -> AblationResult:
    return _run_pair(
        "C4 improvement factor (0.5 vs greedy 0.99)",
        GoCastConfig(replace_rtt_factor=0.5),
        GoCastConfig(replace_rtt_factor=0.99),
        ("paper (0.5)", "greedy (0.99)"),
        n_nodes,
        adapt_time,
        seed,
    )


def run_drop_threshold(
    n_nodes: Optional[int] = None, adapt_time: Optional[float] = None, seed: int = 1
) -> AblationResult:
    return _run_pair(
        "nearby drop threshold (C_near+2 vs aggressive C_near+1)",
        GoCastConfig(drop_threshold_slack=2),
        GoCastConfig(drop_threshold_slack=1),
        ("paper (+2)", "aggressive (+1)"),
        n_nodes,
        adapt_time,
        seed,
    )


def run_c1_bound(
    n_nodes: Optional[int] = None, adapt_time: Optional[float] = None, seed: int = 1
) -> AblationResult:
    return _run_pair(
        "C1 replaceability bound (C_near-1 vs strict C_near)",
        GoCastConfig(c1_slack=1),
        GoCastConfig(c1_slack=0),
        ("paper (C_near-1)", "strict (C_near)"),
        n_nodes,
        adapt_time,
        seed,
    )
