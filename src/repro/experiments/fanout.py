"""Summary result (5): push-gossip delay vs fanout.

"The message delay in the push-based gossip protocol cannot be reduced
significantly by simply increasing the gossip fanout.  When the fanout
is increased from 5 to 9, the message delay is reduced by only about 5%;
further increasing the fanout to 15 has virtually no impact."

The bottleneck is the gossip *period*, not the fanout: each node
advertises to only one target per period, so higher fanout mostly adds
late, useless advertisements.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.experiments.report import format_table
from repro.experiments.runner import DelayResult, run_delay_experiment
from repro.experiments.scenarios import ScenarioConfig, scale_preset


@dataclasses.dataclass
class FanoutResult:
    n_nodes: int
    fanouts: List[int]
    results: Dict[int, DelayResult]

    def relative_improvement(self, low: int, high: int) -> float:
        """Fractional mean-delay reduction going from fanout low -> high."""
        d_low = self.results[low].mean_delay
        d_high = self.results[high].mean_delay
        return (d_low - d_high) / d_low

    def format_table(self) -> str:
        rows = [
            (
                f,
                self.results[f].mean_delay,
                self.results[f].p90_delay,
                self.results[f].reliability,
            )
            for f in self.fanouts
        ]
        return (
            f"R5 — push-gossip delay vs fanout ({self.n_nodes} nodes); paper: "
            f"5->9 ~5% faster, 9->15 ~none\n"
            + format_table(["fanout", "mean delay (s)", "p90 (s)", "reliability"], rows)
        )


def run(
    fanouts: Sequence[int] = (5, 9, 15),
    n_nodes: Optional[int] = None,
    n_messages: Optional[int] = None,
    seed: int = 1,
) -> FanoutResult:
    default_n, _default_adapt, default_msgs = scale_preset()
    n_nodes = default_n if n_nodes is None else n_nodes
    n_messages = default_msgs if n_messages is None else n_messages

    results: Dict[int, DelayResult] = {}
    for fanout in fanouts:
        scenario = ScenarioConfig(
            protocol="push_gossip",
            n_nodes=n_nodes,
            n_messages=n_messages,
            fanout=fanout,
            seed=seed,
        )
        results[fanout] = run_delay_experiment(scenario)
    return FanoutResult(n_nodes=n_nodes, fanouts=list(fanouts), results=results)
