"""Core-engine benchmark: events/sec on the standard GoCast scenario.

This is the harness behind ``repro bench`` and
``benchmarks/bench_core.py``.  It runs the fixed-seed delay experiment
(the same scenario family every figure uses) at a couple of sizes and
reports wall time, CPU time, peak RSS and the engine's events/sec —
the single number the PR-4 optimization work targets.

Results are written to / merged into ``BENCH_core.json`` under a
*label* (``current`` by default).  The ``baseline`` label is a
recorded measurement of the pre-optimization tree (see
``docs/PERFORMANCE.md``); re-running the bench only rewrites the label
you ask for, so the baseline survives regeneration and the report can
always print an honest speedup column.

Both labels execute the exact same simulation (the optimizations are
bit-identical — pinned by the golden-master equivalence test), so
``events_executed`` is the same number in both sections and the
events/sec ratio equals the wall-time ratio.
"""

from __future__ import annotations

import json
import resource
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import run_delay_experiment
from repro.experiments.scenarios import ScenarioConfig
from repro.obs.ledger import bench_result_sections, environment_provenance, record_run
from repro.sim.optim import SimOptsError, sim_opts

#: Recorded alongside every report so readers of ``BENCH_core.json``
#: know which RSS number means what (the semantics changed when
#: ``peak_rss_delta_kb`` was introduced — see :func:`bench_size`).
PEAK_RSS_NOTE = (
    "peak_rss_kb is ru_maxrss at the end of the size's repeats: a "
    "process-lifetime high-water mark that only ratchets up across "
    "sizes run in one process. peak_rss_delta_kb is the growth of "
    "that mark across this size's repeats and is the per-config "
    "memory signal; it can read 0 when a smaller config fits in "
    "memory already ratcheted by a larger one."
)

#: Scenario knobs shared by every bench size (seed fixed for
#: reproducibility; the same config the paired A/B harness used while
#: the optimizations were developed).
SCENARIO_KWARGS = dict(
    protocol="gocast",
    adapt_time=20.0,
    n_messages=20,
    drain_time=5.0,
    seed=11,
)

#: Full matrix (the acceptance numbers) and the CI fast-lane smoke size.
FULL_SIZES = (128, 512)
SMOKE_SIZES = (24,)
#: Sizes measured by ``repro bench --mem`` (memory-capacity matrix).
MEM_SIZES = (128, 512, 1024)
#: Paper-scale matrix (``--paper``): the full King population and one
#: multi-thousand point past it.  Meant to run under the memory-bounded
#: backend (``REPRO_SIM_OPTS=all,lazylat``) into a dedicated label so
#: the default ``current``/``baseline`` sections are never overwritten
#: by a differently-configured run.
PAPER_SIZES = (1024, 1740, 4096)

DEFAULT_OUT = "BENCH_core.json"


@dataclass
class BenchResult:
    """One size's measurement (best of ``repeats`` runs)."""

    n_nodes: int
    repeats: int
    wall_s_best: float
    wall_s_all: List[float]
    cpu_s_best: float
    events_executed: int
    events_per_sec: float
    peak_rss_kb: int
    peak_rss_delta_kb: int
    #: Resolved ``REPRO_SIM_OPTS`` token set the entry ran under, as a
    #: sorted comma string ("0" = plain paths).  Recorded per entry so a
    #: label section can never silently mix configurations — the regress
    #: sentinel refuses to compare entries whose token sets differ.
    sim_opts: str = "0"
    bytes_per_node: Optional[float] = None
    mem_by_subsystem: Optional[Dict[str, int]] = None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "n_nodes": self.n_nodes,
            "repeats": self.repeats,
            "wall_s_best": round(self.wall_s_best, 4),
            "wall_s_all": [round(w, 4) for w in self.wall_s_all],
            "cpu_s_best": round(self.cpu_s_best, 4),
            "events_executed": self.events_executed,
            "events_per_sec": round(self.events_per_sec, 1),
            "peak_rss_kb": self.peak_rss_kb,
            "peak_rss_delta_kb": self.peak_rss_delta_kb,
            "sim_opts": self.sim_opts,
        }
        if self.bytes_per_node is not None:
            out["bytes_per_node"] = round(self.bytes_per_node, 1)
        if self.mem_by_subsystem is not None:
            out["mem_by_subsystem"] = dict(self.mem_by_subsystem)
        return out


def bench_size(n_nodes: int, repeats: int = 3, mem: bool = False) -> BenchResult:
    """Run the scenario ``repeats`` times at ``n_nodes``; keep the best.

    Best-of is the standard defence against scheduler noise for a
    deterministic workload: every repeat does identical work, so the
    fastest observation is the closest to the machine's true cost.

    RSS is measured two ways.  ``ru_maxrss`` is a *process-lifetime*
    high-water mark — it never goes down, so when one process benches
    several sizes the smaller sizes inherit the biggest size's peak.
    ``peak_rss_kb`` keeps the raw mark (continuity with old reports);
    ``peak_rss_delta_kb`` is the mark's growth across this size's
    repeats, i.e. the per-config signal the sentinel gates on.

    With ``mem=True`` the size additionally runs one censused
    simulation (:func:`repro.obs.memory.run_memory_experiment`) and
    attaches ``bytes_per_node`` plus the per-subsystem byte breakdown.
    The census run is separate from the timed repeats so tracemalloc /
    deep-walk work can never pollute the wall-clock numbers.
    """
    cfg = ScenarioConfig(n_nodes=n_nodes, **SCENARIO_KWARGS)
    walls: List[float] = []
    cpus: List[float] = []
    events = 0
    rss_before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    for _ in range(repeats):
        w0 = time.perf_counter()
        c0 = time.process_time()
        result = run_delay_experiment(cfg)
        cpus.append(time.process_time() - c0)
        walls.append(time.perf_counter() - w0)
        # Older trees (the recorded baseline) predate the field; the
        # count is identical across labels anyway (bit-identical runs).
        events = getattr(result, "events_executed", 0)
    rss_after = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    wall_best = min(walls)

    bytes_per_node = None
    by_subsystem = None
    if mem:
        from repro.obs.memory import run_memory_experiment

        census = run_memory_experiment(cfg).census
        bytes_per_node = census.bytes_per_node
        by_subsystem = dict(census.by_subsystem)

    return BenchResult(
        n_nodes=n_nodes,
        repeats=repeats,
        wall_s_best=wall_best,
        wall_s_all=walls,
        cpu_s_best=min(cpus),
        events_executed=events,
        events_per_sec=(events / wall_best) if events and wall_best > 0 else 0.0,
        peak_rss_kb=rss_after,
        peak_rss_delta_kb=max(rss_after - rss_before, 0),
        sim_opts=",".join(sorted(sim_opts())) or "0",
        bytes_per_node=bytes_per_node,
        mem_by_subsystem=by_subsystem,
    )


def run_bench(
    sizes: Sequence[int],
    repeats: int,
    label: str = "current",
    out_path: Optional[str] = DEFAULT_OUT,
    mem: bool = False,
) -> Dict[str, object]:
    """Measure ``sizes``, merge under ``label`` in ``out_path``, report.

    Returns the full (merged) report dict.  ``out_path=None`` skips the
    write (smoke mode).  Every invocation — smoke included — also
    appends one record to the run ledger (disable with
    ``REPRO_LEDGER=0``; see :mod:`repro.obs.ledger`), and the report
    section carries full environment provenance (CPU model and count,
    ``REPRO_SIM_OPTS`` state, dirty-worktree flag) so baseline/current
    comparisons can never silently mix optimized and unoptimized runs.

    ``mem=True`` adds a censused run per size (``bytes_per_node`` and
    the subsystem breakdown land in the size entry and the ledger).
    """
    env = environment_provenance()
    results = {str(n): bench_size(n, repeats, mem=mem).to_dict() for n in sizes}
    section = {
        "commit": env.get("commit"),
        "python": env.get("python"),
        "env": env,
        "results": results,
    }

    report: Dict[str, object] = {"scenario": dict(SCENARIO_KWARGS)}
    if out_path is not None and Path(out_path).exists():
        try:
            report = json.loads(Path(out_path).read_text())
        except (OSError, ValueError):
            pass
    report["scenario"] = dict(SCENARIO_KWARGS)
    report["notes"] = {"peak_rss": PEAK_RSS_NOTE}
    report[label] = section

    # Fill events_executed into sections recorded by trees that predate
    # the counter (identical runs -> identical counts).
    for name, other in report.items():
        if not isinstance(other, dict) or "results" not in other:
            continue
        for size, entry in other["results"].items():
            if not entry.get("events_executed") and size in results:
                entry["events_executed"] = results[size]["events_executed"]
                wall = entry.get("wall_s_best") or 0
                if wall:
                    entry["events_per_sec"] = round(
                        entry["events_executed"] / wall, 1
                    )

    if out_path is not None:
        Path(out_path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    metrics, exact = bench_result_sections(results)
    record_run(
        "bench",
        "bench",
        metrics=metrics,
        exact=exact,
        scenario={**SCENARIO_KWARGS, "sizes": list(sizes), "repeats": repeats,
                  "label": label, "mem": bool(mem)},
        seeds=[SCENARIO_KWARGS["seed"]],
    )
    return report


def format_report(report: Dict[str, object]) -> str:
    """Human-readable table, with a speedup column when both the
    ``baseline`` and ``current`` sections are present and a memory
    column when any size carries a census (``--mem``)."""
    baseline = report.get("baseline", {})
    current = report.get("current", {})
    base_results = baseline.get("results", {}) if isinstance(baseline, dict) else {}
    cur_results = current.get("results", {}) if isinstance(current, dict) else {}
    sizes = sorted({*base_results, *cur_results}, key=int)
    show_mem = any(
        cur_results.get(size, {}).get("bytes_per_node") is not None for size in sizes
    )
    header = (
        f"{'N':>6} {'events':>10} {'wall(s)':>9} {'ev/sec':>10} "
        f"{'base(s)':>9} {'speedup':>8}"
    )
    if show_mem:
        header += f" {'B/node':>9} {'rssΔ(kB)':>9}"
    lines = [header]
    for size in sizes:
        cur = cur_results.get(size)
        base = base_results.get(size)
        if cur:
            wall, eps = cur["wall_s_best"], cur["events_per_sec"]
            events = cur["events_executed"]
        else:
            wall = eps = events = float("nan")
        base_wall = base["wall_s_best"] if base else None
        speedup = (
            f"{base_wall / wall:7.2f}x" if base_wall and cur and wall else "      --"
        )
        base_str = f"{base_wall:9.3f}" if base_wall else "       --"
        line = f"{size:>6} {events:>10} {wall:9.3f} {eps:10.1f} {base_str} {speedup}"
        if show_mem:
            bpn = cur.get("bytes_per_node") if cur else None
            delta = cur.get("peak_rss_delta_kb") if cur else None
            line += f" {bpn:9.0f}" if bpn is not None else f" {'--':>9}"
            line += f" {delta:9d}" if delta is not None else f" {'--':>9}"
        lines.append(line)
    return "\n".join(lines)


def validate_sim_opts() -> None:
    """Fail fast on a malformed ``REPRO_SIM_OPTS`` value.

    Raises :class:`~repro.sim.optim.SimOptsError` *before* any
    measurement work, so a typo'd token (``calender``) aborts with a
    clean one-line error instead of either a mid-run traceback or —
    worse — a silently mis-configured A/B comparison.
    """
    sim_opts()


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Benchmark the simulation core (events/sec).",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="single tiny run (CI fast lane); does not write the report",
    )
    parser.add_argument(
        "--sizes", type=str, default=None,
        help=f"comma-separated node counts (default {','.join(map(str, FULL_SIZES))})",
    )
    parser.add_argument(
        "--mem", action="store_true",
        help="also run a censused simulation per size and record "
        f"bytes_per_node (default sizes {','.join(map(str, MEM_SIZES))})",
    )
    parser.add_argument(
        "--paper", action="store_true",
        help=f"paper-scale size matrix {','.join(map(str, PAPER_SIZES))}; "
        "run with REPRO_SIM_OPTS=all,lazylat and a dedicated --label "
        "(e.g. paper-lazylat) so 'current' keeps its configuration",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="runs per size, best kept (default 3)"
    )
    parser.add_argument(
        "--label", type=str, default="current",
        help="report section to write (default 'current'; use 'baseline' "
        "to re-baseline)",
    )
    parser.add_argument(
        "--out", type=str, default=DEFAULT_OUT,
        help=f"report path (default {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)

    try:
        validate_sim_opts()
    except SimOptsError as exc:
        print(f"repro bench: {exc}", file=sys.stderr)
        return 2

    if args.smoke:
        sizes: Sequence[int] = SMOKE_SIZES
        repeats = 1
        out_path = None
    else:
        if args.paper:
            default_sizes: Sequence[int] = PAPER_SIZES
        elif args.mem:
            default_sizes = MEM_SIZES
        else:
            default_sizes = FULL_SIZES
        sizes = (
            tuple(int(s) for s in args.sizes.split(","))
            if args.sizes
            else default_sizes
        )
        repeats = args.repeats
        out_path = args.out

    report = run_bench(
        sizes, repeats, label=args.label, out_path=out_path, mem=args.mem
    )
    print(format_report(report))
    if out_path is not None:
        print(f"\nwrote {out_path} (section: {args.label})")
    return 0
