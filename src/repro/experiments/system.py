"""Fully wired GoCast deployments for experiments.

:class:`GoCastSystem` builds the paper's simulation setup: synthetic
King latencies, one :class:`~repro.core.node.GoCastNode` per participant
with seeded partial views, ``C_degree / 2`` random initial links per
node ("After the initialization, the average node degree is C_degree and
all neighbors are chosen at random"), and one randomly designated tree
root.  It exposes the phases of an experiment — adaptation, failure
injection, workload — as composable method calls.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set

from repro.analysis.graphstats import OverlaySnapshot
from repro.core.config import GoCastConfig
from repro.core.messages import RANDOM
from repro.core.node import GoCastNode
from repro.experiments.scenarios import ScenarioConfig
from repro.net.estimation import TriangularEstimator, default_landmarks
from repro.net.king import SyntheticKingModel
from repro.net.latency import LatencyModel
from repro.obs import DISABLED, MetricsRegistry, Observability
from repro.sim.engine import Simulator
from repro.sim.failures import FailureInjector
from repro.sim.rng import RngRegistry
from repro.sim.trace import DeliveryTracer
from repro.sim.transport import Network


class GoCastSystem:
    """A complete simulated GoCast deployment."""

    def __init__(
        self,
        scenario: ScenarioConfig,
        latency: Optional[LatencyModel] = None,
        config: Optional[GoCastConfig] = None,
        config_overrides: Optional[Dict[int, GoCastConfig]] = None,
        obs: Optional[Observability] = None,
    ):
        """``config_overrides`` assigns specific nodes their own config —
        the paper's capacity-aware degrees ("Tuning node degree
        according to node capacity can be accommodated in our
        protocol"): a big node simply runs with larger targets and the
        degree-constrained protocols do the rest."""
        if not scenario.uses_overlay:
            raise ValueError(
                f"GoCastSystem only runs overlay protocols, not {scenario.protocol!r}"
            )
        self.scenario = scenario
        self.rngs = RngRegistry(scenario.seed)
        self.sim = Simulator()
        self.obs = obs if obs is not None else DISABLED
        if self.obs.profiler is not None:
            self.obs.profiler.install(self.sim)
        self.latency = (
            latency
            if latency is not None
            else SyntheticKingModel(
                scenario.n_nodes, n_sites=scenario.n_sites, seed=scenario.seed
            )
        )
        self.network = Network(
            self.sim,
            self.latency,
            loss_rate=scenario.loss_rate,
            rng=self.rngs.stream("net"),
            obs=self.obs,
        )
        self.tracer = DeliveryTracer()
        self.events = MetricsRegistry()
        self.config = config if config is not None else scenario.effective_gocast_config()
        self.config_overrides = config_overrides or {}
        landmarks = default_landmarks(
            scenario.n_nodes, count=scenario.n_landmarks, seed=scenario.seed
        )
        self.estimator = TriangularEstimator(self.latency, landmarks)
        self.nodes: Dict[int, GoCastNode] = {}
        for node_id in range(scenario.n_nodes):
            self.nodes[node_id] = GoCastNode(
                node_id,
                self.sim,
                self.network,
                config=self.config_overrides.get(node_id, self.config),
                rng=self.rngs.node_stream(node_id),
                estimator=self.estimator,
                tracer=self.tracer,
                events=self.events,
                obs=self.obs,
            )
        self.injector = FailureInjector(self.sim, self.network, self.rngs.stream("fail"))
        self.injector.on_node_failed = self._on_node_failed
        self.root_id: Optional[int] = None
        self._bootstrapped = False

    # ------------------------------------------------------------------
    # Setup phases
    # ------------------------------------------------------------------
    def bootstrap(self) -> None:
        """Seed views, create initial random links, designate the root."""
        if self._bootstrapped:
            return
        self._bootstrapped = True
        self._seed_views()
        self._create_initial_links()
        for node in self.nodes.values():
            node.start()
        if self.config.use_tree:
            self.root_id = self.rngs.stream("root").randrange(self.scenario.n_nodes)
            self.nodes[self.root_id].tree.become_root(epoch=0)

    def _seed_views(self) -> None:
        rng = self.rngs.stream("views")
        n = self.scenario.n_nodes
        view_size = min(self.config.membership_max, n - 1)
        population = list(range(n))
        for node_id, node in self.nodes.items():
            picks: Set[int] = set()
            while len(picks) < view_size:
                needed = view_size - len(picks)
                picks.update(
                    p for p in rng.sample(population, min(n, needed + 1)) if p != node_id
                )
            node.view.add_many(picks)

    def _create_initial_links(self) -> None:
        rng = self.rngs.stream("bootstrap-links")
        per_node = self.scenario.initial_links
        if per_node is None:
            per_node = max(1, self.config.c_degree // 2)
        n = self.scenario.n_nodes
        for node_id, node in self.nodes.items():
            attempts = 0
            created = 0
            while created < per_node and attempts < 10 * per_node:
                attempts += 1
                peer = rng.randrange(n)
                if peer == node_id or peer in node.overlay.table:
                    continue
                self.connect_pair(node_id, peer, RANDOM)
                created += 1

    def connect_pair(self, a: int, b: int, kind: str) -> None:
        """Install a symmetric overlay link without the handshake."""
        rtt = self.latency.rtt(a, b)
        self.nodes[a].overlay.force_link(b, kind, rtt)
        self.nodes[b].overlay.force_link(a, kind, rtt)

    # ------------------------------------------------------------------
    # Run phases
    # ------------------------------------------------------------------
    def run_until(self, time: float) -> None:
        self.sim.run_until(time)

    def run_adaptation(self) -> None:
        """Let the maintenance protocols adapt the overlay (Section 3)."""
        self.bootstrap()
        self.run_until(self.scenario.adapt_time)

    def fail_random_fraction(self, time: float, fraction: float) -> List[int]:
        """Schedule the paper's concurrent crash wave; returns victims."""
        victims = self.injector.fail_fraction_at(time, fraction, list(self.nodes))
        if self.scenario.freeze_on_failure:
            self.sim.schedule_at(time, self._freeze_survivors)
        return victims

    def _on_node_failed(self, node_id: int) -> None:
        self.nodes[node_id].stop()

    def _freeze_survivors(self) -> None:
        for node_id, node in self.nodes.items():
            if self.network.is_alive(node_id):
                node.freeze()

    # ------------------------------------------------------------------
    # Workload
    # ------------------------------------------------------------------
    def schedule_workload(self, start: float) -> float:
        """Schedule the scenario's message injections; returns end time."""
        scenario = self.scenario
        rng = self.rngs.stream("workload")
        for i in range(scenario.n_messages):
            at = start + i / scenario.message_rate
            self.sim.schedule_at(at, self._inject_one, rng)
        return start + scenario.n_messages / scenario.message_rate

    def _inject_one(self, rng) -> None:
        live = sorted(self.live_node_ids())
        if not live:
            return
        source = live[rng.randrange(len(live))]
        self.nodes[source].multicast(self.scenario.payload_size)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def live_node_ids(self) -> Set[int]:
        return self.network.alive_nodes()

    def live_nodes(self) -> List[GoCastNode]:
        return [self.nodes[i] for i in sorted(self.live_node_ids())]

    def snapshot(self) -> OverlaySnapshot:
        return OverlaySnapshot(self.live_nodes())

    def mean_tree_depth(self) -> float:
        """Average tree distance-to-root over attached live nodes."""
        dists = [
            node.tree.dist
            for node in self.live_nodes()
            if not math.isinf(node.tree.dist)
        ]
        return sum(dists) / len(dists) if dists else float("inf")
