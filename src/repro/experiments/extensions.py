"""Extension experiments beyond the paper's figures.

* **Footnote 1** — "[low reliability at small fanouts] can be improved
  by combining both push and pull in gossip disseminations": reliability
  of push-only vs push-pull gossip across small fanouts, plus the idle
  overhead both incur (the footnote's stated challenge).
* **Constant per-node overhead** — Section 2's scalability claim:
  "Regardless of the size of the system, [GoCast] incurs a constant low
  overhead on each node.  ...the maintenance cost and gossip overhead at
  a node is independent of the size of the system."  We measure control
  messages per node per second across system sizes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.experiments.report import format_table
from repro.experiments.scenarios import ScenarioConfig, scale_preset
from repro.experiments.system import GoCastSystem
from repro.net.king import SyntheticKingModel
from repro.protocols.push_gossip import PushGossipNode
from repro.protocols.pushpull_gossip import PushPullGossipNode
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import DeliveryTracer
from repro.sim.transport import Network


# ----------------------------------------------------------------------
# Footnote 1: push vs push-pull
# ----------------------------------------------------------------------
@dataclasses.dataclass
class PushPullResult:
    n_nodes: int
    fanouts: List[int]
    #: (protocol, fanout) -> reliability
    reliability: Dict[tuple, float]
    #: protocol -> messages sent during a 30 s idle tail
    idle_traffic: Dict[str, int]

    def format_table(self) -> str:
        rows = [
            (
                f,
                self.reliability[("push", f)],
                self.reliability[("push-pull", f)],
            )
            for f in self.fanouts
        ]
        table = format_table(["fanout", "push reliability", "push-pull reliability"], rows)
        return (
            f"Footnote 1 — push vs push-pull gossip ({self.n_nodes} nodes)\n"
            f"{table}\nidle-tail traffic: push={self.idle_traffic['push']}, "
            f"push-pull={self.idle_traffic['push-pull']} messages"
        )


def run_pushpull(
    fanouts: Sequence[int] = (2, 3, 5),
    n_nodes: Optional[int] = None,
    n_messages: int = 20,
    seed: int = 2,
) -> PushPullResult:
    default_n, _adapt, _msgs = scale_preset()
    n_nodes = default_n if n_nodes is None else n_nodes

    reliability: Dict[tuple, float] = {}
    idle_traffic: Dict[str, int] = {}
    for label, cls in (("push", PushGossipNode), ("push-pull", PushPullGossipNode)):
        for fanout in fanouts:
            rngs = RngRegistry(seed)
            sim = Simulator()
            network = Network(
                sim, SyntheticKingModel(n_nodes, seed=seed), rng=rngs.stream("net")
            )
            tracer = DeliveryTracer()
            membership = list(range(n_nodes))
            nodes = {
                i: cls(
                    i, sim, network, membership, fanout=fanout,
                    rng=rngs.node_stream(i), tracer=tracer,
                )
                for i in membership
            }
            for node in nodes.values():
                node.start()
            workload_rng = rngs.stream("workload")

            def inject():
                nodes[workload_rng.randrange(n_nodes)].multicast()

            for i in range(n_messages):
                sim.schedule_at(0.1 + i / 100.0, inject)
            sim.run_until(40.0)
            reliability[(label, fanout)] = tracer.reliability(membership)
            # Idle tail: the footnote's overhead concern.
            before = network.messages_sent
            sim.run_until(70.0)
            idle_traffic[label] = network.messages_sent - before
    return PushPullResult(
        n_nodes=n_nodes,
        fanouts=list(fanouts),
        reliability=reliability,
        idle_traffic=idle_traffic,
    )


# ----------------------------------------------------------------------
# Constant per-node overhead vs system size
# ----------------------------------------------------------------------
@dataclasses.dataclass
class OverheadResult:
    sizes: List[int]
    #: size -> control messages per node per second (steady state)
    control_rate: Dict[int, float]
    #: size -> control bytes per node per second (steady state)
    control_bytes_rate: Dict[int, float]

    def max_growth(self) -> float:
        """Largest-over-smallest per-node control rate (flat => ~1)."""
        rates = [self.control_rate[s] for s in self.sizes]
        return max(rates) / min(rates) if min(rates) > 0 else float("inf")

    def format_table(self) -> str:
        rows = [
            (s, self.control_rate[s], self.control_bytes_rate[s])
            for s in self.sizes
        ]
        return (
            "Per-node control overhead vs system size (paper: constant)\n"
            + format_table(
                ["nodes", "ctrl msgs/node/s", "ctrl bytes/node/s"], rows
            )
            + f"\nmax/min ratio across sizes: {self.max_growth():.2f}"
        )


def run_overhead(
    sizes: Sequence[int] = (32, 64, 128),
    adapt_time: float = 40.0,
    measure_time: float = 20.0,
    seed: int = 1,
) -> OverheadResult:
    control_rate: Dict[int, float] = {}
    control_bytes_rate: Dict[int, float] = {}
    for n in sizes:
        scenario = ScenarioConfig(
            protocol="gocast", n_nodes=n, adapt_time=adapt_time, seed=seed
        )
        system = GoCastSystem(scenario)
        system.run_adaptation()
        start_msgs = system.network.messages_sent
        start_bytes = sum(system.network.bytes_by_type.values())
        system.run_until(adapt_time + measure_time)
        sent = system.network.messages_sent - start_msgs
        sent_bytes = sum(system.network.bytes_by_type.values()) - start_bytes
        control_rate[n] = sent / (n * measure_time)
        control_bytes_rate[n] = sent_bytes / (n * measure_time)
    return OverheadResult(
        sizes=list(sizes),
        control_rate=control_rate,
        control_bytes_rate=control_bytes_rate,
    )
