"""Figure 6: overlay resilience vs the number of random links.

For each target random degree (paper: 0, 1, 2, 4 with total degree 6)
the overlay adapts, then a random fraction of nodes (5%–50%) is removed
from the structural snapshot and we report ``q``: the fraction of live
nodes inside the largest connected component.

Paper checkpoints: with C_rand = 0 the overlay is partitioned *before
any failure* (nearby links never bridge remote clusters); with just one
random link per node it stays connected through 25% concurrent
failures; one random link is nearly as good as four.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import GoCastConfig
from repro.experiments.batch import parallel_map
from repro.experiments.report import format_table
from repro.experiments.scenarios import ScenarioConfig, scale_preset
from repro.experiments.system import GoCastSystem
from repro.sim.rng import RngRegistry

FAIL_FRACTIONS = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50)


@dataclasses.dataclass
class Fig6Result:
    n_nodes: int
    fail_fractions: List[float]
    #: c_rand -> q values aligned with fail_fractions (mean over trials)
    largest_component: Dict[int, List[float]]

    def q(self, c_rand: int, fail_fraction: float) -> float:
        idx = self.fail_fractions.index(fail_fraction)
        return self.largest_component[c_rand][idx]

    def ledger_metrics(self):
        """(perf metrics, exact counters) for the run ledger: every
        (C_rand, fail%) cell's deterministic q value."""
        exact = {
            f"c{c}.q{int(frac * 100)}": series[i]
            for c, series in sorted(self.largest_component.items())
            for i, frac in enumerate(self.fail_fractions)
        }
        return {}, exact

    def format_table(self) -> str:
        headers = ["fail %"] + [f"C_rand={c}" for c in sorted(self.largest_component)]
        rows = []
        for i, frac in enumerate(self.fail_fractions):
            rows.append(
                [f"{frac:.0%}"]
                + [self.largest_component[c][i] for c in sorted(self.largest_component)]
            )
        return (
            f"Figure 6 — largest live component fraction q ({self.n_nodes} nodes, "
            f"degree 6)\n" + format_table(headers, rows)
        )


#: Worker payload: (scenario, c_rand, fail_fractions, trials).
_CellPayload = Tuple[ScenarioConfig, int, Tuple[float, ...], int]


def _run_fig6_cell(payload: _CellPayload) -> Tuple[int, List[float]]:
    """Top-level (picklable) worker: adapt one overlay, sweep failures.

    Per-trial failure selections draw from RngRegistry streams named by
    (c_rand, fraction, trial), so every cell of the sweep has its own
    independent deterministic stream — no collisions across workers and
    no dependence on sweep order.
    """
    scenario, c_rand, fail_fractions, trials = payload
    system = GoCastSystem(scenario)
    system.run_adaptation()
    snapshot = system.snapshot()
    rngs = RngRegistry(scenario.seed)
    series = []
    for frac in fail_fractions:
        qs = [
            snapshot.largest_component_after_failures(
                frac, rng=rngs.stream(f"fig6/c{c_rand}/f{frac:g}/t{trial}")
            )
            for trial in range(trials)
        ]
        series.append(sum(qs) / len(qs))
    return c_rand, series


def run(
    n_nodes: Optional[int] = None,
    adapt_time: Optional[float] = None,
    c_rand_values: Sequence[int] = (0, 1, 2, 4),
    fail_fractions: Sequence[float] = FAIL_FRACTIONS,
    trials: int = 3,
    total_degree: int = 6,
    seed: int = 1,
    workers: int = 1,
) -> Fig6Result:
    """Figure 6, with the per-``c_rand`` adaptations fanned over workers."""
    default_n, default_adapt, _ = scale_preset()
    n_nodes = default_n if n_nodes is None else n_nodes
    adapt_time = default_adapt if adapt_time is None else adapt_time

    payloads: List[_CellPayload] = []
    for c_rand in c_rand_values:
        config = GoCastConfig(c_rand=c_rand, c_near=total_degree - c_rand)
        scenario = ScenarioConfig(
            protocol="gocast",
            n_nodes=n_nodes,
            adapt_time=adapt_time,
            gocast=config,
            seed=seed,
        )
        payloads.append((scenario, c_rand, tuple(fail_fractions), trials))
    largest = dict(parallel_map(_run_fig6_cell, payloads, workers))
    return Fig6Result(
        n_nodes=n_nodes,
        fail_fractions=list(fail_fractions),
        largest_component=largest,
    )
