"""Extension: sustained churn (continuous joins and leaves).

The paper stresses GoCast with a one-shot crash wave; long-running
deployments instead see *continuous* membership churn.  This experiment
runs the full join protocol (Section 2.2.1) and graceful leaves at a
configurable rate while a workload flows, and reports the two things a
churned deployment cares about:

* delivery reliability to members that were present the whole time, and
* overlay health at the end (connectivity, degree concentration).

GoCast's self-healing (deficit repair, tree re-parenting, partial-view
refresh) must keep both intact at any churn rate the maintenance period
can keep up with.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.core.node import GoCastNode
from repro.experiments.report import format_table
from repro.experiments.scenarios import ScenarioConfig, scale_preset
from repro.experiments.system import GoCastSystem
from repro.net.king import SyntheticKingModel
from repro.sim.failures import ChurnProcess


@dataclasses.dataclass
class ChurnOutcome:
    churn_interval: float
    events: int
    veteran_reliability: float
    veteran_mean_delay: float
    connected: bool
    mean_degree: float


@dataclasses.dataclass
class ChurnResult:
    n_nodes: int
    outcomes: List[ChurnOutcome]

    def format_table(self) -> str:
        rows = [
            (
                o.churn_interval,
                o.events,
                o.veteran_reliability,
                o.veteran_mean_delay,
                o.connected,
                o.mean_degree,
            )
            for o in self.outcomes
        ]
        return (
            f"Churn extension — continuous join/leave ({self.n_nodes} nodes)\n"
            + format_table(
                [
                    "leave+join every (s)",
                    "events",
                    "veteran reliability",
                    "veteran mean delay (s)",
                    "connected",
                    "mean degree",
                ],
                rows,
            )
        )


def run(
    churn_intervals: Sequence[float] = (5.0, 2.0, 1.0),
    n_nodes: Optional[int] = None,
    adapt_time: Optional[float] = None,
    workload_time: float = 20.0,
    message_rate: float = 10.0,
    seed: int = 1,
) -> ChurnResult:
    default_n, default_adapt, _ = scale_preset()
    n_nodes = default_n if n_nodes is None else n_nodes
    adapt_time = default_adapt if adapt_time is None else adapt_time

    outcomes: List[ChurnOutcome] = []
    for interval in churn_intervals:
        outcomes.append(
            _run_one(interval, n_nodes, adapt_time, workload_time, message_rate, seed)
        )
    return ChurnResult(n_nodes=n_nodes, outcomes=outcomes)


def _run_one(
    interval: float,
    n_nodes: int,
    adapt_time: float,
    workload_time: float,
    message_rate: float,
    seed: int,
) -> ChurnOutcome:
    n_messages = max(1, int(workload_time * message_rate))
    scenario = ScenarioConfig(
        protocol="gocast",
        n_nodes=n_nodes,
        adapt_time=adapt_time,
        n_messages=n_messages,
        message_rate=message_rate,
        seed=seed,
    )
    # Reserve id space for joiners.
    latency = SyntheticKingModel(2 * n_nodes, seed=seed)
    system = GoCastSystem(scenario, latency=latency)
    system.run_adaptation()

    next_id = [n_nodes]
    churn_rng = system.rngs.stream("churn")

    def one_leave() -> None:
        live = sorted(system.live_node_ids())
        candidates = [n for n in live if n != system.root_id]
        if candidates:
            system.nodes[candidates[churn_rng.randrange(len(candidates))]].leave()

    def one_join() -> None:
        node_id = next_id[0]
        if node_id >= latency.size:
            return
        node = GoCastNode(
            node_id,
            system.sim,
            system.network,
            config=system.config,
            rng=system.rngs.node_stream(node_id),
            estimator=system.estimator,
            tracer=system.tracer,
            events=system.events,
        )
        system.nodes[node_id] = node
        node.start()
        live = sorted(system.live_node_ids() - {node_id})
        node.join(live[churn_rng.randrange(len(live))])
        next_id[0] += 1

    churn = ChurnProcess(system.sim, interval, one_leave, one_join)
    churn.start()
    end = system.schedule_workload(system.sim.now + 0.5)
    system.run_until(end + 20.0)
    churn.stop()
    system.run_until(system.sim.now + 10.0)

    live = sorted(system.live_node_ids())
    veterans = [n for n in live if n < n_nodes]
    snap = system.snapshot()
    return ChurnOutcome(
        churn_interval=interval,
        events=churn.events,
        veteran_reliability=system.tracer.reliability(veterans),
        veteran_mean_delay=system.tracer.mean_delay(veterans),
        connected=snap.is_connected(),
        mean_degree=snap.mean_degree(),
    )
