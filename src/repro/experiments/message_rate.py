"""Extension: sensitivity to the multicast message rate.

The paper evaluates one rate (100 messages/s).  Because GoCast's tree
forwards messages without stop and gossips are only a safety net, its
delivery delay should be *flat* in the message rate, while its gossip
overhead amortizes (one summary can carry many IDs).  This experiment
sweeps the rate and reports mean delay, redundancy, and gossip traffic
per multicast message.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.experiments.report import format_table
from repro.experiments.scenarios import ScenarioConfig, scale_preset
from repro.experiments.system import GoCastSystem


@dataclasses.dataclass
class RateOutcome:
    rate: float
    mean_delay: float
    reliability: float
    receptions_per_delivery: float
    gossips_per_message: float


@dataclasses.dataclass
class RateResult:
    n_nodes: int
    outcomes: List[RateOutcome]

    def delay_spread(self) -> float:
        delays = [o.mean_delay for o in self.outcomes]
        return max(delays) / min(delays)

    def format_table(self) -> str:
        rows = [
            (o.rate, o.mean_delay, o.reliability, o.receptions_per_delivery,
             o.gossips_per_message)
            for o in self.outcomes
        ]
        return (
            f"Message-rate extension ({self.n_nodes} nodes)\n"
            + format_table(
                ["msgs/s", "mean delay (s)", "reliability",
                 "receptions/delivery", "gossips/message"],
                rows,
            )
            + f"\nmax/min mean-delay ratio across rates: {self.delay_spread():.2f}"
        )


def run(
    rates: Sequence[float] = (5.0, 25.0, 100.0),
    n_nodes: Optional[int] = None,
    adapt_time: Optional[float] = None,
    workload_time: float = 4.0,
    seed: int = 1,
) -> RateResult:
    default_n, default_adapt, _ = scale_preset()
    n_nodes = default_n if n_nodes is None else n_nodes
    adapt_time = default_adapt if adapt_time is None else adapt_time

    outcomes: List[RateOutcome] = []
    for rate in rates:
        n_messages = max(1, int(rate * workload_time))
        scenario = ScenarioConfig(
            protocol="gocast",
            n_nodes=n_nodes,
            adapt_time=adapt_time,
            n_messages=n_messages,
            message_rate=rate,
            seed=seed,
        )
        system = GoCastSystem(scenario)
        system.run_adaptation()
        gossips_before = system.network.sent_by_type.get("Gossip", 0)
        end = system.schedule_workload(system.sim.now + 0.1)
        system.run_until(end + scenario.drain_time)
        gossips = system.network.sent_by_type.get("Gossip", 0) - gossips_before
        receivers = sorted(system.live_node_ids())
        outcomes.append(
            RateOutcome(
                rate=rate,
                mean_delay=system.tracer.mean_delay(receivers),
                reliability=system.tracer.reliability(receivers),
                receptions_per_delivery=system.tracer.receptions_per_delivery(),
                gossips_per_message=gossips / n_messages,
            )
        )
    return RateResult(n_nodes=n_nodes, outcomes=outcomes)
