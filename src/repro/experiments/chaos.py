"""Chaos experiment harness: scenarios + invariants over a GoCast system.

Binds the protocol-agnostic :class:`~repro.sim.scenarios.ScenarioEngine`
to a :class:`~repro.experiments.system.GoCastSystem` (joins, graceful
leaves, restart-with-state-loss all use the real protocol paths) and
the :class:`~repro.sim.invariants.InvariantChecker`, and packages the
whole thing as :func:`run_chaos` — the engine behind ``repro chaos run``
and the scenario regression suite (``tests/scenarios``).

Delivery accounting under churn follows the churn extension experiment:
reliability is measured over *veterans* — nodes present from the start
whose membership was never disturbed (no crash, leave, or restart) —
because only they are accountable for every message.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, Optional, Set

from repro.core.node import GoCastNode
from repro.experiments.scenarios import ScenarioConfig
from repro.experiments.system import GoCastSystem
from repro.net.king import SyntheticKingModel
from repro.obs import Observability
from repro.obs.ledger import record_run
from repro.sim.invariants import InvariantChecker, format_invariant_report
from repro.sim.scenarios import Scenario, ScenarioEngine, resolve_scenario


class GoCastChaosHarness:
    """The node-lifecycle callbacks a :class:`ScenarioEngine` needs,
    implemented against a :class:`GoCastSystem`.

    New node ids are allocated past the initial population, so the
    system's latency model must have been built with headroom
    (``SyntheticKingModel(2 * n_nodes)``) when the scenario creates
    nodes — :func:`chaos_latency_model` does this.
    """

    def __init__(self, system: GoCastSystem, checker: Optional[InvariantChecker] = None):
        self.system = system
        self.checker = checker
        self._next_id = system.scenario.n_nodes
        self._id_capacity = getattr(system.latency, "size", system.scenario.n_nodes)

    # -- ScenarioEngine callbacks --------------------------------------
    def spawn_node(self) -> Optional[int]:
        """Create, start and join one brand-new node (full Section 2.2.1
        join protocol); returns its id, or None when id headroom or the
        bootstrap population is exhausted."""
        system = self.system
        if self._next_id >= self._id_capacity:
            return None
        node_id = self._next_id
        live = sorted(system.live_node_ids())
        if not live:
            return None
        self._next_id += 1
        node = GoCastNode(
            node_id,
            system.sim,
            system.network,
            config=system.config,
            rng=system.rngs.node_stream(node_id),
            estimator=system.estimator,
            tracer=system.tracer,
            events=system.events,
            obs=system.obs,
        )
        system.nodes[node_id] = node
        node.start()
        bootstrap = live[system.rngs.stream("chaos-bootstrap").randrange(len(live))]
        node.join(bootstrap)
        if system.obs.enabled:
            system.obs.tracer.emit(system.sim.now, "node.join", node=node_id, bootstrap=bootstrap)
        if self.checker is not None:
            self.checker.watch_deliveries(node_id)
        return node_id

    def leave_node(self, node_id: int) -> None:
        self.system.nodes[node_id].leave()

    def restart_node(self, node_id: int) -> None:
        """Rebuild an already-crashed node with empty state and rejoin.

        Models a machine reboot: the network endpoint is replaced, all
        protocol state (view, buffer, overlay, tree) is lost, and the
        node re-enters through the normal join protocol.
        """
        system = self.system
        live = sorted(system.live_node_ids() - {node_id})
        if not live:
            return
        system.network.remove(node_id)
        system.injector.forget_failed(node_id)
        node = GoCastNode(
            node_id,
            system.sim,
            system.network,
            config=system.config,
            rng=system.rngs.node_stream(node_id),
            estimator=system.estimator,
            tracer=system.tracer,
            events=system.events,
            obs=system.obs,
        )
        system.nodes[node_id] = node
        node.start()
        bootstrap = live[system.rngs.stream("chaos-bootstrap").randrange(len(live))]
        node.join(bootstrap)
        if self.checker is not None:
            # The fresh buffer may legitimately re-receive old messages,
            # and stale ex-neighbors need a silence timeout to notice
            # the amnesia: reset the audit and exempt the node briefly.
            self.checker.forget_node(node_id)
            self.checker.exempt(
                node_id,
                system.sim.now + system.config.neighbor_timeout + 5.0,
            )
            self.checker.watch_deliveries(node_id)


def chaos_latency_model(scenario: ScenarioConfig, chaos: Scenario):
    """A latency model with id headroom for scenario-created nodes."""
    n = scenario.n_nodes
    size = 2 * n if chaos.needs_joins else n
    return SyntheticKingModel(size, n_sites=scenario.n_sites, seed=scenario.seed)


def build_chaos_engine(
    system: GoCastSystem,
    chaos: Scenario,
    checker: Optional[InvariantChecker] = None,
) -> ScenarioEngine:
    """Wire a :class:`ScenarioEngine` to a system (does not arm it).

    Victim selection and Poisson gaps draw from the dedicated ``chaos``
    RNG stream, so an armed engine never perturbs protocol draws.
    """
    harness = GoCastChaosHarness(system, checker=checker)
    return ScenarioEngine(
        system.sim,
        system.network,
        system.injector,
        chaos,
        rng=system.rngs.stream("chaos"),
        obs=system.obs,
        spawn_node=harness.spawn_node,
        leave_node=harness.leave_node,
        restart_node=harness.restart_node,
        protected_ids=() if system.root_id is None else (system.root_id,),
    )


@dataclasses.dataclass
class ChaosReport:
    """Outcome of one chaos run: delivery over veterans + invariants."""

    scenario_name: str
    chaos: Dict[str, Any]
    n_nodes: int
    seed: int
    end_time: float
    live: int
    veterans: int
    n_messages: int
    reliability: float
    mean_delay: float
    max_delay: float
    undelivered_pairs: int
    faults: Dict[str, int]
    invariants: Dict[str, Any]

    @property
    def total_violations(self) -> int:
        return self.invariants["total_violations"]

    def to_json_dict(self) -> Dict[str, Any]:
        out = dataclasses.asdict(self)
        # NaN is not JSON; an empty delay set reports null.
        for field in ("reliability", "mean_delay", "max_delay"):
            value = out[field]
            if value != value:  # NaN
                out[field] = None
        return out

    def format_report(self) -> str:
        lines = [
            f"== chaos {self.scenario_name}: n={self.n_nodes} seed={self.seed} ==",
            f"live={self.live} veterans={self.veterans} "
            f"messages={self.n_messages} end_t={self.end_time:g}s",
            f"veteran reliability={self.reliability:.6f} "
            f"mean_delay={self.mean_delay:.4f}s max={self.max_delay:.4f}s "
            f"undelivered={self.undelivered_pairs}",
            "faults: "
            + " ".join(f"{k}={v}" for k, v in self.faults.items() if v),
        ]
        lines.append(format_invariant_report(self.invariants))
        return "\n".join(lines)


def run_chaos(
    chaos,
    n_nodes: int = 64,
    seed: int = 1,
    adapt_time: float = 20.0,
    n_messages: int = 20,
    drain_time: float = 20.0,
    invariant_period: float = 0.5,
    hard_fail: bool = False,
    obs: Optional[Observability] = None,
    checker_overrides: Optional[Dict[str, Any]] = None,
) -> ChaosReport:
    """Run one chaos scenario end to end with invariant checking.

    ``chaos`` is a :class:`Scenario`, a canned name, or a scenario dict.
    The timeline: ``adapt_time`` of undisturbed overlay adaptation, then
    the scenario and the message workload start together (messages are
    spread over the scenario's injection window), then ``drain_time`` of
    quiescence for repair and stragglers before the final
    eventual-delivery check over the surviving veterans.
    """
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    chaos = resolve_scenario(chaos)
    workload_window = max(chaos.duration, 1.0)
    scenario = ScenarioConfig(
        protocol="gocast",
        n_nodes=n_nodes,
        seed=seed,
        adapt_time=adapt_time,
        n_messages=n_messages,
        message_rate=n_messages / workload_window,
        drain_time=drain_time,
    )
    system = GoCastSystem(
        scenario, latency=chaos_latency_model(scenario, chaos), obs=obs
    )
    checker = InvariantChecker(
        system.nodes,
        system.network,
        obs=system.obs,
        period=invariant_period,
        hard_fail=hard_fail,
        config=system.config,
        **(checker_overrides or {}),
    )
    checker.start(system.sim)
    checker.watch_deliveries()
    engine = build_chaos_engine(system, chaos, checker=checker)

    system.run_adaptation()
    engine.protected.update(() if system.root_id is None else (system.root_id,))
    chaos_end = engine.arm(start=scenario.adapt_time)
    workload_start = scenario.adapt_time + 0.1
    workload_end = system.schedule_workload(workload_start)
    system.run_until(max(workload_end, chaos_end) + drain_time)
    checker.stop()

    initial = range(scenario.n_nodes)
    veterans: Set[int] = engine.veteran_ids(initial) & system.live_node_ids()
    checker.final_delivery_check(system.tracer, veterans)
    receivers = sorted(veterans)
    report = ChaosReport(
        scenario_name=chaos.name,
        chaos=chaos.to_dict(),
        n_nodes=n_nodes,
        seed=seed,
        end_time=system.sim.now,
        live=len(system.live_node_ids()),
        veterans=len(receivers),
        n_messages=system.tracer.n_messages,
        reliability=system.tracer.reliability(receivers),
        mean_delay=system.tracer.mean_delay(receivers),
        max_delay=system.tracer.max_delay(receivers),
        undelivered_pairs=system.tracer.undelivered_pairs(receivers),
        faults=engine.summary(),
        invariants=checker.report(),
    )
    _record_chaos_run(
        report,
        wall_s=time.perf_counter() - wall0,
        cpu_s=time.process_time() - cpu0,
        events_executed=system.sim.events_executed,
    )
    return report


def _record_chaos_run(
    report: ChaosReport, wall_s: float, cpu_s: float, events_executed: int
) -> None:
    """Append one run-ledger record for a finished chaos run.

    Wall/CPU time are measured here rather than stored on the report:
    :meth:`ChaosReport.to_json_dict` is pinned wholesale by the canned
    scenario goldens, so the report must stay purely deterministic.
    """
    metrics = {
        "wall_s": wall_s,
        "cpu_s": cpu_s,
        "mean_delay": report.mean_delay,
        "max_delay": report.max_delay,
    }
    if wall_s > 0 and events_executed:
        metrics["events_per_sec"] = events_executed / wall_s
    exact: Dict[str, Any] = {
        "events_executed": events_executed,
        "n_messages": report.n_messages,
        "live": report.live,
        "veterans": report.veterans,
        "reliability": report.reliability,
        "undelivered_pairs": report.undelivered_pairs,
        "violations_total": report.total_violations,
    }
    for kind, count in report.faults.items():
        exact[f"faults.{kind}"] = count
    for name, count in report.invariants.get("counts", {}).items():
        exact[f"violations.{name}"] = count
    record_run(
        "chaos",
        f"chaos:{report.scenario_name}",
        metrics=metrics,
        exact=exact,
        scenario={
            "scenario": report.scenario_name,
            "n_nodes": report.n_nodes,
            "end_time": report.end_time,
            **{k: v for k, v in report.chaos.items() if not isinstance(v, (list, dict))},
        },
        seeds=[report.seed],
    )
