"""Figure 4: GoCast delay CDFs at two system sizes, 0% and 20% failures.

Paper: 1,024 vs 8,192 nodes.  With no failures the curves nearly
coincide (0.33 s vs 0.42 s to reach everyone); with 20% failures the
larger system's tail stretches (~60% longer worst-case delay) because
the tree breaks into more fragments bridged by slow gossip.  The
moderate growth under an 8x size increase is the paper's scalability
argument.  We run a size pair scaled to the selected preset (the full
pair via ``REPRO_SCALE=full``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.experiments.batch import BatchResult, run_batch
from repro.experiments.report import ascii_cdf, cdf_points, format_table
from repro.experiments.scenarios import ScenarioConfig, scale_preset

COVERAGES = (0.50, 0.90, 0.99, 0.999)


@dataclasses.dataclass
class Fig4Result:
    sizes: Tuple[int, int]
    #: results[(n_nodes, fail_fraction)] -> pooled batch aggregate
    results: Dict[Tuple[int, float], BatchResult]

    def tail_stretch(self, fail_fraction: float) -> float:
        """Large-system p99 delay relative to the small system's."""
        small = self.results[(self.sizes[0], fail_fraction)].p99_delay
        large = self.results[(self.sizes[1], fail_fraction)].p99_delay
        return large / small

    def ledger_metrics(self):
        """(perf metrics, exact counters) for the run ledger."""
        metrics, exact = {}, {}
        for (n, fail), res in sorted(self.results.items()):
            cell = f"n{n}.fail{int(fail * 100)}"
            metrics[f"{cell}.mean_delay"] = res.mean_delay
            metrics[f"{cell}.p99_delay"] = res.p99_delay
            exact[f"{cell}.reliability"] = res.reliability
            exact[f"{cell}.delivered_pairs"] = int(res.delays.size)
            exact[f"{cell}.events_executed"] = res.events_executed
        return metrics, exact

    def format_table(self) -> str:
        headers = ["nodes", "fail", "mean", "p90", "p99", "max", "reliability"] + [
            f"cdf@{c:g}" for c in COVERAGES
        ]
        rows = []
        for (n, fail), res in sorted(self.results.items(), key=lambda kv: (kv[0][1], kv[0][0])):
            rows.append(
                [n, f"{fail:.0%}", res.mean_delay, res.p90_delay, res.p99_delay,
                 res.max_delay, res.reliability]
                + cdf_points(res.cdf_x, res.cdf_y, COVERAGES)
            )
        curves = {
            f"n{n}-fail{int(fail * 100)}": (res.cdf_x, res.cdf_y)
            for (n, fail), res in sorted(self.results.items())
        }
        return (
            "Figure 4 — GoCast scalability (delays in seconds)\n"
            + format_table(headers, rows)
            + "\n"
            + ascii_cdf(curves)
            + f"\np99 stretch {self.sizes[1]}/{self.sizes[0]} nodes: "
            f"no-fail {self.tail_stretch(0.0):.2f}x, "
            f"20%-fail {self.tail_stretch(0.2):.2f}x"
        )


def run(
    small_n: Optional[int] = None,
    large_n: Optional[int] = None,
    adapt_time: Optional[float] = None,
    n_messages: Optional[int] = None,
    seed: int = 1,
    trials: int = 1,
    workers: int = 1,
) -> Fig4Result:
    """Figure 4 via the batch API: each (size, fail) cell pools ``trials`` runs."""
    default_n, default_adapt, default_msgs = scale_preset()
    small_n = default_n if small_n is None else small_n
    large_n = 4 * small_n if large_n is None else large_n
    adapt_time = default_adapt if adapt_time is None else adapt_time
    n_messages = default_msgs if n_messages is None else n_messages

    results: Dict[Tuple[int, float], BatchResult] = {}
    for n in (small_n, large_n):
        for fail in (0.0, 0.2):
            scenario = ScenarioConfig(
                protocol="gocast",
                n_nodes=n,
                adapt_time=adapt_time,
                n_messages=n_messages,
                fail_fraction=fail,
                seed=seed,
            )
            results[(n, fail)] = run_batch(
                scenario, n_trials=trials, workers=workers, root_seed=seed
            )
    return Fig4Result(sizes=(small_n, large_n), results=results)
