"""GoCast reproduction: gossip-enhanced overlay multicast (DSN 2005).

Public API layers:

* ``repro.core`` — the GoCast protocol (:class:`~repro.core.GoCastNode`,
  :class:`~repro.core.GoCastConfig`).
* ``repro.sim`` — the discrete-event substrate (engine, transport,
  failures, tracing).
* ``repro.net`` — latency models, the synthetic King dataset, the AS
  topology, and distance estimation.
* ``repro.protocols`` — the baselines the paper compares against.
* ``repro.analysis`` — reliability math, overlay snapshots, link stress.
* ``repro.experiments`` — one module per paper table/figure.

Quickstart::

    from repro.experiments import ScenarioConfig, run_delay_experiment

    scenario = ScenarioConfig(protocol="gocast", n_nodes=128,
                              adapt_time=60.0, n_messages=50)
    result = run_delay_experiment(scenario)
    print(result.summary_row())
"""

from repro.core import GoCastConfig, GoCastNode, MessageId
from repro.experiments import (
    DelayResult,
    GoCastSystem,
    ScenarioConfig,
    run_delay_experiment,
)
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "DelayResult",
    "GoCastConfig",
    "GoCastNode",
    "GoCastSystem",
    "MessageId",
    "ScenarioConfig",
    "Simulator",
    "run_delay_experiment",
    "__version__",
]
