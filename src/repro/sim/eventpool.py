"""Freelist pooling for fire-and-forget event handles.

Every network send schedules a delivery callback, so a busy simulation
allocates (and garbage-collects) hundreds of thousands of
:class:`~repro.sim.engine.EventHandle` objects whose handles nobody ever
looks at — the transport discards the return value of ``schedule``.
:class:`EventPool` recycles those handles through a bounded freelist.

Safety rule: a pooled handle may only back an *anonymous* event — one
whose handle is never returned to a caller (see
:meth:`~repro.sim.engine.Simulator.schedule_anon`).  Because no caller
holds a reference, no caller can cancel a recycled handle and
accidentally kill the unrelated event that reused it.  The engine
releases a handle back to the pool only after stripping its callback
and arguments, so reuse can never resurrect a previous occupant's
callback either (tested in ``tests/sim/test_eventpool.py``).
"""

from __future__ import annotations

from typing import Any, Callable, List


class EventPool:
    """Bounded freelist of engine-owned event handles."""

    __slots__ = ("_factory", "_free", "max_size", "created", "reused")

    def __init__(self, factory: Callable[..., Any], max_size: int = 4096):
        """``factory(time, seq, callback, args)`` builds a fresh handle
        (the engine passes its ``EventHandle`` class; taking it as a
        parameter avoids a circular import)."""
        self._factory = factory
        self._free: List[Any] = []
        self.max_size = max_size
        self.created = 0
        self.reused = 0

    def __len__(self) -> int:
        return len(self._free)

    def acquire(self, time: float, seq: int, callback, args: tuple):
        """A handle ready to schedule: recycled if possible, else fresh."""
        free = self._free
        if free:
            handle = free.pop()
            handle.time = time
            handle.seq = seq
            handle.callback = callback
            handle.args = args
            handle.cancelled = False
            self.reused += 1
            return handle
        handle = self._factory(time, seq, callback, args)
        handle.pooled = True
        self.created += 1
        return handle

    def release(self, handle) -> None:
        """Return a consumed handle; its payload is dropped immediately
        so a recycled handle starts from a blank slate."""
        handle.callback = None
        handle.args = ()
        handle.cancelled = False
        if len(self._free) < self.max_size:
            self._free.append(handle)
