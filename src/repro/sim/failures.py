"""Failure and churn injection.

The paper's stress tests crash a uniformly random fraction of nodes at a
single instant ("20% of nodes fail concurrently at simulated time 500
seconds") with *no subsequent repair*, isolating the dissemination
protocol's inherent resilience.  :class:`FailureInjector` reproduces
that, plus link failures and gradual churn for the extension scenarios.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.sim.engine import Simulator
from repro.sim.transport import Network


class FailureInjector:
    """Schedules crash-stop node failures and link failures."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        rng: Optional[random.Random] = None,
        obs=None,
    ):
        self.sim = sim
        self.network = network
        self.obs = obs if obs is not None else network.obs
        self._rng = rng if rng is not None else random.Random(0)
        self.failed_nodes: List[int] = []
        self._failed_set: Set[int] = set()
        #: Nodes already chosen by a pending ``fail_*_at`` wave, so
        #: composed scenarios cannot double-schedule a victim.
        self._scheduled: Set[int] = set()
        #: Kill accounting: scenarios compose, so a victim may already be
        #: dead when its wave fires; ``kills_executed`` counts real kills.
        self.kills_requested = 0
        self.kills_executed = 0
        self.kills_skipped = 0
        #: Called with each node id at the moment it is killed, so the
        #: experiment harness can stop the node's timers.  Fires exactly
        #: once per node, however many waves claimed it.
        self.on_node_failed: Optional[Callable[[int], None]] = None

    def fail_nodes_at(self, time: float, nodes: Iterable[int]) -> None:
        """Crash the given nodes at absolute simulated ``time``."""
        nodes = list(nodes)
        self._scheduled.update(nodes)
        self.sim.schedule_at(time, self._fail_now, nodes)

    def fail_fraction_at(
        self, time: float, fraction: float, population: Sequence[int]
    ) -> List[int]:
        """Crash a uniformly random ``fraction`` of ``population`` at ``time``.

        Returns the chosen victims (selected immediately, deterministically
        from this injector's RNG) so callers can exclude them from
        delivery accounting.  Nodes already claimed by an earlier wave
        (scheduled or killed) are excluded from the draw, so composed
        scenarios never double-kill; the requested count is still taken
        as a fraction of the full population, capped by what remains.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        candidates = [
            n for n in population if n not in self._scheduled and n not in self._failed_set
        ]
        count = min(int(round(fraction * len(population))), len(candidates))
        victims = self._rng.sample(candidates, count)
        self.fail_nodes_at(time, victims)
        return victims

    def fail_now(self, nodes: Iterable[int]) -> List[int]:
        """Kill nodes immediately; returns those actually killed (alive
        and not previously failed)."""
        self._scheduled.update(nodes)
        return self._fail_now(list(nodes))

    def fail_link_at(self, time: float, a: int, b: int) -> None:
        self.sim.schedule_at(time, self._fail_link_now, a, b)

    def restore_link_at(self, time: float, a: int, b: int) -> None:
        self.sim.schedule_at(time, self._restore_link_now, a, b)

    def _fail_link_now(self, a: int, b: int) -> None:
        self.network.fail_link(a, b)
        if self.obs.enabled:
            self.obs.metrics.inc("link.fail")
            self.obs.tracer.emit(self.sim.now, "link.fail", a=a, b=b)

    def _restore_link_now(self, a: int, b: int) -> None:
        self.network.restore_link(a, b)
        if self.obs.enabled:
            self.obs.metrics.inc("link.restore")
            self.obs.tracer.emit(self.sim.now, "link.restore", a=a, b=b)

    def _fail_now(self, nodes: List[int]) -> List[int]:
        record = self.obs.enabled
        killed: List[int] = []
        self.kills_requested += len(nodes)
        if record:
            self.obs.metrics.inc("failures.requested", amount=len(nodes))
        for node in nodes:
            if node in self._failed_set or not self.network.is_alive(node):
                # Already dead (an earlier wave, a graceful leave, or a
                # direct kill): skip so on_node_failed fires exactly
                # once per node and the obs counters stay honest.
                self.kills_skipped += 1
                if record:
                    self.obs.metrics.inc("failures.skipped")
                continue
            self.network.kill(node)
            self.failed_nodes.append(node)
            self._failed_set.add(node)
            self.kills_executed += 1
            killed.append(node)
            if record:
                self.obs.metrics.inc("node.crash")
                self.obs.metrics.inc("failures.killed")
                self.obs.tracer.emit(self.sim.now, "node.crash", node=node)
            if self.on_node_failed is not None:
                self.on_node_failed(node)
        return killed

    def forget_failed(self, node: int) -> None:
        """Allow a restarted node to be scheduled for failure again."""
        self._failed_set.discard(node)
        self._scheduled.discard(node)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def partition_now(
        self, groups: Sequence[Sequence[int]]
    ) -> List[Tuple[int, int]]:
        """Fail every link that crosses the given groups; returns the
        failed link keys so :meth:`heal_partition_now` can restore
        exactly this cut (and nothing more)."""
        cut: List[Tuple[int, int]] = []
        for i, group_a in enumerate(groups):
            for group_b in groups[i + 1:]:
                for a in group_a:
                    for b in group_b:
                        self.network.fail_link(a, b)
                        cut.append(Network._link_key(a, b))
        if self.obs.enabled:
            self.obs.metrics.inc("partition.cut", amount=len(cut))
            self.obs.tracer.emit(
                self.sim.now, "net.partition", groups=len(groups), links=len(cut)
            )
        return cut

    def heal_partition_now(self, cut: Sequence[Tuple[int, int]]) -> None:
        """Restore a cut previously produced by :meth:`partition_now`."""
        for a, b in cut:
            self.network.restore_link(a, b)
        if self.obs.enabled:
            self.obs.metrics.inc("partition.heal", amount=len(cut))
            self.obs.tracer.emit(self.sim.now, "net.heal", links=len(cut))


class ChurnProcess:
    """Continuous join/leave churn.

    Every ``interval`` seconds one randomly chosen live node leaves and
    (optionally) one new node joins, exercising GoCast's self-healing
    maintenance in steady state rather than the paper's one-shot crash.
    The actual join/leave mechanics are supplied by the experiment
    harness through callbacks, keeping this class protocol-agnostic.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        leave_callback: Callable[[], None],
        join_callback: Optional[Callable[[], None]] = None,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.interval = interval
        self._leave = leave_callback
        self._join = join_callback
        self._active = False
        self.events = 0

    def start(self, at: Optional[float] = None) -> None:
        if self._active:
            return
        self._active = True
        delay = self.interval if at is None else max(0.0, at - self.sim.now)
        self.sim.schedule(delay, self._tick)

    def stop(self) -> None:
        self._active = False

    def _tick(self) -> None:
        if not self._active:
            return
        self.events += 1
        self._leave()
        if self._join is not None:
            self._join()
        self.sim.schedule(self.interval, self._tick)


class PoissonChurn:
    """Memoryless churn: leave(+join) events with exponential gaps.

    Fixed-interval churn (:class:`ChurnProcess`) beats a metronome
    against the maintenance period; real deployments see Poisson
    arrivals, whose bursts are the actual stress (two leaves inside one
    maintenance period, then a quiet stretch).  Inter-event gaps are
    drawn from the caller's ``rng`` — hand it a dedicated named stream
    so arming churn never perturbs other seeded draws.
    """

    def __init__(
        self,
        sim: Simulator,
        rate: float,
        rng: random.Random,
        leave_callback: Callable[[], None],
        join_callback: Optional[Callable[[], None]] = None,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive (events/sec)")
        self.sim = sim
        self.rate = rate
        self._rng = rng
        self._leave = leave_callback
        self._join = join_callback
        self._active = False
        self.events = 0

    def start(self, at: Optional[float] = None) -> None:
        """Begin the process (first event one exponential gap after
        ``at``, which defaults to now)."""
        if self._active:
            return
        self._active = True
        base = self.sim.now if at is None else at
        delay = max(0.0, base - self.sim.now) + self._rng.expovariate(self.rate)
        self.sim.schedule(delay, self._tick)

    def stop(self) -> None:
        self._active = False

    def _tick(self) -> None:
        if not self._active:
            return
        self.events += 1
        self._leave()
        if self._join is not None:
            self._join()
        self.sim.schedule(self._rng.expovariate(self.rate), self._tick)
