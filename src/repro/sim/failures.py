"""Failure and churn injection.

The paper's stress tests crash a uniformly random fraction of nodes at a
single instant ("20% of nodes fail concurrently at simulated time 500
seconds") with *no subsequent repair*, isolating the dissemination
protocol's inherent resilience.  :class:`FailureInjector` reproduces
that, plus link failures and gradual churn for the extension scenarios.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, List, Optional, Sequence

from repro.sim.engine import Simulator
from repro.sim.transport import Network


class FailureInjector:
    """Schedules crash-stop node failures and link failures."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        rng: Optional[random.Random] = None,
        obs=None,
    ):
        self.sim = sim
        self.network = network
        self.obs = obs if obs is not None else network.obs
        self._rng = rng if rng is not None else random.Random(0)
        self.failed_nodes: List[int] = []
        #: Called with each node id at the moment it is killed, so the
        #: experiment harness can stop the node's timers.
        self.on_node_failed: Optional[Callable[[int], None]] = None

    def fail_nodes_at(self, time: float, nodes: Iterable[int]) -> None:
        """Crash the given nodes at absolute simulated ``time``."""
        nodes = list(nodes)
        self.sim.schedule_at(time, self._fail_now, nodes)

    def fail_fraction_at(
        self, time: float, fraction: float, population: Sequence[int]
    ) -> List[int]:
        """Crash a uniformly random ``fraction`` of ``population`` at ``time``.

        Returns the chosen victims (selected immediately, deterministically
        from this injector's RNG) so callers can exclude them from
        delivery accounting.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        count = int(round(fraction * len(population)))
        victims = self._rng.sample(list(population), count)
        self.fail_nodes_at(time, victims)
        return victims

    def fail_link_at(self, time: float, a: int, b: int) -> None:
        self.sim.schedule_at(time, self._fail_link_now, a, b)

    def restore_link_at(self, time: float, a: int, b: int) -> None:
        self.sim.schedule_at(time, self._restore_link_now, a, b)

    def _fail_link_now(self, a: int, b: int) -> None:
        self.network.fail_link(a, b)
        if self.obs.enabled:
            self.obs.metrics.inc("link.fail")
            self.obs.tracer.emit(self.sim.now, "link.fail", a=a, b=b)

    def _restore_link_now(self, a: int, b: int) -> None:
        self.network.restore_link(a, b)
        if self.obs.enabled:
            self.obs.metrics.inc("link.restore")
            self.obs.tracer.emit(self.sim.now, "link.restore", a=a, b=b)

    def _fail_now(self, nodes: List[int]) -> None:
        record = self.obs.enabled
        for node in nodes:
            self.network.kill(node)
            self.failed_nodes.append(node)
            if record:
                self.obs.metrics.inc("node.crash")
                self.obs.tracer.emit(self.sim.now, "node.crash", node=node)
            if self.on_node_failed is not None:
                self.on_node_failed(node)


class ChurnProcess:
    """Continuous join/leave churn.

    Every ``interval`` seconds one randomly chosen live node leaves and
    (optionally) one new node joins, exercising GoCast's self-healing
    maintenance in steady state rather than the paper's one-shot crash.
    The actual join/leave mechanics are supplied by the experiment
    harness through callbacks, keeping this class protocol-agnostic.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        leave_callback: Callable[[], None],
        join_callback: Optional[Callable[[], None]] = None,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.interval = interval
        self._leave = leave_callback
        self._join = join_callback
        self._active = False
        self.events = 0

    def start(self, at: Optional[float] = None) -> None:
        if self._active:
            return
        self._active = True
        delay = self.interval if at is None else max(0.0, at - self.sim.now)
        self.sim.schedule(delay, self._tick)

    def stop(self) -> None:
        self._active = False

    def _tick(self) -> None:
        if not self._active:
            return
        self.events += 1
        self._leave()
        if self._join is not None:
            self._join()
        self.sim.schedule(self.interval, self._tick)
