"""Declarative chaos scenarios and the engine that executes them.

The paper stresses GoCast with exactly one failure shape — a one-shot
concurrent crash of a random node fraction with no repair.  A
production overlay instead survives *days*: sustained Poisson churn,
network partitions that heal, lossy links, latency spikes, and machines
that reboot with empty state.  This module provides the vocabulary for
those days:

* :class:`Phase` — one timed fault activity (``crash``, ``churn``,
  ``partition``, ``loss``, ``latency``, ``restart``), with times
  relative to the scenario start so the same scenario composes onto any
  experiment timeline.
* :class:`Scenario` — a named, ordered collection of phases;
  JSON/dict-loadable, seedable (all randomness flows through the RNG the
  engine is constructed with) and composable (:meth:`Scenario.compose`,
  :meth:`Scenario.shifted`).
* :data:`CANNED` — the six named scenarios the regression suite pins
  (see ``tests/scenarios`` and docs/CHAOS.md).
* :class:`ScenarioEngine` — schedules the phases on a simulator,
  delegating node-level operations (join / graceful leave / restart) to
  harness callbacks so the engine stays protocol-agnostic, and crash /
  partition / loss / latency operations to the
  :class:`~repro.sim.failures.FailureInjector` and
  :class:`~repro.sim.transport.Network` chaos hooks.

Every injected fault is emitted as a structured trace event (see
``TRACE_SCHEMA`` in :mod:`repro.obs.tracer`), so a chaos run's timeline
is reconstructable from its trace alone.
"""

from __future__ import annotations

import dataclasses
import json
import random
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.sim.engine import Simulator
from repro.sim.failures import FailureInjector, PoissonChurn
from repro.sim.transport import Network

#: The fault vocabulary.  Each kind documents which Phase fields it reads.
PHASE_KINDS = ("crash", "churn", "partition", "loss", "latency", "restart")


@dataclasses.dataclass(frozen=True)
class Phase:
    """One timed fault activity inside a scenario.

    ``at`` is relative to the scenario start (the engine's ``arm``
    time); ``duration`` is the window length for windowed kinds
    (``churn``, ``partition``, ``loss``, ``latency``) and must be 0 for
    the instantaneous kinds (``crash``, ``restart``).

    Field use by kind:

    * ``crash``: ``fraction`` of the live population (or explicit
      ``count``) crash-stops at ``at``.
    * ``churn``: Poisson leave(+join) events at ``rate``/s over the
      window; ``joins=False`` makes it a pure shrink.
    * ``partition``: the live population splits into ``parts`` random
      groups (all cross-group links fail) and heals after ``duration``.
    * ``loss``: datagram loss probability ``rate`` on every link for the
      window (reliable/TCP sends are unaffected, as in the real stack).
    * ``latency``: every link delay is multiplied by ``factor`` for the
      window.
    * ``restart``: ``count`` (or ``fraction``) random live nodes crash
      at ``at`` and rejoin with empty state after ``downtime``.
    """

    kind: str
    at: float = 0.0
    duration: float = 0.0
    fraction: float = 0.0
    count: int = 0
    rate: float = 0.0
    joins: bool = True
    parts: int = 2
    factor: float = 1.0
    downtime: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in PHASE_KINDS:
            raise ValueError(f"unknown phase kind {self.kind!r}; choose from {PHASE_KINDS}")
        if self.at < 0:
            raise ValueError("phase start must be >= 0")
        if self.duration < 0:
            raise ValueError("phase duration must be >= 0")
        windowed = self.kind in ("churn", "partition", "loss", "latency")
        if windowed and self.duration <= 0:
            raise ValueError(f"{self.kind} phase needs a positive duration")
        if not windowed and self.duration != 0:
            raise ValueError(f"{self.kind} phase is instantaneous; duration must be 0")
        if self.kind in ("crash", "restart"):
            if self.count < 0:
                raise ValueError("count must be >= 0")
            if not 0.0 <= self.fraction < 1.0:
                raise ValueError("fraction must be in [0, 1)")
            if self.count == 0 and self.fraction == 0.0:
                raise ValueError(f"{self.kind} phase needs a count or a fraction")
        if self.kind == "churn" and self.rate <= 0:
            raise ValueError("churn rate must be positive (events/sec)")
        if self.kind == "loss" and not 0.0 < self.rate < 1.0:
            raise ValueError("loss rate must be in (0, 1)")
        if self.kind == "latency" and self.factor <= 0:
            raise ValueError("latency factor must be positive")
        if self.kind == "partition" and self.parts < 2:
            raise ValueError("partition needs at least 2 parts")
        if self.kind == "restart" and self.downtime <= 0:
            raise ValueError("restart downtime must be positive")

    @property
    def end(self) -> float:
        """When the phase's effects stop being *injected* (relative)."""
        if self.kind == "restart":
            return self.at + self.downtime
        return self.at + self.duration

    def to_dict(self) -> Dict[str, object]:
        """Minimal dict form: kind plus only the non-default fields."""
        out: Dict[str, object] = {"kind": self.kind}
        for field in dataclasses.fields(self):
            if field.name == "kind":
                continue
            value = getattr(self, field.name)
            if value != field.default:
                out[field.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Phase":
        known = {f.name for f in dataclasses.fields(cls)}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown phase fields {sorted(extra)}")
        if "kind" not in data:
            raise ValueError("phase dict needs a 'kind'")
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A named, composable sequence of fault phases."""

    name: str
    phases: Tuple[Phase, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        object.__setattr__(self, "phases", tuple(self.phases))
        for phase in self.phases:
            if not isinstance(phase, Phase):
                raise TypeError(f"phases must be Phase instances, got {type(phase)!r}")

    @property
    def duration(self) -> float:
        """Relative time at which the last phase stops injecting."""
        return max((p.end for p in self.phases), default=0.0)

    @property
    def needs_joins(self) -> bool:
        """Whether executing this scenario creates new node ids (the
        harness must reserve latency-model id headroom)."""
        return any(
            (p.kind == "churn" and p.joins) or p.kind == "restart" for p in self.phases
        )

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def shifted(self, dt: float) -> "Scenario":
        """The same scenario with every phase start delayed by ``dt``."""
        return Scenario(
            name=self.name,
            phases=tuple(dataclasses.replace(p, at=p.at + dt) for p in self.phases),
            description=self.description,
        )

    @staticmethod
    def compose(name: str, *scenarios: "Scenario", gap: float = 0.0) -> "Scenario":
        """Concatenate scenarios back to back (``gap`` seconds apart).

        Each scenario's phases start after the previous one's
        ``duration``; phase times stay internally relative, so canned
        scenarios compose without rewriting them.
        """
        phases: List[Phase] = []
        offset = 0.0
        for scenario in scenarios:
            phases.extend(scenario.shifted(offset).phases)
            offset += scenario.duration + gap
        return Scenario(name=name, phases=tuple(phases))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "phases": [p.to_dict() for p in self.phases],
        }
        if self.description:
            out["description"] = self.description
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Scenario":
        known = {"name", "phases", "description"}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown scenario fields {sorted(extra)}")
        phases = data.get("phases")
        if not isinstance(phases, (list, tuple)):
            raise ValueError("scenario needs a 'phases' list")
        return cls(
            name=str(data.get("name", "")),
            phases=tuple(Phase.from_dict(dict(p)) for p in phases),
            description=str(data.get("description", "")),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))


#: The canned scenario library — the regression suite (tests/scenarios)
#: pins each one's delivery/violation summary to a golden fixture.
#: Phase parameters are sized for the small-N suite runs and scale with
#: the population (fractions/rates, not absolute counts).
CANNED: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="paper-shock-25",
            description="The paper's stress shape at its harshest published "
            "level: 25% of nodes crash concurrently (repair stays on).",
            phases=(Phase("crash", at=0.0, fraction=0.25),),
        ),
        Scenario(
            name="steady-churn",
            description="Sustained Poisson join/leave churn — the failure "
            "shape long-running deployments actually see.",
            phases=(Phase("churn", at=0.5, duration=12.0, rate=0.6),),
        ),
        Scenario(
            name="flapping-partition",
            description="Three brief random bisections with heal — sends "
            "fail, links are evicted and repaired, pulls recover the gap.",
            phases=(
                Phase("partition", at=1.0, duration=0.4, parts=2),
                Phase("partition", at=5.0, duration=0.4, parts=2),
                Phase("partition", at=9.0, duration=0.4, parts=2),
            ),
        ),
        Scenario(
            name="loss-10",
            description="10% datagram loss on every link for the whole "
            "workload (probes degrade; TCP-modelled sends are unaffected).",
            phases=(Phase("loss", at=0.5, duration=12.0, rate=0.10),),
        ),
        Scenario(
            name="latency-spike",
            description="A 5x latency inflation on every link — pull "
            "timeouts misfire, handshakes slow down, FIFO must survive "
            "the spike edges.",
            phases=(Phase("latency", at=1.0, duration=5.0, factor=5.0),),
        ),
        Scenario(
            name="worst-day",
            description="Everything at once: churn under datagram loss, a "
            "latency spike, a partition flap, and a closing crash wave.",
            phases=(
                Phase("churn", at=0.5, duration=12.0, rate=0.3),
                Phase("loss", at=2.0, duration=8.0, rate=0.05),
                Phase("latency", at=4.0, duration=3.0, factor=3.0),
                Phase("partition", at=9.0, duration=0.4, parts=2),
                Phase("crash", at=12.0, fraction=0.10),
            ),
        ),
    )
}


def resolve_scenario(spec) -> Scenario:
    """Accept a Scenario, a canned name, or a dict; return a Scenario."""
    if isinstance(spec, Scenario):
        return spec
    if isinstance(spec, str):
        try:
            return CANNED[spec]
        except KeyError:
            raise KeyError(
                f"unknown scenario {spec!r}; choose from {sorted(CANNED)}"
            ) from None
    if isinstance(spec, dict):
        return Scenario.from_dict(spec)
    raise TypeError(f"cannot resolve a scenario from {type(spec).__name__}")


class ScenarioEngine:
    """Executes a :class:`Scenario` against a running simulation.

    The engine owns fault *timing and victim selection* (all randomness
    from the single ``rng`` it is given — a dedicated named stream, so
    arming an engine never perturbs protocol RNG draws) and delegates:

    * node crash / partition / heal to the :class:`FailureInjector`,
    * loss and latency windows to the :class:`Network` chaos setters,
    * join / graceful leave / restart-with-state-loss to the harness
      callbacks, since only the experiment harness knows how to build a
      protocol node.

    Harness callbacks (any may be None, disabling the fault kinds that
    need it):

    * ``spawn_node() -> Optional[int]`` — create, start and join one new
      node; returns its id (None when id headroom is exhausted).
    * ``leave_node(node_id)`` — graceful departure.
    * ``restart_node(node_id)`` — rebuild the (already crashed) node
      with empty state and rejoin it.

    ``protected_ids`` (e.g. the tree root) are never chosen for
    graceful leaves or restarts; crash waves may still hit them, exactly
    like the paper's uniform crash wave can hit the root.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        injector: FailureInjector,
        scenario: Scenario,
        rng: random.Random,
        obs=None,
        spawn_node: Optional[Callable[[], Optional[int]]] = None,
        leave_node: Optional[Callable[[int], None]] = None,
        restart_node: Optional[Callable[[int], None]] = None,
        protected_ids: Optional[Iterable[int]] = None,
    ):
        self.sim = sim
        self.network = network
        self.injector = injector
        self.scenario = scenario
        self.rng = rng
        self.obs = obs if obs is not None else network.obs
        self._spawn = spawn_node
        self._leave = leave_node
        self._restart = restart_node
        self.protected: Set[int] = set(protected_ids or ())
        #: Node ids whose membership was disturbed (crashed, left, or
        #: restarted) — excluded from veteran delivery accounting.
        self.disturbed: Set[int] = set()
        #: Node ids created by churn joins or restarts.
        self.joined: Set[int] = set()
        self.counts: Dict[str, int] = {
            "crashes": 0,
            "leaves": 0,
            "joins": 0,
            "join_skipped": 0,
            "restarts": 0,
            "partitions": 0,
            "heals": 0,
            "loss_windows": 0,
            "latency_windows": 0,
        }
        self.start_time: Optional[float] = None
        self._armed = False
        self._churns: List[PoissonChurn] = []
        # Active loss/latency windows.  Overlapping windows of the same
        # kind compose as "the harshest active window applies"; tracking
        # the active set (rather than saving/restoring snapshots, which
        # unwinds wrongly when windows overlap) guarantees the network
        # returns to its exact base setting when the last window closes.
        self._active_loss: List[float] = []
        self._base_loss: Optional[float] = None
        self._active_latency: List[float] = []
        self._base_latency: Optional[float] = None

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def arm(self, start: Optional[float] = None) -> float:
        """Schedule every phase; returns the absolute end of injection."""
        if self._armed:
            raise RuntimeError("engine already armed")
        self._armed = True
        self.start_time = self.sim.now if start is None else start
        need_harness = {
            "churn": self._leave,
            "restart": self._restart,
        }
        for phase in self.scenario.phases:
            hook = need_harness.get(phase.kind, True)
            if hook is None:
                raise ValueError(
                    f"scenario {self.scenario.name!r} has a {phase.kind!r} phase "
                    "but the harness does not support it"
                )
            at = self.start_time + phase.at
            self.sim.schedule_at(at, self._begin_phase, phase)
        return self.start_time + self.scenario.duration

    @property
    def end_time(self) -> float:
        if self.start_time is None:
            raise RuntimeError("engine not armed")
        return self.start_time + self.scenario.duration

    # ------------------------------------------------------------------
    # Phase execution
    # ------------------------------------------------------------------
    def _trace(self, category: str, **fields) -> None:
        if self.obs.enabled:
            self.obs.tracer.emit(self.sim.now, category, **fields)

    def _phase_event(self, phase: Phase, action: str, detail: str = "") -> None:
        if self.obs.enabled:
            self.obs.metrics.inc("chaos.phase", kind=phase.kind)
            fields = {"phase": phase.kind, "action": action}
            if detail:
                fields["detail"] = detail
            self.obs.tracer.emit(self.sim.now, "chaos.phase", **fields)

    def _begin_phase(self, phase: Phase) -> None:
        handler = getattr(self, f"_begin_{phase.kind}")
        handler(phase)

    def _victim_count(self, phase: Phase, population: int) -> int:
        if phase.count > 0:
            return min(phase.count, population)
        return min(int(round(phase.fraction * population)), population)

    def _live_candidates(self, exclude_protected: bool) -> List[int]:
        live = sorted(self.network.alive_nodes())
        if exclude_protected:
            live = [n for n in live if n not in self.protected]
        return live

    # -- crash ---------------------------------------------------------
    def _begin_crash(self, phase: Phase) -> None:
        live = self._live_candidates(exclude_protected=False)
        count = self._victim_count(phase, len(live))
        victims = self.rng.sample(live, count) if count else []
        killed = self.injector.fail_now(victims)
        self.disturbed.update(killed)
        self.counts["crashes"] += len(killed)
        self._phase_event(phase, "crash", detail=f"killed={len(killed)}")

    # -- churn ---------------------------------------------------------
    def _begin_churn(self, phase: Phase) -> None:
        churn = PoissonChurn(
            self.sim,
            rate=phase.rate,
            rng=self.rng,
            leave_callback=self._churn_leave,
            join_callback=self._churn_join if phase.joins else None,
        )
        self._churns.append(churn)
        churn.start()
        self.sim.schedule_at(self.start_time + phase.end, churn.stop)
        self._phase_event(phase, "start", detail=f"rate={phase.rate:g}/s")
        self.sim.schedule_at(self.start_time + phase.end, self._phase_event, phase, "end")

    def _churn_leave(self) -> None:
        candidates = self._live_candidates(exclude_protected=True)
        if not candidates:
            return
        victim = candidates[self.rng.randrange(len(candidates))]
        self.disturbed.add(victim)
        self.counts["leaves"] += 1
        self._trace("node.leave", node=victim)
        if self.obs.enabled:
            self.obs.metrics.inc("chaos.leave")
        self._leave(victim)

    def _churn_join(self) -> None:
        node_id = self._spawn() if self._spawn is not None else None
        if node_id is None:
            self.counts["join_skipped"] += 1
            return
        self.joined.add(node_id)
        self.counts["joins"] += 1
        if self.obs.enabled:
            self.obs.metrics.inc("chaos.join")

    # -- partition -----------------------------------------------------
    def _begin_partition(self, phase: Phase) -> None:
        live = self._live_candidates(exclude_protected=False)
        if len(live) < phase.parts:
            return
        shuffled = list(live)
        self.rng.shuffle(shuffled)
        size = len(shuffled) // phase.parts
        groups = [
            shuffled[i * size: (i + 1) * size if i < phase.parts - 1 else len(shuffled)]
            for i in range(phase.parts)
        ]
        cut = self.injector.partition_now(groups)
        self.counts["partitions"] += 1
        self._phase_event(phase, "start", detail=f"links={len(cut)}")
        self.sim.schedule_at(self.start_time + phase.end, self._heal, phase, cut)

    def _heal(self, phase: Phase, cut: List[Tuple[int, int]]) -> None:
        self.injector.heal_partition_now(cut)
        self.counts["heals"] += 1
        self._phase_event(phase, "end", detail=f"links={len(cut)}")

    # -- loss ----------------------------------------------------------
    def _begin_loss(self, phase: Phase) -> None:
        if self._base_loss is None:
            self._base_loss = self.network.loss_rate
        self._active_loss.append(phase.rate)
        self._apply_loss()
        self.counts["loss_windows"] += 1
        self._trace("net.loss", rate=self.network.loss_rate)
        self._phase_event(phase, "start", detail=f"rate={phase.rate:g}")
        self.sim.schedule_at(self.start_time + phase.end, self._end_loss, phase)

    def _end_loss(self, phase: Phase) -> None:
        self._active_loss.remove(phase.rate)
        self._apply_loss()
        self._trace("net.loss", rate=self.network.loss_rate)
        self._phase_event(phase, "end")

    def _apply_loss(self) -> None:
        """The harshest active loss window applies; with none active the
        network returns to exactly its pre-chaos rate."""
        if self._active_loss:
            self.network.set_loss_rate(max(self._base_loss, *self._active_loss))
        else:
            self.network.set_loss_rate(self._base_loss)

    # -- latency -------------------------------------------------------
    def _begin_latency(self, phase: Phase) -> None:
        if self._base_latency is None:
            self._base_latency = self.network.latency_factor
        self._active_latency.append(phase.factor)
        self._apply_latency()
        self.counts["latency_windows"] += 1
        self._trace("net.latency", factor=self.network.latency_factor)
        self._phase_event(phase, "start", detail=f"factor={phase.factor:g}")
        self.sim.schedule_at(self.start_time + phase.end, self._end_latency, phase)

    def _end_latency(self, phase: Phase) -> None:
        self._active_latency.remove(phase.factor)
        self._apply_latency()
        self._trace("net.latency", factor=self.network.latency_factor)
        self._phase_event(phase, "end")

    def _apply_latency(self) -> None:
        """The largest active slowdown factor applies, scaled onto the
        pre-chaos base; with none active the base is restored exactly."""
        if self._active_latency:
            self.network.set_latency_factor(
                self._base_latency * max(self._active_latency)
            )
        else:
            self.network.set_latency_factor(self._base_latency)

    # -- restart -------------------------------------------------------
    def _begin_restart(self, phase: Phase) -> None:
        candidates = self._live_candidates(exclude_protected=True)
        count = self._victim_count(phase, len(candidates))
        victims = self.rng.sample(candidates, count) if count else []
        killed = self.injector.fail_now(victims)
        self.disturbed.update(killed)
        self._phase_event(phase, "crash", detail=f"killed={len(killed)}")
        for victim in killed:
            self.sim.schedule_at(
                self.start_time + phase.at + phase.downtime, self._do_restart, victim
            )

    def _do_restart(self, node_id: int) -> None:
        self._restart(node_id)
        self.joined.add(node_id)
        self.counts["restarts"] += 1
        self._trace("node.restart", node=node_id)
        if self.obs.enabled:
            self.obs.metrics.inc("chaos.restart")

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def veteran_ids(self, initial: Sequence[int]) -> Set[int]:
        """Members of ``initial`` whose membership was never disturbed."""
        return set(initial) - self.disturbed - self.joined

    def summary(self) -> Dict[str, int]:
        """Deterministically ordered fault counts for reports."""
        return {key: self.counts[key] for key in sorted(self.counts)}
