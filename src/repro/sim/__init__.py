"""Discrete-event simulation substrate.

The paper evaluates GoCast with a custom event-driven simulator (6,100
lines of C++).  This package is our Python equivalent: a deterministic
event engine (:mod:`repro.sim.engine`), periodic timers
(:mod:`repro.sim.timers`), a message transport that models reliable
FIFO neighbor channels and lossy datagrams (:mod:`repro.sim.transport`),
failure injection (:mod:`repro.sim.failures`), and statistics tracing
(:mod:`repro.sim.trace`).
"""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.failures import ChurnProcess, FailureInjector
from repro.sim.timers import PeriodicTimer
from repro.sim.transport import Endpoint, Network
from repro.sim.trace import DeliveryTracer, TraceRecorder

__all__ = [
    "ChurnProcess",
    "DeliveryTracer",
    "Endpoint",
    "EventHandle",
    "FailureInjector",
    "Network",
    "PeriodicTimer",
    "Simulator",
    "TraceRecorder",
]
