"""Statistics tracing for simulation runs.

:class:`DeliveryTracer` implements the accounting behind every delay
figure in the paper: message injection times, per-node first-delivery
delays, redundant receptions, and reliability (the fraction of
(message, live node) pairs eventually served).  The delay CDFs in
Figures 3 and 4 are exactly :meth:`DeliveryTracer.delay_cdf` — pooled
first-delivery delays over all messages, normalized by the number of
(message, live receiver) pairs so that missing deliveries show up as a
CDF that never reaches 1.0.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.metrics import MetricsRegistry

#: The old generic counters/series recorder is now the metrics registry
#: itself — one counters/series API for the whole repository.  The alias
#: keeps existing imports (and the ``count``/``record``/``series_arrays``
#: call sites) working unchanged.
TraceRecorder = MetricsRegistry


class DeliveryTracer:
    """Multicast delivery accounting (delays, reliability, redundancy)."""

    def __init__(self) -> None:
        self._inject_time: Dict[object, float] = {}
        self._inject_source: Dict[object, int] = {}
        self._delivered: Dict[object, Dict[int, float]] = {}
        self.redundant_receptions = 0
        self.aborted_transfers = 0
        self.pulled_deliveries = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def injected(self, msg_id: object, time: float, source: int) -> None:
        self._inject_time[msg_id] = time
        self._inject_source[msg_id] = source
        # The source trivially "has" the message at injection time.
        self._delivered[msg_id] = {source: time}

    def delivered(self, msg_id: object, node: int, time: float) -> None:
        """Record a node's *first* complete reception of a message."""
        per_msg = self._delivered.get(msg_id)
        if per_msg is None:
            # Delivery observed for a message we never saw injected; this
            # indicates a harness bug, so fail loudly.
            raise KeyError(f"delivery of unknown message {msg_id!r}")
        if node in per_msg:
            raise ValueError(f"duplicate first-delivery for {msg_id!r} at node {node}")
        per_msg[node] = time

    def redundant(self, msg_id: object, node: int) -> None:
        """A full message arrived at a node that already had it."""
        self.redundant_receptions += 1

    def aborted(self, msg_id: object, node: int) -> None:
        """A redundant transfer was detected and aborted mid-stream."""
        self.aborted_transfers += 1

    def pulled(self, msg_id: object, node: int) -> None:
        """A delivery that happened via gossip pull (not tree push)."""
        self.pulled_deliveries += 1

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def n_messages(self) -> int:
        return len(self._inject_time)

    def message_ids(self) -> List[object]:
        return list(self._inject_time)

    def source_of(self, msg_id: object) -> Optional[int]:
        """The injecting node of a message (None if never injected)."""
        return self._inject_source.get(msg_id)

    def delivered_nodes(self, msg_id: object) -> Dict[int, float]:
        """Node -> first-delivery time for one message (source included)."""
        return dict(self._delivered.get(msg_id, {}))

    def delays(self, receivers: Optional[Sequence[int]] = None) -> np.ndarray:
        """Pooled first-delivery delays, excluding each message's source.

        ``receivers`` restricts accounting to the given nodes (the paper
        restricts to live nodes in the failure experiments).
        """
        receiver_set = None if receivers is None else set(receivers)
        out: List[float] = []
        for msg_id, per_msg in self._delivered.items():
            t0 = self._inject_time[msg_id]
            src = self._inject_source[msg_id]
            for node, t in per_msg.items():
                if node == src:
                    continue
                if receiver_set is not None and node not in receiver_set:
                    continue
                out.append(t - t0)
        return np.asarray(out, dtype=float)

    def reliability(self, receivers: Sequence[int]) -> float:
        """Fraction of (message, receiver) pairs delivered."""
        receiver_set = set(receivers)
        expected = 0
        got = 0
        for msg_id, per_msg in self._delivered.items():
            src = self._inject_source[msg_id]
            targets = receiver_set - {src}
            expected += len(targets)
            got += sum(1 for node in per_msg if node in targets)
        return got / expected if expected else 1.0

    def undelivered_pairs(self, receivers: Sequence[int]) -> int:
        receiver_set = set(receivers)
        missing = 0
        for msg_id, per_msg in self._delivered.items():
            src = self._inject_source[msg_id]
            targets = receiver_set - {src}
            missing += sum(1 for node in targets if node not in per_msg)
        return missing

    def delay_cdf(
        self, receivers: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(delay, cumulative fraction of (msg, receiver) pairs) curve.

        This is the paper's Figure 3/4 Y axis: the curve tops out below
        1.0 when some live nodes never receive some messages.
        """
        delays = np.sort(self.delays(receivers))
        receiver_set = set(receivers)
        denom = 0
        for msg_id in self._inject_time:
            denom += len(receiver_set - {self._inject_source[msg_id]})
        if denom == 0:
            return np.array([]), np.array([])
        fractions = np.arange(1, len(delays) + 1, dtype=float) / denom
        return delays, fractions

    def delay_percentile(self, q: float, receivers: Optional[Sequence[int]] = None) -> float:
        delays = self.delays(receivers)
        if delays.size == 0:
            return float("nan")
        return float(np.percentile(delays, q))

    def mean_delay(self, receivers: Optional[Sequence[int]] = None) -> float:
        delays = self.delays(receivers)
        return float(delays.mean()) if delays.size else float("nan")

    def max_delay(self, receivers: Optional[Sequence[int]] = None) -> float:
        delays = self.delays(receivers)
        return float(delays.max()) if delays.size else float("nan")

    def receptions_per_delivery(self) -> float:
        """Average times a node received a message it delivered once.

        1.0 means no redundancy; the paper reports 1.02 for GoCast with
        no request delay and ~1.0005 with ``f = 0.3 s``.
        """
        total_first = sum(
            len(per_msg) - 1 for per_msg in self._delivered.values()
        )
        if total_first <= 0:
            # No non-source deliveries: with zero redundant receptions
            # the ideal 1.0 is the honest answer, but redundancy without
            # any delivery has no meaningful per-delivery ratio — don't
            # silently report the ideal.
            return float("nan") if self.redundant_receptions > 0 else 1.0
        return 1.0 + self.redundant_receptions / total_first
