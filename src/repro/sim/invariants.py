"""Runtime protocol-invariant checking.

The chaos engine (:mod:`repro.sim.scenarios`) makes it easy to torture
a run; this module states what the protocol must *preserve* while being
tortured.  :class:`InvariantChecker` is a read-only observer in the
mold of :class:`repro.obs.health.HealthMonitor`: a periodic sim timer
samples live protocol state, never mutates it, and draws from no
simulation RNG — so attaching a checker cannot change a seeded run's
protocol trajectory.

Invariant catalogue (see docs/CHAOS.md for the paper/protocol
justification of each):

* ``degree-bound`` — no live node's per-kind overlay degree exceeds its
  target plus the acceptance slack (``C + degree_slack``) by more than
  a small concurrency allowance.
* ``symmetry`` — overlay links are symmetric among live nodes: if A
  lists live B as a neighbor, B lists A.  Transient asymmetry is
  protocol-inherent (handshakes, one-sided evictions after a partition)
  and tolerated up to a grace window; *persistent* asymmetry is a bug.
* ``tree-parent-link`` — a node's tree parent edge lies on an overlay
  edge (the tree is embedded in the overlay, Section 2.3).
* ``tree-cycle`` — the live parent graph is a forest: no parent cycle
  persists past the heartbeat-wave horizon that is guaranteed to break
  it.
* ``duplicate-delivery`` — no (message, node) pair is delivered twice
  (the seen-filter in the dissemination buffer must hold under any
  interleaving of tree pushes and pull repair).
* ``gossip-starvation`` — round-robin gossip fairness: every neighbor
  of a live node is sent *something* within one round-robin cycle plus
  the keepalive interval.
* ``eventual-delivery`` — after the run quiesces, every stabilized live
  node (a "veteran" whose membership was never disturbed) has received
  every message (checked once at end of run via
  :meth:`InvariantChecker.final_delivery_check`).

Violations become structured :class:`InvariantViolation` records,
``invariant.violation`` trace events, and — in hard-fail mode —
:class:`InvariantError` exceptions that abort the run at the sample
that detected them.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.sim.timers import PeriodicTimer

#: Above this many live nodes, each sample scans a bounded random subset
#: instead of the full population, keeping per-sample work O(cap) at
#: paper scale (N=1,740+).  The subset is drawn from the checker's own
#: seeded RNG, never from simulation randomness.
DEFAULT_SAMPLE_CAP = 1024

#: Every invariant the checker can report, in report order.
INVARIANTS = (
    "degree-bound",
    "symmetry",
    "tree-parent-link",
    "tree-cycle",
    "duplicate-delivery",
    "gossip-starvation",
    "eventual-delivery",
)


class InvariantError(AssertionError):
    """A protocol invariant was violated (hard-fail mode)."""


@dataclasses.dataclass(frozen=True)
class InvariantViolation:
    """One detected violation."""

    time: float
    invariant: str
    node: Optional[int]
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time": round(self.time, 6),
            "invariant": self.invariant,
            "node": self.node,
            "detail": self.detail,
        }


class InvariantChecker:
    """Samples protocol state on a sim timer and asserts the catalogue.

    ``nodes`` is the experiment's live node dict (shared, not copied —
    churn harnesses mutate it and the checker follows).  ``config``
    supplies the protocol constants the bounds derive from; it defaults
    to the config of the first node.

    Grace windows (all in sim seconds, defaulting from the config):

    * ``degree_grace`` — degree bounds are not checked for this long
      after :meth:`start`, because experiment bootstrap installs initial
      links via ``force_link`` with unbounded in-degree; maintenance
      sheds the surplus within a few periods.
    * ``asymmetry_grace`` — an asymmetric pair is only a violation once
      it has persisted this long.  Must exceed ``neighbor_timeout``:
      after a partition heals, the side that evicted first legitimately
      waits out the silence timeout before the pair converges.
    * ``tree_grace`` — stale parent edges and parent cycles are only
      violations once they persist past the next heartbeat wave, which
      is the mechanism guaranteed to repair them.

    The checker is strictly read-only with respect to protocol state
    and draws no simulation randomness; enabling it cannot change a
    seeded run's behaviour (property-tested in
    ``tests/property/test_scenario_properties.py``).

    Above ``sample_cap`` live nodes each periodic sample scans a random
    subset of that size instead of the whole population, so per-sample
    cost stays bounded at paper scale (full scans at N=4,096 every
    half-second dominate the run otherwise).  The subset comes from the
    checker's *own* ``random.Random(sample_seed)`` — the no-sim-RNG
    contract above still holds, and two runs with the same seed sample
    identical subsets.  Persistence bookkeeping (asymmetry, stale
    parents, cycles) is only cleaned up for keys the current subset
    could have re-observed, so a condition is never spuriously "healed"
    by not being looked at.  Subset coverage is probabilistic: above the
    cap a persistent violation is detected with high probability over a
    few periods rather than at the first sample.
    """

    def __init__(
        self,
        nodes: Dict[int, Any],
        network,
        obs=None,
        period: float = 0.5,
        hard_fail: bool = False,
        config=None,
        degree_grace: Optional[float] = None,
        asymmetry_grace: Optional[float] = None,
        tree_grace: Optional[float] = None,
        degree_allowance: int = 2,
        max_violations: int = 200,
        sample_cap: int = DEFAULT_SAMPLE_CAP,
        sample_seed: int = 0x1740,
    ):
        if period <= 0:
            raise ValueError(f"invariant period must be positive, got {period}")
        if sample_cap < 1:
            raise ValueError(f"sample_cap must be positive, got {sample_cap}")
        self.nodes = nodes
        self.network = network
        from repro import obs as obs_pkg

        self.obs = obs if obs is not None else obs_pkg.DISABLED
        self.period = period
        self.hard_fail = hard_fail
        any_node = next(iter(nodes.values()), None)
        self.config = config if config is not None else getattr(any_node, "config", None)
        if self.config is None:
            raise ValueError("InvariantChecker needs a config (or at least one node)")
        cfg = self.config
        self.degree_grace = (
            degree_grace if degree_grace is not None else 40.0 * cfg.maintenance_period
        )
        self.asymmetry_grace = (
            asymmetry_grace
            if asymmetry_grace is not None
            else cfg.neighbor_timeout + 2.0 * cfg.keepalive_interval
        )
        self.tree_grace = (
            tree_grace if tree_grace is not None else cfg.heartbeat_period + 5.0
        )
        self.degree_allowance = degree_allowance
        self.max_violations = max_violations
        self.sample_cap = sample_cap
        # Isolated RNG for subset draws; independent of all sim streams.
        self._sample_rng = random.Random(sample_seed)
        self._use_tree = bool(cfg.use_tree)

        self.violations: List[InvariantViolation] = []
        self.samples = 0
        self.stranded_messages = 0
        self._started_at: Optional[float] = None
        self._timer: Optional[PeriodicTimer] = None
        self._sim = None
        # Persistence bookkeeping: key -> first time the condition was seen.
        self._asym_since: Dict[Tuple[int, int], float] = {}
        self._stale_parent_since: Dict[Tuple[int, int], float] = {}
        self._cycle_since: Dict[frozenset, float] = {}
        # Keys already reported, so a persistent condition is one violation.
        self._reported: Set[Tuple[str, Any]] = set()
        # Per-node exemption horizon (restarted nodes get neighbor_timeout
        # to converge; see ScenarioEngine restart handling).
        self._exempt_until: Dict[int, float] = {}
        # First time each node id was observed alive (joiners ramp up).
        self._first_seen: Dict[int, float] = {}
        # duplicate-delivery audit: (node, msg) pairs seen.
        self._delivered_pairs: Set[Tuple[int, Any]] = set()
        self._audited: Set[int] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, sim, phase: Optional[float] = None) -> None:
        """Arm the sampling timer (first sample after one period)."""
        self._sim = sim
        if self._started_at is None:
            self._started_at = sim.now
        if self._timer is None:
            self._timer = PeriodicTimer(sim, self.period, self._sample, name="invariants")
        self._timer.start(phase=phase)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()

    def exempt(self, node_id: int, until: float) -> None:
        """Suspend symmetry/fairness checks involving ``node_id`` until
        ``until`` (used for restarted nodes, whose stale ex-neighbors
        legitimately need a silence timeout to notice the amnesia)."""
        self._exempt_until[node_id] = max(self._exempt_until.get(node_id, 0.0), until)

    # ------------------------------------------------------------------
    # Delivery audit (duplicate-delivery invariant)
    # ------------------------------------------------------------------
    def watch_deliveries(self, *node_ids: int) -> None:
        """Register the duplicate-delivery listener on the given nodes
        (all current nodes when called with no arguments).  Harnesses
        must also call this for nodes added later (joins, restarts)."""
        ids = node_ids if node_ids else tuple(self.nodes)
        for node_id in ids:
            if node_id in self._audited:
                continue
            node = self.nodes.get(node_id)
            if node is None or not hasattr(node, "delivery_listeners"):
                continue
            self._audited.add(node_id)
            node.delivery_listeners.append(
                lambda msg_id, size, _nid=node_id: self._on_delivery(_nid, msg_id)
            )

    def _on_delivery(self, node_id: int, msg_id) -> None:
        key = (node_id, msg_id)
        if key in self._delivered_pairs:
            self._violate(
                "duplicate-delivery",
                node_id,
                f"message {msg_id} delivered twice to node {node_id}",
                key=key,
            )
        else:
            self._delivered_pairs.add(key)

    def forget_node(self, node_id: int) -> None:
        """Drop audit state for a node that was rebuilt with state loss
        (its fresh buffer may legitimately re-deliver old messages)."""
        self._audited.discard(node_id)
        self._delivered_pairs = {
            pair for pair in self._delivered_pairs if pair[0] != node_id
        }
        self._first_seen.pop(node_id, None)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return self._sim.now if self._sim is not None else 0.0

    def _sample_ids(self, live: Dict[int, Any]) -> List[int]:
        """Node ids to scan this sample: everyone up to ``sample_cap``,
        a deterministic random subset beyond it.  Sorted either way so
        scan order (and hence violation report order) is stable."""
        ids = sorted(live)
        if len(ids) <= self.sample_cap:
            return ids
        return sorted(self._sample_rng.sample(ids, self.sample_cap))

    def _sample(self) -> None:
        now = self._now()
        self.samples += 1
        alive = self.network.alive_nodes()
        live = {nid: node for nid, node in self.nodes.items() if nid in alive}
        for nid in live:
            self._first_seen.setdefault(nid, now)
        ids = self._sample_ids(live)
        full = len(ids) == len(live)

        self._check_degree_bounds(now, live, ids)
        self._check_symmetry(now, live, ids, full)
        if self._use_tree:
            self._check_tree(now, live, ids, full)
        self._check_gossip_fairness(now, live, ids)

    # -- degree-bound --------------------------------------------------
    def _check_degree_bounds(
        self, now: float, live: Dict[int, Any], ids: List[int]
    ) -> None:
        if self._started_at is None or now - self._started_at < self.degree_grace:
            return
        allowance = self.degree_allowance
        for nid in ids:
            node = live[nid]
            if now - self._first_seen.get(nid, now) < self.degree_grace:
                continue
            cfg = node.config
            bound_rand = cfg.c_rand + cfg.degree_slack + allowance
            bound_near = cfg.c_near + cfg.degree_slack + allowance
            d_rand = node.overlay.d_rand
            d_near = node.overlay.d_near
            if d_rand > bound_rand:
                self._violate(
                    "degree-bound",
                    nid,
                    f"d_rand={d_rand} exceeds C_rand+slack bound {bound_rand}",
                    key=("rand", nid),
                )
            if d_near > bound_near:
                self._violate(
                    "degree-bound",
                    nid,
                    f"d_near={d_near} exceeds C_near+slack bound {bound_near}",
                    key=("near", nid),
                )

    # -- symmetry ------------------------------------------------------
    def _check_symmetry(
        self, now: float, live: Dict[int, Any], ids: List[int], full: bool
    ) -> None:
        current: Set[Tuple[int, int]] = set()
        id_set = set(ids)
        for nid in ids:
            if self._exempt_until.get(nid, 0.0) > now:
                continue
            node = live[nid]
            for peer in node.overlay.table.ids():
                other = live.get(peer)
                if other is None:
                    continue  # dead or departed peer: eviction in progress
                if self._exempt_until.get(peer, 0.0) > now:
                    continue
                if nid not in other.overlay.table:
                    current.add((nid, peer))
        for pair in current:
            since = self._asym_since.setdefault(pair, now)
            if now - since >= self.asymmetry_grace:
                a, b = pair
                self._violate(
                    "symmetry",
                    a,
                    f"node {a} lists live node {b} as neighbor but not vice "
                    f"versa for {now - since:.1f}s",
                    key=pair,
                )
        for pair in list(self._asym_since):
            # Only heal pairs this sample could have re-observed: under
            # subset sampling an unscanned pair is unknown, not resolved.
            if pair not in current and (full or pair[0] in id_set):
                del self._asym_since[pair]
                self._reported.discard(("symmetry", pair))

    # -- tree ----------------------------------------------------------
    def _check_tree(
        self, now: float, live: Dict[int, Any], ids: List[int], full: bool
    ) -> None:
        # The parent map is always built over the full population — it
        # is O(N) attribute reads, and cycle walks need complete edges
        # to avoid phantom cycle boundaries.  Only the per-node scans
        # (stale-edge membership tests, walk starting points) are
        # restricted to the subset.
        id_set = set(ids)
        parents: Dict[int, int] = {}
        for nid, node in live.items():
            parent = node.tree.parent
            if parent is not None and parent in live:
                parents[nid] = parent
        stale: Set[Tuple[int, int]] = set()
        for nid in ids:
            node = live[nid]
            parent = node.tree.parent
            if parent is not None and parent not in node.overlay.table:
                stale.add((nid, parent))
        for key in stale:
            since = self._stale_parent_since.setdefault(key, now)
            if now - since >= self.tree_grace:
                nid, parent = key
                self._violate(
                    "tree-parent-link",
                    nid,
                    f"parent edge {nid}->{parent} off the overlay for "
                    f"{now - since:.1f}s",
                    key=key,
                )
        for key in list(self._stale_parent_since):
            if key not in stale and (full or key[0] in id_set):
                del self._stale_parent_since[key]
                self._reported.discard(("tree-parent-link", key))

        # The live parent graph must be a forest (no cycles).  Walks
        # start only from subset nodes, but follow full parent edges.
        cycles: Set[frozenset] = set()
        color: Dict[int, int] = {}  # 1 = on current path, 2 = done
        for start in ids:
            if start not in parents:
                continue
            if color.get(start):
                continue
            path: List[int] = []
            nid = start
            while nid in parents and not color.get(nid):
                color[nid] = 1
                path.append(nid)
                nid = parents[nid]
            if color.get(nid) == 1:  # walked back into the current path
                cycles.add(frozenset(path[path.index(nid):]))
            for visited in path:
                color[visited] = 2
        for cycle in cycles:
            since = self._cycle_since.setdefault(cycle, now)
            if now - since >= self.tree_grace:
                members = sorted(cycle)
                self._violate(
                    "tree-cycle",
                    members[0],
                    f"parent cycle {members} persisted {now - since:.1f}s",
                    key=cycle,
                )
        for cycle in list(self._cycle_since):
            # A cycle is only healed on a full scan or when the subset
            # touched it — a walk that never entered the cycle says
            # nothing about whether it broke.
            if cycle not in cycles and (full or cycle & id_set):
                del self._cycle_since[cycle]
                self._reported.discard(("tree-cycle", cycle))

    # -- gossip fairness -----------------------------------------------
    def _check_gossip_fairness(
        self, now: float, live: Dict[int, Any], ids: List[int]
    ) -> None:
        for nid in ids:
            if self._exempt_until.get(nid, 0.0) > now:
                continue
            node = live[nid]
            if getattr(node, "frozen", False) or not getattr(node, "alive", True):
                continue
            table = node.overlay.table
            degree = len(table)
            if degree == 0:
                continue
            # One full round-robin cycle at the *current* (possibly
            # adaptively stretched) gossip period, plus the keepalive
            # interval a silent link may legitimately wait, plus two
            # sampling periods of slack.
            gossip_period = getattr(
                getattr(node, "_gossip_timer", None), "_period", None
            )
            if gossip_period is None:
                continue
            bound = (
                degree * gossip_period
                + node.config.keepalive_interval
                + 2.0 * self.period
            )
            if now - self._first_seen.get(nid, now) < bound:
                continue
            for peer, state in table.items():
                if self._exempt_until.get(peer, 0.0) > now:
                    continue
                stale = now - state.last_sent
                if stale > bound:
                    self._violate(
                        "gossip-starvation",
                        nid,
                        f"node {nid} sent nothing to neighbor {peer} for "
                        f"{stale:.1f}s (bound {bound:.1f}s)",
                        key=(nid, peer),
                    )

    # ------------------------------------------------------------------
    # End-of-run liveness
    # ------------------------------------------------------------------
    def final_delivery_check(self, tracer, receivers) -> int:
        """Assert eventual delivery to every stabilized receiver.

        ``receivers`` are the run's veterans still alive at the end
        (nodes present the whole run whose membership was never
        disturbed).  A message whose *source* died before handing it to
        anyone (zero non-source deliveries and a dead source) is counted
        as ``stranded`` rather than a violation: no protocol can deliver
        a message that never left its crashed sender.  Returns the
        number of violations added.
        """
        receivers = sorted(set(receivers))
        added = 0
        for msg_id in sorted(tracer.message_ids(), key=str):
            per_msg = tracer.delivered_nodes(msg_id)
            source = tracer.source_of(msg_id)
            missing = [n for n in receivers if n != source and n not in per_msg]
            if not missing:
                continue
            delivered_elsewhere = sum(1 for n in per_msg if n != source)
            if delivered_elsewhere == 0 and not self.network.is_alive(source):
                self.stranded_messages += 1
                continue
            self._violate(
                "eventual-delivery",
                None,
                f"message {msg_id} missed {len(missing)} of "
                f"{len(receivers)} stabilized receivers "
                f"(e.g. nodes {missing[:5]})",
                key=("delivery", str(msg_id)),
            )
            added += 1
        return added

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _violate(self, invariant: str, node: Optional[int], detail: str, key=None) -> None:
        report_key = (invariant, key if key is not None else detail)
        if report_key in self._reported:
            return
        self._reported.add(report_key)
        if len(self.violations) >= self.max_violations:
            return
        violation = InvariantViolation(self._now(), invariant, node, detail)
        self.violations.append(violation)
        if self.obs.enabled:
            self.obs.metrics.inc("invariant.violation", invariant=invariant)
            fields: Dict[str, Any] = {"invariant": invariant, "detail": detail}
            if node is not None:
                fields["node"] = node
            self.obs.tracer.emit(violation.time, "invariant.violation", **fields)
        if self.hard_fail:
            raise InvariantError(
                f"[t={violation.time:.3f}] {invariant}: {detail}"
            )

    def counts(self) -> Dict[str, int]:
        out = {name: 0 for name in INVARIANTS}
        for violation in self.violations:
            out[violation.invariant] += 1
        return out

    def report(self) -> Dict[str, Any]:
        """JSON-safe, deterministically ordered violation report."""
        return {
            "period": self.period,
            "samples": self.samples,
            "sample_cap": self.sample_cap,
            "hard_fail": self.hard_fail,
            "checked": list(INVARIANTS),
            "total_violations": len(self.violations),
            "stranded_messages": self.stranded_messages,
            "counts": self.counts(),
            "violations": [v.to_dict() for v in self.violations],
        }


def format_invariant_report(report: Dict[str, Any]) -> str:
    """Render a checker report for the ``repro chaos`` CLI."""
    lines = ["== invariant report =="]
    lines.append(
        f"{report['samples']} samples every {report['period']:g}s; "
        f"{report['total_violations']} violation(s)"
    )
    for name in report["checked"]:
        count = report["counts"].get(name, 0)
        marker = "FAIL" if count else "ok"
        lines.append(f"  {name:<20} {marker:>4}  ({count})")
    if report.get("stranded_messages"):
        lines.append(
            f"  note: {report['stranded_messages']} message(s) stranded at a "
            "crashed source before any handoff (not a violation)"
        )
    for violation in report["violations"][:20]:
        lines.append(
            f"  [t={violation['time']:g}] {violation['invariant']}: "
            f"{violation['detail']}"
        )
    remaining = len(report["violations"]) - 20
    if remaining > 0:
        lines.append(f"  ... {remaining} more")
    return "\n".join(lines)
