"""Runtime gate for the simulation fast paths.

The hot-path optimizations (calendar-queue scheduler, timer wheel,
event-handle pooling, batched dispatch, array-backed latency lookups)
are required to be *bit-identical* to the straightforward
implementations they replace: same event order, same RNG draws, same
results.  To make that claim testable forever, every optimized
component keeps its plain fallback and consults this gate at
construction time, and the golden-master equivalence test runs the same
scenario with the gate forced both ways.

``REPRO_SIM_OPTS`` accepts either a boolean ("0"/"false"/"off"/"no"
forces the plain paths; "1"/"true"/"on"/"yes"/"all" — or leaving the
variable unset — enables everything) or a comma-separated subset of the
named engine optimizations for A/B diagnosis::

    REPRO_SIM_OPTS=0                  # plain reference paths
    REPRO_SIM_OPTS=wheel,pool         # the PR-4 configuration
    REPRO_SIM_OPTS=calqueue,wheel     # calendar queue without batching
    REPRO_SIM_OPTS=all                # every default opt (same as unset)
    REPRO_SIM_OPTS=all,lazylat        # defaults + the lazy latency rows

Unknown tokens are a hard error (:class:`SimOptsError`), never silently
ignored: a typo like ``calender`` would otherwise run the wrong
configuration and poison an A/B comparison.  ``repro bench`` turns the
error into a clean one-line message and a nonzero exit.

``lazylat`` is the one *non-default* token: it selects the
memory-bounded on-demand latency-row backend (see
:mod:`repro.net.latency`), which trades a bounded amount of hot-path
work for an O(cache) instead of O(N^2) latency footprint.  It is never
implied by "1"/"all"/unset — the dense rows stay the equivalence
baseline — so paper-scale runs opt in with ``all,lazylat`` (inside a
comma list the ``all`` token expands to the default set).
"""

from __future__ import annotations

import os
from typing import FrozenSet

#: Environment variable controlling the gate.
ENV_VAR = "REPRO_SIM_OPTS"

#: The individually selectable engine optimizations:
#:
#: - ``wheel``    — timer wheel for periodic timers (:mod:`repro.sim.wheel`)
#: - ``pool``     — pooled fire-and-forget event handles on the heap
#:                  (:mod:`repro.sim.eventpool`; superseded by ``calqueue``,
#:                  which stores anonymous events as plain tuples)
#: - ``calqueue`` — calendar-queue scheduler replacing the binary heap
#:                  (:mod:`repro.sim.calqueue`)
#: - ``batch``    — batched same-timestamp dispatch in the calendar-queue
#:                  run loop (no effect without ``calqueue``)
#: - ``lazylat``  — memory-bounded on-demand latency rows (LRU row cache,
#:                  :class:`repro.net.latency.LazyRowCache`) replacing the
#:                  O(N^2) ``dense_rows`` tables.  NOT part of the default
#:                  set: it bounds memory, it does not speed anything up.
KNOWN_OPTS: FrozenSet[str] = frozenset({"wheel", "pool", "calqueue", "batch", "lazylat"})

#: Every *default* optimization on — what "1"/"all"/unset mean.  The
#: opt-in tokens (``lazylat``) are deliberately excluded so the default
#: configuration keeps the dense equivalence-baseline latency backend.
ALL_OPTS: FrozenSet[str] = frozenset({"wheel", "pool", "calqueue", "batch"})

_FALSE_VALUES = ("0", "false", "off", "no", "none")
_TRUE_VALUES = ("1", "true", "on", "yes", "all", "")


class SimOptsError(ValueError):
    """``REPRO_SIM_OPTS`` contains a token that names no optimization."""


def parse_opts(value: str) -> FrozenSet[str]:
    """Parse one ``REPRO_SIM_OPTS`` value into a set of enabled tokens.

    Raises :class:`SimOptsError` on unknown tokens.
    """
    lowered = value.strip().lower()
    if lowered in _TRUE_VALUES:
        return ALL_OPTS
    if lowered in _FALSE_VALUES:
        return frozenset()
    tokens = set(t.strip() for t in lowered.split(",") if t.strip())
    # Inside a comma list, "all" expands to the default set so opt-in
    # tokens compose with it: REPRO_SIM_OPTS=all,lazylat.
    if "all" in tokens:
        tokens.discard("all")
        tokens |= ALL_OPTS
    unknown = tokens - KNOWN_OPTS
    if unknown:
        raise SimOptsError(
            f"unknown {ENV_VAR} token(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(KNOWN_OPTS))}, or 0/1/all)"
        )
    return frozenset(tokens)


def sim_opts(default: bool = True) -> FrozenSet[str]:
    """The enabled optimization tokens (read from the environment per call).

    Components read this once at construction, so flipping the
    environment variable affects simulators/networks/models built
    afterwards, never ones already running.
    """
    value = os.environ.get(ENV_VAR)
    if value is None:
        return ALL_OPTS if default else frozenset()
    return parse_opts(value)


def optimizations_enabled(default: bool = True) -> bool:
    """Whether *any* simulation fast path is enabled.

    The all-or-nothing consumers (dense latency rows, the RTT memo)
    gate on this; the engine consults the token set via
    :func:`sim_opts` for per-structure selection.
    """
    return bool(sim_opts(default))


def lazylat_enabled(default: bool = True) -> bool:
    """Whether the memory-bounded on-demand latency backend is selected.

    Opt-in only: True exactly when the ``lazylat`` token is named in
    ``REPRO_SIM_OPTS`` (alone or via ``all,lazylat``), never by default.
    """
    return "lazylat" in sim_opts(default)
