"""Runtime gate for the simulation fast paths.

The hot-path optimizations (timer wheel, event-handle pooling,
array-backed latency lookups) are required to be *bit-identical* to the
straightforward implementations they replace: same event order, same
RNG draws, same results.  To make that claim testable forever, every
optimized component keeps its plain fallback and consults this gate at
construction time, and the golden-master equivalence test runs the same
scenario with the gate forced both ways.

Set ``REPRO_SIM_OPTS=0`` to force the plain paths (diagnosis, A/B
benchmarking, the equivalence gate); anything else — including leaving
the variable unset — enables the fast paths.
"""

from __future__ import annotations

import os

#: Environment variable controlling the gate.
ENV_VAR = "REPRO_SIM_OPTS"

_FALSE_VALUES = ("0", "false", "off", "no")


def optimizations_enabled(default: bool = True) -> bool:
    """Whether the simulation fast paths are enabled (read per call).

    Components read this once at construction, so flipping the
    environment variable affects simulators/networks/models built
    afterwards, never ones already running.
    """
    value = os.environ.get(ENV_VAR)
    if value is None:
        return default
    return value.strip().lower() not in _FALSE_VALUES
