"""Calendar-queue scheduler for the discrete-event engine.

This is the ``calqueue`` fast path of :mod:`repro.sim.optim`: a
bucketed priority structure that replaces the binary heap in
:class:`~repro.sim.engine.Simulator` while serving events in exactly
the same ``(time, seq)`` order.  The workload it is tuned for is the
one the GoCast simulations actually generate — a dense stream of
near-future network deliveries plus the timer-wheel traffic — where
events land at most a few dozen buckets ahead of the clock, so
insertion is an O(1) dict lookup + list append instead of an
O(log n) heap sift, and service is an O(1) pop from the end of the
sorted current bucket.

Entry forms (one list can hold both; tuple comparison never reaches
slot 2 because sequence numbers are globally unique):

- ``(-time, -seq, handle)`` — a cancellable event backed by an
  :class:`~repro.sim.engine.EventHandle` (``schedule``/``schedule_at``).
- ``(-time, -seq, callback, args)`` — an *anonymous* fire-and-forget
  event (``schedule_anon``, network deliveries).  No handle object
  exists at all, which supersedes the PR-4 handle pool on this path:
  nothing to acquire, strip, or release — the tuple itself is the
  event.

Keys are negated (as in :mod:`repro.sim.wheel`) so the *earliest*
event sits at the **end** of the ascending-sorted current bucket:
pops are ``list.pop()`` and late arrivals into the current bucket go
through C ``bisect.insort``.

Ordering contract: bucket indices are monotone in time
(``int(t1*scale) <= int(t2*scale)`` whenever ``0 <= t1 <= t2``),
buckets are drained in index order, and each bucket is sorted by exact
``(time, seq)`` at promotion, so the global service order equals a
heap's.  An insert that lands at or before the currently promoted
bucket index must be *earlier* than any bucket still waiting, so it is
insorted straight into the current bucket — which keeps the order
exact without the wheel's demote/reload dance.

Adaptive width: when the current bucket grows past ``grow_threshold``
entries the whole queue is rebuilt with buckets half as wide
(``scale`` doubles), bounding the memmove cost of in-bucket insorts.
If a rebuild fails to split the dense bucket (events piled on one
timestamp), the threshold doubles instead, so pathological inputs cost
amortized O(log n) rebuilds rather than a rebuild per push.

Cancellation is lazy and owned by the engine: a cancelled handle's
entry stays where it is and the engine's run loop discards it when it
surfaces (the engine also counts corpses and calls :meth:`compact`
when they dominate, mirroring the heap path).
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any, Callable, List, Optional, Tuple

#: Default bucket width is 1/64 s — matched to the timer wheel, and a
#: few one-way King latencies wide, so deliveries land a handful of
#: buckets ahead (plain append) while bucket population stays small.
_DEFAULT_SCALE = 64

#: Current-bucket population that triggers a rebuild at double scale.
_DEFAULT_GROW_THRESHOLD = 4096


class CalendarQueue:
    """Bucketed event queue serving exact ``(time, seq)`` order.

    The engine's hot loops reach straight into ``_current`` /
    ``_buckets`` (the same convention :class:`~repro.sim.wheel.TimerWheel`
    uses); the methods here are the reference implementation of those
    inlined paths plus the structural maintenance (promotion, growth,
    compaction) that only ever runs between events.
    """

    __slots__ = (
        "scale",
        "grow_threshold",
        "grows",
        "_buckets",
        "_bucket_heap",
        "_current",
        "_current_idx",
        "_size",
    )

    def __init__(
        self,
        scale: int = _DEFAULT_SCALE,
        grow_threshold: int = _DEFAULT_GROW_THRESHOLD,
    ) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        if grow_threshold < 8:
            raise ValueError(f"grow_threshold too small: {grow_threshold}")
        #: Buckets per simulated second (doubles on growth).
        self.scale = scale
        #: Current-bucket population that triggers a width rebuild.
        self.grow_threshold = grow_threshold
        #: Number of width rebuilds performed (diagnostics/benchmarks).
        self.grows = 0
        self._buckets: dict = {}
        self._bucket_heap: List[int] = []
        self._current: List[tuple] = []
        self._current_idx = -1
        self._size = 0

    def __len__(self) -> int:
        """Total stored entries, lazily-cancelled corpses included."""
        return self._size

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def push(self, time: float, seq: int, handle: Any) -> None:
        """Insert a cancellable event backed by ``handle``."""
        self._place((-time, -seq, handle), time)

    def push_anon(
        self, time: float, seq: int, callback: Callable[..., Any], args: tuple
    ) -> None:
        """Insert an anonymous fire-and-forget event (no handle object)."""
        self._place((-time, -seq, callback, args), time)

    def _place(self, item: tuple, time: float) -> None:
        idx = int(time * self.scale)
        if idx <= self._current_idx:
            # At or before the promoted bucket: every bucket still in
            # the heap is strictly later, so exact order is preserved
            # by insorting straight into the current (sorted) bucket.
            cur = self._current
            insort(cur, item)
            self._size += 1
            if len(cur) > self.grow_threshold:
                self._grow()
            return
        buckets = self._buckets
        bucket = buckets.get(idx)
        if bucket is None:
            buckets[idx] = [item]
            heapq.heappush(self._bucket_heap, idx)
        else:
            bucket.append(item)
        self._size += 1

    # ------------------------------------------------------------------
    # Service
    # ------------------------------------------------------------------
    def peek(self) -> Optional[tuple]:
        """The earliest stored entry (corpses included), or None.

        Returns the raw negated item; promotes buckets as a side
        effect but removes nothing.  Corpse handling belongs to the
        caller (the engine counts discarded cancellations).
        """
        while True:
            cur = self._current
            if cur:
                return cur[-1]
            if not self._promote():
                return None

    def pop(self) -> Optional[tuple]:
        """Remove and return the earliest stored entry, or None."""
        item = self.peek()
        if item is not None:
            self._current.pop()
            self._size -= 1
        return item

    def next_key(self) -> Optional[Tuple[float, int]]:
        """``(time, seq)`` of the earliest entry, or None (test aid)."""
        item = self.peek()
        if item is None:
            return None
        return (-item[0], -item[1])

    def _promote(self) -> bool:
        """Advance to the earliest non-empty bucket; False when drained.

        ``_current_idx`` is *kept* when the queue empties so that new
        events landing inside the already-promoted time range keep
        taking the insort path (times before the promoted range cannot
        be scheduled: the clock never runs backwards).
        """
        buckets = self._buckets
        bheap = self._bucket_heap
        while bheap:
            idx = heapq.heappop(bheap)
            bucket = buckets.pop(idx, None)
            if bucket is None:  # pragma: no cover - defensive; 1:1 invariant
                continue
            bucket.sort()
            self._current = bucket
            self._current_idx = idx
            return True
        return False

    # ------------------------------------------------------------------
    # Structural maintenance
    # ------------------------------------------------------------------
    def _grow(self) -> None:
        """Rebuild with buckets half as wide (``scale`` doubles).

        Service order is untouched — it is fully determined by the
        ``(time, seq)`` keys.  If the rebuild failed to split the dense
        bucket (a same-timestamp pile-up that no width can separate),
        the threshold doubles so the next rebuild needs twice the
        density — keeping adversarial inputs to amortized O(log n)
        rebuilds instead of one per push.
        """
        self.scale *= 2
        biggest = self._rebuild(self._all_items())
        self.grows += 1
        if biggest > self.grow_threshold:
            self.grow_threshold *= 2

    def compact(self) -> int:
        """Drop lazily-cancelled corpses; returns how many were dropped.

        Mirrors the heap path's corpse compaction: pop order depends
        only on the ``(time, seq)`` keys, so rebuilding never changes
        execution order.
        """
        live = [
            item
            for item in self._all_items()
            if len(item) == 4 or not item[2].cancelled
        ]
        dropped = self._size - len(live)
        self._rebuild(live)
        self._size = len(live)
        return dropped

    def _all_items(self) -> List[tuple]:
        items = list(self._current)
        for bucket in self._buckets.values():
            items.extend(bucket)
        return items

    def _rebuild(self, items: List[tuple]) -> int:
        """Re-bucket ``items`` under the current scale; returns the
        largest resulting bucket's population."""
        scale = self.scale
        buckets: dict = {}
        biggest = 0
        for item in items:
            idx = int(-item[0] * scale)
            bucket = buckets.get(idx)
            if bucket is None:
                buckets[idx] = [item]
            else:
                bucket.append(item)
                if len(bucket) > biggest:
                    biggest = len(bucket)
        self._buckets = buckets
        self._bucket_heap = list(buckets)
        heapq.heapify(self._bucket_heap)
        self._current = []
        self._current_idx = -1
        return biggest
