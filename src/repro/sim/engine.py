"""Deterministic discrete-event simulation engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Events are
``(time, sequence, callback)`` triples; the monotonically increasing
sequence number makes the execution order of same-time events
deterministic (FIFO in scheduling order), which in turn makes every
simulation in this repository reproducible from its seed.

Cancellation is lazy: :meth:`EventHandle.cancel` marks the handle and the
main loop skips cancelled entries when they surface, so cancel is O(1)
and the queue never needs re-heapification.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised for invalid uses of the engine (e.g. scheduling in the past)."""


class EventHandle:
    """A scheduled event; the only mutation callers may perform is cancel."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[..., Any]] = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark this event so it will be skipped when it surfaces."""
        self.cancelled = True
        # Drop references early; a long-lived cancelled timer should not
        # pin its callback's closure (and transitively a dead node) alive.
        self.callback = None
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulator:
    """Single-threaded discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, node.on_timer)
        sim.run_until(100.0)

    The clock unit is seconds throughout the repository.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: List[EventHandle] = []
        self._executed = 0
        self._running = False
        self._dispatch_hook: Optional[Callable[[Callable[..., Any], tuple], None]] = None

    def set_dispatch_hook(
        self, hook: Optional[Callable[[Callable[..., Any], tuple], None]]
    ) -> None:
        """Install ``hook(callback, args)`` in place of direct dispatch.

        The hook must invoke ``callback(*args)`` itself (the profiler
        wraps the call with timing).  Pass None to restore direct
        dispatch.  ``run``/``run_until`` read the hook once on entry, so
        installing mid-run takes effect at the next run call.
        """
        self._dispatch_hook = hook

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Number of queue entries, including not-yet-collected cancellations."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        handle = EventHandle(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._queue, handle)
        return handle

    def run_until(self, end_time: float) -> None:
        """Execute events up to and including ``end_time``.

        After the call returns the clock rests exactly at ``end_time``
        even if the queue drained earlier, so that back-to-back
        ``run_until`` calls compose naturally.
        """
        if end_time < self._now:
            raise SimulationError(
                f"run_until({end_time}) would move time backwards from {self._now}"
            )
        self._run(end_time)
        self._now = end_time

    def run(self) -> None:
        """Execute events until the queue is empty."""
        self._run(None)

    def step(self) -> bool:
        """Execute the single next pending event.  Returns False if none."""
        while self._queue:
            handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = handle.time
            callback, args = handle.callback, handle.args
            handle.callback, handle.args = None, ()
            self._executed += 1
            assert callback is not None
            if self._dispatch_hook is None:
                callback(*args)
            else:
                self._dispatch_hook(callback, args)
            return True
        return False

    def _run(self, end_time: Optional[float]) -> None:
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            queue = self._queue
            # Read once: zero overhead on the hot path when no hook is
            # installed (the overwhelmingly common case).
            hook = self._dispatch_hook
            while queue:
                handle = queue[0]
                if handle.cancelled:
                    heapq.heappop(queue)
                    continue
                if end_time is not None and handle.time > end_time:
                    break
                heapq.heappop(queue)
                self._now = handle.time
                callback, args = handle.callback, handle.args
                handle.callback, handle.args = None, ()
                self._executed += 1
                assert callback is not None
                if hook is None:
                    callback(*args)
                else:
                    hook(callback, args)
        finally:
            self._running = False
