"""Deterministic discrete-event simulation engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Events
are ``(time, sequence, handle)`` triples; the monotonically increasing
sequence number makes the execution order of same-time events
deterministic (FIFO in scheduling order), which in turn makes every
simulation in this repository reproducible from its seed.  Storing the
key as a plain tuple lets :mod:`heapq` compare in C — seq is unique, so
the handle in slot 3 is never compared.

Cancellation is lazy: :meth:`EventHandle.cancel` marks the handle and
the main loop skips cancelled entries when they surface, so cancel is
O(1).  When corpses pile up (>50% of a non-trivial queue, e.g. after
mass pull cancellations under churn) the queue is compacted in place
and re-heapified; heap pop order depends only on the (time, seq) keys,
so compaction never changes execution order.

Optimized structures ride along, selected per token by
:mod:`repro.sim.optim` (``REPRO_SIM_OPTS``):

- ``calqueue`` — a :class:`~repro.sim.calqueue.CalendarQueue` replaces
  the binary heap outright; anonymous events become plain tuples (no
  handle object at all), which supersedes ``pool`` on that path.
- ``batch`` — the calendar-queue run loop drains runs of equal-time
  events without re-resolving the scheduler head per event.
- ``wheel`` — a :class:`~repro.sim.wheel.TimerWheel` for periodic
  timers (:meth:`Simulator.schedule_periodic`), which reschedules a
  single entry in place instead of churning scheduler entries.
- ``pool`` — an :class:`~repro.sim.eventpool.EventPool` backing
  :meth:`Simulator.schedule_anon` on the *heap* path (the PR-4
  configuration, kept as a reference point; inert under ``calqueue``).

All of them share the global sequence counter and merge by exact
``(time, seq)``, so any combination is observably identical to the
plain heap — a claim pinned by the golden-master equivalence test and
the differential scheduler suite
(``tests/property/test_calqueue_properties.py``).
"""

from __future__ import annotations

import gc
import heapq
from typing import Any, Callable, FrozenSet, Iterable, List, Optional, Tuple

from repro.sim.calqueue import CalendarQueue
from repro.sim.eventpool import EventPool
from repro.sim.optim import ALL_OPTS, KNOWN_OPTS, SimOptsError, sim_opts
from repro.sim.wheel import TimerWheel, WheelEntry


class SimulationError(RuntimeError):
    """Raised for invalid uses of the engine (e.g. scheduling in the past)."""


class EventHandle:
    """A scheduled event; the only mutation callers may perform is cancel."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "pooled", "_sim")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[..., Any]] = callback
        self.args = args
        self.cancelled = False
        self.pooled = False
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Mark this event so it will be skipped when it surfaces."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references early; a long-lived cancelled timer should not
        # pin its callback's closure (and transitively a dead node) alive.
        self.callback = None
        self.args = ()
        sim = self._sim
        if sim is not None:
            self._sim = None
            sim._note_cancel()

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


#: Queue entries: (time, seq, handle).  seq is globally unique, so tuple
#: comparison never reaches the handle.
_QueueItem = Tuple[float, int, EventHandle]

#: Compaction fires when at least this many corpses exist AND they
#: outnumber live entries.  The floor keeps tiny queues from compacting
#: on every other cancel.
_COMPACT_MIN_CORPSES = 64


class Simulator:
    """Single-threaded discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, node.on_timer)
        sim.run_until(100.0)

    The clock unit is seconds throughout the repository.

    ``optimize`` selects the fast paths wholesale (calendar queue,
    batched dispatch, timer wheel, corpse compaction); None defers to
    the ``REPRO_SIM_OPTS`` environment gate.  ``opts`` instead names an
    exact token subset (see :data:`repro.sim.optim.KNOWN_OPTS`) for A/B
    diagnosis — e.g. ``opts={"wheel", "pool"}`` is the PR-4
    configuration — and overrides ``optimize``.  Whatever the
    configuration, the observable behaviour — event order, timestamps,
    ``events_executed`` — is identical.
    """

    def __init__(
        self,
        optimize: Optional[bool] = None,
        opts: Optional[Iterable[str]] = None,
    ) -> None:
        #: Current simulated time in seconds.  A plain attribute (not a
        #: property): protocol hot paths read it per message, and the
        #: descriptor call was measurable at scale.  Only the engine
        #: writes it.
        self.now = 0.0
        self._seq = 0
        self._queue: List[_QueueItem] = []
        self._executed = 0
        self._running = False
        self._dispatch_hook: Optional[Callable[[Callable[..., Any], tuple], None]] = None
        if opts is not None:
            enabled: FrozenSet[str] = frozenset(opts)
            unknown = enabled - KNOWN_OPTS
            if unknown:
                raise SimOptsError(
                    f"unknown opts token(s): {', '.join(sorted(unknown))} "
                    f"(known: {', '.join(sorted(KNOWN_OPTS))})"
                )
        elif optimize is None:
            enabled = sim_opts()
        elif optimize:
            enabled = ALL_OPTS
        else:
            enabled = frozenset()
        self._opts = enabled
        self._optimize = bool(enabled)
        self._wheel: Optional[TimerWheel] = TimerWheel() if "wheel" in enabled else None
        self._calq: Optional[CalendarQueue] = (
            CalendarQueue() if "calqueue" in enabled else None
        )
        # The pool only serves the heap path; under the calendar queue
        # anonymous events are plain tuples and there is nothing to pool.
        self._pool: Optional[EventPool] = (
            EventPool(EventHandle)
            if ("pool" in enabled and self._calq is None)
            else None
        )
        self._batch = "batch" in enabled and self._calq is not None
        self._cancelled = 0
        #: Number of corpse-compaction passes run (diagnostics/benchmarks).
        self.compactions = 0

    def set_dispatch_hook(
        self, hook: Optional[Callable[[Callable[..., Any], tuple], None]]
    ) -> None:
        """Install ``hook(callback, args)`` in place of direct dispatch.

        The hook must invoke ``callback(*args)`` itself (the profiler
        wraps the call with timing).  Pass None to restore direct
        dispatch.  ``run``/``run_until`` read the hook once on entry, so
        installing mid-run takes effect at the next run call.
        """
        self._dispatch_hook = hook

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Queue entries (including not-yet-collected cancellations) plus
        live wheel timers."""
        wheel = self._wheel
        calq = self._calq
        return (
            len(self._queue)
            + (len(calq) if calq is not None else 0)
            + (wheel.count if wheel is not None else 0)
        )

    @property
    def wheel_enabled(self) -> bool:
        """Whether periodic timers should route through the timer wheel."""
        return self._wheel is not None

    def scheduler_stats(self) -> dict:
        """Occupancy/reuse counters for whichever scheduler backs this run.

        Read-only diagnostics (O(1) attribute reads; no queue traversal):
        consumed by the capacity sampler (:mod:`repro.obs.series`) and
        surfaced as ``sim.sched.*`` gauges in the standard metrics
        snapshot.  Counts include not-yet-collected cancelled corpses,
        exactly like :attr:`pending_events`.
        """
        calq = self._calq
        wheel = self._wheel
        pool = self._pool
        return {
            "pending": self.pending_events,
            "heap_len": len(self._queue),
            "calqueue_len": len(calq) if calq is not None else 0,
            "calqueue_buckets": len(calq._buckets) if calq is not None else 0,
            "calqueue_grows": calq.grows if calq is not None else 0,
            "wheel_count": wheel.count if wheel is not None else 0,
            "pool_free": len(pool._free) if pool is not None else 0,
            "pool_created": pool.created if pool is not None else 0,
            "pool_reused": pool.reused if pool is not None else 0,
            "cancelled_pending": self._cancelled,
            "compactions": self.compactions,
        }

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, callback, args)
        handle._sim = self
        calq = self._calq
        if calq is not None:
            calq.push(time, seq, handle)
        else:
            heapq.heappush(self._queue, (time, seq, handle))
        return handle

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, callback, args)
        handle._sim = self
        calq = self._calq
        if calq is not None:
            calq.push(time, seq, handle)
        else:
            heapq.heappush(self._queue, (time, seq, handle))
        return handle

    def schedule_anon(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no handle is returned, so the
        event can never be cancelled externally — which is what makes it
        safe to store as a bare tuple (calendar queue) or back with a
        recycled pooled handle (heap path)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        calq = self._calq
        if calq is not None:
            calq.push_anon(time, seq, callback, args)
            return
        pool = self._pool
        if pool is not None:
            # EventPool.acquire, inlined: this runs once per network
            # message and the call frame was measurable.
            free = pool._free
            if free:
                handle = free.pop()
                handle.time = time
                handle.seq = seq
                handle.callback = callback
                handle.args = args
                handle.cancelled = False
                pool.reused += 1
            else:
                handle = EventHandle(time, seq, callback, args)
                handle.pooled = True
                pool.created += 1
        else:
            handle = EventHandle(time, seq, callback, args)
        heapq.heappush(self._queue, (time, seq, handle))

    def schedule_periodic(
        self, delay: float, callback: Callable[..., Any], entry: Optional[WheelEntry] = None
    ) -> WheelEntry:
        """Schedule a periodic-timer fire through the wheel.

        Pass the entry returned by the previous call to reschedule the
        same object in place (zero allocation per fire).  Consumes one
        sequence number from the same counter as :meth:`schedule`, so
        wheel and heap events interleave deterministically.  Requires
        :attr:`wheel_enabled` (callers fall back to :meth:`schedule`).
        """
        wheel = self._wheel
        if wheel is None:
            raise SimulationError("schedule_periodic requires the timer wheel (see wheel_enabled)")
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        return wheel.schedule(self.now + delay, seq, callback, entry)

    def cancel_periodic(self, entry: WheelEntry) -> None:
        """Cancel a wheel entry (lazy, O(1), idempotent)."""
        wheel = self._wheel
        if wheel is not None:
            wheel.cancel(entry)
        else:
            entry.cancelled = True

    def run_until(self, end_time: float) -> None:
        """Execute events up to and including ``end_time``.

        After the call returns the clock rests exactly at ``end_time``
        even if the queue drained earlier, so that back-to-back
        ``run_until`` calls compose naturally.
        """
        if end_time < self.now:
            raise SimulationError(
                f"run_until({end_time}) would move time backwards from {self.now}"
            )
        if self._calq is not None:
            self._run_calq(end_time)
        else:
            self._run(end_time)
        self.now = end_time

    def run(self) -> None:
        """Execute events until the queue is empty."""
        if self._calq is not None:
            self._run_calq(None)
        else:
            self._run(None)

    def step(self) -> bool:
        """Execute the single next pending event.  Returns False if none."""
        if self._calq is not None:
            return self._step_calq()
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)
            self._cancelled -= 1
        wheel = self._wheel
        wheel_key = wheel.peek() if wheel is not None else None
        if queue:
            time, seq, handle = queue[0]
            from_wheel = wheel_key is not None and wheel_key < (time, seq)
        elif wheel_key is not None:
            from_wheel = True
        else:
            return False
        if from_wheel:
            entry = wheel.pop()
            self.now = entry.time
            callback, args = entry.callback, entry.args
        else:
            heapq.heappop(queue)
            self.now = handle.time
            callback, args = handle.callback, handle.args
            if handle.pooled:
                self._pool.release(handle)
            else:
                handle.callback, handle.args = None, ()
                handle._sim = None
        self._executed += 1
        assert callback is not None
        if self._dispatch_hook is None:
            callback(*args)
        else:
            self._dispatch_hook(callback, args)
        return True

    def _step_calq(self) -> bool:
        """:meth:`step` for the calendar-queue configuration."""
        calq = self._calq
        while True:
            item = calq.peek()
            if item is None or len(item) == 4 or not item[2].cancelled:
                break
            calq.pop()
            self._cancelled -= 1
        wheel = self._wheel
        wheel_key = wheel.peek() if wheel is not None else None
        if item is not None:
            from_wheel = wheel_key is not None and wheel_key < (-item[0], -item[1])
        elif wheel_key is not None:
            from_wheel = True
        else:
            return False
        if from_wheel:
            entry = wheel.pop()
            self.now = entry.time
            callback, args = entry.callback, entry.args
        else:
            calq.pop()
            self.now = -item[0]
            if len(item) == 4:
                callback, args = item[2], item[3]
            else:
                handle = item[2]
                callback, args = handle.callback, handle.args
                handle.callback, handle.args = None, ()
                handle._sim = None
        self._executed += 1
        assert callback is not None
        if self._dispatch_hook is None:
            callback(*args)
        else:
            self._dispatch_hook(callback, args)
        return True

    def _note_cancel(self) -> None:
        """A queued handle was cancelled; compact if corpses dominate."""
        self._cancelled += 1
        if self._optimize and self._cancelled >= _COMPACT_MIN_CORPSES:
            calq = self._calq
            size = len(calq) if calq is not None else len(self._queue)
            if self._cancelled * 2 > size:
                self._compact()

    def _compact(self) -> None:
        """Drop cancelled corpses, preserving pop order.

        Heap path: in-place slice assignment + re-heapify keeps the
        ``queue`` local in a running :meth:`_run` valid.  Calendar-queue
        path: the queue rebuilds its buckets (the run loop re-reads the
        current bucket after every dispatch, so a mid-run rebuild is
        safe).
        """
        calq = self._calq
        if calq is not None:
            calq.compact()
        else:
            queue = self._queue
            live = [item for item in queue if not item[2].cancelled]
            queue[:] = live
            heapq.heapify(queue)
        self._cancelled = 0
        self.compactions += 1

    def _run(self, end_time: Optional[float]) -> None:
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        # The executed counter lives in a local for the duration of the
        # run (written back in the finally); events_executed is only
        # consumed after run()/run_until() returns.
        executed = self._executed
        # With optimizations on, suspend cyclic GC for the duration of
        # the run: the loop's garbage is overwhelmingly acyclic (tuples,
        # wire messages) and freed by refcounting, so the allocation-
        # count-triggered gen0 scans are pure overhead.  Cycle
        # collection resumes when the run returns.  GC timing has no
        # observable effect on simulation results.
        gc_was_enabled = self._pool is not None and gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            queue = self._queue
            wheel = self._wheel
            pool = self._pool
            pool_free = pool._free if pool is not None else None
            pool_max = pool.max_size if pool is not None else 0
            heappop = heapq.heappop
            # Read once: zero overhead on the hot path when no hook is
            # installed (the overwhelmingly common case).
            hook = self._dispatch_hook
            while True:
                # Heap head, skipping cancelled corpses.
                head = None
                while queue:
                    head = queue[0]
                    if head[2].cancelled:
                        heappop(queue)
                        self._cancelled -= 1
                        head = None
                    else:
                        break
                # Wheel head: the cached (time, seq) is maintained across
                # mutations, so the common case is one attribute read.
                if wheel is not None:
                    wheel_key = wheel.next_key
                    if wheel_key is None and wheel.count:
                        wheel_key = wheel.peek()
                else:
                    wheel_key = None
                if head is not None:
                    time = head[0]
                    if wheel_key is not None:
                        wtime = wheel_key[0]
                        if wtime < time or (wtime == time and wheel_key[1] < head[1]):
                            from_wheel = True
                            time = wtime
                        else:
                            from_wheel = False
                    else:
                        from_wheel = False
                elif wheel_key is not None:
                    from_wheel = True
                    time = wheel_key[0]
                else:
                    break
                if end_time is not None and time > end_time:
                    break
                self.now = time
                if from_wheel:
                    entry = wheel.pop()
                    callback = entry.callback
                    args = entry.args
                else:
                    handle = heappop(queue)[2]
                    callback = handle.callback
                    args = handle.args
                    # Release/strip before dispatch: the callback's own
                    # sends may then reuse the pooled handle immediately.
                    # (EventPool.release, inlined; the handle was just
                    # popped live and nobody else holds it, so it cannot
                    # be cancelled between here and the dispatch below.)
                    if handle.pooled:
                        handle.callback = None
                        handle.args = ()
                        if len(pool_free) < pool_max:
                            pool_free.append(handle)
                    else:
                        handle.callback, handle.args = None, ()
                        handle._sim = None
                executed += 1
                if hook is None:
                    callback(*args)
                else:
                    hook(callback, args)
        finally:
            if gc_was_enabled:
                gc.enable()
            self._executed = executed
            self._running = False

    def _run_calq(self, end_time: Optional[float]) -> None:
        """:meth:`_run` for the calendar-queue configuration.

        Same merge contract as the heap loop — wheel and queue serve
        exact ``(time, seq)`` order from the shared counter — plus the
        ``batch`` refinement: once an event at time ``t`` dispatches,
        everything still queued at exactly ``t`` was scheduled *before*
        anything the callback can add now (new events draw larger
        seqs), so the run drains without re-resolving the scheduler
        head, pausing only if a wheel entry interleaves.

        The current-bucket local is re-read after every dispatch:
        callbacks can trigger bucket growth or corpse compaction, both
        of which replace the list object.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = self._executed
        # Same GC rationale as the optimized heap loop.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            calq = self._calq
            wheel = self._wheel
            promote = calq._promote
            hook = self._dispatch_hook
            # Batched dispatch preserves order exactly, but the hook
            # protocol promises one hook call per event with the head
            # re-resolved in between (the profiler relies on it), so
            # batching only engages for direct dispatch.
            batch = self._batch and hook is None
            while True:
                # Queue head, skipping cancelled corpses.
                cur = calq._current
                while True:
                    if cur:
                        item = cur[-1]
                        if len(item) == 3 and item[2].cancelled:
                            cur.pop()
                            calq._size -= 1
                            self._cancelled -= 1
                            continue
                        break
                    if not promote():
                        item = None
                        break
                    cur = calq._current
                # Wheel head: cached key, recomputed only when a
                # mutation invalidated it.
                if wheel is not None:
                    wheel_key = wheel.next_key
                    if wheel_key is None and wheel.count:
                        wheel_key = wheel.peek()
                else:
                    wheel_key = None
                if item is not None:
                    time = -item[0]
                    if wheel_key is not None:
                        wtime = wheel_key[0]
                        from_wheel = wtime < time or (
                            wtime == time and wheel_key[1] < -item[1]
                        )
                        if from_wheel:
                            time = wtime
                    else:
                        from_wheel = False
                elif wheel_key is not None:
                    from_wheel = True
                    time = wheel_key[0]
                else:
                    break
                if end_time is not None and time > end_time:
                    break
                self.now = time
                if from_wheel:
                    entry = wheel.pop()
                    executed += 1
                    if hook is None:
                        entry.callback(*entry.args)
                    else:
                        hook(entry.callback, entry.args)
                    continue
                cur.pop()
                calq._size -= 1
                executed += 1
                if len(item) == 4:
                    if hook is None:
                        item[2](*item[3])
                    else:
                        hook(item[2], item[3])
                else:
                    handle = item[2]
                    callback = handle.callback
                    args = handle.args
                    # Strip before dispatch, as in the heap loop.
                    handle.callback = None
                    handle.args = ()
                    handle._sim = None
                    if hook is None:
                        callback(*args)
                    else:
                        hook(callback, args)
                if not batch:
                    continue
                # Drain the same-timestamp run.  The only competitor
                # that can legally interleave is a wheel entry at this
                # exact time with a *smaller* seq than the next queued
                # item — one scheduled before the run started.  A wheel
                # entry scheduled by these very callbacks carries a
                # larger seq than everything already queued at ``time``
                # and therefore never preempts the drain.
                while True:
                    cur = calq._current
                    if not cur:
                        break
                    item = cur[-1]
                    if item[0] != -time:
                        break
                    if wheel is not None:
                        wheel_key = wheel.next_key
                        if wheel_key is None and wheel.count:
                            wheel_key = wheel.peek()
                        if (
                            wheel_key is not None
                            and wheel_key[0] == time
                            and wheel_key[1] < -item[1]
                        ):
                            break
                    if len(item) == 3:
                        handle = item[2]
                        if handle.cancelled:
                            cur.pop()
                            calq._size -= 1
                            self._cancelled -= 1
                            continue
                        cur.pop()
                        calq._size -= 1
                        executed += 1
                        callback = handle.callback
                        args = handle.args
                        handle.callback = None
                        handle.args = ()
                        handle._sim = None
                        callback(*args)
                    else:
                        cur.pop()
                        calq._size -= 1
                        executed += 1
                        item[2](*item[3])
        finally:
            if gc_was_enabled:
                gc.enable()
            self._executed = executed
            self._running = False
