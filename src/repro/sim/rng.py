"""Seeded random-number management.

Every stochastic component in a run (topology generation, per-node
protocol decisions, failure selection, workload arrival) draws from its
own named stream derived from a single master seed.  Deriving streams by
name rather than sharing one generator means adding randomness to one
component never perturbs another component's draws, keeping regression
comparisons between code versions meaningful.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Deterministic 64-bit seed for ``name`` under ``master_seed``.

    SHA-256 based, so nearby (seed, name) pairs yield statistically
    unrelated streams — the derivation behind both the per-component
    streams of :class:`RngRegistry` and the per-trial root seeds of
    :mod:`repro.experiments.batch`.
    """
    digest = hashlib.sha256(f"{int(master_seed)}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory of independent, reproducible ``random.Random`` streams."""

    def __init__(self, master_seed: int):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The same (master_seed, name) pair always yields an identical
        stream regardless of creation order.
        """
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(self._derive(name))
            self._streams[name] = rng
        return rng

    def node_stream(self, node_id: int) -> random.Random:
        """Convenience stream for per-node protocol randomness."""
        return self.stream(f"node/{node_id}")

    @staticmethod
    def trial_seed(root_seed: int, trial_index: int) -> int:
        """Master seed for trial ``trial_index`` of a multi-trial batch.

        Distinct trial indices map to statistically independent seeds
        (no arithmetic relation a protocol RNG could resonate with), and
        the mapping depends only on (root_seed, trial_index) — never on
        worker count or execution order — so batch runs are reproducible
        under any parallelization.
        """
        return derive_seed(root_seed, f"trial/{int(trial_index)}")

    def _derive(self, name: str) -> int:
        return derive_seed(self.master_seed, name)
