"""Seeded random-number management.

Every stochastic component in a run (topology generation, per-node
protocol decisions, failure selection, workload arrival) draws from its
own named stream derived from a single master seed.  Deriving streams by
name rather than sharing one generator means adding randomness to one
component never perturbs another component's draws, keeping regression
comparisons between code versions meaningful.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Factory of independent, reproducible ``random.Random`` streams."""

    def __init__(self, master_seed: int):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The same (master_seed, name) pair always yields an identical
        stream regardless of creation order.
        """
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(self._derive(name))
            self._streams[name] = rng
        return rng

    def node_stream(self, node_id: int) -> random.Random:
        """Convenience stream for per-node protocol randomness."""
        return self.stream(f"node/{node_id}")

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.master_seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")
