"""Bucketed timer wheel for periodic events.

GoCast runs two fine-grained periodic timers per node (gossip and
neighbor maintenance, both ~0.1 s), so at N=512 the calendar heap would
churn O(N·rate) short-lived handles purely for timer reschedules.  The
wheel takes those events out of the heap: each timer owns one
:class:`WheelEntry` that is rescheduled *in place* every period — zero
allocation per fire — and entries are hashed into fixed-width time
buckets (1/64 s) so insertion is O(1) amortized instead of O(log n).

Ordering contract (what makes this safe to run beside the heap): the
engine assigns every event — heap or wheel — a sequence number from the
same counter, and the wheel serves entries in exact ``(time, seq)``
order.  Bucket indices are monotone in time (``int(t1*64) <=
int(t2*64)`` whenever ``t1 <= t2``), buckets are drained in index order,
and entries within a bucket are sorted by exact ``(time, seq)``, so the
merge in :meth:`Simulator._run` sees the same global order a pure heap
would produce.  The golden-master equivalence test holds the wheel to
that claim.

Cancellation and reschedule are lazy: a cancelled or rescheduled entry
leaves a stale tuple behind in its old bucket, detected later by a
sequence-number mismatch (every reschedule gets a fresh seq) and
dropped.  ``WheelEntry.queued`` tracks whether the entry's *live*
position is still in some bucket, so ``count`` never drifts when a
timer is cancelled between being popped and fired.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Bucket width is 1/_SCALE seconds.  64 buckets/second comfortably
#: separates 0.1 s timer periods while keeping bucket population small.
_SCALE = 64


class WheelEntry:
    """One periodic timer's reusable slot in the wheel."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "queued")

    def __init__(self) -> None:
        self.time = 0.0
        self.seq = -1
        self.callback: Optional[Callable[..., Any]] = None
        self.args: tuple = ()
        self.cancelled = False
        self.queued = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("queued" if self.queued else "idle")
        return f"WheelEntry(t={self.time:.6f}, seq={self.seq}, {state})"


class TimerWheel:
    """Time-bucketed priority structure serving exact (time, seq) order.

    Internals: ``_buckets`` maps bucket index -> unordered list of
    ``(time, seq, entry)`` tuples; ``_bucket_heap`` is a min-heap of the
    indices present in ``_buckets``.  The earliest bucket is promoted to
    ``_current``, a list sorted ascending by ``(-time, -seq)`` so the
    earliest event sits at the *end* and pops are O(1).  (Negated keys
    because :func:`bisect.insort` on Python 3.9 has no ``key=`` — late
    inserts landing in the current bucket stay sorted this way.)
    """

    __slots__ = (
        "count",
        "next_key",
        "_buckets",
        "_bucket_heap",
        "_current",
        "_current_idx",
    )

    def __init__(self) -> None:
        #: Number of live (queued, not cancelled) entries.
        self.count = 0
        #: Cached ``(time, seq)`` of the head entry, or None when it must
        #: be recomputed (via :meth:`peek`).  The engine's merge loop
        #: reads this attribute directly — one dict-free load per event
        #: instead of a Python call — so it is maintained on every
        #: mutation: pop always invalidates, cancel invalidates when it
        #: hits the head, schedule updates in place when the new entry
        #: becomes the head.
        self.next_key: Optional[Tuple[float, int]] = None
        self._buckets: Dict[int, List[Tuple[float, int, WheelEntry]]] = {}
        self._bucket_heap: List[int] = []
        self._current: List[Tuple[float, int, WheelEntry]] = []
        self._current_idx = -1

    def schedule(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        entry: Optional[WheelEntry] = None,
        args: tuple = (),
    ) -> WheelEntry:
        """(Re)arm ``entry`` at ``(time, seq)``; allocates one only if needed.

        Rescheduling an entry whose old position is still buffered simply
        strands that position — the seq bump marks it stale.
        """
        if entry is None:
            entry = WheelEntry()
        elif entry.queued:
            # Old live position becomes a stale corpse; if it was the
            # cached head, the cache must be recomputed.
            self.count -= 1
            nk = self.next_key
            if nk is not None and nk[1] == entry.seq:
                self.next_key = None
        entry.time = time
        entry.seq = seq
        entry.callback = callback
        entry.args = args
        entry.cancelled = False
        entry.queued = True
        self.count += 1
        nk = self.next_key
        if nk is not None and time < nk[0]:
            # Strictly earlier than the cached head: force a recompute.
            # (Not a direct update — the new entry may belong to a bucket
            # earlier than the promoted one, and only peek()'s rotation
            # logic lines the buckets back up.  A time tie can never win:
            # seq grows globally, so a new entry loses the FIFO tiebreak.)
            self.next_key = None
        idx = int(time * _SCALE)
        if idx == self._current_idx:
            insort(self._current, (-time, -seq, entry))
            return entry
        bucket = self._buckets.get(idx)
        if bucket is None:
            self._buckets[idx] = [(time, seq, entry)]
            heapq.heappush(self._bucket_heap, idx)
        else:
            bucket.append((time, seq, entry))
        return entry

    def cancel(self, entry: WheelEntry) -> None:
        """Lazily cancel; idempotent, O(1)."""
        if entry.cancelled:
            return
        entry.cancelled = True
        if entry.queued:
            entry.queued = False
            self.count -= 1
            nk = self.next_key
            if nk is not None and nk[1] == entry.seq:
                self.next_key = None  # cancelled the cached head

    def peek(self) -> Optional[Tuple[float, int]]:
        """``(time, seq)`` of the earliest live entry, or None if empty.

        May compact stale positions and rotate buckets as a side effect,
        but never changes which live entry is next.  The result is cached
        in :attr:`next_key` until the head changes.
        """
        nk = self.next_key
        if nk is not None:
            return nk
        while True:
            cur = self._current
            if cur:
                bh = self._bucket_heap
                if bh and bh[0] < self._current_idx:
                    # A late insert opened a bucket *earlier* than the one
                    # currently promoted (possible when earlier buckets
                    # were empty at promotion time): demote and reload.
                    self._demote_current()
                    continue
                nt, ns, entry = cur[-1]
                if entry.cancelled or entry.seq != -ns:
                    cur.pop()  # stale position
                    continue
                self.next_key = key = (-nt, -ns)
                return key
            if not self._promote_next_bucket():
                return None

    def pop(self) -> WheelEntry:
        """Remove and return the entry :meth:`peek` just reported.

        Callback/args stay on the entry so the timer can fire and then
        reschedule the same object in place.  The next head is resolved
        from the (already sorted) current bucket on the way out, so the
        per-event path usually never needs a :meth:`peek` call; if a
        subsequent ``schedule`` lands something earlier — including in an
        earlier bucket — it invalidates :attr:`next_key` and the full
        peek rotation takes over.
        """
        cur = self._current
        _, _, entry = cur.pop()
        entry.queued = False
        self.count -= 1
        nk = None
        while cur:
            nt, ns, e = cur[-1]
            if e.cancelled or e.seq != -ns:
                cur.pop()  # stale position
                continue
            nk = (-nt, -ns)
            break
        self.next_key = nk
        return entry

    def _promote_next_bucket(self) -> bool:
        buckets = self._buckets
        bh = self._bucket_heap
        while bh:
            idx = heapq.heappop(bh)
            bucket = buckets.pop(idx, None)
            if bucket is None:
                continue
            live = [
                (-t, -s, e)
                for (t, s, e) in bucket
                if not e.cancelled and e.seq == s
            ]
            if not live:
                continue  # bucket was all stale corpses
            live.sort()
            self._current = live
            self._current_idx = idx
            return True
        self._current_idx = -1
        return False

    def _demote_current(self) -> None:
        idx = self._current_idx
        raw = [(-nt, -ns, e) for (nt, ns, e) in self._current]
        existing = self._buckets.get(idx)
        if existing is None:
            self._buckets[idx] = raw
            heapq.heappush(self._bucket_heap, idx)
        else:  # pragma: no cover - defensive; inserts target _current while promoted
            existing.extend(raw)
        self._current = []
        self._current_idx = -1
