"""Periodic timer built on the event engine.

GoCast nodes run two fine-grained periodic activities — the gossip timer
(period ``t``) and the neighbor-maintenance timer (period ``r``), both
0.1 s by default.  :class:`PeriodicTimer` wraps the reschedule-on-fire
pattern so protocol code stays free of scheduling boilerplate, and
supports the paper's "dynamically tunable" periods via :meth:`set_period`.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappush
from typing import Any, Callable, Optional

from repro.sim.engine import EventHandle, Simulator
from repro.sim.wheel import _SCALE as _WHEEL_SCALE
from repro.sim.wheel import WheelEntry


class PeriodicTimer:
    """Calls ``callback()`` every ``period`` seconds until stopped.

    The first firing happens ``phase`` seconds after :meth:`start` (default:
    one full period).  Staggering ``phase`` across nodes avoids the
    unrealistic lock-step behaviour of thousands of timers firing at the
    same instant.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], Any],
        obs=None,
        name: str = "timer",
    ):
        """``obs``/``name`` opt the timer into ``timer.fire`` tracing —
        an :class:`~repro.obs.Observability` whose tracer records each
        fire under the given timer name."""
        if period <= 0:
            raise ValueError(f"timer period must be positive, got {period}")
        self._sim = sim
        self._use_wheel = sim.wheel_enabled
        # Same-package fast path: _fire reschedules straight on the
        # wheel, skipping the schedule_periodic wrapper per fire.
        self._wheel = sim._wheel
        self._period = period
        self._callback = callback
        self._obs = obs
        self._name = name
        self._handle: Optional[EventHandle] = None
        # Wheel mode (sim.wheel_enabled): one entry rescheduled in place
        # for the timer's whole lifetime, instead of a heap handle per fire.
        self._entry: Optional[WheelEntry] = None
        self._running = False

    @property
    def period(self) -> float:
        return self._period

    @property
    def running(self) -> bool:
        return self._running

    def start(self, phase: Optional[float] = None) -> None:
        """Arm the timer; the first fire is ``phase`` seconds from now."""
        if self._running:
            return
        self._running = True
        self._schedule(self._period if phase is None else phase)

    def stop(self) -> None:
        """Disarm the timer; a stopped timer can be started again."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        if self._entry is not None:
            # Keep the entry object for reuse if the timer restarts.
            self._sim.cancel_periodic(self._entry)

    def _schedule(self, delay: float) -> None:
        if self._use_wheel:
            self._entry = self._sim.schedule_periodic(delay, self._fire, self._entry)
        else:
            self._handle = self._sim.schedule(delay, self._fire)

    def set_period(self, period: float) -> None:
        """Change the period.

        Takes effect from the next reschedule; the currently pending fire
        keeps its time so the change never causes a burst of events.
        """
        if period <= 0:
            raise ValueError(f"timer period must be positive, got {period}")
        self._period = period

    def _fire(self) -> None:
        if not self._running:
            return
        # _schedule inlined: this runs once per period per node forever.
        # The wheel path re-arms the entry with TimerWheel.schedule's
        # body inlined, specialized to the refire invariants: the entry
        # exists, was just popped (queued is False), and already carries
        # this _fire as its callback.  The period was validated positive,
        # so the new time can never precede `now`.
        sim = self._sim
        if self._use_wheel:
            seq = sim._seq
            sim._seq = seq + 1
            time = sim.now + self._period
            wheel = self._wheel
            entry = self._entry
            entry.time = time
            entry.seq = seq
            entry.cancelled = False
            entry.queued = True
            wheel.count += 1
            nk = wheel.next_key
            if nk is not None and time < nk[0]:
                wheel.next_key = None
            idx = int(time * _WHEEL_SCALE)
            if idx == wheel._current_idx:
                insort(wheel._current, (-time, -seq, entry))
            else:
                buckets = wheel._buckets
                bucket = buckets.get(idx)
                if bucket is None:
                    buckets[idx] = [(time, seq, entry)]
                    heappush(wheel._bucket_heap, idx)
                else:
                    bucket.append((time, seq, entry))
        else:
            self._handle = sim.schedule(self._period, self._fire)
        obs = self._obs
        if obs is not None and obs.enabled:
            obs.metrics.inc("timer.fire", name=self._name)
            obs.tracer.emit(self._sim.now, "timer.fire", name=self._name)
        self._callback()
