"""Periodic timer built on the event engine.

GoCast nodes run two fine-grained periodic activities — the gossip timer
(period ``t``) and the neighbor-maintenance timer (period ``r``), both
0.1 s by default.  :class:`PeriodicTimer` wraps the reschedule-on-fire
pattern so protocol code stays free of scheduling boilerplate, and
supports the paper's "dynamically tunable" periods via :meth:`set_period`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import EventHandle, Simulator


class PeriodicTimer:
    """Calls ``callback()`` every ``period`` seconds until stopped.

    The first firing happens ``phase`` seconds after :meth:`start` (default:
    one full period).  Staggering ``phase`` across nodes avoids the
    unrealistic lock-step behaviour of thousands of timers firing at the
    same instant.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], Any],
        obs=None,
        name: str = "timer",
    ):
        """``obs``/``name`` opt the timer into ``timer.fire`` tracing —
        an :class:`~repro.obs.Observability` whose tracer records each
        fire under the given timer name."""
        if period <= 0:
            raise ValueError(f"timer period must be positive, got {period}")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._obs = obs
        self._name = name
        self._handle: Optional[EventHandle] = None
        self._running = False

    @property
    def period(self) -> float:
        return self._period

    @property
    def running(self) -> bool:
        return self._running

    def start(self, phase: Optional[float] = None) -> None:
        """Arm the timer; the first fire is ``phase`` seconds from now."""
        if self._running:
            return
        self._running = True
        delay = self._period if phase is None else phase
        self._handle = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Disarm the timer; a stopped timer can be started again."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def set_period(self, period: float) -> None:
        """Change the period.

        Takes effect from the next reschedule; the currently pending fire
        keeps its time so the change never causes a burst of events.
        """
        if period <= 0:
            raise ValueError(f"timer period must be positive, got {period}")
        self._period = period

    def _fire(self) -> None:
        if not self._running:
            return
        self._handle = self._sim.schedule(self._period, self._fire)
        obs = self._obs
        if obs is not None and obs.enabled:
            obs.metrics.inc("timer.fire", name=self._name)
            obs.tracer.emit(self._sim.now, "timer.fire", name=self._name)
        self._callback()
