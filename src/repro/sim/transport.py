"""Simulated message transport.

Two delivery modes mirror the paper's use of the real stack:

* **Reliable** sends model the pre-established TCP connections between
  overlay neighbors: never lost, and FIFO per ordered pair (latency is
  constant per pair and the engine breaks ties by scheduling order, so
  FIFO holds by construction).  If the destination is dead or the link
  has been failed, the *sender* is informed after one RTT — the moral
  equivalent of a TCP reset — via ``handle_send_failure``.
* **Unreliable** sends model UDP (RTT probes between non-neighbors):
  subject to the configured loss rate and silently dropped on dead
  destinations.

The transport also exposes per-message-type counters and an optional
``on_send`` hook used by the link-stress analysis to route every
application-level hop over the physical topology.
"""

from __future__ import annotations

import random
from bisect import insort
from heapq import heappush
from typing import Any, Callable, Dict, List, Optional, Protocol, Set, Tuple

from repro import obs as obs_pkg
from repro.net.latency import LatencyModel
from repro.sim.engine import EventHandle, Simulator


class Endpoint(Protocol):
    """What the transport requires of a protocol node."""

    node_id: int

    def handle_message(self, src: int, msg: Any) -> None:
        """Deliver ``msg`` sent by ``src``."""

    def handle_send_failure(self, dst: int, msg: Any) -> None:
        """A reliable send to ``dst`` failed (peer dead or link down)."""


class Network:
    """Routes messages between registered endpoints with realistic delay."""

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        obs: Optional["obs_pkg.Observability"] = None,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.sim = sim
        self.latency = latency
        self.loss_rate = loss_rate
        self.obs = obs if obs is not None else obs_pkg.DISABLED
        #: Per (undirected) link message counts, populated only when
        #: observability is enabled; the source of the link-stress
        #: histogram in ``repro obs summary``.
        self.link_counts: Dict[Tuple[int, int], int] = {}
        self._rng = rng if rng is not None else random.Random(0)
        self._endpoints: Dict[int, Endpoint] = {}
        self._dead: Set[int] = set()
        #: Registered-and-not-dead node ids: one membership test in the
        #: send loop instead of two (kept in sync by register/kill/
        #: revive/remove; ``_dead`` stays authoritative for revive).
        self._reachable: Set[int] = set()
        self._failed_links: Set[Tuple[int, int]] = set()
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_lost = 0
        #: Optional hook called as ``on_send(src, dst, msg)`` for every send.
        self.on_send: Optional[Callable[[int, int, Any], None]] = None
        # --- send() fast path (see repro.sim.optim) -------------------
        # Per-message-class memo of (type name, unbound wire_size,
        # fixed size, [count, bytes] cell) so the hot loop skips
        # type(msg).__name__ string churn, the per-send bound-method
        # allocation of getattr(msg, "wire_size"), and the by-name
        # counter dict lookups (the cell is mutated in place;
        # ``sent_by_type``/``bytes_by_type`` are derived views).
        # Classes whose size is instance-independent advertise it via a
        # FIXED_WIRE_SIZE class attribute (see repro.core.messages),
        # which skips the wire_size call entirely for the hottest
        # traffic (pings, degree updates).
        self._msg_meta: Dict[
            type,
            Tuple[str, Optional[Callable[[Any], int]], Optional[int], List[int]],
        ] = {}
        # Delivery events are fire-and-forget.  Under the calendar
        # queue they are pushed as bare tuples; under the PR-4 heap
        # configuration they route through the engine's pooled event
        # freelist.  Both keyed off the simulator's own state, so a sim
        # constructed with optimize=False never hits a fast path.
        self._calq = sim._calq
        self._optimized = sim._pool is not None
        self._schedule: Callable[..., Any] = (
            sim.schedule_anon
            if (self._optimized or self._calq is not None)
            else sim.schedule
        )
        self._one_way = latency.one_way
        # Models may expose a dense per-node table whose cells equal
        # one_way() exactly (matrix/King do); the send loop then indexes
        # it directly instead of calling into the model.  Under the
        # ``lazylat`` backend the same two-subscript shape is served by
        # a LazyRowCache (rows[src] materializes/loads the row, [dst]
        # indexes a packed double) — identical bits, bounded memory.
        # The diagonal is excluded from the lazy contract, which is fine
        # here: send() rejects src == dst before the lookup.
        self._dense_rows = getattr(latency, "dense_rows", None)
        if self._dense_rows is None:
            self._dense_rows = getattr(latency, "lazy_rows", None)
        # --- chaos injection (see repro.sim.scenarios) ----------------
        # All default-off with a single cheap guard each in send(), so
        # runs that never touch them stay bit-identical to the seed
        # behaviour (pinned by tests/experiments/test_equivalence.py).
        self.latency_factor = 1.0
        #: Extra per-link datagram loss probability, keyed by link key.
        self._link_loss: Dict[Tuple[int, int], float] = {}
        # Reliable sends model established TCP connections, which are
        # FIFO per ordered pair.  With a constant per-pair delay that
        # holds by construction, but a latency window ending mid-flight
        # would let later (faster) sends overtake earlier (slowed) ones.
        # Once latency chaos is first enabled, every reliable delivery
        # is clamped to arrive no earlier than the pair's previous one.
        self._fifo_floor: Optional[Dict[Tuple[int, int], float]] = None

    # ------------------------------------------------------------------
    # Chaos injection hooks
    # ------------------------------------------------------------------
    def set_loss_rate(self, rate: float) -> None:
        """Change the global datagram loss probability mid-run."""
        if not 0.0 <= rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.loss_rate = rate

    def set_link_loss(self, a: int, b: int, rate: float) -> None:
        """Add per-link datagram loss (0 removes the entry).  Composes
        with the global rate as independent drop events."""
        if not 0.0 <= rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        key = self._link_key(a, b)
        if rate == 0.0:
            self._link_loss.pop(key, None)
        else:
            self._link_loss[key] = rate

    def set_latency_factor(self, factor: float) -> None:
        """Scale every link delay by ``factor`` (latency-spike windows).

        The first call (even back to 1.0) permanently arms the per-pair
        FIFO floor for reliable sends, preserving the modelled-TCP
        ordering across spike edges.
        """
        if factor <= 0:
            raise ValueError("latency factor must be positive")
        self.latency_factor = factor
        if self._fifo_floor is None:
            self._fifo_floor = {}

    # ------------------------------------------------------------------
    # Per-type counters (derived from the per-class memo cells)
    # ------------------------------------------------------------------
    @property
    def sent_by_type(self) -> Dict[str, int]:
        """Messages sent per message-type name (insertion order = first
        send of each type, matching the pre-memo behaviour)."""
        out: Dict[str, int] = {}
        for name, _fn, _fixed, cell in self._msg_meta.values():
            if cell[0]:
                out[name] = out.get(name, 0) + cell[0]
        return out

    @property
    def bytes_by_type(self) -> Dict[str, int]:
        """Wire bytes sent per message-type name (types with no
        ``wire_size`` contribute nothing, as before)."""
        out: Dict[str, int] = {}
        for name, _fn, _fixed, cell in self._msg_meta.values():
            if cell[1]:
                out[name] = out.get(name, 0) + cell[1]
        return out

    # ------------------------------------------------------------------
    # Registration and liveness
    # ------------------------------------------------------------------
    def register(self, endpoint: Endpoint) -> None:
        node_id = endpoint.node_id
        if node_id in self._endpoints:
            raise ValueError(f"node {node_id} already registered")
        self._endpoints[node_id] = endpoint
        self._dead.discard(node_id)
        self._reachable.add(node_id)

    def kill(self, node_id: int) -> None:
        """Crash-stop ``node_id``; in-flight messages to it are dropped."""
        if node_id in self._endpoints:
            self._dead.add(node_id)
            self._reachable.discard(node_id)

    def revive(self, node_id: int) -> None:
        """Bring a previously killed node back (used by churn scenarios)."""
        self._dead.discard(node_id)
        if node_id in self._endpoints:
            self._reachable.add(node_id)

    def remove(self, node_id: int) -> None:
        """Fully deregister a node (after a graceful leave)."""
        self._endpoints.pop(node_id, None)
        self._dead.discard(node_id)
        self._reachable.discard(node_id)

    def is_alive(self, node_id: int) -> bool:
        return node_id in self._reachable

    def alive_nodes(self) -> Set[int]:
        return set(self._reachable)

    # ------------------------------------------------------------------
    # Link failures
    # ------------------------------------------------------------------
    def fail_link(self, a: int, b: int) -> None:
        self._failed_links.add(self._link_key(a, b))

    def restore_link(self, a: int, b: int) -> None:
        self._failed_links.discard(self._link_key(a, b))

    def link_ok(self, a: int, b: int) -> bool:
        return self._link_key(a, b) not in self._failed_links

    @staticmethod
    def _link_key(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, msg: Any, reliable: bool = True) -> None:
        """Send ``msg`` from ``src`` to ``dst``.

        Latency is the model's one-way delay.  See the module docstring
        for the reliable/unreliable semantics.
        """
        if src == dst:
            raise ValueError("a node cannot send a network message to itself")
        self.messages_sent += 1
        cls = type(msg)
        meta = self._msg_meta.get(cls)
        if meta is None:
            # One-time per message class: resolve the name, the unbound
            # wire_size function (None if the class has none), the
            # constant size (None if instance-dependent) and the mutable
            # [count, bytes] counter cell.
            wire_size = getattr(cls, "wire_size", None)
            meta = (
                cls.__name__,
                wire_size if callable(wire_size) else None,
                getattr(cls, "FIXED_WIRE_SIZE", None),
                [0, 0],
            )
            self._msg_meta[cls] = meta
        type_name, wire_size_fn, fixed_size, cell = meta
        cell[0] += 1
        if fixed_size is not None:
            size = fixed_size
        elif wire_size_fn is not None:
            size = wire_size_fn(msg)
        else:
            size = 0
        if size:
            cell[1] += size
        if self.obs.enabled:
            metrics = self.obs.metrics
            metrics.inc("net.sent", type=type_name)
            if size:
                metrics.inc("net.bytes", amount=size, type=type_name)
            key = self._link_key(src, dst)
            self.link_counts[key] = self.link_counts.get(key, 0) + 1
        if self.on_send is not None:
            self.on_send(src, dst, msg)

        rows = self._dense_rows
        delay = rows[src][dst] if rows is not None else self._one_way(src, dst)
        if self.latency_factor != 1.0:
            delay *= self.latency_factor
        # Inlined is_alive + link_ok: this runs for every message.
        broken = dst not in self._reachable or (
            bool(self._failed_links)
            and ((src, dst) if src <= dst else (dst, src)) in self._failed_links
        )

        if reliable:
            if broken:
                # TCP-style: the sender learns after ~1 RTT.
                self.messages_lost += 1
                if self.obs.enabled:
                    self.obs.metrics.inc("net.lost", reason="broken")
                self._schedule(2.0 * delay, self._notify_failure, src, dst, msg)
                return
            floor = self._fifo_floor
            if floor is not None:
                # Latency chaos has been armed at least once: keep
                # reliable delivery FIFO per ordered pair by clamping
                # each arrival to no earlier than the previous one.
                pair = (src, dst)
                arrival = self.sim.now + delay
                previous = floor.get(pair, 0.0)
                if arrival < previous:
                    arrival = previous
                    delay = previous - self.sim.now
                floor[pair] = arrival
        else:
            # UDP-style datagram.
            loss = self.loss_rate
            if self._link_loss:
                extra = self._link_loss.get((src, dst) if src <= dst else (dst, src))
                if extra:
                    loss += extra - loss * extra  # independent drop events
            if broken or (loss > 0.0 and self._rng.random() < loss):
                self.messages_lost += 1
                if self.obs.enabled:
                    self.obs.metrics.inc(
                        "net.lost", reason="broken" if broken else "datagram"
                    )
                return
        sim = self.sim
        calq = self._calq
        if calq is not None:
            # CalendarQueue.push_anon, inlined (same-package fast path):
            # one bare tuple per message, no handle object at all.  One
            # call frame per message was the engine API's entire
            # remaining overhead.
            time = sim.now + delay
            seq = sim._seq
            sim._seq = seq + 1
            item = (-time, -seq, self._deliver, (src, dst, msg))
            idx = int(time * calq.scale)
            if idx <= calq._current_idx:
                cur = calq._current
                insort(cur, item)
                calq._size += 1
                if len(cur) > calq.grow_threshold:
                    calq._grow()
            else:
                buckets = calq._buckets
                bucket = buckets.get(idx)
                if bucket is None:
                    buckets[idx] = [item]
                    heappush(calq._bucket_heap, idx)
                else:
                    bucket.append(item)
                calq._size += 1
        elif self._optimized:
            # Simulator.schedule_anon, inlined: the PR-4 pooled-handle
            # heap path, kept for the wheel,pool A/B configuration.
            time = sim.now + delay
            seq = sim._seq
            sim._seq = seq + 1
            pool = sim._pool
            free = pool._free
            if free:
                handle = free.pop()
                handle.time = time
                handle.seq = seq
                handle.callback = self._deliver
                handle.args = (src, dst, msg)
                handle.cancelled = False
                pool.reused += 1
            else:
                handle = EventHandle(time, seq, self._deliver, (src, dst, msg))
                handle.pooled = True
                pool.created += 1
            heappush(sim._queue, (time, seq, handle))
        else:
            self._schedule(delay, self._deliver, src, dst, msg)

    def _deliver(self, src: int, dst: int, msg: Any) -> None:
        if dst not in self._reachable:
            # Destination died while the message was in flight.
            self.messages_lost += 1
            if self.obs.enabled:
                self.obs.metrics.inc("net.lost", reason="dead-destination")
            return
        self.messages_delivered += 1
        if self.obs.enabled:
            self.obs.metrics.inc("net.delivered", type=type(msg).__name__)
        self._endpoints[dst].handle_message(src, msg)

    def _notify_failure(self, src: int, dst: int, msg: Any) -> None:
        if not self.is_alive(src):
            return
        self._endpoints[src].handle_send_failure(dst, msg)
