"""Simulated message transport.

Two delivery modes mirror the paper's use of the real stack:

* **Reliable** sends model the pre-established TCP connections between
  overlay neighbors: never lost, and FIFO per ordered pair (latency is
  constant per pair and the engine breaks ties by scheduling order, so
  FIFO holds by construction).  If the destination is dead or the link
  has been failed, the *sender* is informed after one RTT — the moral
  equivalent of a TCP reset — via ``handle_send_failure``.
* **Unreliable** sends model UDP (RTT probes between non-neighbors):
  subject to the configured loss rate and silently dropped on dead
  destinations.

The transport also exposes per-message-type counters and an optional
``on_send`` hook used by the link-stress analysis to route every
application-level hop over the physical topology.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional, Protocol, Set, Tuple

from repro import obs as obs_pkg
from repro.net.latency import LatencyModel
from repro.sim.engine import Simulator


class Endpoint(Protocol):
    """What the transport requires of a protocol node."""

    node_id: int

    def handle_message(self, src: int, msg: Any) -> None:
        """Deliver ``msg`` sent by ``src``."""

    def handle_send_failure(self, dst: int, msg: Any) -> None:
        """A reliable send to ``dst`` failed (peer dead or link down)."""


class Network:
    """Routes messages between registered endpoints with realistic delay."""

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        obs: Optional["obs_pkg.Observability"] = None,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.sim = sim
        self.latency = latency
        self.loss_rate = loss_rate
        self.obs = obs if obs is not None else obs_pkg.DISABLED
        #: Per (undirected) link message counts, populated only when
        #: observability is enabled; the source of the link-stress
        #: histogram in ``repro obs summary``.
        self.link_counts: Dict[Tuple[int, int], int] = {}
        self._rng = rng if rng is not None else random.Random(0)
        self._endpoints: Dict[int, Endpoint] = {}
        self._dead: Set[int] = set()
        self._failed_links: Set[Tuple[int, int]] = set()
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_lost = 0
        self.sent_by_type: Dict[str, int] = {}
        self.bytes_by_type: Dict[str, int] = {}
        #: Optional hook called as ``on_send(src, dst, msg)`` for every send.
        self.on_send: Optional[Callable[[int, int, Any], None]] = None

    # ------------------------------------------------------------------
    # Registration and liveness
    # ------------------------------------------------------------------
    def register(self, endpoint: Endpoint) -> None:
        node_id = endpoint.node_id
        if node_id in self._endpoints:
            raise ValueError(f"node {node_id} already registered")
        self._endpoints[node_id] = endpoint
        self._dead.discard(node_id)

    def kill(self, node_id: int) -> None:
        """Crash-stop ``node_id``; in-flight messages to it are dropped."""
        if node_id in self._endpoints:
            self._dead.add(node_id)

    def revive(self, node_id: int) -> None:
        """Bring a previously killed node back (used by churn scenarios)."""
        self._dead.discard(node_id)

    def remove(self, node_id: int) -> None:
        """Fully deregister a node (after a graceful leave)."""
        self._endpoints.pop(node_id, None)
        self._dead.discard(node_id)

    def is_alive(self, node_id: int) -> bool:
        return node_id in self._endpoints and node_id not in self._dead

    def alive_nodes(self) -> Set[int]:
        return {n for n in self._endpoints if n not in self._dead}

    # ------------------------------------------------------------------
    # Link failures
    # ------------------------------------------------------------------
    def fail_link(self, a: int, b: int) -> None:
        self._failed_links.add(self._link_key(a, b))

    def restore_link(self, a: int, b: int) -> None:
        self._failed_links.discard(self._link_key(a, b))

    def link_ok(self, a: int, b: int) -> bool:
        return self._link_key(a, b) not in self._failed_links

    @staticmethod
    def _link_key(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, msg: Any, reliable: bool = True) -> None:
        """Send ``msg`` from ``src`` to ``dst``.

        Latency is the model's one-way delay.  See the module docstring
        for the reliable/unreliable semantics.
        """
        if src == dst:
            raise ValueError("a node cannot send a network message to itself")
        self.messages_sent += 1
        type_name = type(msg).__name__
        self.sent_by_type[type_name] = self.sent_by_type.get(type_name, 0) + 1
        wire_size = getattr(msg, "wire_size", None)
        size = wire_size() if callable(wire_size) else 0
        if size:
            self.bytes_by_type[type_name] = (
                self.bytes_by_type.get(type_name, 0) + size
            )
        if self.obs.enabled:
            metrics = self.obs.metrics
            metrics.inc("net.sent", type=type_name)
            if size:
                metrics.inc("net.bytes", amount=size, type=type_name)
            key = self._link_key(src, dst)
            self.link_counts[key] = self.link_counts.get(key, 0) + 1
        if self.on_send is not None:
            self.on_send(src, dst, msg)

        delay = self.latency.one_way(src, dst)
        broken = not self.is_alive(dst) or not self.link_ok(src, dst)

        if reliable:
            if broken:
                # TCP-style: the sender learns after ~1 RTT.
                self.messages_lost += 1
                if self.obs.enabled:
                    self.obs.metrics.inc("net.lost", reason="broken")
                self.sim.schedule(2.0 * delay, self._notify_failure, src, dst, msg)
                return
            self.sim.schedule(delay, self._deliver, src, dst, msg)
            return

        # UDP-style datagram.
        if broken or (self.loss_rate > 0.0 and self._rng.random() < self.loss_rate):
            self.messages_lost += 1
            if self.obs.enabled:
                self.obs.metrics.inc(
                    "net.lost", reason="broken" if broken else "datagram"
                )
            return
        self.sim.schedule(delay, self._deliver, src, dst, msg)

    def _deliver(self, src: int, dst: int, msg: Any) -> None:
        if not self.is_alive(dst):
            # Destination died while the message was in flight.
            self.messages_lost += 1
            if self.obs.enabled:
                self.obs.metrics.inc("net.lost", reason="dead-destination")
            return
        self.messages_delivered += 1
        if self.obs.enabled:
            self.obs.metrics.inc("net.delivered", type=type(msg).__name__)
        self._endpoints[dst].handle_message(src, msg)

    def _notify_failure(self, src: int, dst: int, msg: Any) -> None:
        if not self.is_alive(src):
            return
        self._endpoints[src].handle_send_failure(dst, msg)
