"""Simulated message transport.

Two delivery modes mirror the paper's use of the real stack:

* **Reliable** sends model the pre-established TCP connections between
  overlay neighbors: never lost, and FIFO per ordered pair (latency is
  constant per pair and the engine breaks ties by scheduling order, so
  FIFO holds by construction).  If the destination is dead or the link
  has been failed, the *sender* is informed after one RTT — the moral
  equivalent of a TCP reset — via ``handle_send_failure``.
* **Unreliable** sends model UDP (RTT probes between non-neighbors):
  subject to the configured loss rate and silently dropped on dead
  destinations.

The transport also exposes per-message-type counters and an optional
``on_send`` hook used by the link-stress analysis to route every
application-level hop over the physical topology.
"""

from __future__ import annotations

import random
from heapq import heappush
from typing import Any, Callable, Dict, Optional, Protocol, Set, Tuple

from repro import obs as obs_pkg
from repro.net.latency import LatencyModel
from repro.sim.engine import EventHandle, Simulator


class Endpoint(Protocol):
    """What the transport requires of a protocol node."""

    node_id: int

    def handle_message(self, src: int, msg: Any) -> None:
        """Deliver ``msg`` sent by ``src``."""

    def handle_send_failure(self, dst: int, msg: Any) -> None:
        """A reliable send to ``dst`` failed (peer dead or link down)."""


class Network:
    """Routes messages between registered endpoints with realistic delay."""

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel,
        loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        obs: Optional["obs_pkg.Observability"] = None,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.sim = sim
        self.latency = latency
        self.loss_rate = loss_rate
        self.obs = obs if obs is not None else obs_pkg.DISABLED
        #: Per (undirected) link message counts, populated only when
        #: observability is enabled; the source of the link-stress
        #: histogram in ``repro obs summary``.
        self.link_counts: Dict[Tuple[int, int], int] = {}
        self._rng = rng if rng is not None else random.Random(0)
        self._endpoints: Dict[int, Endpoint] = {}
        self._dead: Set[int] = set()
        self._failed_links: Set[Tuple[int, int]] = set()
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_lost = 0
        self.sent_by_type: Dict[str, int] = {}
        self.bytes_by_type: Dict[str, int] = {}
        #: Optional hook called as ``on_send(src, dst, msg)`` for every send.
        self.on_send: Optional[Callable[[int, int, Any], None]] = None
        # --- send() fast path (see repro.sim.optim) -------------------
        # Per-message-class memo of (type name, unbound wire_size,
        # fixed size) so the hot loop skips type(msg).__name__ string
        # churn and the per-send bound-method allocation of
        # getattr(msg, "wire_size").  Classes whose size is instance-
        # independent advertise it via a FIXED_WIRE_SIZE class attribute
        # (see repro.core.messages), which skips the wire_size call
        # entirely for the hottest traffic (pings, degree updates).
        self._msg_meta: Dict[
            type, Tuple[str, Optional[Callable[[Any], int]], Optional[int]]
        ] = {}
        # Delivery handles are fire-and-forget, so the optimized path
        # routes them through the engine's pooled event freelist
        # (keyed off the simulator's own state, so a sim constructed
        # with optimize=False never hits the pooled path).
        self._optimized = sim._pool is not None
        self._schedule: Callable[..., Any] = (
            sim.schedule_anon if self._optimized else sim.schedule
        )
        self._one_way = latency.one_way
        # Models may expose a dense per-node table whose cells equal
        # one_way() exactly (matrix/King do); the send loop then indexes
        # it directly instead of calling into the model.
        self._dense_rows = getattr(latency, "dense_rows", None)
        # --- chaos injection (see repro.sim.scenarios) ----------------
        # All default-off with a single cheap guard each in send(), so
        # runs that never touch them stay bit-identical to the seed
        # behaviour (pinned by tests/experiments/test_equivalence.py).
        self.latency_factor = 1.0
        #: Extra per-link datagram loss probability, keyed by link key.
        self._link_loss: Dict[Tuple[int, int], float] = {}
        # Reliable sends model established TCP connections, which are
        # FIFO per ordered pair.  With a constant per-pair delay that
        # holds by construction, but a latency window ending mid-flight
        # would let later (faster) sends overtake earlier (slowed) ones.
        # Once latency chaos is first enabled, every reliable delivery
        # is clamped to arrive no earlier than the pair's previous one.
        self._fifo_floor: Optional[Dict[Tuple[int, int], float]] = None

    # ------------------------------------------------------------------
    # Chaos injection hooks
    # ------------------------------------------------------------------
    def set_loss_rate(self, rate: float) -> None:
        """Change the global datagram loss probability mid-run."""
        if not 0.0 <= rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.loss_rate = rate

    def set_link_loss(self, a: int, b: int, rate: float) -> None:
        """Add per-link datagram loss (0 removes the entry).  Composes
        with the global rate as independent drop events."""
        if not 0.0 <= rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        key = self._link_key(a, b)
        if rate == 0.0:
            self._link_loss.pop(key, None)
        else:
            self._link_loss[key] = rate

    def set_latency_factor(self, factor: float) -> None:
        """Scale every link delay by ``factor`` (latency-spike windows).

        The first call (even back to 1.0) permanently arms the per-pair
        FIFO floor for reliable sends, preserving the modelled-TCP
        ordering across spike edges.
        """
        if factor <= 0:
            raise ValueError("latency factor must be positive")
        self.latency_factor = factor
        if self._fifo_floor is None:
            self._fifo_floor = {}

    # ------------------------------------------------------------------
    # Registration and liveness
    # ------------------------------------------------------------------
    def register(self, endpoint: Endpoint) -> None:
        node_id = endpoint.node_id
        if node_id in self._endpoints:
            raise ValueError(f"node {node_id} already registered")
        self._endpoints[node_id] = endpoint
        self._dead.discard(node_id)

    def kill(self, node_id: int) -> None:
        """Crash-stop ``node_id``; in-flight messages to it are dropped."""
        if node_id in self._endpoints:
            self._dead.add(node_id)

    def revive(self, node_id: int) -> None:
        """Bring a previously killed node back (used by churn scenarios)."""
        self._dead.discard(node_id)

    def remove(self, node_id: int) -> None:
        """Fully deregister a node (after a graceful leave)."""
        self._endpoints.pop(node_id, None)
        self._dead.discard(node_id)

    def is_alive(self, node_id: int) -> bool:
        return node_id in self._endpoints and node_id not in self._dead

    def alive_nodes(self) -> Set[int]:
        return {n for n in self._endpoints if n not in self._dead}

    # ------------------------------------------------------------------
    # Link failures
    # ------------------------------------------------------------------
    def fail_link(self, a: int, b: int) -> None:
        self._failed_links.add(self._link_key(a, b))

    def restore_link(self, a: int, b: int) -> None:
        self._failed_links.discard(self._link_key(a, b))

    def link_ok(self, a: int, b: int) -> bool:
        return self._link_key(a, b) not in self._failed_links

    @staticmethod
    def _link_key(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, msg: Any, reliable: bool = True) -> None:
        """Send ``msg`` from ``src`` to ``dst``.

        Latency is the model's one-way delay.  See the module docstring
        for the reliable/unreliable semantics.
        """
        if src == dst:
            raise ValueError("a node cannot send a network message to itself")
        self.messages_sent += 1
        cls = type(msg)
        meta = self._msg_meta.get(cls)
        if meta is None:
            # One-time per message class: resolve the name, the unbound
            # wire_size function (None if the class has none) and the
            # constant size (None if instance-dependent).
            wire_size = getattr(cls, "wire_size", None)
            meta = (
                cls.__name__,
                wire_size if callable(wire_size) else None,
                getattr(cls, "FIXED_WIRE_SIZE", None),
            )
            self._msg_meta[cls] = meta
        type_name, wire_size_fn, fixed_size = meta
        by_type = self.sent_by_type
        try:
            by_type[type_name] += 1
        except KeyError:
            by_type[type_name] = 1
        if fixed_size is not None:
            size = fixed_size
        elif wire_size_fn is not None:
            size = wire_size_fn(msg)
        else:
            size = 0
        if size:
            bytes_by_type = self.bytes_by_type
            try:
                bytes_by_type[type_name] += size
            except KeyError:
                bytes_by_type[type_name] = size
        if self.obs.enabled:
            metrics = self.obs.metrics
            metrics.inc("net.sent", type=type_name)
            if size:
                metrics.inc("net.bytes", amount=size, type=type_name)
            key = self._link_key(src, dst)
            self.link_counts[key] = self.link_counts.get(key, 0) + 1
        if self.on_send is not None:
            self.on_send(src, dst, msg)

        rows = self._dense_rows
        delay = rows[src][dst] if rows is not None else self._one_way(src, dst)
        if self.latency_factor != 1.0:
            delay *= self.latency_factor
        # Inlined is_alive + link_ok: this runs for every message.
        broken = (
            dst in self._dead
            or dst not in self._endpoints
            or (
                bool(self._failed_links)
                and ((src, dst) if src <= dst else (dst, src)) in self._failed_links
            )
        )

        if reliable:
            if broken:
                # TCP-style: the sender learns after ~1 RTT.
                self.messages_lost += 1
                if self.obs.enabled:
                    self.obs.metrics.inc("net.lost", reason="broken")
                self._schedule(2.0 * delay, self._notify_failure, src, dst, msg)
                return
            floor = self._fifo_floor
            if floor is not None:
                # Latency chaos has been armed at least once: keep
                # reliable delivery FIFO per ordered pair by clamping
                # each arrival to no earlier than the previous one.
                pair = (src, dst)
                arrival = self.sim.now + delay
                previous = floor.get(pair, 0.0)
                if arrival < previous:
                    arrival = previous
                    delay = previous - self.sim.now
                floor[pair] = arrival
        else:
            # UDP-style datagram.
            loss = self.loss_rate
            if self._link_loss:
                extra = self._link_loss.get((src, dst) if src <= dst else (dst, src))
                if extra:
                    loss += extra - loss * extra  # independent drop events
            if broken or (loss > 0.0 and self._rng.random() < loss):
                self.messages_lost += 1
                if self.obs.enabled:
                    self.obs.metrics.inc(
                        "net.lost", reason="broken" if broken else "datagram"
                    )
                return
        sim = self.sim
        if self._optimized:
            # Simulator.schedule_anon, inlined (same-package fast path):
            # one call frame per message was the engine API's entire
            # remaining overhead.
            time = sim.now + delay
            seq = sim._seq
            sim._seq = seq + 1
            pool = sim._pool
            free = pool._free
            if free:
                handle = free.pop()
                handle.time = time
                handle.seq = seq
                handle.callback = self._deliver
                handle.args = (src, dst, msg)
                handle.cancelled = False
                pool.reused += 1
            else:
                handle = EventHandle(time, seq, self._deliver, (src, dst, msg))
                handle.pooled = True
                pool.created += 1
            heappush(sim._queue, (time, seq, handle))
        else:
            self._schedule(delay, self._deliver, src, dst, msg)

    def _deliver(self, src: int, dst: int, msg: Any) -> None:
        endpoint = self._endpoints.get(dst)
        if endpoint is None or dst in self._dead:
            # Destination died while the message was in flight.
            self.messages_lost += 1
            if self.obs.enabled:
                self.obs.metrics.inc("net.lost", reason="dead-destination")
            return
        self.messages_delivered += 1
        if self.obs.enabled:
            self.obs.metrics.inc("net.delivered", type=type(msg).__name__)
        endpoint.handle_message(src, msg)

    def _notify_failure(self, src: int, dst: int, msg: Any) -> None:
        if not self.is_alive(src):
            return
        self._endpoints[src].handle_send_failure(dst, msg)
