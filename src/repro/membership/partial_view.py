"""A bounded, uniformly sampled partial view of the system membership.

The view supports O(1) insertion, deletion, and uniform random sampling
(list + index-map representation), plus the two access patterns GoCast's
maintenance protocols need: uniform random picks (random-neighbor
repair) and stable round-robin iteration (nearby-neighbor candidate
scanning, Section 2.2.3).

Eviction is uniform-random when the view overflows, which — combined
with receiving random addresses piggybacked on gossips — keeps the view
an approximately uniform sample of the live membership [5].
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Set


class PartialView:
    """Bounded random subset of node ids, excluding the owner."""

    def __init__(self, owner: int, rng: random.Random, max_size: int = 120):
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        self.owner = owner
        self.max_size = max_size
        self._rng = rng
        self._members: List[int] = []
        self._index: dict = {}
        self._rr_cursor = 0

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node: int) -> bool:
        return node in self._index

    def members(self) -> List[int]:
        """A copy of the current view."""
        return list(self._members)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, node: int) -> bool:
        """Insert ``node``; returns True if the view changed."""
        if node == self.owner or node in self._index:
            return False
        if len(self._members) >= self.max_size:
            self._evict_random()
        self._index[node] = len(self._members)
        self._members.append(node)
        return True

    def add_many(self, nodes: Iterable[int]) -> int:
        return sum(1 for node in nodes if self.add(node))

    def remove(self, node: int) -> bool:
        """Remove ``node`` (e.g. after discovering it failed)."""
        pos = self._index.pop(node, None)
        if pos is None:
            return False
        last = self._members.pop()
        if pos < len(self._members):
            self._members[pos] = last
            self._index[last] = pos
        return True

    def _evict_random(self) -> None:
        victim = self._members[self._rng.randrange(len(self._members))]
        self.remove(victim)

    # ------------------------------------------------------------------
    # Access patterns
    # ------------------------------------------------------------------
    def random_member(self, exclude: Optional[Set[int]] = None) -> Optional[int]:
        """Uniform random member not in ``exclude``; None if exhausted."""
        if not self._members:
            return None
        if not exclude:
            return self._members[self._rng.randrange(len(self._members))]
        # Try a few cheap draws before paying for the filtered fallback.
        for _ in range(4):
            pick = self._members[self._rng.randrange(len(self._members))]
            if pick not in exclude:
                return pick
        eligible = [m for m in self._members if m not in exclude]
        if not eligible:
            return None
        return eligible[self._rng.randrange(len(eligible))]

    def sample(self, k: int, exclude: Optional[Set[int]] = None) -> List[int]:
        """Up to ``k`` distinct random members (for gossip piggybacking)."""
        pool = (
            self._members
            if not exclude
            else [m for m in self._members if m not in exclude]
        )
        if len(pool) <= k:
            return list(pool)
        return self._rng.sample(pool, k)

    def sample_excluding(self, k: int, peer: int) -> List[int]:
        """:meth:`sample` with a single excluded id — the per-gossip
        piggyback case — trading the set build and per-member hash for
        one int comparison.  Draws the same RNG sequence as
        ``sample(k, {peer})`` (identical pool, same order)."""
        pool = [m for m in self._members if m != peer]
        if len(pool) <= k:
            return pool
        return self._rng.sample(pool, k)

    def round_robin_next(self, exclude: Optional[Set[int]] = None) -> Optional[int]:
        """Next candidate in a stable circular scan of the view.

        Used by the nearby-neighbor maintenance: "node X still
        continuously tries to replace its current nearby neighbors by
        considering candidate nodes in S in a round robin fashion."
        """
        n = len(self._members)
        if n == 0:
            return None
        for _ in range(n):
            self._rr_cursor %= len(self._members)
            candidate = self._members[self._rr_cursor]
            self._rr_cursor += 1
            if exclude is None or candidate not in exclude:
                return candidate
        return None

    def round_robin_next_filtered(self, excl_a, excl_b) -> Optional[int]:
        """:meth:`round_robin_next` testing exclusion against two
        containers directly (dict/set membership), so the per-tick
        candidate scan never builds a merged exclude set.  Cursor
        advancement is identical to passing ``excl_a | excl_b``.
        """
        members = self._members
        n = len(members)
        if n == 0:
            return None
        for _ in range(n):
            self._rr_cursor %= n
            candidate = members[self._rr_cursor]
            self._rr_cursor += 1
            if candidate not in excl_a and candidate not in excl_b:
                return candidate
        return None
