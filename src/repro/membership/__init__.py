"""Partial membership service (lpbcast-style).

Each node knows a uniformly random subset of the system; the knowledge
is refreshed by piggybacking a few random addresses on the gossips
exchanged between overlay neighbors, as in Lightweight Probabilistic
Broadcast [5] — the paper omits the details and defers to [5, 16].
"""

from repro.membership.partial_view import PartialView

__all__ = ["PartialView"]
