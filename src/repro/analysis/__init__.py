"""Analysis utilities: closed-form models and graph/traffic metrics.

* :mod:`repro.analysis.reliability` — the push-gossip reliability model
  behind Figure 1.
* :mod:`repro.analysis.graphstats` — overlay snapshots: degree
  distributions, connectivity under failures, diameter, link latencies.
* :mod:`repro.analysis.linkstress` — physical-link stress accounting
  over an AS topology.
"""

from repro.analysis.graphstats import OverlaySnapshot
from repro.analysis.inspect import node_summary, overlay_summary, render_tree
from repro.analysis.linkstress import LinkStressAccumulator
from repro.analysis.reliability import (
    atomic_broadcast_probability,
    min_fanout_for_reliability,
    multi_message_probability,
)

__all__ = [
    "LinkStressAccumulator",
    "OverlaySnapshot",
    "atomic_broadcast_probability",
    "min_fanout_for_reliability",
    "multi_message_probability",
    "node_summary",
    "overlay_summary",
    "render_tree",
]
