"""Graph analytics over overlay snapshots.

An :class:`OverlaySnapshot` freezes the union of all nodes' neighbor
tables at one simulated instant and answers the structural questions the
paper's evaluation asks: degree distributions (Figure 5a), average link
latencies for random/nearby/tree links (Figure 5b), largest-component
survival under random node failures (Figure 6), and overlay diameter in
hops (summary result 3).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.core.messages import RANDOM


class OverlaySnapshot:
    """Immutable structural snapshot of a set of GoCast nodes."""

    def __init__(self, nodes: Iterable) -> None:
        """``nodes`` is an iterable of live :class:`GoCastNode` objects."""
        self.graph = nx.Graph()
        self.tree = nx.Graph()
        link_kind: Dict[Tuple[int, int], str] = {}
        link_rtt: Dict[Tuple[int, int], float] = {}
        node_list = list(nodes)
        for node in node_list:
            self.graph.add_node(node.node_id)
        alive_ids = set(self.graph.nodes)
        for node in node_list:
            for peer, state in node.overlay.table.items():
                if peer not in alive_ids:
                    continue
                key = (node.node_id, peer) if node.node_id < peer else (peer, node.node_id)
                self.graph.add_edge(*key)
                link_rtt[key] = state.rtt
                # A link is "random" if either endpoint classified it so
                # (classification is agreed at establishment; this guards
                # against transient disagreement).
                existing = link_kind.get(key)
                if existing != RANDOM:
                    link_kind[key] = state.kind
            for peer in node.tree.tree_neighbors():
                if peer in alive_ids:
                    self.tree.add_edge(node.node_id, peer)
        self._link_kind = link_kind
        self._link_rtt = link_rtt

    # ------------------------------------------------------------------
    # Degrees (Figure 5a)
    # ------------------------------------------------------------------
    def degrees(self) -> List[int]:
        return [d for _, d in self.graph.degree]

    def degree_histogram(self) -> Dict[int, int]:
        hist: Dict[int, int] = {}
        for d in self.degrees():
            hist[d] = hist.get(d, 0) + 1
        return hist

    def degree_fraction(self, degree: int) -> float:
        degs = self.degrees()
        if not degs:
            return 0.0
        return sum(1 for d in degs if d == degree) / len(degs)

    def mean_degree(self) -> float:
        degs = self.degrees()
        return float(np.mean(degs)) if degs else 0.0

    # ------------------------------------------------------------------
    # Link latencies (Figure 5b)
    # ------------------------------------------------------------------
    def mean_link_latency(self, kind: Optional[str] = None) -> float:
        """Mean one-way link latency; ``kind`` filters random/nearby."""
        values = [
            rtt / 2.0
            for key, rtt in self._link_rtt.items()
            if kind is None or self._link_kind.get(key) == kind
        ]
        return float(np.mean(values)) if values else 0.0

    def mean_tree_link_latency(self, latency_model) -> float:
        """Mean one-way latency over current tree links."""
        values = [latency_model.one_way(a, b) for a, b in self.tree.edges]
        return float(np.mean(values)) if values else 0.0

    def count_links(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return self.graph.number_of_edges()
        return sum(1 for k in self._link_kind.values() if k == kind)

    # ------------------------------------------------------------------
    # Connectivity & resilience (Figure 6)
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        if self.graph.number_of_nodes() == 0:
            return True
        return nx.is_connected(self.graph)

    def largest_component_fraction(self) -> float:
        n = self.graph.number_of_nodes()
        if n == 0:
            return 1.0
        largest = max(nx.connected_components(self.graph), key=len)
        return len(largest) / n

    def largest_component_after_failures(
        self, fail_fraction: float, rng: Optional[random.Random] = None
    ) -> float:
        """Figure 6's metric: remove a random fraction of nodes, report
        the fraction of *surviving* nodes in the largest component."""
        if not 0.0 <= fail_fraction < 1.0:
            raise ValueError("fail_fraction must be in [0, 1)")
        rng = rng if rng is not None else random.Random(0)
        nodes = list(self.graph.nodes)
        k = int(round(fail_fraction * len(nodes)))
        victims = set(rng.sample(nodes, k))
        survivor_graph = self.graph.subgraph(n for n in nodes if n not in victims)
        n_live = survivor_graph.number_of_nodes()
        if n_live == 0:
            return 1.0
        largest = max(nx.connected_components(survivor_graph), key=len)
        return len(largest) / n_live

    # ------------------------------------------------------------------
    # Diameter (summary result 3)
    # ------------------------------------------------------------------
    def diameter_hops(self, sample: int = 64, rng: Optional[random.Random] = None) -> int:
        """Overlay diameter in hops (exact for small graphs, else a
        double-sweep BFS estimate from sampled sources)."""
        if not self.is_connected():
            raise ValueError("diameter undefined on a disconnected overlay")
        n = self.graph.number_of_nodes()
        if n <= 1:
            return 0
        if n <= 256:
            return nx.diameter(self.graph)
        rng = rng if rng is not None else random.Random(0)
        nodes = list(self.graph.nodes)
        best = 0
        for _ in range(min(sample, n)):
            start = nodes[rng.randrange(n)]
            dist = nx.single_source_shortest_path_length(self.graph, start)
            far_node, far_dist = max(dist.items(), key=lambda kv: kv[1])
            best = max(best, far_dist)
            dist2 = nx.single_source_shortest_path_length(self.graph, far_node)
            best = max(best, max(dist2.values()))
        return best

    # ------------------------------------------------------------------
    # Tree structure
    # ------------------------------------------------------------------
    def tree_is_spanning(self) -> bool:
        """True if the tree links connect every overlay node."""
        if self.graph.number_of_nodes() == 0:
            return True
        if set(self.tree.nodes) != set(self.graph.nodes):
            return False
        return nx.is_connected(self.tree)

    def tree_is_acyclic(self) -> bool:
        return nx.is_forest(self.tree) if self.tree.number_of_nodes() else True
