"""Closed-form reliability of push-based gossip (Figure 1).

From epidemic theory [6]: in an ``n``-node system where every node that
receives a message pushes its ID to ``F`` uniformly random nodes, the
probability that *all* nodes hear about one given message is

    p1(n, F) = exp(-exp(ln(n) - F))

and, by independence across messages, the probability that all nodes
hear about ``m`` messages is ``p1 ** m = exp(-m * exp(ln(n) - F))``.

Figure 1 plots ``p1`` and ``p1000`` for ``n = 1024``: even with zero
faults, fanout must reach ~15 before 1,000-message reliability passes
0.5 — the paper's core argument for *controlled* redundancy.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def atomic_broadcast_probability(n: int, fanout: float) -> float:
    """P(all ``n`` nodes hear one message) under push gossip with ``fanout``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if fanout < 0:
        raise ValueError("fanout must be non-negative")
    if n == 1:
        return 1.0
    return math.exp(-math.exp(math.log(n) - fanout))

def multi_message_probability(n: int, fanout: float, n_messages: int) -> float:
    """P(all nodes hear all of ``n_messages`` messages)."""
    if n_messages < 0:
        raise ValueError("n_messages must be non-negative")
    if n_messages == 0:
        return 1.0
    if n == 1:
        return 1.0
    # exp(-m * exp(ln n - F)) — computed in log space for stability.
    return math.exp(-n_messages * math.exp(math.log(n) - fanout))


def min_fanout_for_reliability(n: int, n_messages: int, target: float) -> int:
    """Smallest integer fanout achieving the target reliability."""
    if not 0.0 < target < 1.0:
        raise ValueError("target must be in (0, 1)")
    fanout = 0
    while multi_message_probability(n, fanout, n_messages) < target:
        fanout += 1
        if fanout > 128:
            raise RuntimeError("fanout search did not converge")
    return fanout


def figure1_series(
    n: int = 1024,
    fanouts: Sequence[int] = tuple(range(1, 26)),
) -> Tuple[List[float], List[float]]:
    """The two curves of Figure 1: (P[1 message], P[1000 messages])."""
    one = [atomic_broadcast_probability(n, f) for f in fanouts]
    thousand = [multi_message_probability(n, f, 1000) for f in fanouts]
    return one, thousand
