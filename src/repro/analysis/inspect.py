"""Human-readable introspection of a running GoCast deployment.

Debugging aids for library users: render the dissemination tree as
ASCII, and summarize a node's protocol state in one line each.  Both
work on any iterable of live :class:`~repro.core.node.GoCastNode`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List


def render_tree(nodes: Iterable, max_depth: int = 12) -> str:
    """ASCII rendering of the tree implied by the nodes' parent pointers.

    Orphaned nodes (no parent, not the root) are listed separately —
    their presence usually means a repair is in flight.
    """
    node_list = list(nodes)
    by_id = {n.node_id: n for n in node_list}
    children: Dict[int, List[int]] = {}
    roots: List[int] = []
    orphans: List[int] = []
    for node in node_list:
        tree = node.tree
        if tree.is_root:
            roots.append(node.node_id)
        elif tree.parent is None or tree.parent not in by_id:
            orphans.append(node.node_id)
        else:
            children.setdefault(tree.parent, []).append(node.node_id)

    lines: List[str] = []
    rendered: set = set()

    def emit(node_id: int, prefix: str, is_last: bool, depth: int) -> None:
        rendered.add(node_id)
        node = by_id[node_id]
        dist = node.tree.dist
        dist_str = "inf" if math.isinf(dist) else f"{dist * 1000:.0f}ms"
        connector = "`-- " if is_last else "|-- "
        lines.append(f"{prefix}{connector}{node_id} ({dist_str})")
        if depth >= max_depth:
            below = _descendants(node_id, children)
            if below:
                lines.append(
                    f"{prefix}    ... subtree elided ({len(below)} nodes)"
                )
                rendered.update(below)
            return
        kids = sorted(children.get(node_id, []))
        child_prefix = prefix + ("    " if is_last else "|   ")
        for i, kid in enumerate(kids):
            emit(kid, child_prefix, i == len(kids) - 1, depth + 1)

    for root in sorted(roots):
        rendered.add(root)
        lines.append(f"root {root}")
        for i, kid in enumerate(sorted(children.get(root, []))):
            emit(kid, "", i == len(children.get(root, [])) - 1, 1)
    if orphans:
        rendered.update(orphans)
        lines.append(f"orphans (repair in flight): {sorted(orphans)}")
    # Nodes whose parent chains never reach a root: transient parent
    # cycles mid-repair (the next heartbeat wave dissolves them).
    detached = sorted(set(by_id) - rendered)
    if detached:
        lines.append(f"unreachable from any root (cycle mid-repair): {detached}")
    if not roots:
        lines.append("(no root claimed)")
    return "\n".join(lines)


def _descendants(node_id: int, children: Dict[int, List[int]]) -> List[int]:
    out: List[int] = []
    stack = list(children.get(node_id, []))
    seen = set()
    while stack:
        cur = stack.pop()
        if cur in seen:
            continue
        seen.add(cur)
        out.append(cur)
        stack.extend(children.get(cur, []))
    return out


def node_summary(node) -> str:
    """One-line protocol state of a node."""
    tree = node.tree
    dist = "inf" if math.isinf(tree.dist) else f"{tree.dist * 1000:.0f}ms"
    role = "ROOT" if tree.is_root else f"parent={tree.parent}"
    return (
        f"node {node.node_id}: d_rand={node.overlay.d_rand} "
        f"d_near={node.overlay.d_near} {role} dist={dist} "
        f"children={sorted(tree.children)} buffered={len(node.disseminator.buffer)} "
        f"view={len(node.view)}"
    )


def overlay_summary(nodes: Iterable) -> str:
    """Multi-line dump: one `node_summary` per live node."""
    return "\n".join(node_summary(n) for n in sorted(nodes, key=lambda n: n.node_id))
