"""Physical-link stress accounting (summary result 4).

Application-level multicast makes every protocol hop a unicast flow over
the physical network.  Routing each hop over the AS topology and
counting per-link crossings reveals what random gossip hides: with
latency-oblivious targets, traffic concentrates on the backbone's hub
links, while GoCast's proximity-aware links keep most traffic inside
regions.  The paper reports GoCast reducing bottleneck-link traffic by
4–7x versus fanout-5 push gossip.

The accumulator plugs into :attr:`repro.sim.transport.Network.on_send`,
so it observes every message of a live simulation without the protocols
knowing they are being measured.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.net.astopo import Edge, RoutedTopology


def _edge_key(edge: Edge) -> Edge:
    u, v = edge
    return (u, v) if u <= v else (v, u)


class LinkStressAccumulator:
    """Counts per-physical-link message crossings (optionally byte-weighted).

    ``message_filter``, if given, restricts accounting to matching
    messages — e.g. the dissemination path only, excluding constant-rate
    control traffic (RTT probes, keepalives) that amortizes to nothing
    at production message rates.
    """

    def __init__(
        self,
        topology: RoutedTopology,
        weight_by_bytes: bool = False,
        message_filter=None,
    ):
        self.topology = topology
        self.weight_by_bytes = weight_by_bytes
        self.message_filter = message_filter
        self._stress: Dict[Edge, float] = {}
        self.messages_routed = 0

    def on_send(self, src: int, dst: int, msg: object) -> None:
        """Network hook: route one protocol message over the AS graph."""
        if self.message_filter is not None and not self.message_filter(msg):
            return
        weight = 1.0
        if self.weight_by_bytes:
            wire_size = getattr(msg, "wire_size", None)
            weight = float(wire_size()) if callable(wire_size) else 1.0
        self.messages_routed += 1
        for edge in self.topology.route_edges(src, dst):
            self._stress[edge] = self._stress.get(edge, 0.0) + weight

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def stresses(self) -> List[float]:
        """Per-link stress for links that carried any traffic."""
        return list(self._stress.values())

    def max_stress(self) -> float:
        return max(self._stress.values()) if self._stress else 0.0

    def mean_stress(self) -> float:
        values = self.stresses()
        return float(np.mean(values)) if values else 0.0

    def percentile(self, q: float) -> float:
        values = self.stresses()
        return float(np.percentile(values, q)) if values else 0.0

    def top_links(self, k: int = 10) -> List[Tuple[Edge, float]]:
        """The ``k`` most stressed physical links (the bottlenecks)."""
        ranked = sorted(self._stress.items(), key=lambda kv: kv[1], reverse=True)
        return ranked[:k]

    def bottleneck_stress(self, top_fraction: float = 0.01) -> float:
        """Mean stress over the most-stressed ``top_fraction`` of links.

        This is the "load on bottleneck network links" the paper
        compares: the heavy tail, not the average.
        """
        values = sorted(self._stress.values(), reverse=True)
        if not values:
            return 0.0
        k = max(1, int(round(top_fraction * self.topology.edge_count())))
        return float(np.mean(values[:k]))

    def stress_over(self, edges) -> Tuple[float, float]:
        """(max, mean) stress restricted to the given physical links.

        Used with :meth:`TransitStubTopology.backbone_edges` to measure
        load on the long-haul links specifically.
        """
        values = [self._stress.get(_edge_key(e), 0.0) for e in edges]
        if not values:
            return 0.0, 0.0
        return float(max(values)), float(np.mean(values))

    def total_traffic(self) -> float:
        return float(sum(self._stress.values()))
