"""Capacity time-series sampling.

The counters the observability layer already keeps are *endpoint*
numbers: one total per run.  :class:`CapacitySampler` turns the
capacity-relevant ones into a *trajectory*: a read-only sim timer
(:class:`~repro.obs.health.HealthMonitor` is the template) samples,
every ``period`` simulated seconds,

* the engine's event throughput (``events_executed`` delta per sim
  second) and scheduler occupancy (heap / calendar-queue / timer-wheel
  entries, from :meth:`~repro.sim.engine.Simulator.scheduler_stats`),
* live protocol state — alive nodes, buffered (live) messages, pending
  pull-repairs,
* per-layer message and byte rates derived from the transport's
  per-type counters (``sent_by_type`` / ``bytes_by_type`` deltas,
  bucketed into overlay / tree / gossip / dissemination layers).

Samples land in three places at once: a :class:`SeriesSample` row kept
by the sampler, ``capacity.*`` time series in the metrics registry, and
a ``capacity.sample`` trace event — which the Chrome-trace exporter
(:mod:`repro.obs.export`) renders as counter tracks, so queue depth and
byte rates plot as line charts under the protocol timeline.

The sampler is strictly read-only with respect to the protocol: its
timer callback inspects engine/transport/node state, never mutates it,
and draws from no simulation RNG, so enabling it cannot change a seeded
run's protocol behaviour (same contract as the health monitor, pinned
by ``tests/obs/test_series.py``).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, NamedTuple, Optional

from repro.sim.timers import PeriodicTimer

#: Message-layer buckets for the per-type transport counters.  First
#: match by exact type name; unknown types fall into ``other``.
LAYERS = ("overlay", "tree", "gossip", "dissem", "other")

LAYER_BY_TYPE: Dict[str, str] = {
    # Overlay construction and maintenance (C1-C4).
    "JoinRequest": "overlay",
    "JoinReply": "overlay",
    "LinkRequest": "overlay",
    "LinkAccept": "overlay",
    "LinkReject": "overlay",
    "LinkDrop": "overlay",
    "RewireRequest": "overlay",
    "Ping": "overlay",
    "Pong": "overlay",
    "DegreeUpdate": "overlay",
    # Embedded dissemination tree.
    "TreeHeartbeat": "tree",
    "TreeAttach": "tree",
    "TreeDetach": "tree",
    # Gossip summaries.
    "Gossip": "gossip",
    # Payload dissemination and pull repair.
    "MulticastData": "dissem",
    "PullRequest": "dissem",
    "PullData": "dissem",
}


def layer_of(type_name: str) -> str:
    """Layer bucket for a wire-message type name."""
    return LAYER_BY_TYPE.get(type_name, "other")


class SeriesSample(NamedTuple):
    """One capacity snapshot at simulated ``time``.

    Rates are per simulated second over the preceding sampling interval
    (deterministic: derived from sim time and exact counters, never from
    the wall clock).
    """

    time: float
    live: int
    events_scheduled: int
    events_per_sec: float
    pending_events: int
    sched_queue: int  # heap or calendar-queue entries (corpses included)
    sched_wheel: int
    live_messages: float  # NaN when nodes expose no message buffer
    pending_pulls: float  # NaN likewise
    msg_rate: float  # all layers combined, messages / sim second
    byte_rate: float  # all layers combined, wire bytes / sim second
    msg_rate_overlay: float
    msg_rate_tree: float
    msg_rate_gossip: float
    msg_rate_dissem: float
    byte_rate_overlay: float
    byte_rate_tree: float
    byte_rate_gossip: float
    byte_rate_dissem: float


#: The sampled quantities (everything but the timestamp).
SERIES_FIELDS = SeriesSample._fields[1:]


class CapacitySampler:
    """Samples engine/transport/protocol capacity on a periodic sim timer."""

    def __init__(self, nodes: Optional[Dict[int, Any]], network, obs, period: float = 1.0):
        if period <= 0:
            raise ValueError(f"series period must be positive, got {period}")
        self.nodes = nodes or {}
        self.network = network
        self.obs = obs
        self.period = period
        self.samples: List[SeriesSample] = []
        self._timer: Optional[PeriodicTimer] = None
        self._sim = None
        # Baselines for the delta-derived rates.
        self._last_time = 0.0
        self._last_retired = 0
        self._last_counts: Dict[str, int] = {}
        self._last_bytes: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, sim, phase: Optional[float] = None) -> None:
        """Arm the sampling timer (first sample after one period)."""
        self._sim = sim
        self._last_time = sim.now
        self._last_retired = sim._seq - sim.pending_events
        self._last_counts = dict(self.network.sent_by_type)
        self._last_bytes = dict(self.network.bytes_by_type)
        if self._timer is None:
            # obs=None: the sampler should not flood timer.fire events.
            self._timer = PeriodicTimer(sim, self.period, self._sample, name="capacity")
        self._timer.start(phase=phase)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _sample(self) -> None:
        sim = self._sim
        now = sim.now if sim is not None else 0.0
        dt = now - self._last_time
        if dt <= 0:
            dt = self.period

        # During a run the engine keeps its executed counter in a loop
        # local (see Simulator._run), so events_executed is stale from
        # inside a timer callback.  Retired events — allocated sequence
        # numbers minus still-pending entries — are live, deterministic,
        # and equal executed + collected cancellations, which is the
        # right throughput gauge for capacity purposes anyway.
        scheduled = sim._seq if sim is not None else 0
        sched = sim.scheduler_stats() if sim is not None else {}
        retired = scheduled - int(sched.get("pending", 0))
        events_per_sec = (retired - self._last_retired) / dt

        counts = dict(self.network.sent_by_type)
        nbytes = dict(self.network.bytes_by_type)
        msg_deltas = {layer: 0 for layer in LAYERS}
        byte_deltas = {layer: 0 for layer in LAYERS}
        for name, total in counts.items():
            msg_deltas[layer_of(name)] += total - self._last_counts.get(name, 0)
        for name, total in nbytes.items():
            byte_deltas[layer_of(name)] += total - self._last_bytes.get(name, 0)

        alive = self.network.alive_nodes()
        live_messages = 0
        pending_pulls = 0
        buffered = False
        for nid, node in self.nodes.items():
            if nid not in alive:
                continue
            dissem = getattr(node, "disseminator", None)
            if dissem is not None:
                buffered = True
                live_messages += len(dissem.buffer)
                pending_pulls += dissem.pending_pulls

        sample = SeriesSample(
            time=now,
            live=len(alive),
            events_scheduled=scheduled,
            events_per_sec=events_per_sec,
            pending_events=int(sched.get("pending", 0)),
            sched_queue=int(sched.get("heap_len", 0) + sched.get("calqueue_len", 0)),
            sched_wheel=int(sched.get("wheel_count", 0)),
            live_messages=float(live_messages) if buffered else math.nan,
            pending_pulls=float(pending_pulls) if buffered else math.nan,
            msg_rate=sum(msg_deltas.values()) / dt,
            byte_rate=sum(byte_deltas.values()) / dt,
            msg_rate_overlay=msg_deltas["overlay"] / dt,
            msg_rate_tree=msg_deltas["tree"] / dt,
            msg_rate_gossip=msg_deltas["gossip"] / dt,
            msg_rate_dissem=msg_deltas["dissem"] / dt,
            byte_rate_overlay=byte_deltas["overlay"] / dt,
            byte_rate_tree=byte_deltas["tree"] / dt,
            byte_rate_gossip=byte_deltas["gossip"] / dt,
            byte_rate_dissem=byte_deltas["dissem"] / dt,
        )
        self.samples.append(sample)
        self._last_time = now
        self._last_retired = retired
        self._last_counts = counts
        self._last_bytes = nbytes

        metrics = self.obs.metrics
        for field in SERIES_FIELDS:
            metrics.record(f"capacity.{field}", now, float(getattr(sample, field)))
        self.obs.tracer.emit(
            now, "capacity.sample",
            **{field: getattr(sample, field) for field in SERIES_FIELDS},
        )

    # ------------------------------------------------------------------
    # Snapshots and merging
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form carried inside obs snapshots (JSON-safe apart
        from NaN, which the batch layer's serializer handles)."""
        summary: Dict[str, Dict[str, float]] = {}
        for field in SERIES_FIELDS:
            values = [
                float(getattr(s, field))
                for s in self.samples
                if not math.isnan(float(getattr(s, field)))
            ]
            if values:
                summary[field] = {
                    "min": min(values), "max": max(values), "final": values[-1],
                }
        return {
            "period": self.period,
            "n_samples": len(self.samples),
            "fields": list(SeriesSample._fields),
            "samples": [[float(v) for v in s] for s in self.samples],
            "summary": summary,
        }


def merge_series_sections(sections: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate per-trial capacity rollups (order-invariant).

    Raw sample rows are not carried across the merge — trials have
    unrelated timelines — only the per-field envelope.  Float means use
    sorted ``fsum`` so the result is bit-identical for any trial
    ordering (the same discipline as the health merge).
    """
    merged: Dict[str, Any] = {
        "n_trials": len(sections),
        "n_samples": sum(s.get("n_samples", 0) for s in sections),
    }
    periods = sorted(s.get("period", 0.0) for s in sections)
    merged["period"] = math.fsum(periods) / len(periods) if periods else 0.0

    summary: Dict[str, Dict[str, float]] = {}
    for field in SERIES_FIELDS:
        mins = sorted(
            s["summary"][field]["min"] for s in sections if field in s.get("summary", {})
        )
        maxs = sorted(
            s["summary"][field]["max"] for s in sections if field in s.get("summary", {})
        )
        finals = sorted(
            s["summary"][field]["final"] for s in sections if field in s.get("summary", {})
        )
        if finals:
            summary[field] = {
                "min": mins[0],
                "max": maxs[-1],
                "final_mean": math.fsum(finals) / len(finals),
            }
    merged["summary"] = summary
    return merged


def format_series(capacity: Dict[str, Any], limit: int = 24) -> str:
    """Render a capacity trajectory (single-trial dict) for the CLI."""
    fields = capacity.get("fields", ["time", *SERIES_FIELDS])
    rows = capacity.get("samples", [])
    lines = ["== capacity trajectory =="]
    lines.append(
        f"{len(rows)} samples every {capacity.get('period', 0.0):g}s "
        f"({len(rows) * capacity.get('period', 0.0):g}s covered)"
    )
    headers = ["time", "live", "ev/s", "queue", "wheel", "msgs", "pulls",
               "msg/s", "kB/s", "ovl/s", "tree/s", "gsp/s", "dsm/s"]
    if rows:
        lines.append("  ".join(f"{h:>7}" for h in headers))
        step = max(1, math.ceil(len(rows) / limit))
        shown = rows[::step]
        if rows and shown[-1] is not rows[-1]:
            shown.append(rows[-1])
        for row in shown:
            s = dict(zip(fields, row))
            lines.append(
                "  ".join(
                    [
                        f"{s['time']:>7.2f}",
                        f"{int(s['live']):>7d}",
                        f"{s['events_per_sec']:>7.0f}",
                        f"{int(s['sched_queue']):>7d}",
                        f"{int(s['sched_wheel']):>7d}",
                        _cell(s["live_messages"], "d"),
                        _cell(s["pending_pulls"], "d"),
                        f"{s['msg_rate']:>7.0f}",
                        f"{s['byte_rate'] / 1024.0:>7.1f}",
                        f"{s['msg_rate_overlay']:>7.0f}",
                        f"{s['msg_rate_tree']:>7.0f}",
                        f"{s['msg_rate_gossip']:>7.0f}",
                        f"{s['msg_rate_dissem']:>7.0f}",
                    ]
                )
            )
    summary = capacity.get("summary", {})
    peak = summary.get("events_per_sec", {})
    if peak:
        lines.append(
            f"events/sim-second: peak {peak['max']:.0f}, "
            f"final {peak.get('final', peak.get('final_mean', 0.0)):.0f}"
        )
    rate = summary.get("byte_rate", {})
    if rate:
        lines.append(
            f"wire bytes/sim-second: peak {rate['max'] / 1024.0:.1f} kB/s"
        )
    return "\n".join(lines)


def _cell(value: float, spec: str) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return f"{'-':>7}"
    if spec == "d":
        return f"{int(value):>7d}"
    return f"{value:>7{spec}}"
