"""Simulation profiling: wall-clock attribution per callback category.

The :class:`~repro.sim.engine.Simulator` executes everything that
happens in a run — message deliveries, timer fires, timeouts, failure
injections — as scheduled callbacks.  :class:`Profiler` installs itself
as the engine's dispatch hook, times every callback with
``time.perf_counter``, and aggregates (count, cumulative wall time) per
callback ``__qualname__``.  Qualnames map onto stable protocol
categories (``transport.deliver``, ``timer.fire``, ``gossip.pull``,
...) through a substring rule table; anything unmatched is still
attributed under ``other:<qualname>`` so coverage is complete.

The report answers the two profiling questions that matter for the
"fast as the hardware allows" goal: where does the wall clock go per
category, and which concrete callbacks are the top-k hot spots.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional, Tuple

#: (substring of callback __qualname__, category).  First match wins.
CATEGORY_RULES: Tuple[Tuple[str, str], ...] = (
    ("Network._deliver", "transport.deliver"),
    ("Network._notify_failure", "transport.send_failure"),
    ("Network.fail_link", "net.link_failure"),
    ("Network.restore_link", "net.link_failure"),
    ("PeriodicTimer._fire", "timer.fire"),
    ("Disseminator._send_pull", "gossip.pull"),
    ("Disseminator._pull_timed_out", "gossip.pull"),
    ("MessageBuffer.reclaim", "dissem.reclaim"),
    ("OverlayManager._expire_pending", "overlay.adapt"),
    ("OverlayManager._expire_probe", "overlay.adapt"),
    ("FailureInjector._fail_now", "node.crash"),
    ("ChurnProcess._tick", "churn.tick"),
    ("GoCastSystem._inject_one", "workload.inject"),
    ("GoCastSystem._freeze_survivors", "workload.freeze"),
    ("inject_one", "workload.inject"),
    ("BaseGossipNode._expire_pending", "gossip.pull"),
)


def categorize(qualname: str) -> str:
    """Stable category for a callback qualname (see CATEGORY_RULES)."""
    for pattern, category in CATEGORY_RULES:
        if pattern in qualname:
            return category
    return f"other:{qualname}"


@dataclasses.dataclass
class CategoryRow:
    category: str
    events: int
    seconds: float


@dataclasses.dataclass
class ProfileReport:
    """Aggregated profile of one simulation run."""

    total_events: int
    total_seconds: float
    wall_seconds: float
    categories: List[CategoryRow]
    hot_callbacks: List[CategoryRow]

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return float("nan")
        return self.total_events / self.wall_seconds

    @property
    def attributed_fraction(self) -> float:
        """Fraction of callback wall-clock under a named (non-``other:``)
        category."""
        if self.total_seconds <= 0:
            return 1.0
        named = sum(
            row.seconds
            for row in self.categories
            if not row.category.startswith("other:")
        )
        return named / self.total_seconds

    def to_dict(self) -> Dict[str, object]:
        """Plain-data dump for the run ledger and chrome-trace export."""
        return {
            "total_events": self.total_events,
            "total_seconds": self.total_seconds,
            "wall_seconds": self.wall_seconds,
            "events_per_second": self.events_per_second,
            "attributed_fraction": self.attributed_fraction,
            "categories": [dataclasses.asdict(row) for row in self.categories],
            "hot_callbacks": [dataclasses.asdict(row) for row in self.hot_callbacks],
        }

    def format_table(self) -> str:
        lines = [
            f"profile: {self.total_events} events in {self.wall_seconds:.3f}s wall "
            f"({self.events_per_second:,.0f} events/sec, "
            f"{self.total_seconds:.3f}s inside callbacks, "
            f"{100.0 * self.attributed_fraction:.1f}% attributed to named categories)",
            "",
            f"{'category':<28} {'events':>10} {'seconds':>9} {'share':>7}",
        ]
        for row in self.categories:
            share = row.seconds / self.total_seconds if self.total_seconds else 0.0
            lines.append(
                f"{row.category:<28} {row.events:>10d} {row.seconds:>9.4f} {share:>6.1%}"
            )
        lines.append("")
        lines.append(f"top {len(self.hot_callbacks)} hot callbacks:")
        for row in self.hot_callbacks:
            lines.append(f"  {row.seconds:>8.4f}s  {row.events:>9d}x  {row.category}")
        return "\n".join(lines)


class Profiler:
    """Times every engine callback; install on a Simulator to activate."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        #: qualname -> [count, cumulative seconds]
        self._stats: Dict[str, List[float]] = {}
        self._started: Optional[float] = None
        self.wall_seconds = 0.0

    # ------------------------------------------------------------------
    # Engine integration
    # ------------------------------------------------------------------
    def install(self, sim) -> None:
        """Start timing ``sim``'s callback dispatch."""
        sim.set_dispatch_hook(self._dispatch)
        self._started = self._clock()

    def uninstall(self, sim) -> None:
        sim.set_dispatch_hook(None)
        if self._started is not None:
            self.wall_seconds += self._clock() - self._started
            self._started = None

    def _dispatch(self, callback: Callable, args: tuple) -> None:
        t0 = self._clock()
        try:
            callback(*args)
        finally:
            dt = self._clock() - t0
            qualname = getattr(callback, "__qualname__", None) or repr(callback)
            cell = self._stats.get(qualname)
            if cell is None:
                self._stats[qualname] = [1, dt]
            else:
                cell[0] += 1
                cell[1] += dt

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, top_k: int = 10) -> ProfileReport:
        wall = self.wall_seconds
        if self._started is not None:
            # Still installed: report the elapsed window so far.
            wall += self._clock() - self._started
        per_category: Dict[str, List[float]] = {}
        total_events = 0
        total_seconds = 0.0
        for qualname, (count, seconds) in self._stats.items():
            total_events += int(count)
            total_seconds += seconds
            cell = per_category.setdefault(categorize(qualname), [0, 0.0])
            cell[0] += int(count)
            cell[1] += seconds
        categories = sorted(
            (CategoryRow(cat, int(c), s) for cat, (c, s) in per_category.items()),
            key=lambda row: row.seconds,
            reverse=True,
        )
        hot = sorted(
            (CategoryRow(q, int(c), s) for q, (c, s) in self._stats.items()),
            key=lambda row: row.seconds,
            reverse=True,
        )[:top_k]
        return ProfileReport(
            total_events=total_events,
            total_seconds=total_seconds,
            wall_seconds=wall,
            categories=categories,
            hot_callbacks=hot,
        )
