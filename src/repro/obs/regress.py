"""Perf-regression sentinel over ledger run records.

:func:`compare_records` diffs two :class:`~repro.obs.ledger.RunRecord`
outcomes under per-metric tolerance rules:

* **exact** metrics (deterministic counters — ``events_executed``,
  delivery/violation counts, ``reliability`` of a fixed-seed run) must
  match bit-for-bit; any difference is a regression.  When the two runs
  used different scenarios or seeds the exact section is demoted to
  informational (the counters *should* differ) and a note says so.
* **relative** metrics (events/sec, wall/CPU seconds, peak RSS, delay
  percentiles) regress only when they move past a per-rule threshold in
  the bad direction; moves past the threshold in the good direction are
  reported as improvements.

The comparison also cross-checks environment provenance: differing
``REPRO_SIM_OPTS`` state, python version, or CPU model does not change
any verdict but is surfaced as a note, because a perf delta measured
across such a boundary is not evidence of a code regression.

``repro obs compare A B`` and ``repro obs regress --against REF`` both
exit nonzero when the comparison carries regressions (unless
``--warn-only``), which is how CI gates perf the same way the golden
masters gate semantics.
"""

from __future__ import annotations

import dataclasses
from fnmatch import fnmatchcase
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.ledger import RunRecord, json_safe

#: Comparison verdicts, ordered worst-first for report sorting.
STATUS_ORDER = ("regression", "improvement", "ok", "added", "removed", "info")


class OptsMismatchError(ValueError):
    """The two records ran under different ``REPRO_SIM_OPTS`` token sets.

    Comparing them would measure the configuration difference, not a
    code change — e.g. a dense-latency baseline against a ``lazylat``
    run.  Raised by :func:`compare_records` unless the caller passes
    ``allow_opts_mismatch=True`` (the CLI's ``--allow-opts-mismatch``),
    which demotes the refusal to a note."""


@dataclasses.dataclass(frozen=True)
class Rule:
    """Tolerance rule for metric keys matching ``pattern``.

    ``pattern`` is an ``fnmatch`` glob tried against the final dotted
    segment of the metric key first, then against the whole key —
    ``events_per_sec`` matches both ``events_per_sec`` and
    ``n512.events_per_sec``.  ``mode`` is ``"exact"`` or ``"relative"``;
    relative rules carry a fractional ``threshold`` and the ``better``
    direction (``"higher"`` or ``"lower"``).
    """

    pattern: str
    mode: str
    threshold: float = 0.0
    better: str = "lower"


#: Default rule table; first match wins.
DEFAULT_RULES: Tuple[Rule, ...] = (
    # Deterministic counters: a fixed-seed rerun must reproduce these.
    Rule("events_executed", "exact"),
    Rule("expected_pairs", "exact"),
    Rule("delivered_pairs", "exact"),
    Rule("undelivered_pairs", "exact"),
    Rule("messages_sent", "exact"),
    Rule("n_messages", "exact"),
    Rule("reliability", "exact"),
    Rule("violations*", "exact"),
    Rule("faults.*", "exact"),
    Rule("live", "exact"),
    Rule("veterans", "exact"),
    # Performance: relative thresholds, direction-aware.
    Rule("events_per_sec", "relative", 0.10, "higher"),
    Rule("wall_s*", "relative", 0.10, "lower"),
    Rule("cpu_s*", "relative", 0.15, "lower"),
    Rule("peak_rss_kb", "relative", 0.25, "lower"),
    # Capacity telemetry: per-config RSS growth and censused heap bytes.
    # peak_rss_delta_kb is noisy (allocator reuse across configs can
    # legitimately zero it), hence the wide band; bytes_per_node is a
    # deterministic census walk, so a tight 10% band.
    Rule("peak_rss_delta_kb", "relative", 0.50, "lower"),
    Rule("bytes_per_node", "relative", 0.10, "lower"),
    Rule("*_delay", "relative", 0.05, "lower"),
)


def rule_for(key: str, rules: Sequence[Rule] = DEFAULT_RULES) -> Optional[Rule]:
    """First rule whose pattern matches ``key`` (leaf segment, then full)."""
    leaf = key.rsplit(".", 1)[-1]
    for rule in rules:
        if fnmatchcase(leaf, rule.pattern) or fnmatchcase(key, rule.pattern):
            return rule
    return None


@dataclasses.dataclass
class Delta:
    """One metric's comparison outcome."""

    key: str
    mode: str  # "exact" | "relative" | "info"
    status: str  # see STATUS_ORDER
    base: Optional[Any]
    current: Optional[Any]
    #: Fractional change (current-base)/base for numeric pairs.
    change: Optional[float] = None
    threshold: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return json_safe(dataclasses.asdict(self))


@dataclasses.dataclass
class Comparison:
    """Full diff of two run records."""

    base_id: str
    current_id: str
    deltas: List[Delta]
    notes: List[str]

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def improvements(self) -> List[Delta]:
        return [d for d in self.deltas if d.status == "improvement"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, Any]:
        return {
            "base": self.base_id,
            "current": self.current_id,
            "ok": self.ok,
            "n_regressions": len(self.regressions),
            "n_improvements": len(self.improvements),
            "notes": list(self.notes),
            "deltas": [d.to_dict() for d in self.deltas],
        }

    def format_table(self) -> str:
        lines = [f"base:    {self.base_id}", f"current: {self.current_id}"]
        for note in self.notes:
            lines.append(f"note: {note}")
        lines.append("")
        lines.append(
            f"{'metric':<32} {'base':>14} {'current':>14} {'change':>9} "
            f"{'rule':>16} {'verdict':>12}"
        )
        order = {status: i for i, status in enumerate(STATUS_ORDER)}
        for d in sorted(self.deltas, key=lambda d: (order.get(d.status, 99), d.key)):
            change = f"{d.change:+8.1%}" if d.change is not None else "       --"
            if d.mode == "relative" and d.threshold is not None:
                rule = f"rel ±{d.threshold:.0%}"
            elif d.mode == "exact":
                rule = "exact"
            else:
                rule = "info"
            lines.append(
                f"{d.key:<32} {_fmt(d.base):>14} {_fmt(d.current):>14} "
                f"{change:>9} {rule:>16} "
                f"{d.status.upper() if d.status == 'regression' else d.status:>12}"
            )
        verdict = (
            f"{len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s)"
        )
        lines.append("")
        lines.append(("FAIL: " if self.regressions else "ok: ") + verdict)
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "--"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _comparable_numbers(a: Any, b: Any) -> bool:
    return (
        isinstance(a, (int, float)) and isinstance(b, (int, float))
        and a == a and b == b  # NaN guard
    )


def compare_records(
    base: RunRecord,
    current: RunRecord,
    rules: Sequence[Rule] = DEFAULT_RULES,
    allow_opts_mismatch: bool = False,
) -> Comparison:
    """Diff ``current`` against ``base`` under the tolerance rules.

    Records carrying ``sim_opts_tokens`` provenance (every record since
    the lazylat PR) are refused outright when the token sets differ —
    see :class:`OptsMismatchError`.  Older records without token
    provenance fall back to the advisory ``sim_opts`` boolean note.
    """
    notes: List[str] = []
    base_tokens = base.env.get("sim_opts_tokens")
    cur_tokens = current.env.get("sim_opts_tokens")
    if (
        base_tokens is not None
        and cur_tokens is not None
        and sorted(base_tokens) != sorted(cur_tokens)
    ):
        described = (
            f"base={','.join(base_tokens) or '0'} vs "
            f"current={','.join(cur_tokens) or '0'}"
        )
        if not allow_opts_mismatch:
            raise OptsMismatchError(
                f"refusing to compare runs with different REPRO_SIM_OPTS "
                f"token sets ({described}); rerun under matching opts or "
                f"pass --allow-opts-mismatch to compare anyway"
            )
        notes.append(
            f"REPRO_SIM_OPTS token sets differ ({described}): deltas "
            "measure the configuration, not a code change"
        )
    same_shape = base.scenario == current.scenario and base.seeds == current.seeds
    if base.kind != current.kind or base.name != current.name:
        notes.append(
            f"comparing different runs: {base.kind}/{base.name} vs "
            f"{current.kind}/{current.name}"
        )
        same_shape = False
    elif not same_shape:
        notes.append(
            "scenario/seeds differ: deterministic counters are reported as "
            "info, not gated"
        )
    for field, label in (
        ("sim_opts", "REPRO_SIM_OPTS state"),
        ("python", "python version"),
        ("cpu_model", "CPU model"),
    ):
        a, b = base.env.get(field), current.env.get(field)
        if a is not None and b is not None and a != b:
            notes.append(
                f"{label} differs ({a!r} vs {b!r}): performance deltas are "
                "not attributable to code"
            )
    if current.env.get("dirty"):
        notes.append("current run was recorded from a dirty worktree")

    base_values = base.all_values()
    cur_values = current.all_values()
    exact_keys = set(base.exact) | set(current.exact)
    deltas: List[Delta] = []
    for key in sorted(set(base_values) | set(cur_values)):
        b, c = base_values.get(key), cur_values.get(key)
        if b is None or c is None:
            deltas.append(
                Delta(key, "info", "removed" if c is None else "added", b, c)
            )
            continue
        rule = rule_for(key, rules)
        mode = rule.mode if rule else ("exact" if key in exact_keys else "info")
        change = (
            (c - b) / b if _comparable_numbers(b, c) and b not in (0, 0.0) else None
        )
        if mode == "exact":
            if not same_shape:
                deltas.append(Delta(key, "info", "info", b, c, change))
            else:
                status = "ok" if b == c else "regression"
                deltas.append(Delta(key, "exact", status, b, c, change))
            continue
        if mode == "relative" and rule is not None and change is not None:
            signed = change if rule.better == "higher" else -change
            if signed < -rule.threshold:
                status = "regression"
            elif signed > rule.threshold:
                status = "improvement"
            else:
                status = "ok"
            deltas.append(Delta(key, "relative", status, b, c, change, rule.threshold))
            continue
        deltas.append(Delta(key, "info", "info", b, c, change))
    return Comparison(
        base_id=base.run_id, current_id=current.run_id, deltas=deltas, notes=notes
    )
