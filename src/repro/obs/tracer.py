"""Structured simulation event tracing.

:class:`SimTracer` collects categorized, timestamped events
(``tree.push``, ``gossip.summary``, ``gossip.pull``, ``overlay.adapt``,
``node.crash``, ``timer.fire``, ...) into a bounded in-memory ring
buffer.  Long runs simply retain the most recent ``capacity`` events —
:attr:`SimTracer.dropped` says how many older ones were discarded.
Traces export to / reload from JSONL for offline analysis; the export
carries a header record with the run's ``emitted``/``dropped``/
``capacity`` accounting so a reloaded trace stays honest about what the
ring buffer discarded.

:data:`TRACE_SCHEMA` declares the field set of every event category the
stack emits, and :func:`validate_events` checks a trace against it — the
CI fast lane runs it over a fixed-seed smoke trace so an instrumentation
point cannot silently drift away from the documented data model.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Deque, Dict, FrozenSet, Iterable, List, NamedTuple, Optional, Tuple


class TraceEvent(NamedTuple):
    """One structured simulation event."""

    time: float
    category: str
    fields: Dict[str, Any]


#: Declared data model of every event category the stack emits:
#: ``category -> (required fields, optional fields)``.  Extend this when
#: adding instrumentation; ``validate_events`` (run by the CI fast lane
#: over a fixed-seed smoke trace) fails on undeclared categories, missing
#: required fields, and undeclared extras.
TRACE_SCHEMA: Dict[str, Tuple[FrozenSet[str], FrozenSet[str]]] = {
    # Dissemination provenance (consumed by repro.obs.provenance).
    "dissem.inject": (frozenset({"node", "msg"}), frozenset()),
    "dissem.deliver": (
        frozenset({"node", "msg", "src", "via", "owl", "waited"}),
        frozenset(),
    ),
    "tree.push": (frozenset({"node", "msg", "fanout"}), frozenset()),
    "gossip.summary": (frozenset({"node", "peer", "summaries"}), frozenset({"msgs"})),
    "gossip.pull": (frozenset({"node", "source", "ids"}), frozenset()),
    "pull.request": (frozenset({"node", "source", "msg", "attempt"}), frozenset()),
    "pull.reply": (frozenset({"node", "peer", "served"}), frozenset()),
    "pull.timeout": (frozenset({"node", "msg", "attempts", "action"}), frozenset()),
    # Overlay adaptation.
    "overlay.adapt": (frozenset({"node", "kind", "action"}), frozenset()),
    "overlay.reject": (frozenset({"node", "peer", "kind", "reason"}), frozenset()),
    # Tree maintenance and repair.
    "tree.root_claim": (frozenset({"node", "epoch"}), frozenset()),
    "tree.parent_switch": (frozenset({"node", "old", "new"}), frozenset()),
    "tree.orphaned": (frozenset({"node", "cause"}), frozenset()),
    "tree.reattach": (frozenset({"node", "parent", "dist"}), frozenset()),
    # Failure injection.
    "node.crash": (frozenset({"node"}), frozenset()),
    "link.fail": (frozenset({"a", "b"}), frozenset()),
    "link.restore": (frozenset({"a", "b"}), frozenset()),
    # Chaos scenarios (repro.sim.scenarios) and node lifecycle faults.
    "chaos.phase": (frozenset({"phase", "action"}), frozenset({"detail"})),
    "node.join": (frozenset({"node", "bootstrap"}), frozenset()),
    "node.leave": (frozenset({"node"}), frozenset()),
    "node.restart": (frozenset({"node"}), frozenset()),
    "net.partition": (frozenset({"groups", "links"}), frozenset()),
    "net.heal": (frozenset({"links"}), frozenset()),
    "net.loss": (frozenset({"rate"}), frozenset()),
    "net.latency": (frozenset({"factor"}), frozenset()),
    # Runtime invariant checking (repro.sim.invariants).
    "invariant.violation": (
        frozenset({"invariant", "detail"}),
        frozenset({"node"}),
    ),
    # Timers, health and capacity sampling.
    "timer.fire": (frozenset({"name"}), frozenset()),
    "capacity.sample": (
        frozenset({"live"}),
        frozenset(
            {
                "events_scheduled",
                "events_per_sec",
                "pending_events",
                "sched_queue",
                "sched_wheel",
                "live_messages",
                "pending_pulls",
                "msg_rate",
                "byte_rate",
                "msg_rate_overlay",
                "msg_rate_tree",
                "msg_rate_gossip",
                "msg_rate_dissem",
                "byte_rate_overlay",
                "byte_rate_tree",
                "byte_rate_gossip",
                "byte_rate_dissem",
            }
        ),
    ),
    "health.sample": (
        frozenset({"live"}),
        frozenset(
            {
                "tree_fragments",
                "orphaned",
                "stale_root",
                "pending_pulls",
                "pending_pulls_max",
                "mean_d_rand",
                "mean_d_near",
                "d_rand_on_target",
                "d_near_on_target",
            }
        ),
    ),
}


def validate_events(events: Iterable[TraceEvent]) -> List[str]:
    """Check a trace against :data:`TRACE_SCHEMA`; returns violations.

    Each violation is a human-readable string (empty list: trace is
    schema-clean).  Checks three properties per event: the category is
    declared, every required field is present, and no undeclared field
    appears.
    """
    problems: List[str] = []
    for event in events:
        spec = TRACE_SCHEMA.get(event.category)
        if spec is None:
            problems.append(f"undeclared category {event.category!r} at t={event.time}")
            continue
        required, optional = spec
        fields = set(event.fields)
        missing = required - fields
        extra = fields - required - optional
        if missing:
            problems.append(
                f"{event.category} at t={event.time}: missing fields {sorted(missing)}"
            )
        if extra:
            problems.append(
                f"{event.category} at t={event.time}: undeclared fields {sorted(extra)}"
            )
    return problems


class SimTracer:
    """Bounded buffer of structured events; no-op while disabled."""

    def __init__(self, capacity: int = 65536, enabled: bool = True):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.enabled = enabled
        self.capacity = capacity
        self.emitted = 0
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def emit(self, time: float, category: str, **fields: Any) -> None:
        """Record one event; the caller supplies the simulated time."""
        if not self.enabled:
            return
        self.emitted += 1
        self._events.append(TraceEvent(time, category, fields))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events discarded because the ring buffer wrapped."""
        return self.emitted - len(self._events)

    def events(self, category: Optional[str] = None) -> List[TraceEvent]:
        if category is None:
            return list(self._events)
        return [e for e in self._events if e.category == category]

    def counts_by_category(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.category] = counts.get(event.category, 0) + 1
        return counts

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0

    # ------------------------------------------------------------------
    # JSONL export / import
    # ------------------------------------------------------------------
    def export_jsonl(self, path: str) -> int:
        """Write the buffered events to ``path``; returns the count."""
        with open(path, "w", encoding="utf-8") as fp:
            return self.write_jsonl(fp)

    def write_jsonl(self, fp) -> int:
        """Header record (run accounting) followed by one event per line."""
        fp.write(
            json.dumps(
                {
                    "header": 1,
                    "emitted": self.emitted,
                    "dropped": self.dropped,
                    "capacity": self.capacity,
                },
                sort_keys=True,
            )
        )
        fp.write("\n")
        n = 0
        for event in self._events:
            fp.write(
                json.dumps(
                    {"t": event.time, "cat": event.category, "fields": event.fields},
                    default=str,
                    sort_keys=True,
                )
            )
            fp.write("\n")
            n += 1
        return n

    @staticmethod
    def load_jsonl(path: str) -> List[TraceEvent]:
        """Parse the events of a file written by :meth:`export_jsonl`.

        Skips the header record (and tolerates header-less files written
        by older versions); use :meth:`from_jsonl` to also restore the
        run's emitted/dropped accounting.
        """
        return SimTracer._parse(path)[1]

    @classmethod
    def from_jsonl(cls, path: str) -> "SimTracer":
        """Reload a full tracer, including honest drop accounting.

        The returned tracer reports the original run's ``emitted`` and
        ``dropped`` counts (from the export header), not the zeros a
        naive event reload would imply.  Header-less legacy files load
        with ``emitted == len(events)`` (i.e. assumed drop-free).
        """
        header, events = cls._parse(path)
        capacity = int(header.get("capacity", 0)) or max(len(events), 1)
        tracer = cls(capacity=capacity)
        for event in events:
            tracer._events.append(event)
        tracer.emitted = int(header.get("emitted", len(events)))
        return tracer

    @staticmethod
    def _parse(path: str) -> Tuple[Dict[str, Any], List[TraceEvent]]:
        header: Dict[str, Any] = {}
        out: List[TraceEvent] = []
        with open(path, "r", encoding="utf-8") as fp:
            for line in fp:
                line = line.strip()
                if not line:
                    continue
                data = json.loads(line)
                if "header" in data:
                    header = data
                    continue
                out.append(TraceEvent(data["t"], data["cat"], data.get("fields", {})))
        return header, out
