"""Structured simulation event tracing.

:class:`SimTracer` collects categorized, timestamped events
(``tree.push``, ``gossip.summary``, ``gossip.pull``, ``overlay.adapt``,
``node.crash``, ``timer.fire``, ...) into a bounded in-memory ring
buffer.  Long runs simply retain the most recent ``capacity`` events —
:attr:`SimTracer.dropped` says how many older ones were discarded.
Traces export to / reload from JSONL for offline analysis.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Deque, Dict, List, NamedTuple, Optional


class TraceEvent(NamedTuple):
    """One structured simulation event."""

    time: float
    category: str
    fields: Dict[str, Any]


class SimTracer:
    """Bounded buffer of structured events; no-op while disabled."""

    def __init__(self, capacity: int = 65536, enabled: bool = True):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.enabled = enabled
        self.capacity = capacity
        self.emitted = 0
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def emit(self, time: float, category: str, **fields: Any) -> None:
        """Record one event; the caller supplies the simulated time."""
        if not self.enabled:
            return
        self.emitted += 1
        self._events.append(TraceEvent(time, category, fields))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events discarded because the ring buffer wrapped."""
        return self.emitted - len(self._events)

    def events(self, category: Optional[str] = None) -> List[TraceEvent]:
        if category is None:
            return list(self._events)
        return [e for e in self._events if e.category == category]

    def counts_by_category(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.category] = counts.get(event.category, 0) + 1
        return counts

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0

    # ------------------------------------------------------------------
    # JSONL export / import
    # ------------------------------------------------------------------
    def export_jsonl(self, path: str) -> int:
        """Write the buffered events to ``path``; returns the count."""
        with open(path, "w", encoding="utf-8") as fp:
            return self.write_jsonl(fp)

    def write_jsonl(self, fp) -> int:
        n = 0
        for event in self._events:
            fp.write(
                json.dumps(
                    {"t": event.time, "cat": event.category, "fields": event.fields},
                    default=str,
                    sort_keys=True,
                )
            )
            fp.write("\n")
            n += 1
        return n

    @staticmethod
    def load_jsonl(path: str) -> List[TraceEvent]:
        """Parse a file written by :meth:`export_jsonl`."""
        out: List[TraceEvent] = []
        with open(path, "r", encoding="utf-8") as fp:
            for line in fp:
                line = line.strip()
                if not line:
                    continue
                data = json.loads(line)
                out.append(TraceEvent(data["t"], data["cat"], data.get("fields", {})))
        return out
