"""Append-only, schema-versioned run ledger.

Every bench / experiment / batch / chaos run can append one JSON record
to ``.repro/ledger/runs.jsonl`` describing *what ran where*: the commit
(and whether the worktree was dirty), python and CPU, the
``REPRO_SIM_OPTS`` state, the scenario parameters and seeds, and the
run's outcome split into two sections the regression sentinel
(:mod:`repro.obs.regress`) treats differently:

* ``metrics`` — performance figures (events/sec, wall seconds, peak
  RSS, delay statistics) that vary run to run and are compared under
  relative tolerances;
* ``exact`` — deterministic outcomes (``events_executed``, delivery
  counts, invariant-violation totals) that must match bit-for-bit
  between two runs of the same scenario and seeds.

The ledger is plain JSONL so it diffs, greps, and uploads as a CI
artifact; records are never rewritten, only appended.  The directory is
``$REPRO_LEDGER_DIR`` (default ``.repro/ledger``) and recording is
disabled entirely with ``REPRO_LEDGER=0`` — the hooks in the bench /
batch / chaos / figure runners all funnel through :func:`record_run`,
which never raises, so telemetry can never break an experiment.

``records_from_bench_json`` is the back-compat reader that migrates the
flat ``BENCH_core.json`` baseline/current sections into ledger records
(``repro obs ledger --import-bench``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
import platform
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

#: Bump when the record layout changes incompatibly; the reader rejects
#: records from the future, tolerates (and upgrades in memory) the past.
LEDGER_SCHEMA_VERSION = 1

#: Environment variable overriding the ledger directory.
ENV_DIR = "REPRO_LEDGER_DIR"
#: Set to 0/false/off/no to disable all automatic recording.
ENV_ENABLED = "REPRO_LEDGER"

DEFAULT_DIR = os.path.join(".repro", "ledger")
LEDGER_FILENAME = "runs.jsonl"

#: The run kinds the recording hooks emit.
RUN_KINDS = ("bench", "experiment", "batch", "chaos")

_FALSE_VALUES = ("0", "false", "off", "no")


class LedgerError(RuntimeError):
    """A ledger file is missing, unparsable, or schema-incompatible.

    Always carries a one-line, human-readable message — the CLI prints
    it verbatim (no traceback) and exits nonzero.
    """


def ledger_enabled(default: bool = True) -> bool:
    """Whether automatic run recording is on (``REPRO_LEDGER`` gate)."""
    value = os.environ.get(ENV_ENABLED)
    if value is None:
        return default
    return value.strip().lower() not in _FALSE_VALUES


def json_safe(obj: Any) -> Any:
    """Recursively replace NaN/inf floats with None (strict JSON)."""
    if isinstance(obj, dict):
        return {str(k): json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [json_safe(v) for v in obj]
    if isinstance(obj, float) and not math.isfinite(obj):
        return None
    return obj


# ----------------------------------------------------------------------
# Environment provenance
# ----------------------------------------------------------------------
def _git(*argv: str) -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", *argv], capture_output=True, text=True, timeout=10, check=False
        )
    except OSError:
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip()


def _cpu_model() -> str:
    """Best-effort CPU model name (``/proc/cpuinfo`` on Linux)."""
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as fp:
            for line in fp:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def environment_provenance() -> Dict[str, Any]:
    """Everything needed to judge whether two runs are comparable.

    Captures the satellite fields ``BENCH_core.json`` historically
    omitted: CPU model and core count, the ``REPRO_SIM_OPTS`` state
    (so optimized and unoptimized runs can never silently mix), and a
    dirty-worktree flag next to the commit.
    """
    from repro.sim.optim import ENV_VAR, optimizations_enabled, sim_opts

    head = _git("rev-parse", "--short", "HEAD")
    status = _git("status", "--porcelain")
    return {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpu_model": _cpu_model(),
        "cpu_count": os.cpu_count() or 1,
        "sim_opts": optimizations_enabled(),
        "sim_opts_raw": os.environ.get(ENV_VAR),
        # The resolved token set, the comparison key for `repro obs
        # regress`: records whose sets differ measure different code
        # paths and must never be silently compared.
        "sim_opts_tokens": sorted(sim_opts()),
        "commit": head,
        "dirty": bool(status) if status is not None else None,
    }


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------
@dataclasses.dataclass
class RunRecord:
    """One ledger line: a run's identity, environment, and outcome."""

    kind: str
    name: str
    #: Performance figures, compared under relative tolerances.
    metrics: Dict[str, float] = dataclasses.field(default_factory=dict)
    #: Deterministic outcomes, compared exactly.
    exact: Dict[str, Any] = dataclasses.field(default_factory=dict)
    scenario: Dict[str, Any] = dataclasses.field(default_factory=dict)
    seeds: List[int] = dataclasses.field(default_factory=list)
    env: Dict[str, Any] = dataclasses.field(default_factory=dict)
    #: Optional merged metrics snapshot (counters/health/invariants).
    snapshot: Optional[Dict[str, Any]] = None
    recorded_at: str = ""
    run_id: str = ""
    schema: int = LEDGER_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not self.recorded_at:
            self.recorded_at = datetime.now(timezone.utc).strftime(
                "%Y-%m-%dT%H:%M:%S.%fZ"
            )
        if not self.run_id:
            digest = hashlib.sha256(
                json.dumps(
                    [self.kind, self.name, self.recorded_at, self.seeds,
                     sorted(self.metrics), sorted(self.exact)],
                    default=str, sort_keys=True,
                ).encode()
            ).hexdigest()[:8]
            stamp = self.recorded_at.replace("-", "").replace(":", "")[:15]
            self.run_id = f"{self.kind}-{stamp}-{digest}"

    @property
    def commit(self) -> Optional[str]:
        return self.env.get("commit")

    def all_values(self) -> Dict[str, Any]:
        """Union of the perf and exact sections (exact wins collisions)."""
        merged: Dict[str, Any] = dict(self.metrics)
        merged.update(self.exact)
        return merged

    def to_dict(self) -> Dict[str, Any]:
        return json_safe(
            {
                "schema": self.schema,
                "run_id": self.run_id,
                "kind": self.kind,
                "name": self.name,
                "recorded_at": self.recorded_at,
                "env": self.env,
                "scenario": self.scenario,
                "seeds": list(self.seeds),
                "metrics": self.metrics,
                "exact": self.exact,
                "snapshot": self.snapshot,
            }
        )

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str = "record") -> "RunRecord":
        if not isinstance(data, dict):
            raise LedgerError(f"{where}: not a JSON object")
        schema = data.get("schema")
        if not isinstance(schema, int):
            raise LedgerError(f"{where}: missing integer 'schema' field")
        if schema > LEDGER_SCHEMA_VERSION:
            raise LedgerError(
                f"{where}: schema version {schema} is newer than supported "
                f"version {LEDGER_SCHEMA_VERSION} (upgrade the tooling)"
            )
        missing = [k for k in ("run_id", "kind", "name") if not data.get(k)]
        if missing:
            raise LedgerError(f"{where}: missing required fields {missing}")
        return cls(
            kind=data["kind"],
            name=data["name"],
            metrics=dict(data.get("metrics") or {}),
            exact=dict(data.get("exact") or {}),
            scenario=dict(data.get("scenario") or {}),
            seeds=list(data.get("seeds") or []),
            env=dict(data.get("env") or {}),
            snapshot=data.get("snapshot"),
            recorded_at=data.get("recorded_at", ""),
            run_id=data["run_id"],
            schema=schema,
        )


# ----------------------------------------------------------------------
# The ledger itself
# ----------------------------------------------------------------------
class Ledger:
    """Append-only JSONL store of :class:`RunRecord` lines."""

    def __init__(self, directory: Union[str, Path, None] = None):
        directory = directory or os.environ.get(ENV_DIR) or DEFAULT_DIR
        self.directory = Path(directory)
        self.path = self.directory / LEDGER_FILENAME

    def append(self, record: RunRecord) -> RunRecord:
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fp:
            fp.write(json.dumps(record.to_dict(), sort_keys=True, default=str))
            fp.write("\n")
        return record

    def records(self) -> List[RunRecord]:
        """All records, oldest first; [] when the ledger does not exist."""
        if not self.path.exists():
            return []
        out: List[RunRecord] = []
        with open(self.path, "r", encoding="utf-8") as fp:
            for lineno, line in enumerate(fp, 1):
                line = line.strip()
                if not line:
                    continue
                where = f"{self.path}:{lineno}"
                try:
                    data = json.loads(line)
                except ValueError as exc:
                    raise LedgerError(f"{where}: invalid JSON ({exc})") from None
                out.append(RunRecord.from_dict(data, where=where))
        return out

    def latest(
        self, kind: Optional[str] = None, records: Optional[List[RunRecord]] = None
    ) -> Optional[RunRecord]:
        records = self.records() if records is None else records
        for record in reversed(records):
            if kind is None or record.kind == kind:
                return record
        return None

    # ------------------------------------------------------------------
    # Reference resolution (``repro obs regress --against <ref>``)
    # ------------------------------------------------------------------
    def resolve(
        self,
        ref: str,
        kind: Optional[str] = None,
        exclude: Optional[RunRecord] = None,
        records: Optional[List[RunRecord]] = None,
    ) -> RunRecord:
        """Resolve a run reference to one record (newest match wins).

        Grammar:

        * ``latest`` / ``latest~K`` — the newest / K-th-newest record;
        * ``HEAD`` / ``HEAD~K`` — the newest / K-th-newest record whose
          recorded commit equals the *current* git HEAD;
        * a run id (or unambiguous prefix of one);
        * a commit short-hash recorded in any record's provenance;
        * a run name (``bench``, ``chaos:worst-day``, ...).

        ``exclude`` removes one record (typically the comparison
        candidate itself) from consideration; ``kind`` filters first.
        Raises :class:`LedgerError` when nothing matches.
        """
        pool = self.records() if records is None else list(records)
        if kind is not None:
            pool = [r for r in pool if r.kind == kind]
        if exclude is not None:
            pool = [r for r in pool if r.run_id != exclude.run_id]
        if not pool:
            raise LedgerError(
                f"no candidate runs in ledger {self.path} to resolve {ref!r}"
            )

        base, back = ref, 0
        if "~" in ref:
            base, _, suffix = ref.partition("~")
            try:
                back = int(suffix)
            except ValueError:
                raise LedgerError(
                    f"bad run reference {ref!r}: {suffix!r} is not an integer"
                ) from None

        def kth_newest(matches: List[RunRecord], what: str) -> RunRecord:
            if back >= len(matches):
                raise LedgerError(
                    f"run reference {ref!r}: only {len(matches)} matching "
                    f"{what} run(s) in {self.path}"
                )
            return matches[len(matches) - 1 - back]

        if base in ("latest", ""):
            return kth_newest(pool, "ledger")
        if base == "HEAD":
            head = _git("rev-parse", "--short", "HEAD")
            if head is None:
                raise LedgerError("run reference 'HEAD': not inside a git repository")
            matches = [r for r in pool if r.commit and head.startswith(r.commit[:7])
                       or (r.commit and r.commit.startswith(head[:7]))]
            if not matches:
                raise LedgerError(
                    f"run reference {ref!r}: no ledger runs recorded at commit {head}"
                )
            return kth_newest(matches, f"commit-{head}")

        by_id = [r for r in pool if r.run_id == base or r.run_id.startswith(base)]
        if by_id:
            return kth_newest(by_id, f"id-{base}")
        by_commit = [r for r in pool if r.commit and r.commit.startswith(base)]
        if by_commit:
            return kth_newest(by_commit, f"commit-{base}")
        by_name = [r for r in pool if r.name == base]
        if by_name:
            return kth_newest(by_name, f"name-{base}")
        raise LedgerError(
            f"run reference {ref!r} matches no run id, commit, or name in {self.path}"
        )


# ----------------------------------------------------------------------
# Recording hook (shared by bench / batch / chaos / figure runners)
# ----------------------------------------------------------------------
def record_run(
    kind: str,
    name: str,
    *,
    metrics: Optional[Dict[str, float]] = None,
    exact: Optional[Dict[str, Any]] = None,
    scenario: Optional[Dict[str, Any]] = None,
    seeds: Sequence[int] = (),
    snapshot: Optional[Dict[str, Any]] = None,
    ledger: Optional[Ledger] = None,
) -> Optional[RunRecord]:
    """Append one run record; the universal, never-raising hook.

    Returns the appended record, or None when recording is disabled
    (``REPRO_LEDGER=0``) or the ledger directory is unwritable —
    telemetry must never break the run it describes.
    """
    if not ledger_enabled():
        return None
    record = RunRecord(
        kind=kind,
        name=name,
        metrics=dict(metrics or {}),
        exact=dict(exact or {}),
        scenario=json_safe(dict(scenario or {})),
        seeds=[int(s) for s in seeds],
        env=environment_provenance(),
        snapshot=json_safe(snapshot) if snapshot else None,
    )
    try:
        return (ledger or Ledger()).append(record)
    except OSError:
        return None


# ----------------------------------------------------------------------
# BENCH_core.json migration (back-compat reader)
# ----------------------------------------------------------------------
def bench_result_sections(results: Dict[str, Any]):
    """Split a bench ``results`` dict into (perf metrics, exact counters).

    Keys are flattened as ``n<size>.<field>`` so one record carries the
    whole size matrix and the sentinel compares sizes independently.
    """
    metrics: Dict[str, float] = {}
    exact: Dict[str, Any] = {}
    for size, entry in sorted(results.items(), key=lambda kv: int(kv[0])):
        prefix = f"n{size}"
        for field in (
            "events_per_sec",
            "wall_s_best",
            "cpu_s_best",
            "peak_rss_kb",
            "peak_rss_delta_kb",
            "bytes_per_node",
        ):
            if entry.get(field) is not None:
                metrics[f"{prefix}.{field}"] = float(entry[field])
        if entry.get("events_executed") is not None:
            exact[f"{prefix}.events_executed"] = int(entry["events_executed"])
    return metrics, exact


def records_from_bench_json(path: Union[str, Path]) -> List[RunRecord]:
    """Read a legacy ``BENCH_core.json`` report as ledger records.

    One record per label section (``baseline``, ``current``, ...); the
    section's recorded commit/python/env carry over, and fields the old
    format lacked (CPU model, sim-opts state) stay absent rather than
    being fabricated.  Raises :class:`LedgerError` on missing files or
    reports without a single recognizable section.
    """
    path = Path(path)
    try:
        report = json.loads(path.read_text())
    except OSError as exc:
        raise LedgerError(f"cannot read bench report {path}: {exc.strerror or exc}") from None
    except ValueError as exc:
        raise LedgerError(f"{path} is not valid JSON ({exc})") from None
    if not isinstance(report, dict):
        raise LedgerError(f"{path}: expected a JSON object at top level")

    out: List[RunRecord] = []
    scenario = report.get("scenario") if isinstance(report.get("scenario"), dict) else {}
    for label, section in report.items():
        if not isinstance(section, dict) or "results" not in section:
            continue
        metrics, exact = bench_result_sections(section["results"])
        env = dict(section.get("env") or {})
        env.setdefault("commit", section.get("commit"))
        env.setdefault("python", section.get("python"))
        seed = scenario.get("seed")
        out.append(
            RunRecord(
                kind="bench",
                name=f"bench:{label}",
                metrics=metrics,
                exact=exact,
                scenario=dict(scenario),
                seeds=[int(seed)] if seed is not None else [],
                env=env,
            )
        )
    if not out:
        raise LedgerError(
            f"{path}: no bench sections found (expected label sections with "
            "a 'results' dict, as written by `repro bench`)"
        )
    return out


def import_bench_json(path: Union[str, Path], ledger: Optional[Ledger] = None) -> List[RunRecord]:
    """Migrate every section of a ``BENCH_core.json`` into the ledger."""
    ledger = ledger or Ledger()
    records = records_from_bench_json(path)
    for record in records:
        ledger.append(record)
    return records


def format_ledger_table(records: Iterable[RunRecord], limit: int = 20) -> str:
    """Newest-last listing for ``repro obs ledger``."""
    records = list(records)[-limit:] if limit else list(records)
    if not records:
        return "(ledger is empty)"
    lines = [f"{'run id':<34} {'kind':<10} {'name':<22} {'commit':<9} "
             f"{'opts':<5} {'recorded at (UTC)'}"]
    for r in records:
        opts = r.env.get("sim_opts")
        lines.append(
            f"{r.run_id:<34} {r.kind:<10} {r.name:<22} "
            f"{(r.commit or '-'):<9} "
            f"{('on' if opts else '-' if opts is None else 'off'):<5} "
            f"{r.recorded_at}"
        )
    return "\n".join(lines)
