"""Periodic overlay/tree health sampling.

Failure and churn experiments previously produced endpoint numbers only
(final reliability, final delay CDF).  :class:`HealthMonitor` turns them
into a *health trajectory*: a sim timer samples, every ``period``
seconds, the structural state of the whole system —

* tree fragment count (connected components of the live parent/child
  graph — 1 means the dissemination tree is whole),
* orphaned nodes (live, non-root, no parent pointer) and stale-route
  nodes (parent pointer at a dead or vanished peer),
* overlay degree distribution against the configured C_rand/C_near
  targets (mean degrees + fraction of nodes at target, where target is
  the paper's stable band ``C`` or ``C + 1``),
* pending-pull queue depths (sum and worst node).

Samples land in three places at once: a :class:`HealthSample` row kept
by the monitor, ``health.*`` time series in the metrics registry, and a
``health.sample`` trace event.  The monitor is strictly read-only with
respect to the protocol: its timer callback inspects node state, never
mutates it, and draws from no simulation RNG, so enabling it cannot
change a seeded run's protocol behaviour.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, NamedTuple, Optional

from repro.sim.timers import PeriodicTimer


class HealthSample(NamedTuple):
    """One snapshot of system health at simulated ``time``."""

    time: float
    live: int
    tree_fragments: float  # NaN when the scenario runs no tree
    orphaned: float
    stale_root: float
    pending_pulls: int
    pending_pulls_max: int
    mean_d_rand: float
    mean_d_near: float
    d_rand_on_target: float
    d_near_on_target: float


#: The sampled quantities (everything but the timestamp).
HEALTH_FIELDS = HealthSample._fields[1:]


class HealthMonitor:
    """Samples overlay/tree health on a periodic sim timer."""

    def __init__(self, nodes: Dict[int, Any], network, obs, period: float = 1.0):
        if period <= 0:
            raise ValueError(f"health period must be positive, got {period}")
        self.nodes = nodes
        self.network = network
        self.obs = obs
        self.period = period
        self.samples: List[HealthSample] = []
        #: Per-node consecutive bad (orphaned or stale-route) intervals.
        self._streak: Dict[int, int] = {}
        self._streak_max: Dict[int, int] = {}
        self._timer: Optional[PeriodicTimer] = None
        self._sim = None
        any_node = next(iter(nodes.values()), None)
        self._use_tree = bool(any_node is not None and any_node.config.use_tree)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, sim, phase: Optional[float] = None) -> None:
        """Arm the sampling timer (first sample after one period)."""
        self._sim = sim
        if self._timer is None:
            # obs=None: the sampler should not flood timer.fire events.
            self._timer = PeriodicTimer(sim, self.period, self._sample, name="health")
        self._timer.start(phase=phase)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _sample(self) -> None:
        now = self._sim.now if self._sim is not None else 0.0
        alive = self.network.alive_nodes()
        live = [(nid, n) for nid, n in self.nodes.items() if nid in alive]

        orphaned_nodes: List[int] = []
        stale_nodes: List[int] = []
        pending_sum = 0
        pending_max = 0
        d_rands: List[int] = []
        d_nears: List[int] = []
        for nid, node in live:
            pending = node.disseminator.pending_pulls
            pending_sum += pending
            pending_max = max(pending_max, pending)
            d_rands.append(node.overlay.d_rand)
            d_nears.append(node.overlay.d_near)
            if self._use_tree:
                tree = node.tree
                if tree.parent is None:
                    if not tree.is_root:
                        orphaned_nodes.append(nid)
                elif tree.parent not in alive or tree.parent not in node.overlay.table:
                    stale_nodes.append(nid)

        if self._use_tree:
            fragments = float(self._tree_fragments(live, alive))
            orphaned = float(len(orphaned_nodes))
            stale = float(len(stale_nodes))
        else:
            fragments = orphaned = stale = math.nan

        n = len(live)
        cfg = live[0][1].config if live else None
        sample = HealthSample(
            time=now,
            live=n,
            tree_fragments=fragments,
            orphaned=orphaned,
            stale_root=stale,
            pending_pulls=pending_sum,
            pending_pulls_max=pending_max,
            mean_d_rand=(sum(d_rands) / n) if n else math.nan,
            mean_d_near=(sum(d_nears) / n) if n else math.nan,
            d_rand_on_target=_on_target(d_rands, cfg.c_rand) if n else math.nan,
            d_near_on_target=_on_target(d_nears, cfg.c_near) if n else math.nan,
        )
        self.samples.append(sample)
        self._update_streaks(live, set(orphaned_nodes) | set(stale_nodes))

        metrics = self.obs.metrics
        for field in HEALTH_FIELDS:
            metrics.record(f"health.{field}", now, float(getattr(sample, field)))
        self.obs.tracer.emit(
            now, "health.sample",
            **{field: getattr(sample, field) for field in HEALTH_FIELDS},
        )

    def _update_streaks(self, live, bad_nodes) -> None:
        for nid, _ in live:
            if nid in bad_nodes:
                streak = self._streak.get(nid, 0) + 1
                self._streak[nid] = streak
                if streak > self._streak_max.get(nid, 0):
                    self._streak_max[nid] = streak
            else:
                self._streak[nid] = 0

    def _tree_fragments(self, live, alive) -> int:
        """Connected components of the live tree-link graph (union-find)."""
        parent = {nid: nid for nid, _ in live}

        def find(x: int) -> int:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:  # path compression
                parent[x], x = root, parent[x]
            return root

        for nid, node in live:
            for peer in node.tree.tree_neighbors():
                if peer in parent:
                    ra, rb = find(nid), find(peer)
                    if ra != rb:
                        parent[ra] = rb
        return sum(1 for nid, _ in live if find(nid) == nid)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def orphan_streaks(self) -> Dict[int, int]:
        """Per node: longest run of consecutive bad sampling intervals."""
        return dict(self._streak_max)

    def recovery(self) -> Dict[str, Optional[float]]:
        """When the tree fragmented, and when it became whole again."""
        fragmented_at = recovered_at = None
        for s in self.samples:
            if math.isnan(s.tree_fragments):
                continue
            if fragmented_at is None and s.tree_fragments > 1:
                fragmented_at = s.time
            elif fragmented_at is not None and recovered_at is None and s.tree_fragments == 1:
                recovered_at = s.time
        return {"fragmented_at": fragmented_at, "recovered_at": recovered_at}

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form carried inside obs snapshots (JSON-safe
        apart from NaN, which the batch layer's serializer handles)."""
        summary: Dict[str, Dict[str, float]] = {}
        for field in HEALTH_FIELDS:
            values = [
                float(getattr(s, field))
                for s in self.samples
                if not math.isnan(float(getattr(s, field)))
            ]
            if values:
                summary[field] = {
                    "min": min(values), "max": max(values), "final": values[-1],
                }
        return {
            "period": self.period,
            "n_samples": len(self.samples),
            "fields": list(HealthSample._fields),
            "samples": [[float(v) for v in s] for s in self.samples],
            "summary": summary,
            "recovery": self.recovery(),
            "orphan_streaks": {
                int(nid): streak
                for nid, streak in sorted(self._streak_max.items())
                if streak > 0
            },
        }


def _on_target(degrees: List[int], target: int) -> float:
    """Fraction of nodes inside the paper's stable band [C, C+1]."""
    if not degrees:
        return math.nan
    hits = sum(1 for d in degrees if target <= d <= target + 1)
    return hits / len(degrees)


# ----------------------------------------------------------------------
# Anomaly detection and merging over plain health dicts (work equally on
# a live monitor's to_dict() and a reloaded/merged snapshot section).
# ----------------------------------------------------------------------
def orphan_anomalies(
    health: Dict[str, Any], min_intervals: int = 5
) -> List[Dict[str, Any]]:
    """Nodes that stayed orphaned/stale ``min_intervals`` samples or more."""
    period = health.get("period", 0.0)
    out = [
        {"node": int(nid), "intervals": streak, "seconds": streak * period}
        for nid, streak in health.get("orphan_streaks", {}).items()
        if streak >= min_intervals
    ]
    out.sort(key=lambda a: (-a["intervals"], a["node"]))
    return out


def merge_health_sections(sections: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate per-trial health rollups (order-invariant).

    Raw sample rows are not carried across the merge — trials have
    unrelated timelines — only the per-field envelope and recovery
    statistics.  Float means use sorted ``fsum`` so the result is
    bit-identical for any trial ordering.
    """
    merged: Dict[str, Any] = {
        "n_trials": len(sections),
        "n_samples": sum(s.get("n_samples", 0) for s in sections),
    }
    periods = sorted(s.get("period", 0.0) for s in sections)
    merged["period"] = math.fsum(periods) / len(periods) if periods else 0.0

    summary: Dict[str, Dict[str, float]] = {}
    for field in HEALTH_FIELDS:
        mins = sorted(
            s["summary"][field]["min"] for s in sections if field in s.get("summary", {})
        )
        maxs = sorted(
            s["summary"][field]["max"] for s in sections if field in s.get("summary", {})
        )
        finals = sorted(
            s["summary"][field]["final"] for s in sections if field in s.get("summary", {})
        )
        if finals:
            summary[field] = {
                "min": mins[0],
                "max": maxs[-1],
                "final_mean": math.fsum(finals) / len(finals),
            }
    merged["summary"] = summary

    recovered = sorted(
        s["recovery"]["recovered_at"]
        for s in sections
        if s.get("recovery", {}).get("recovered_at") is not None
    )
    fragmented = sum(
        1 for s in sections if s.get("recovery", {}).get("fragmented_at") is not None
    )
    merged["recovery"] = {
        "fragmented_trials": fragmented,
        "recovered_trials": len(recovered),
        "mean_recovered_at": math.fsum(recovered) / len(recovered) if recovered else None,
    }
    return merged


def format_health(health: Dict[str, Any], limit: int = 24) -> str:
    """Render a health trajectory (single-trial dict) for the CLI."""
    fields = health.get("fields", ["time", *HEALTH_FIELDS])
    rows = health.get("samples", [])
    lines = ["== health trajectory =="]
    lines.append(
        f"{len(rows)} samples every {health.get('period', 0.0):g}s "
        f"({len(rows) * health.get('period', 0.0):g}s covered)"
    )
    headers = ["time", "live", "frags", "orph", "stale", "pulls", "max",
               "d_rand", "d_near", "rand@C", "near@C"]
    if rows:
        lines.append(
            "  ".join(f"{h:>7}" for h in headers)
        )
        step = max(1, math.ceil(len(rows) / limit))
        shown = rows[::step]
        if rows and shown[-1] is not rows[-1]:
            shown.append(rows[-1])
        for row in shown:
            s = dict(zip(fields, row))
            lines.append(
                "  ".join(
                    [
                        f"{s['time']:>7.2f}",
                        f"{int(s['live']):>7d}",
                        _cell(s["tree_fragments"], "d"),
                        _cell(s["orphaned"], "d"),
                        _cell(s["stale_root"], "d"),
                        f"{int(s['pending_pulls']):>7d}",
                        f"{int(s['pending_pulls_max']):>7d}",
                        _cell(s["mean_d_rand"], ".2f"),
                        _cell(s["mean_d_near"], ".2f"),
                        _cell(s["d_rand_on_target"], ".2f"),
                        _cell(s["d_near_on_target"], ".2f"),
                    ]
                )
            )
    recovery = health.get("recovery", {})
    if recovery.get("fragmented_at") is not None:
        recovered = recovery.get("recovered_at")
        tail = (
            f"recovered (1 fragment) at t={recovered:g}s"
            if recovered is not None
            else "NOT recovered by end of run"
        )
        lines.append(
            f"tree fragmented at t={recovery['fragmented_at']:g}s; {tail}"
        )
    streaks = health.get("orphan_streaks", {})
    if streaks:
        worst = sorted(streaks.items(), key=lambda kv: -kv[1])[:5]
        rendered = ", ".join(f"node {nid}: {n}" for nid, n in worst)
        lines.append(f"longest orphan streaks (intervals): {rendered}")
    return "\n".join(lines)


def _cell(value: float, spec: str) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return f"{'-':>7}"
    if spec == "d":
        return f"{int(value):>7d}"
    return f"{value:>7{spec}}"
