"""Stack-sampling flamegraph exporter.

The dispatch profiler (:mod:`repro.obs.profiler`) attributes wall time
per protocol *category*; a flamegraph attributes it per *call stack*,
which is what the transport/protocol optimization work needs ("which
exact frames inside Disseminator.on_multicast_data are hot?").

:class:`FlameSampler` runs a daemon thread that snapshots the target
thread's stack via ``sys._current_frames()`` every ``interval`` wall
seconds.  Sampling is external to the workload — nothing is imported or
executed on the simulation's hot path, so the slowdown is the cost of
~one frame walk per interval (a few percent at the default 2 ms) and
the simulation results are byte-identical to an unsampled run.

Two output formats, both plain data:

* collapsed stacks (``frame;frame;frame count`` lines) — the input
  format of Brendan Gregg's ``flamegraph.pl`` and most flame tooling;
* speedscope JSON (``"sampled"`` profile: shared frame table +
  chronological samples with per-sample weights) — drop the file on
  https://www.speedscope.app for an interactive time-ordered /
  left-heavy / sandwich view.  :func:`validate_speedscope` checks the
  structural contract and is what the test suite pins the exporter
  against.

``repro obs flame`` wires this around a scenario run (see
``docs/OBSERVABILITY.md`` for the walkthrough).
"""

from __future__ import annotations

import json
import sys
import threading
import time as _time
from typing import Any, Dict, List, Optional, Tuple

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"

#: One captured frame: (function name, file, first line of function).
_FrameKey = Tuple[str, str, int]


class FlameSampler:
    """Periodic stack sampler for one thread (the caller of start())."""

    def __init__(self, interval: float = 0.002, max_samples: int = 200_000):
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive, got {interval}")
        self.interval = interval
        self.max_samples = max_samples
        #: Chronological (stack, weight-seconds) pairs; stacks are
        #: root-first tuples of frame keys.
        self.samples: List[Tuple[Tuple[_FrameKey, ...], float]] = []
        self.dropped = 0
        self._target_ident: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._started_at = 0.0
        self._ended_at = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin sampling the *calling* thread from a helper thread."""
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._target_ident = threading.get_ident()
        self._stop.clear()
        self._started_at = _time.perf_counter()
        self._thread = threading.Thread(
            target=self._loop, name="flame-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None
        self._ended_at = _time.perf_counter()

    def __enter__(self) -> "FlameSampler":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Sampling loop (runs on the helper thread)
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        ident = self._target_ident
        last = _time.perf_counter()
        while not self._stop.wait(self.interval):
            now = _time.perf_counter()
            frame = sys._current_frames().get(ident)
            if frame is None:
                continue
            stack: List[_FrameKey] = []
            depth = 0
            while frame is not None and depth < 512:
                code = frame.f_code
                stack.append((code.co_name, code.co_filename, code.co_firstlineno))
                frame = frame.f_back
                depth += 1
            stack.reverse()
            if len(self.samples) < self.max_samples:
                # Weight = wall time since the previous tick, so pauses
                # (GC, scheduler hiccups) charge the frame they landed in.
                self.samples.append((tuple(stack), now - last))
            else:
                self.dropped += 1
            last = now

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    @property
    def total_weight(self) -> float:
        return sum(w for _, w in self.samples)

    def collapsed(self, trim: Optional[str] = "repro") -> Dict[str, int]:
        """Sample counts per collapsed stack (``frame;frame;frame``).

        ``trim`` drops the harness frames below the first frame whose
        file path contains it (pass None to keep full stacks).
        """
        counts: Dict[str, int] = {}
        for stack, _weight in self.samples:
            frames = [_frame_label(f) for f in self._trimmed(stack, trim)]
            key = ";".join(frames)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def collapsed_text(self, trim: Optional[str] = "repro") -> str:
        counts = self.collapsed(trim)
        return "\n".join(f"{stack} {n}" for stack, n in sorted(counts.items()))

    def speedscope(self, name: str = "repro", trim: Optional[str] = None) -> Dict[str, Any]:
        """The capture as a speedscope ``sampled`` profile document."""
        frames: List[Dict[str, Any]] = []
        index: Dict[_FrameKey, int] = {}
        profile_samples: List[List[int]] = []
        weights: List[float] = []
        elapsed = 0.0
        for stack, weight in self.samples:
            row: List[int] = []
            for key in self._trimmed(stack, trim):
                idx = index.get(key)
                if idx is None:
                    idx = len(frames)
                    index[key] = idx
                    frames.append(
                        {"name": key[0], "file": key[1], "line": key[2]}
                    )
                row.append(idx)
            profile_samples.append(row)
            weights.append(weight)
            elapsed += weight
        return {
            "$schema": SPEEDSCOPE_SCHEMA,
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": 0.0,
                    "endValue": elapsed,
                    "samples": profile_samples,
                    "weights": weights,
                }
            ],
            "name": name,
            "exporter": "repro obs flame",
        }

    @staticmethod
    def _trimmed(
        stack: Tuple[_FrameKey, ...], trim: Optional[str]
    ) -> Tuple[_FrameKey, ...]:
        if trim is None:
            return stack
        for i, (_name, filename, _line) in enumerate(stack):
            if trim in filename:
                return stack[i:]
        return stack


def _frame_label(key: _FrameKey) -> str:
    name, filename, line = key
    marker = "repro/" if "/" in filename else "repro\\"
    idx = filename.rfind(marker)
    short = filename[idx:] if idx != -1 else filename.rsplit("/", 1)[-1]
    return f"{name} ({short}:{line})"


def sample_run(fn, interval: float = 0.002) -> FlameSampler:
    """Run ``fn()`` under a fresh sampler; returns the stopped sampler."""
    sampler = FlameSampler(interval=interval)
    with sampler:
        fn()
    return sampler


# ----------------------------------------------------------------------
# Structural validation (the contract the tests pin)
# ----------------------------------------------------------------------
def validate_speedscope(doc: Any) -> List[str]:
    """Check ``doc`` against the speedscope file-format contract.

    Returns a list of problems (empty = valid).  Covers the subset of
    the schema a ``sampled`` profile uses: the shared frame table,
    frame-index validity, samples/weights agreement, and monotone
    non-negative weights summing to the profile's value range.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("$schema") != SPEEDSCOPE_SCHEMA:
        problems.append(f"$schema must be {SPEEDSCOPE_SCHEMA!r}")
    shared = doc.get("shared")
    if not isinstance(shared, dict) or not isinstance(shared.get("frames"), list):
        return problems + ["missing shared.frames list"]
    frames = shared["frames"]
    for i, frame in enumerate(frames):
        if not isinstance(frame, dict) or not isinstance(frame.get("name"), str):
            problems.append(f"shared.frames[{i}] lacks a string name")
    profiles = doc.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        return problems + ["missing non-empty profiles list"]
    for p, profile in enumerate(profiles):
        where = f"profiles[{p}]"
        if not isinstance(profile, dict):
            problems.append(f"{where} is not an object")
            continue
        if profile.get("type") != "sampled":
            problems.append(f"{where}.type must be 'sampled'")
            continue
        if not isinstance(profile.get("name"), str):
            problems.append(f"{where}.name missing")
        if profile.get("unit") not in (
            "seconds", "milliseconds", "microseconds", "nanoseconds",
            "bytes", "none",
        ):
            problems.append(f"{where}.unit invalid: {profile.get('unit')!r}")
        samples = profile.get("samples")
        weights = profile.get("weights")
        if not isinstance(samples, list) or not isinstance(weights, list):
            problems.append(f"{where} samples/weights missing")
            continue
        if len(samples) != len(weights):
            problems.append(
                f"{where}: {len(samples)} samples but {len(weights)} weights"
            )
        for s, row in enumerate(samples):
            if not isinstance(row, list):
                problems.append(f"{where}.samples[{s}] is not a list")
                continue
            for idx in row:
                if not isinstance(idx, int) or not 0 <= idx < len(frames):
                    problems.append(
                        f"{where}.samples[{s}] has invalid frame index {idx!r}"
                    )
                    break
        total = 0.0
        for w, weight in enumerate(weights):
            if not isinstance(weight, (int, float)) or weight < 0:
                problems.append(f"{where}.weights[{w}] invalid: {weight!r}")
                break
            total += float(weight)
        start = profile.get("startValue")
        end = profile.get("endValue")
        if not isinstance(start, (int, float)) or not isinstance(end, (int, float)):
            problems.append(f"{where} startValue/endValue missing")
        elif end < start:
            problems.append(f"{where}: endValue {end} < startValue {start}")
        elif total > (end - start) + 1e-6:
            problems.append(
                f"{where}: weights sum {total:.6f} exceeds value range {end - start:.6f}"
            )
    return problems


def write_speedscope(doc: Dict[str, Any], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(doc, fh)
