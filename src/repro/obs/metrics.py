"""Labeled metrics: counters, gauges, and streaming histograms.

:class:`MetricsRegistry` is the single counters/series API of the
repository.  Protocol code updates it through cheap hooks that are
no-ops when the registry is disabled, so the deterministic simulations
are bit-identical (and within noise as fast) with observability off.

Design notes:

* **Labels** are keyword arguments (``registry.inc("net.sent",
  type="Gossip")``).  Each (name, label-set) pair is an independent
  time-less cell.  Per-name label cardinality is capped; once
  ``max_label_sets`` distinct label sets exist for a name, further new
  label sets collapse into a single ``overflow="true"`` cell so a
  mis-labeled hot path cannot exhaust memory.
* **Histograms** are streaming: fixed exponential bucket bounds, O(1)
  per observation, percentiles reconstructed by linear interpolation
  within the winning bucket (exact min/max are tracked separately and
  clamp the estimate).
* **Series** (``record``/``series_arrays``) retain the old
  ``TraceRecorder`` API — timestamped (time, value) points used by the
  adaptation experiments; ``TraceRecorder`` is now an alias of this
  class.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

#: Label-set key used when a metric name exceeds its cardinality budget.
OVERFLOW_LABELS: Tuple[Tuple[str, str], ...] = (("overflow", "true"),)

LabelsKey = Tuple[Tuple[str, Any], ...]


class StreamingHistogram:
    """Fixed-memory histogram with exponentially growing buckets.

    Bucket ``i`` covers ``(first_bound * growth**(i-1), first_bound *
    growth**i]``; bucket 0 covers ``(-inf, first_bound]``.  Everything
    above the last bound lands in a final overflow bucket.
    """

    __slots__ = ("count", "total", "min", "max", "_bounds", "_buckets")

    def __init__(
        self,
        first_bound: float = 1e-4,
        growth: float = 2.0,
        n_buckets: int = 48,
    ):
        if first_bound <= 0 or growth <= 1.0 or n_buckets < 2:
            raise ValueError("need first_bound > 0, growth > 1, n_buckets >= 2")
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._bounds = [first_bound * growth**i for i in range(n_buckets)]
        self._buckets = [0] * (n_buckets + 1)  # +1 overflow bucket

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # Exponential bounds: binary search is the O(log n) constant-time
        # path (n_buckets is fixed).
        lo, hi = 0, len(self._bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self._bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self._buckets[lo] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (q in [0, 100])."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return float("nan")
        rank = q / 100.0 * self.count
        cumulative = 0
        for i, n in enumerate(self._buckets):
            if n == 0:
                continue
            if cumulative + n >= rank:
                lower = 0.0 if i == 0 else self._bounds[i - 1]
                upper = self._bounds[i] if i < len(self._bounds) else self.max
                frac = (rank - cumulative) / n
                est = lower + frac * (upper - lower)
                return float(min(max(est, self.min), self.max))
            cumulative += n
        return self.max

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else float("nan"),
            "max": self.max if self.count else float("nan"),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


def format_labels(name: str, key: LabelsKey) -> str:
    """``name{k=v,...}`` rendering of a (name, label-set) cell."""
    if not key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Counters, gauges, histograms, and timestamped series.

    All mutators are no-ops while :attr:`enabled` is False — the single
    flag that makes the instrumentation layer zero-overhead when off.
    """

    def __init__(self, enabled: bool = True, max_label_sets: int = 256):
        self.enabled = enabled
        self.max_label_sets = max_label_sets
        self._counters: Dict[str, Dict[LabelsKey, float]] = {}
        self._gauges: Dict[str, Dict[LabelsKey, float]] = {}
        self._histograms: Dict[str, Dict[LabelsKey, StreamingHistogram]] = {}
        self.series: Dict[str, List[Tuple[float, float]]] = {}

    # ------------------------------------------------------------------
    # Label handling
    # ------------------------------------------------------------------
    def _key(self, cells: Dict[LabelsKey, Any], labels: Dict[str, Any]) -> LabelsKey:
        if not labels:
            return ()
        key = tuple(sorted(labels.items()))
        if key in cells or len(cells) < self.max_label_sets:
            return key
        return OVERFLOW_LABELS

    # ------------------------------------------------------------------
    # Mutators (cheap no-ops when disabled)
    # ------------------------------------------------------------------
    # The metric name (and value) are positional-only so that labels may
    # reuse those words: registry.inc("timer.fire", name="gossip").
    def inc(self, name: str, /, amount: float = 1, **labels: Any) -> None:
        if not self.enabled:
            return
        cells = self._counters.setdefault(name, {})
        key = self._key(cells, labels)
        cells[key] = cells.get(key, 0) + amount

    def set_gauge(self, name: str, value: float, /, **labels: Any) -> None:
        if not self.enabled:
            return
        cells = self._gauges.setdefault(name, {})
        cells[self._key(cells, labels)] = value

    def observe(self, name: str, value: float, /, **labels: Any) -> None:
        if not self.enabled:
            return
        cells = self._histograms.setdefault(name, {})
        key = self._key(cells, labels)
        hist = cells.get(key)
        if hist is None:
            hist = cells[key] = StreamingHistogram()
        hist.observe(value)

    # ------------------------------------------------------------------
    # TraceRecorder-compatible API (counters + timestamped series)
    # ------------------------------------------------------------------
    def count(self, name: str, amount: int = 1) -> None:
        self.inc(name, amount)

    def record(self, name: str, time: float, value: float) -> None:
        if not self.enabled:
            return
        self.series.setdefault(name, []).append((time, value))

    def series_arrays(self, name: str) -> Tuple[np.ndarray, np.ndarray]:
        points = self.series.get(name, [])
        if not points:
            return np.array([]), np.array([])
        times, values = zip(*points)
        return np.asarray(times), np.asarray(values)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def counters(self) -> Dict[str, float]:
        """Flattened ``{name or name{labels}: value}`` view of all counters."""
        flat: Dict[str, float] = {}
        for name, cells in self._counters.items():
            for key, value in cells.items():
                flat[format_labels(name, key)] = value
        return flat

    @property
    def gauges(self) -> Dict[str, float]:
        flat: Dict[str, float] = {}
        for name, cells in self._gauges.items():
            for key, value in cells.items():
                flat[format_labels(name, key)] = value
        return flat

    def counter_value(self, name: str, /, **labels: Any) -> float:
        cells = self._counters.get(name, {})
        return cells.get(tuple(sorted(labels.items())) if labels else (), 0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter over all its label sets."""
        return sum(self._counters.get(name, {}).values())

    def histogram(self, name: str, /, **labels: Any) -> Optional[StreamingHistogram]:
        cells = self._histograms.get(name, {})
        return cells.get(tuple(sorted(labels.items())) if labels else ())

    def label_sets(self, name: str) -> Iterable[LabelsKey]:
        return self._counters.get(name, {}).keys()

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data dump of every metric (attached to DelayResult)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                format_labels(name, key): hist.to_dict()
                for name, cells in self._histograms.items()
                for key, hist in cells.items()
            },
            "series": {name: len(points) for name, points in self.series.items()},
        }


def merge_snapshots(snapshots: Iterable[Optional[Dict[str, Any]]]) -> Optional[Dict[str, Any]]:
    """Combine per-trial :meth:`MetricsRegistry.snapshot` dicts into one.

    Used by the batch runner to fold worker-process metrics back into the
    parent.  Merge semantics per section:

    * ``counters`` — summed (totals over all trials).
    * ``gauges`` — arithmetic mean over the snapshots that carry the key
      (gauges are point-in-time values; summing ``sim.end_time`` across
      trials would be meaningless).
    * ``histograms`` — ``count``/``sum`` summed, ``min``/``max``
      combined, ``mean`` recomputed; per-trial percentile estimates are
      dropped because percentiles of merged distributions cannot be
      recovered from per-trial percentiles.
    * ``series`` — point counts summed.

    ``None`` entries (trials run without observability) are skipped;
    returns ``None`` when no snapshot survives.  The result carries an
    ``n_snapshots`` count.

    Snapshots may additionally carry ``health`` (health-monitor rollup,
    see :mod:`repro.obs.health`) and ``provenance`` (path-reconstruction
    rollup, see :mod:`repro.obs.provenance`) sections; when present they
    are merged with their modules' order-invariant reducers.
    """
    snaps = [s for s in snapshots if s]
    if not snaps:
        return None
    counters: Dict[str, float] = {}
    gauge_values: Dict[str, List[float]] = {}
    histograms: Dict[str, Dict[str, float]] = {}
    series: Dict[str, int] = {}
    for snap in snaps:
        for key, value in snap.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
        for key, value in snap.get("gauges", {}).items():
            gauge_values.setdefault(key, []).append(value)
        for key, hist in snap.get("histograms", {}).items():
            if not hist.get("count"):
                continue
            cell = histograms.get(key)
            if cell is None:
                histograms[key] = {
                    "count": hist["count"],
                    "sum": hist["sum"],
                    "min": hist["min"],
                    "max": hist["max"],
                }
            else:
                cell["count"] += hist["count"]
                cell["sum"] += hist["sum"]
                cell["min"] = min(cell["min"], hist["min"])
                cell["max"] = max(cell["max"], hist["max"])
        for key, n_points in snap.get("series", {}).items():
            series[key] = series.get(key, 0) + n_points
    for cell in histograms.values():
        cell["mean"] = cell["sum"] / cell["count"]
    merged = {
        "n_snapshots": len(snaps),
        "counters": counters,
        "gauges": {key: sum(vals) / len(vals) for key, vals in gauge_values.items()},
        "histograms": histograms,
        "series": series,
    }
    # Optional sections added by the experiment runner.  Imported lazily:
    # these modules are higher up the obs stack than the registry.
    health_sections = [s["health"] for s in snaps if s.get("health")]
    if health_sections:
        from repro.obs.health import merge_health_sections

        merged["health"] = merge_health_sections(health_sections)
    capacity_sections = [s["capacity"] for s in snaps if s.get("capacity")]
    if capacity_sections:
        from repro.obs.series import merge_series_sections

        merged["capacity"] = merge_series_sections(capacity_sections)
    provenance_sections = [s["provenance"] for s in snaps if s.get("provenance")]
    if provenance_sections:
        from repro.obs.provenance import merge_provenance_summaries

        merged["provenance"] = merge_provenance_summaries(provenance_sections)
    return merged
