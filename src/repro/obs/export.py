"""Deep trace export: SimTracer + Profiler → Chrome-trace/Perfetto JSON.

Converts a simulation trace into the Trace Event Format that
``chrome://tracing`` and https://ui.perfetto.dev load directly, giving
flame-level visibility into a run:

* **protocol track group** (pid 1) — every trace category
  (``tree.push``, ``gossip.summary``, ``dissem.deliver``, ...) on its
  own named thread track as instant events carrying the event's fields;
* **chaos track** (pid 2) — ``chaos.phase`` start/end pairs rendered as
  duration (``"X"``) slices per fault kind, one-shot phases (crash
  waves) as instants, so the fault timeline reads as colored bands the
  protocol reaction can be lined up against;
* **invariants track** (pid 3) — each ``invariant.violation`` as an
  instant event on the violated invariant's own track;
* **profiler track group** (pid 4) — one track per profiler category
  with a single slice whose duration is the category's cumulative
  wall-clock, i.e. a one-glance flame view of where the real time went;
* **capacity track group** (pid 5) — ``capacity.sample`` events (see
  :mod:`repro.obs.series`) as counter (``"C"``) tracks: event
  throughput, scheduler occupancy, live messages, and per-layer
  message/byte rates render as line charts under the protocol timeline.

Simulated seconds map to trace microseconds.  The profiler has no
per-event timeline (it aggregates), so its slices start at t=0 by
design; their relative widths are the signal.

:func:`validate_chrome_trace` structurally checks a document against
the format (used by the schema test and ``repro obs export`` itself).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.obs.ledger import json_safe
from repro.obs.tracer import TraceEvent

#: Track-group process ids.
PID_PROTOCOL = 1
PID_CHAOS = 2
PID_INVARIANTS = 3
PID_PROFILE = 4
PID_CAPACITY = 5

PROCESS_NAMES = {
    PID_PROTOCOL: "protocol",
    PID_CHAOS: "chaos",
    PID_INVARIANTS: "invariants",
    PID_PROFILE: "profiler",
    PID_CAPACITY: "capacity",
}

#: Categories that get their own dedicated track group.
_CHAOS_CATEGORY = "chaos.phase"
_INVARIANT_CATEGORY = "invariant.violation"
_CAPACITY_CATEGORY = "capacity.sample"

#: capacity.sample fields → counter-track name; multi-series counters
#: plot their fields as stacked lines on one track.
_CAPACITY_COUNTERS = (
    ("events_per_sec", (("events_per_sec", "value"),)),
    ("live_nodes", (("live", "value"),)),
    (
        "queue",
        (
            ("pending_events", "pending"),
            ("sched_queue", "queue"),
            ("sched_wheel", "wheel"),
        ),
    ),
    ("messages", (("live_messages", "live"), ("pending_pulls", "pulls"))),
    (
        "msg_rate",
        (
            ("msg_rate_overlay", "overlay"),
            ("msg_rate_tree", "tree"),
            ("msg_rate_gossip", "gossip"),
            ("msg_rate_dissem", "dissem"),
        ),
    ),
    (
        "byte_rate",
        (
            ("byte_rate_overlay", "overlay"),
            ("byte_rate_tree", "tree"),
            ("byte_rate_gossip", "gossip"),
            ("byte_rate_dissem", "dissem"),
        ),
    ),
)


def _us(t: float) -> float:
    """Simulated seconds → trace microseconds."""
    return round(float(t) * 1e6, 3)


class _Tracks:
    """Assigns stable thread ids per (pid, track name) and emits the
    process/thread metadata events Perfetto uses for naming."""

    def __init__(self):
        self._tids: Dict[tuple, int] = {}
        self.metadata: List[Dict[str, Any]] = []
        self._named_pids: set = set()

    def tid(self, pid: int, name: str) -> int:
        key = (pid, name)
        if key in self._tids:
            return self._tids[key]
        if pid not in self._named_pids:
            self._named_pids.add(pid)
            self.metadata.append(
                {
                    "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
                    "args": {"name": PROCESS_NAMES.get(pid, f"pid{pid}")},
                }
            )
        tid = len([k for k in self._tids if k[0] == pid]) + 1
        self._tids[key] = tid
        self.metadata.append(
            {
                "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
                "args": {"name": name},
            }
        )
        return tid


def chrome_trace(
    events: Iterable[TraceEvent],
    profile: Optional[Dict[str, Any]] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build a Trace Event Format document from trace events.

    ``profile`` is a :meth:`~repro.obs.profiler.ProfileReport.to_dict`
    dump (or None to skip the profiler tracks); ``meta`` lands in the
    document's ``otherData`` section.
    """
    tracks = _Tracks()
    out: List[Dict[str, Any]] = []
    open_chaos: Dict[str, List[Dict[str, Any]]] = {}
    end_ts = 0.0

    for event in events:
        ts = _us(event.time)
        end_ts = max(end_ts, ts)
        fields = json_safe(dict(event.fields))
        if event.category == _CHAOS_CATEGORY:
            phase = str(fields.get("phase", "phase"))
            action = fields.get("action")
            tid = tracks.tid(PID_CHAOS, phase)
            if action == "start":
                open_chaos.setdefault(phase, []).append(
                    {
                        "ph": "X", "pid": PID_CHAOS, "tid": tid, "name": phase,
                        "cat": "chaos", "ts": ts, "dur": 0.0, "args": fields,
                    }
                )
                out.append(open_chaos[phase][-1])
            elif action == "end" and open_chaos.get(phase):
                slice_ = open_chaos[phase].pop()
                slice_["dur"] = max(ts - slice_["ts"], 0.0)
                slice_["args"] = {**slice_["args"], **fields}
            else:  # one-shot phases (crash waves) and unmatched ends
                out.append(
                    {
                        "ph": "i", "s": "p", "pid": PID_CHAOS, "tid": tid,
                        "name": f"{phase}:{action}", "cat": "chaos",
                        "ts": ts, "args": fields,
                    }
                )
        elif event.category == _CAPACITY_CATEGORY:
            for counter, series in _CAPACITY_COUNTERS:
                args: Dict[str, Any] = {}
                for field, label in series:
                    value = event.fields.get(field)
                    # NaN (e.g. no message buffer in a baseline run) and
                    # absent fields simply drop out of the counter.
                    if isinstance(value, (int, float)) and value == value:
                        args[label] = float(value)
                if args:
                    out.append(
                        {
                            "ph": "C",
                            "pid": PID_CAPACITY,
                            "tid": tracks.tid(PID_CAPACITY, counter),
                            "name": counter, "cat": "capacity",
                            "ts": ts, "args": args,
                        }
                    )
        elif event.category == _INVARIANT_CATEGORY:
            invariant = str(fields.get("invariant", "violation"))
            out.append(
                {
                    "ph": "i", "s": "p",
                    "pid": PID_INVARIANTS,
                    "tid": tracks.tid(PID_INVARIANTS, invariant),
                    "name": invariant, "cat": "invariant",
                    "ts": ts, "args": fields,
                }
            )
        else:
            out.append(
                {
                    "ph": "i", "s": "t",
                    "pid": PID_PROTOCOL,
                    "tid": tracks.tid(PID_PROTOCOL, event.category),
                    "name": event.category,
                    "cat": event.category.split(".", 1)[0],
                    "ts": ts, "args": fields,
                }
            )

    # Chaos windows still open when the trace ended: close at trace end.
    for slices in open_chaos.values():
        for slice_ in slices:
            slice_["dur"] = max(end_ts - slice_["ts"], 0.0)
            slice_["args"] = {**slice_["args"], "truncated": True}

    if profile:
        total = float(profile.get("total_seconds") or 0.0)
        for row in profile.get("categories", []):
            name = row["category"]
            out.append(
                {
                    "ph": "X",
                    "pid": PID_PROFILE,
                    "tid": tracks.tid(PID_PROFILE, name),
                    "name": name, "cat": "profile",
                    "ts": 0.0, "dur": _us(row["seconds"]),
                    "args": {
                        "events": row["events"],
                        "seconds": row["seconds"],
                        "share": (row["seconds"] / total) if total else 0.0,
                    },
                }
            )

    return {
        "traceEvents": tracks.metadata + out,
        "displayTimeUnit": "ms",
        "otherData": json_safe(dict(meta or {})),
    }


def export_chrome_trace(
    path: str,
    events: Sequence[TraceEvent],
    profile: Optional[Dict[str, Any]] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write the Chrome-trace document for ``events`` to ``path``."""
    doc = chrome_trace(events, profile=profile, meta=meta)
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(doc, fp, default=str)
        fp.write("\n")
    return doc


def trace_tracks(doc: Dict[str, Any]) -> Dict[str, List[str]]:
    """``{process name: [thread/track names]}`` of a trace document."""
    processes: Dict[int, str] = {}
    threads: Dict[int, List[str]] = {}
    for event in doc.get("traceEvents", []):
        if event.get("ph") != "M":
            continue
        if event.get("name") == "process_name":
            processes[event["pid"]] = event["args"]["name"]
        elif event.get("name") == "thread_name":
            threads.setdefault(event["pid"], []).append(event["args"]["name"])
    return {name: threads.get(pid, []) for pid, name in processes.items()}


def validate_chrome_trace(doc: Any) -> List[str]:
    """Structural checks against the Trace Event Format; [] when clean.

    Covers what Perfetto's importer actually requires: a
    ``traceEvents`` list, known phase types, ``ts`` on every
    non-metadata event, non-negative ``dur`` on complete events, valid
    instant scopes, and named pid/tid tracks for every event.
    """
    problems: List[str] = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ["document must be an object with a 'traceEvents' list"]
    named_tracks = set()
    for event in doc["traceEvents"]:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            named_tracks.add((event.get("pid"), event.get("tid")))
    for i, event in enumerate(doc["traceEvents"]):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("M", "i", "I", "X", "B", "E", "C"):
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if "pid" not in event or "tid" not in event or "name" not in event:
            problems.append(f"{where}: missing pid/tid/name")
            continue
        if ph == "M":
            continue
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"{where}: {ph!r} event without numeric ts")
        if ph == "X" and not (
            isinstance(event.get("dur"), (int, float)) and event["dur"] >= 0
        ):
            problems.append(f"{where}: complete event without non-negative dur")
        if ph in ("i", "I") and event.get("s") not in (None, "g", "p", "t"):
            problems.append(f"{where}: instant event with invalid scope {event.get('s')!r}")
        if (event["pid"], event["tid"]) not in named_tracks:
            problems.append(
                f"{where}: event on unnamed track (pid={event['pid']}, tid={event['tid']})"
            )
    return problems
