"""Observability layer: metrics, structured tracing, and profiling.

The package provides three composable tools plus a facade:

* :class:`~repro.obs.metrics.MetricsRegistry` — labeled counters,
  gauges, streaming histograms, and timestamped series (the single
  counters/series API of the repository; ``repro.sim.trace.TraceRecorder``
  is an alias of it).
* :class:`~repro.obs.tracer.SimTracer` — categorized structured events
  in a bounded ring buffer, exportable as JSONL.
* :class:`~repro.obs.profiler.Profiler` — wall-clock attribution of
  engine callback dispatch per protocol category.
* :class:`Observability` — one object carrying all three, threaded
  through :class:`~repro.experiments.system.GoCastSystem`,
  :class:`~repro.sim.transport.Network` and
  :class:`~repro.core.node.GoCastNode`.

Instrumented code guards every hook with the single ``obs.enabled``
flag, so a disabled layer costs one attribute check per instrumentation
point and the simulation stays bit-identical to the uninstrumented
path.  ``DISABLED`` is the shared always-off instance protocol objects
default to; never enable it in place — create your own
``Observability(enabled=True)``.

See ``docs/OBSERVABILITY.md`` for usage.
"""

from __future__ import annotations

from repro.obs.export import chrome_trace, export_chrome_trace, validate_chrome_trace
from repro.obs.health import HealthMonitor, HealthSample
from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    Ledger,
    LedgerError,
    RunRecord,
    environment_provenance,
    ledger_enabled,
    record_run,
)
from repro.obs.flame import FlameSampler, validate_speedscope
from repro.obs.memory import MemoryCensus, census_system, deep_size
from repro.obs.metrics import MetricsRegistry, StreamingHistogram, merge_snapshots
from repro.obs.profiler import CATEGORY_RULES, Profiler, ProfileReport, categorize
from repro.obs.provenance import DeliveryPath, Hop, PathReconstructor
from repro.obs.regress import DEFAULT_RULES, Comparison, Rule, compare_records
from repro.obs.series import CapacitySampler, SeriesSample, merge_series_sections
from repro.obs.summary import format_metrics_summary, record_link_stress
from repro.obs.tracer import TRACE_SCHEMA, SimTracer, TraceEvent, validate_events


class Observability:
    """Facade bundling a metrics registry, a tracer and (optionally) a
    profiler behind one enabled flag.

    ``health_period`` sets the sampling cadence of the
    :class:`~repro.obs.health.HealthMonitor` the experiment runner
    attaches to overlay runs (``0`` disables health sampling).
    ``series_period`` does the same for the
    :class:`~repro.obs.series.CapacitySampler` (events/sec, queue
    occupancy, per-layer byte rates); it defaults to off because the
    capacity trajectory is a diagnosis tool, not part of the standard
    result set.
    """

    def __init__(
        self,
        enabled: bool = True,
        trace_capacity: int = 65536,
        profile: bool = False,
        max_label_sets: int = 256,
        health_period: float = 1.0,
        series_period: float = 0.0,
    ):
        self.enabled = enabled
        self.metrics = MetricsRegistry(enabled=enabled, max_label_sets=max_label_sets)
        self.tracer = SimTracer(capacity=trace_capacity, enabled=enabled)
        self.profiler = Profiler() if profile else None
        self.health_period = health_period
        self.series_period = series_period


#: Shared always-disabled instance; the default for every protocol object.
DISABLED = Observability(enabled=False)

__all__ = [
    "CATEGORY_RULES",
    "Comparison",
    "DEFAULT_RULES",
    "DISABLED",
    "DeliveryPath",
    "LEDGER_SCHEMA_VERSION",
    "Ledger",
    "LedgerError",
    "RunRecord",
    "Rule",
    "chrome_trace",
    "compare_records",
    "environment_provenance",
    "export_chrome_trace",
    "ledger_enabled",
    "record_run",
    "validate_chrome_trace",
    "CapacitySampler",
    "FlameSampler",
    "HealthMonitor",
    "HealthSample",
    "Hop",
    "MemoryCensus",
    "MetricsRegistry",
    "Observability",
    "PathReconstructor",
    "ProfileReport",
    "Profiler",
    "SeriesSample",
    "SimTracer",
    "StreamingHistogram",
    "TRACE_SCHEMA",
    "TraceEvent",
    "categorize",
    "census_system",
    "deep_size",
    "format_metrics_summary",
    "merge_series_sections",
    "merge_snapshots",
    "record_link_stress",
    "validate_events",
    "validate_speedscope",
]
