"""Human-readable rendering of a metrics snapshot.

Turns :meth:`MetricsRegistry.snapshot` output into the table the
``repro obs summary`` CLI prints: per-category message counts (tree
push vs. gossip pull), derived ratios (gossip effectiveness, pull
share), and streaming-histogram summaries such as the per-link stress
distribution.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.obs.metrics import MetricsRegistry


def record_link_stress(metrics: MetricsRegistry, link_counts: Mapping) -> None:
    """Feed per-link message counts into the ``net.link.stress`` histogram."""
    for count in link_counts.values():
        metrics.observe("net.link.stress", count)


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4f}"
    return f"{int(value)}"


def derived_ratios(snapshot: Dict[str, Any]) -> Dict[str, float]:
    """Protocol-level ratios computed from raw counters."""
    counters = snapshot.get("counters", {})

    def total(prefix: str) -> float:
        return sum(v for k, v in counters.items() if k == prefix or k.startswith(prefix + "{"))

    out: Dict[str, float] = {}
    heard = total("gossip.summaries_heard")
    new = total("gossip.summaries_new")
    if heard > 0:
        out["gossip.effectiveness"] = new / heard
    tree = total("dissem.delivered{via=tree}") or counters.get("dissem.delivered{via=tree}", 0)
    pull = counters.get("dissem.delivered{via=pull}", 0)
    if tree + pull > 0:
        out["dissem.pull_share"] = pull / (tree + pull)
    sent = total("gossip.sent")
    saved = total("gossip.saved")
    if sent + saved > 0:
        out["gossip.saved_share"] = saved / (sent + saved)
    return out


def format_metrics_summary(snapshot: Dict[str, Any]) -> str:
    """Render one snapshot as the ``repro obs summary`` table."""
    lines = ["== counters =="]
    counters = snapshot.get("counters", {})
    if counters:
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {_fmt_value(counters[name])}")
    else:
        lines.append("  (none)")

    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("== gauges ==")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {_fmt_value(gauges[name])}")

    ratios = derived_ratios(snapshot)
    if ratios:
        lines.append("")
        lines.append("== derived ==")
        width = max(len(name) for name in ratios)
        for name in sorted(ratios):
            lines.append(f"  {name:<{width}}  {ratios[name]:.4f}")

    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("== histograms ==")
        header = (
            f"  {'name':<24} {'count':>8} {'mean':>10} {'p50':>10} "
            f"{'p90':>10} {'p99':>10} {'max':>10}"
        )
        lines.append(header)
        for name in sorted(histograms):
            h = histograms[name]

            # Merged snapshots drop per-trial percentile estimates
            # (see metrics.merge_snapshots); render those cells as "--".
            def cell(key: str, h=h) -> str:
                value = h.get(key)
                return f"{value:>10.4f}" if value is not None else f"{'--':>10}"

            lines.append(
                f"  {name:<24} {int(h['count']):>8d} {cell('mean')} "
                f"{cell('p50')} {cell('p90')} {cell('p99')} {cell('max')}"
            )

    series = snapshot.get("series", {})
    if series:
        lines.append("")
        lines.append("== series (points) ==")
        for name in sorted(series):
            lines.append(f"  {name}: {series[name]}")

    health = snapshot.get("health")
    if health:
        lines.append("")
        lines.append("== health ==")
        lines.append(
            f"  {health.get('n_samples', 0)} samples every "
            f"{health.get('period', 0.0):g}s"
        )
        summary = health.get("summary", {})
        for field in sorted(summary):
            cell = summary[field]
            final = cell.get("final", cell.get("final_mean"))
            lines.append(
                f"  {field:<20} min={cell['min']:g} max={cell['max']:g} "
                f"final={final:g}"
            )
        recovery = health.get("recovery", {})
        if recovery.get("fragmented_at") is not None:
            lines.append(
                f"  tree fragmented at t={recovery['fragmented_at']:g}s, "
                + (
                    f"recovered at t={recovery['recovered_at']:g}s"
                    if recovery.get("recovered_at") is not None
                    else "not recovered"
                )
            )

    capacity = snapshot.get("capacity")
    if capacity:
        lines.append("")
        lines.append("== capacity ==")
        lines.append(
            f"  {capacity.get('n_samples', 0)} samples every "
            f"{capacity.get('period', 0.0):g}s"
        )
        summary = capacity.get("summary", {})
        for field in sorted(summary):
            cell = summary[field]
            final = cell.get("final", cell.get("final_mean"))
            lines.append(
                f"  {field:<20} min={cell['min']:g} max={cell['max']:g} "
                f"final={final:g}"
            )

    provenance = snapshot.get("provenance")
    if provenance:
        att = provenance.get("attribution", {})
        lines.append("")
        lines.append("== provenance ==")
        lines.append(
            f"  {provenance.get('paths', 0)} delivery paths "
            f"({provenance.get('complete', 0)} complete) over "
            f"{provenance.get('messages', 0)} messages; "
            f"tree={att.get('tree', 0)} pull-repair={att.get('pull-repair', 0)}; "
            f"max {provenance.get('max_hops', 0)} hops"
        )
    return "\n".join(lines)
