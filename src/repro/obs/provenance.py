"""Causal delivery provenance: per-message, per-hop path reconstruction.

The dissemination layer emits distributed-tracing-style records when
observability is enabled:

* ``dissem.inject``  — a message enters the system at its source,
* ``dissem.deliver`` — a node delivers a message, carrying the peer it
  came from (``src``), the mechanism (``via`` = ``tree`` | ``pull``),
  the one-way latency of that hop (``owl``), and — for pulls — how long
  the node waited between first hearing the id advertised and receiving
  the payload (``waited``),
* ``pull.request``   — each pull attempt for a specific message id.

Because every delivery record points at the peer that supplied the
payload, the records form a reverse forest rooted at each message's
source.  :class:`PathReconstructor` walks that forest to rebuild the
complete hop-by-hop path every (message, node) pair took through the
overlay, attributes each path to the embedded ``tree`` or to gossip
``pull-repair``, and breaks the end-to-end delay down per hop into wire
latency vs queueing/gossip wait.

Attribution is defined as the mechanism of the *final* hop (how the node
itself got the payload), so summing attributions over all delivery
records reproduces the ``dissem.delivered{via=...}`` counters exactly —
the diagnostics CLI checks that identity on every run.

The module is pure analysis: it only reads trace events and never
touches protocol state, so it works equally on a live
:class:`~repro.obs.tracer.SimTracer` buffer or a reloaded JSONL trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.tracer import TraceEvent

#: Attribution labels (mechanism of the final hop).
TREE = "tree"
PULL_REPAIR = "pull-repair"


@dataclass(frozen=True)
class Hop:
    """One edge of a delivery path: ``src`` handed the payload to ``node``."""

    node: int
    src: int
    via: str  # "tree" | "pull" | "inject" (source's own zero-length hop)
    time: float  # simulated delivery time at ``node``
    owl: float  # one-way wire latency of this hop
    waited: float  # pull only: first-advertisement -> payload wait

    @property
    def mechanism(self) -> str:
        return PULL_REPAIR if self.via == "pull" else TREE


@dataclass
class DeliveryPath:
    """The reconstructed end-to-end path of one (message, node) pair."""

    msg: str
    node: int
    source: Optional[int]
    inject_time: Optional[float]
    hops: List[Hop] = field(default_factory=list)  # source side first
    complete: bool = True  # walked all the way back to the source

    @property
    def attribution(self) -> str:
        """``tree`` or ``pull-repair`` — mechanism of the final hop."""
        return self.hops[-1].mechanism

    @property
    def delivered_at(self) -> float:
        return self.hops[-1].time

    @property
    def delay(self) -> float:
        """End-to-end delay; NaN when the inject record is unknown."""
        if self.inject_time is None:
            return math.nan
        return self.delivered_at - self.inject_time

    @property
    def n_hops(self) -> int:
        return len(self.hops)

    def segments(self) -> List[Tuple[float, float, float]]:
        """Per-hop latency breakdown: ``(duration, wire, queued)``.

        ``duration`` is the simulated time the payload spent reaching
        this hop's node since the previous hop (or injection); ``wire``
        is the hop's one-way latency and ``queued = duration - wire`` is
        everything else (forwarding f-delays, gossip intervals, pull
        round trips).  Durations are NaN for the first hop of an
        incomplete path, where the predecessor's delivery time is
        outside the trace.
        """
        out: List[Tuple[float, float, float]] = []
        prev = self.inject_time if self.complete else None
        for hop in self.hops:
            if prev is None:
                out.append((math.nan, hop.owl, math.nan))
            else:
                duration = hop.time - prev
                out.append((duration, hop.owl, duration - hop.owl))
            prev = hop.time
        return out

    def format(self) -> str:
        """Human-readable rendering for the diagnostics CLI."""
        status = "" if self.complete else "  [INCOMPLETE: head hop missing]"
        head = (
            f"message {self.msg} -> node {self.node}: "
            f"{self.n_hops} hop(s), via {self.attribution}, "
            f"delay {_fmt(self.delay)}s{status}"
        )
        lines = [head]
        for hop, (duration, wire, queued) in zip(self.hops, self.segments()):
            extra = f" waited={hop.waited:.4f}s" if hop.via == "pull" else ""
            lines.append(
                f"  {hop.src} -> {hop.node}  via={hop.mechanism:<11}"
                f" t={hop.time:.4f}  seg={_fmt(duration)}s"
                f" (wire={wire:.4f}s queued={_fmt(queued)}s){extra}"
            )
        return "\n".join(lines)


def _fmt(x: float) -> str:
    return "?" if math.isnan(x) else f"{x:.4f}"


class PathReconstructor:
    """Rebuild delivery paths from a trace's provenance records."""

    def __init__(self, events: Iterable[TraceEvent]):
        #: msg -> (source node, inject time)
        self._inject: Dict[str, Tuple[int, float]] = {}
        #: msg -> node -> final-hop record
        self._deliver: Dict[str, Dict[int, Hop]] = {}
        #: (msg, node) -> highest pull attempt number seen
        self._attempts: Dict[Tuple[str, int], int] = {}
        for ev in events:
            f = ev.fields
            if ev.category == "dissem.inject":
                self._inject[f["msg"]] = (f["node"], ev.time)
            elif ev.category == "dissem.deliver":
                self._deliver.setdefault(f["msg"], {})[f["node"]] = Hop(
                    node=f["node"], src=f["src"], via=f["via"],
                    time=ev.time, owl=f["owl"], waited=f["waited"],
                )
            elif ev.category == "pull.request":
                key = (f["msg"], f["node"])
                if f["attempt"] > self._attempts.get(key, 0):
                    self._attempts[key] = f["attempt"]

    # ------------------------------------------------------------------
    # Inventory
    # ------------------------------------------------------------------
    @property
    def n_deliveries(self) -> int:
        return sum(len(nodes) for nodes in self._deliver.values())

    def message_ids(self) -> List[str]:
        """All message ids seen, ordered by injection time."""
        ids = set(self._inject) | set(self._deliver)
        return sorted(ids, key=lambda m: (self._inject.get(m, (0, math.inf))[1], m))

    def nodes_for(self, msg: str) -> List[int]:
        return sorted(self._deliver.get(msg, {}))

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def path(self, msg: str, node: int) -> Optional[DeliveryPath]:
        """Walk backward from (msg, node) to the source via src pointers."""
        by_node = self._deliver.get(msg, {})
        if node not in by_node:
            return None
        source, inject_time = self._inject.get(msg, (None, None))
        hops: List[Hop] = []
        seen = {node}
        cursor: Optional[int] = node
        complete = False
        while cursor is not None:
            hop = by_node.get(cursor)
            if hop is None:
                break  # predecessor's record missing (e.g. ring-buffer drop)
            hops.append(hop)
            if hop.src == source or hop.via == "inject":
                complete = True
                break
            if hop.src in seen:
                break  # defensive: malformed trace would otherwise loop
            seen.add(hop.src)
            cursor = hop.src
        hops.reverse()
        return DeliveryPath(
            msg=msg, node=node, source=source, inject_time=inject_time,
            hops=hops, complete=complete,
        )

    def paths_for_message(self, msg: str) -> List[DeliveryPath]:
        return [p for n in self.nodes_for(msg) if (p := self.path(msg, n))]

    def all_paths(self) -> List[DeliveryPath]:
        out: List[DeliveryPath] = []
        for msg in self.message_ids():
            out.extend(self.paths_for_message(msg))
        return out

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def attribution_counts(self) -> Dict[str, int]:
        """Final-hop attribution totals over every delivery record.

        Computed directly from the records (not from reconstruction), so
        it equals the ``dissem.delivered{via=...}`` counters whenever
        the ring buffer kept every delivery event.
        """
        counts = {TREE: 0, PULL_REPAIR: 0}
        for nodes in self._deliver.values():
            for hop in nodes.values():
                counts[hop.mechanism] += 1
        return counts

    def matches_counters(self, counters: Dict[str, int]) -> bool:
        """Do attribution totals equal ``dissem.delivered{via=...}``?"""
        counts = self.attribution_counts()
        return (
            counts[TREE] == counters.get("dissem.delivered{via=tree}", 0)
            and counts[PULL_REPAIR] == counters.get("dissem.delivered{via=pull}", 0)
        )

    def tree_depth(self) -> int:
        """Deepest reconstructed path, a proxy for effective tree depth."""
        return max((p.n_hops for p in self.all_paths()), default=0)

    def median_hop_owl(self) -> float:
        """Median one-way wire latency over all hops (NaN if no hops)."""
        owls = sorted(
            hop.owl for nodes in self._deliver.values() for hop in nodes.values()
        )
        if not owls:
            return math.nan
        mid = len(owls) // 2
        if len(owls) % 2:
            return owls[mid]
        return (owls[mid - 1] + owls[mid]) / 2.0

    def summary(self) -> Dict[str, Any]:
        """Plain-data rollup, merged across trials by the batch runner."""
        paths = self.all_paths()
        hops_hist: Dict[str, int] = {}
        for p in paths:
            key = str(p.n_hops)
            hops_hist[key] = hops_hist.get(key, 0) + 1
        return {
            "messages": len(self.message_ids()),
            "paths": len(paths),
            "complete": sum(1 for p in paths if p.complete),
            "incomplete": sum(1 for p in paths if not p.complete),
            "attribution": self.attribution_counts(),
            "hops": hops_hist,
            "max_hops": self.tree_depth(),
        }

    # ------------------------------------------------------------------
    # Anomaly detection
    # ------------------------------------------------------------------
    def delay_anomalies(self, factor: float = 3.0) -> List[Dict[str, Any]]:
        """Deliveries slower than ``factor * tree_depth * median_RTT``.

        The bound models the worst sane case — traversing the full tree
        depth with one request/response exchange per hop (median RTT =
        2x median one-way latency).  Anything beyond ``factor`` times
        that had to sit in retry/timeout limbo.
        """
        depth = self.tree_depth()
        median_rtt = 2.0 * self.median_hop_owl()
        bound = factor * depth * median_rtt
        if not depth or math.isnan(bound):
            return []
        out = []
        for p in self.all_paths():
            if not math.isnan(p.delay) and p.delay > bound:
                out.append(
                    {
                        "msg": p.msg, "node": p.node, "delay": p.delay,
                        "bound": bound, "attribution": p.attribution,
                        "hops": p.n_hops,
                    }
                )
        out.sort(key=lambda a: -a["delay"])
        return out

    def retry_anomalies(self, min_retries: int = 2) -> List[Dict[str, Any]]:
        """Pulls that needed ``min_retries`` or more re-requests."""
        out = []
        for (msg, node), attempts in sorted(self._attempts.items()):
            retries = attempts - 1
            if retries >= min_retries:
                delivered = node in self._deliver.get(msg, {})
                out.append(
                    {
                        "msg": msg, "node": node, "attempts": attempts,
                        "retries": retries, "delivered": delivered,
                    }
                )
        out.sort(key=lambda a: (-a["retries"], a["msg"], a["node"]))
        return out


def merge_provenance_summaries(summaries: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Sum provenance rollups across trials (order-invariant)."""
    merged: Dict[str, Any] = {
        "messages": 0, "paths": 0, "complete": 0, "incomplete": 0,
        "attribution": {TREE: 0, PULL_REPAIR: 0}, "hops": {}, "max_hops": 0,
        "n_trials": len(summaries),
    }
    for s in summaries:
        for key in ("messages", "paths", "complete", "incomplete"):
            merged[key] += s.get(key, 0)
        for label, n in s.get("attribution", {}).items():
            merged["attribution"][label] = merged["attribution"].get(label, 0) + n
        for bucket, n in s.get("hops", {}).items():
            merged["hops"][bucket] = merged["hops"].get(bucket, 0) + n
        merged["max_hops"] = max(merged["max_hops"], s.get("max_hops", 0))
    return merged


def format_provenance_summary(
    summary: Dict[str, Any], counters: Optional[Dict[str, int]] = None
) -> str:
    """Render a provenance rollup (and counter cross-check) for the CLI."""
    att = summary.get("attribution", {})
    lines = [
        "== provenance ==",
        f"messages            {summary.get('messages', 0)}",
        f"delivery paths      {summary.get('paths', 0)} "
        f"({summary.get('complete', 0)} complete, "
        f"{summary.get('incomplete', 0)} incomplete)",
        f"attribution         tree={att.get(TREE, 0)} "
        f"pull-repair={att.get(PULL_REPAIR, 0)}",
        f"max path length     {summary.get('max_hops', 0)} hops",
    ]
    hops = summary.get("hops", {})
    if hops:
        dist = "  ".join(
            f"{k}:{hops[k]}" for k in sorted(hops, key=lambda x: int(x))
        )
        lines.append(f"path length dist    {dist}")
    if counters is not None:
        expect_tree = counters.get("dissem.delivered{via=tree}", 0)
        expect_pull = counters.get("dissem.delivered{via=pull}", 0)
        ok = (
            att.get(TREE, 0) == expect_tree
            and att.get(PULL_REPAIR, 0) == expect_pull
        )
        verdict = "MATCH" if ok else "MISMATCH"
        lines.append(
            f"counter cross-check {verdict} "
            f"(counters: tree={expect_tree} pull={expect_pull})"
        )
    return "\n".join(lines)
