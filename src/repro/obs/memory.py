"""Per-subsystem memory census and allocation attribution.

Scaling the simulation toward the paper's N=1,740 population (and the
ROADMAP's 50k target) requires "memory per node measured and bounded".
This module supplies the measurement:

* :func:`deep_size` — a transitive ``sys.getsizeof`` walk over plain
  containers, ``__dict__``/``__slots__`` instances, and numpy arrays
  (views charge their owning base exactly once), sharing one ``seen``
  set across calls so shared objects are attributed to whichever
  subsystem reaches them first and never double counted.  Traversal
  stops at *boundary* types (nodes, the engine, the transport, shared
  RNG streams and configs), which is what makes per-subsystem
  attribution meaningful despite the protocol's pervasive
  back-references (every manager holds ``self.node``).
* :func:`census_system` — runs the walk over a built
  :class:`~repro.experiments.system.GoCastSystem`, producing a
  per-subsystem bytes breakdown (membership / overlay / tree /
  dissemination / gossip / timers+dispatch per node; engine queue,
  transport, latency model, RNG registry, configs system-wide) and the
  headline ``bytes_per_node`` metric that `repro bench --mem` records
  and the regression sentinel gates.
* :func:`allocation_attribution` — a tracemalloc harness filtered to
  ``repro`` source files: run a workload under it and get back the top
  allocation *sites* on the hot path, the evidence the
  message-object-elimination work (ROADMAP, throughput round 2) needs.
* :func:`run_memory_experiment` — the CLI driver behind
  ``repro obs mem``: build a scenario's system, drive the standard
  adaptation → workload → drain phases, then census it (optionally
  under tracemalloc).

The census runs *after* a simulation completes — it never executes
inside the event loop, so it cannot perturb protocol behaviour, and it
costs nothing when unused (nothing here is imported on any hot path).
"""

from __future__ import annotations

import dataclasses
import random
import sys
import tracemalloc
import types
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

#: Types never descended into and never counted: code, not state.
_SKIP_TYPES = (
    types.ModuleType,
    types.FunctionType,
    types.BuiltinFunctionType,
    types.MethodType,
    types.CodeType,
    type,
    property,
    classmethod,
    staticmethod,
)

#: Leaf types that are counted but never traversed.
_ATOMIC_TYPES = (int, float, bool, complex, str, bytes, bytearray, type(None))

_CONTAINER_TYPES = (list, tuple, set, frozenset, deque)


def deep_size(
    obj: Any,
    seen: Optional[Set[int]] = None,
    boundary: Tuple[type, ...] = (),
) -> int:
    """Transitive size of ``obj`` in bytes.

    ``seen`` is a set of ``id()``s shared across calls: an object
    already counted (by this call or an earlier one sharing the set)
    contributes zero.  ``boundary`` types are neither counted nor
    entered — they cut back-references so a census can attribute a
    subsystem's state without dragging in the rest of the system.
    Functions, methods, classes and modules are always skipped.
    """
    if seen is None:
        seen = set()
    total = 0
    stack = [obj]
    getsizeof = sys.getsizeof
    ndarray = _numpy_ndarray()
    while stack:
        o = stack.pop()
        oid = id(o)
        if oid in seen:
            continue
        if boundary and isinstance(o, boundary):
            continue
        if isinstance(o, _SKIP_TYPES):
            continue
        seen.add(oid)
        total += getsizeof(o, 0)
        if isinstance(o, _ATOMIC_TYPES):
            continue
        if isinstance(o, dict):
            stack.extend(o.keys())
            stack.extend(o.values())
            continue
        if isinstance(o, _CONTAINER_TYPES):
            stack.extend(o)
            continue
        if ndarray is not None and isinstance(o, ndarray):
            # ndarray.__sizeof__ includes the data buffer only for
            # owning arrays; a view charges its base (counted once
            # through the seen set) instead of re-counting the buffer.
            if o.base is not None:
                stack.append(o.base)
            continue
        d = getattr(o, "__dict__", None)
        if d is not None:
            stack.append(d)
        for cls in type(o).__mro__:
            for name in cls.__dict__.get("__slots__", ()):
                if name in ("__dict__", "__weakref__"):
                    continue
                try:
                    stack.append(getattr(o, name))
                except AttributeError:
                    pass
    return total


def _numpy_ndarray() -> Optional[type]:
    np = sys.modules.get("numpy")
    return np.ndarray if np is not None else None


def _boundary_types() -> Tuple[type, ...]:
    """The default census boundary (resolved lazily: this module is
    imported from ``repro.obs.__init__``, before the protocol packages
    can be imported without a cycle)."""
    from repro.core.config import GoCastConfig
    from repro.core.node import GoCastNode
    from repro.net.estimation import TriangularEstimator
    from repro.net.latency import LatencyModel
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import SimTracer
    from repro.sim.engine import Simulator
    from repro.sim.trace import DeliveryTracer
    from repro.sim.transport import Network

    return (
        GoCastNode,
        Simulator,
        Network,
        LatencyModel,
        TriangularEstimator,
        GoCastConfig,
        DeliveryTracer,
        SimTracer,
        MetricsRegistry,
        random.Random,
    )


#: Per-node subsystem → attribute(s) walked on each node, in a fixed
#: order (shared objects land in the first subsystem that reaches them).
NODE_SUBSYSTEMS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("membership", ("view",)),
    ("overlay", ("overlay",)),
    ("tree", ("tree",)),
    ("dissemination", ("disseminator",)),
    ("gossip", ("gossip_engine",)),
    (
        "node.other",
        ("_id_alloc", "_dispatch", "_gossip_timer", "_maint_timer",
         "delivery_listeners", "_link_level_types"),
    ),
)


@dataclasses.dataclass
class MemoryCensus:
    """Deep-size breakdown of one built system."""

    n_nodes: int  #: nodes censused (the full population, dead included)
    by_subsystem: Dict[str, int]  #: bytes per census category
    node_bytes: int  #: sum over the per-node categories
    total_bytes: int  #: everything censused, system-wide state included
    bytes_per_node: float  #: node_bytes / n_nodes — the headline metric

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_nodes": self.n_nodes,
            "by_subsystem": dict(self.by_subsystem),
            "node_bytes": self.node_bytes,
            "total_bytes": self.total_bytes,
            "bytes_per_node": self.bytes_per_node,
        }


def census_system(system: Any) -> MemoryCensus:
    """Deep-size census of a built :class:`GoCastSystem` (duck-typed:
    anything exposing ``nodes``/``sim``/``network`` works).

    Shared state is attributed once: the walk shares one ``seen`` set,
    and the category order is fixed (per-node subsystems first, then
    engine, transport, latency, RNG, config), so results are
    deterministic for a given system.
    """
    boundary = _boundary_types()
    seen: Set[int] = set()
    by: Dict[str, int] = {}

    nodes = getattr(system, "nodes", {}) or {}
    ordered = [nodes[nid] for nid in sorted(nodes)]
    for name, attrs in NODE_SUBSYSTEMS:
        total = 0
        for node in ordered:
            for attr in attrs:
                target = getattr(node, attr, None)
                if target is not None:
                    total += deep_size(target, seen, boundary)
        by[name] = total
    node_bytes = sum(by.values())

    # NOTE: every root below is a *live* attribute of the system, never
    # a temporary container built here — the seen set records ids, and
    # the id of a freed temporary can be reused by a later root, which
    # would silently zero that category.
    sim = getattr(system, "sim", None)
    if sim is not None:
        by["engine"] = _sized(
            (sim._queue, sim._calq, sim._wheel, sim._pool), seen, boundary
        )
    network = getattr(system, "network", None)
    if network is not None:
        by["transport"] = _sized(
            (
                network.link_counts,
                network._msg_meta,
                network._endpoints,
                network._dead,
                network._reachable,
                network._failed_links,
                network._link_loss,
                network._fifo_floor,
            ),
            seen,
            boundary,
        )
    latency = getattr(system, "latency", None)
    if latency is not None:
        # The latency model is a boundary type (nodes reference it via
        # the estimator); census it explicitly with the boundary lifted.
        lifted = tuple(t for t in boundary if not isinstance(latency, t))
        lazy = getattr(latency, "lazy_rows", None)
        if lazy is not None:
            # Under the lazylat backend, break out the bounded row cache
            # so its O(capacity) footprint is visible next to the
            # model's own O(N)+O(sites^2) state.  Walked first with the
            # shared seen set, so the rows are never double counted.
            by["latency.rows"] = deep_size(lazy, seen, lifted)
        by["latency"] = deep_size(latency, seen, lifted)
    estimator = getattr(system, "estimator", None)
    if estimator is not None:
        lifted = tuple(t for t in boundary if not isinstance(estimator, t))
        by["estimator"] = deep_size(estimator, seen, lifted)
    rngs = getattr(system, "rngs", None)
    if rngs is not None:
        by["rng"] = _rng_bytes(rngs, seen)
    configs = _distinct_configs(system, ordered)
    if configs:
        lifted = tuple(t for t in boundary if t.__name__ != "GoCastConfig")
        by["config"] = _sized(configs, seen, lifted)

    n = len(ordered)
    total = sum(by.values())
    return MemoryCensus(
        n_nodes=n,
        by_subsystem=by,
        node_bytes=node_bytes,
        total_bytes=total,
        bytes_per_node=(node_bytes / n) if n else 0.0,
    )


def _sized(
    roots: Iterable[Any], seen: Set[int], boundary: Tuple[type, ...]
) -> int:
    """Sum of :func:`deep_size` over live roots (skipping None)."""
    return sum(deep_size(r, seen, boundary) for r in roots if r is not None)


def _rng_bytes(rngs: Any, seen: Set[int]) -> int:
    """Bytes held by the RNG registry: each ``random.Random`` carries a
    ~2.5kB Mersenne state vector that the boundary walk deliberately
    skips everywhere else."""
    total = deep_size(rngs._streams, seen, (random.Random,))
    for rng in rngs._streams.values():
        if id(rng) not in seen:
            seen.add(id(rng))
            total += sys.getsizeof(rng, 0)
    return total


def _distinct_configs(system: Any, nodes: Iterable[Any]) -> List[Any]:
    out: List[Any] = []
    ids: Set[int] = set()
    candidates = [getattr(system, "config", None)]
    candidates.extend(getattr(node, "config", None) for node in nodes)
    for cfg in candidates:
        if cfg is not None and id(cfg) not in ids:
            ids.add(id(cfg))
            out.append(cfg)
    return out


# ----------------------------------------------------------------------
# Allocation attribution (tracemalloc)
# ----------------------------------------------------------------------
def allocation_attribution(
    fn: Callable[[], Any], top: int = 15, nframes: int = 1
) -> List[Dict[str, Any]]:
    """Run ``fn`` under tracemalloc and attribute surviving allocations
    to ``repro`` source lines.

    Returns the top sites by bytes still allocated when ``fn`` returns
    (``[{"file", "line", "size_kb", "count"}, ...]``) — i.e. retained
    state, which for a completed run is the interesting number (the
    per-message churn shows up in the flamegraph instead).  Tracing
    slows execution several-fold; never use it inside a benchmark
    measurement.
    """
    tracemalloc.start(nframes)
    try:
        fn()
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    filtered = snapshot.filter_traces(
        [
            tracemalloc.Filter(True, "*repro*"),
            tracemalloc.Filter(False, tracemalloc.__file__),
        ]
    )
    sites = []
    for stat in filtered.statistics("lineno")[:top]:
        frame = stat.traceback[0]
        filename = frame.filename
        marker = f"repro{'/' if '/' in filename else chr(92)}"
        idx = filename.rfind(marker)
        if idx != -1:
            filename = filename[idx:]
        sites.append(
            {
                "file": filename,
                "line": frame.lineno,
                "size_kb": round(stat.size / 1024.0, 1),
                "count": stat.count,
            }
        )
    return sites


# ----------------------------------------------------------------------
# CLI driver
# ----------------------------------------------------------------------
@dataclasses.dataclass
class MemoryReport:
    """Outcome of :func:`run_memory_experiment`."""

    census: MemoryCensus
    events_executed: int
    alloc_sites: Optional[List[Dict[str, Any]]] = None

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "census": self.census.to_dict(),
            "events_executed": self.events_executed,
        }
        if self.alloc_sites is not None:
            out["alloc_sites"] = self.alloc_sites
        return out


def run_memory_experiment(
    scenario: Any, alloc: bool = False, top: int = 15
) -> MemoryReport:
    """Build the scenario's system, run it to completion, census it.

    Overlay protocols only (the census categories are the GoCast node
    subsystems).  ``alloc=True`` additionally runs the simulation under
    tracemalloc and reports the top retained-allocation sites.
    """
    from repro.experiments.system import GoCastSystem

    if not scenario.uses_overlay:
        raise ValueError(
            f"memory census requires an overlay protocol, not {scenario.protocol!r}"
        )
    system = GoCastSystem(scenario)

    def drive() -> None:
        system.run_adaptation()
        if scenario.fail_fraction > 0:
            system.fail_random_fraction(scenario.adapt_time, scenario.fail_fraction)
        end = system.schedule_workload(scenario.adapt_time + 0.1)
        system.run_until(end + scenario.drain_time)

    sites: Optional[List[Dict[str, Any]]] = None
    if alloc:
        sites = allocation_attribution(drive, top=top)
    else:
        drive()
    return MemoryReport(
        census=census_system(system),
        events_executed=system.sim.events_executed,
        alloc_sites=sites,
    )


def format_memory_report(report: MemoryReport) -> str:
    """Render a census (and optional allocation sites) for the CLI."""
    census = report.census
    lines = ["== memory census =="]
    lines.append(
        f"{census.n_nodes} nodes, {census.total_bytes / 1024.0:.1f} kB censused, "
        f"{census.bytes_per_node:.0f} bytes/node "
        f"({report.events_executed} events executed)"
    )
    width = max((len(k) for k in census.by_subsystem), default=0)
    for name, size in sorted(census.by_subsystem.items(), key=lambda kv: -kv[1]):
        share = size / census.total_bytes if census.total_bytes else 0.0
        per_node = size / census.n_nodes if census.n_nodes else 0.0
        lines.append(
            f"  {name:<{width}}  {size / 1024.0:>9.1f} kB  {share:>6.1%}  "
            f"({per_node:>8.1f} B/node)"
        )
    if report.alloc_sites is not None:
        lines.append("== top retained-allocation sites (tracemalloc) ==")
        if not report.alloc_sites:
            lines.append("  (no repro.* allocations retained)")
        for site in report.alloc_sites:
            lines.append(
                f"  {site['size_kb']:>9.1f} kB  {site['count']:>7d} blocks  "
                f"{site['file']}:{site['line']}"
            )
    return "\n".join(lines)
