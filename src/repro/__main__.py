"""``python -m repro`` — experiment runner CLI (see repro.cli)."""

import sys

from repro.cli import main

sys.exit(main())
