"""Network-distance estimation: the triangular heuristic.

When a GoCast node obtains a member list with hundreds of entries it
cannot afford to measure RTTs to all of them before picking initial
nearby neighbors (Section 2.2.1).  Instead it *estimates* distances with
the triangular heuristic of Ng & Zhang [13] and only later verifies the
promising candidates with real measurements.

The heuristic: each node measures its RTT to a small, fixed set of
landmark nodes once, producing a landmark vector.  For two nodes *x* and
*q* with vectors ``dx`` and ``dq``, the triangle inequality bounds the
true RTT for every landmark *l*::

    |dx[l] - dq[l]|  <=  rtt(x, q)  <=  dx[l] + dq[l]

The estimate is the midpoint of the tightest bounds.  Landmark vectors
are tiny and piggyback naturally on membership entries, so a node can
rank any member it hears about without sending a single probe.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.net.latency import LatencyModel
from repro.sim.optim import lazylat_enabled

#: Cap on the per-pair estimate memo under the ``lazylat`` (bounded
#: memory) configuration.  Estimates are a pure function of the cached
#: landmark vectors, so evicting and recomputing an entry returns the
#: exact same float — the bound changes memory, never results.
ESTIMATE_MEMO_LIMIT = 1 << 18


class TriangularEstimator:
    """Estimates RTTs from landmark vectors.

    Parameters
    ----------
    model:
        The ground-truth latency model (used to synthesize the landmark
        measurements each node would have performed at bootstrap).
    landmarks:
        Node ids acting as landmarks.  8–15 landmarks give good rankings;
        the paper leaves the count unspecified.
    measurement_noise:
        Relative sigma of multiplicative noise applied to the landmark
        measurements, modelling imperfect probes.
    """

    def __init__(
        self,
        model: LatencyModel,
        landmarks: Sequence[int],
        measurement_noise: float = 0.0,
        seed: int = 0,
    ):
        if not landmarks:
            raise ValueError("at least one landmark is required")
        for l in landmarks:
            if not 0 <= l < model.size:
                raise IndexError(f"landmark {l} out of range")
        self._model = model
        self._landmarks = list(landmarks)
        self._noise = measurement_noise
        self._rng = np.random.default_rng(seed)
        self._vectors: Dict[int, np.ndarray] = {}
        # estimate_rtt is a pure function of the (immutable, cached)
        # landmark vectors, so results are memoized per unordered pair,
        # and the miss path runs a plain loop over list copies of the
        # vectors: IEEE-double arithmetic is identical to numpy's
        # element-wise float64 ops, and a dozen landmarks is far below
        # the break-even point of the ufunc machinery.
        self._estimates: Dict[Tuple[int, int], float] = {}
        self._vector_lists: Dict[int, List[float]] = {}
        # Under lazylat the memo is FIFO-bounded (oldest pair evicted);
        # None means unbounded, the historical behaviour.
        self._memo_limit: Optional[int] = (
            ESTIMATE_MEMO_LIMIT if lazylat_enabled() else None
        )

    @property
    def landmarks(self) -> Sequence[int]:
        return tuple(self._landmarks)

    def vector(self, node: int) -> np.ndarray:
        """The node's (cached) measured RTT vector to the landmarks."""
        vec = self._vectors.get(node)
        if vec is None:
            vec = np.array(
                [self._model.rtt(node, l) for l in self._landmarks], dtype=float
            )
            if self._noise > 0:
                vec = vec * self._rng.lognormal(0.0, self._noise, size=len(vec))
            self._vectors[node] = vec
        return vec

    def estimate_rtt(self, a: int, b: int) -> float:
        """Triangular-heuristic RTT estimate between ``a`` and ``b``."""
        if a == b:
            return 0.0
        key = (a, b) if a < b else (b, a)
        cached = self._estimates.get(key)
        if cached is not None:
            return cached
        lists = self._vector_lists
        da = lists.get(a)
        if da is None:
            da = lists[a] = self.vector(a).tolist()
        db = lists.get(b)
        if db is None:
            db = lists[b] = self.vector(b).tolist()
        lower = 0.0
        upper = math.inf
        for x, y in zip(da, db):
            d = x - y
            if d < 0.0:
                d = -d
            if d > lower:
                lower = d
            s = x + y
            if s < upper:
                upper = s
        # When noise or triangle-inequality violations cross the bounds
        # the average of the two remains a sane ranking key, so the
        # midpoint formula covers both cases.
        est = (lower + upper) / 2.0
        memo = self._estimates
        limit = self._memo_limit
        if limit is not None and len(memo) >= limit:
            del memo[next(iter(memo))]
        memo[key] = est
        return est

    def rank_candidates(self, node: int, candidates: Sequence[int]) -> list:
        """Candidates sorted by increasing estimated RTT from ``node``."""
        return sorted(candidates, key=lambda c: self.estimate_rtt(node, c))

    def estimation_error(self, pairs: Sequence, relative: bool = True) -> float:
        """Mean (relative) absolute error over ``pairs`` of (a, b)."""
        errors = []
        for a, b in pairs:
            true = self._model.rtt(a, b)
            est = self.estimate_rtt(a, b)
            if relative:
                if true <= 0:
                    continue
                errors.append(abs(est - true) / true)
            else:
                errors.append(abs(est - true))
        return float(np.mean(errors)) if errors else 0.0


def default_landmarks(n_nodes: int, count: int = 12, seed: int = 0) -> list:
    """A seeded random landmark set, as a deployment would provision."""
    rng = np.random.default_rng(seed)
    count = min(count, n_nodes)
    return [int(x) for x in rng.choice(n_nodes, size=count, replace=False)]
