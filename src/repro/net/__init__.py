"""Network substrate: latency models, synthetic Internet data, topology.

The paper drives its simulator with the King dataset (real RTT
measurements between 1,740 DNS servers) and, for the link-stress
experiment, with AS-level snapshots of the Internet.  Neither dataset is
available offline, so this package synthesizes statistically faithful
stand-ins (see DESIGN.md, "Substitutions"):

* :mod:`repro.net.king` — a clustered Euclidean latency matrix calibrated
  to the King statistics the paper reports (mean one-way 91 ms, max
  399 ms, strong geographic clustering).
* :mod:`repro.net.astopo` — a power-law AS graph with shortest-path
  routing for measuring physical-link stress.
* :mod:`repro.net.estimation` — the triangular heuristic used by GoCast
  to rank candidate neighbors before measuring real RTTs.
"""

from repro.net.astopo import ASTopology, TransitStubTopology
from repro.net.coordinates import GnpCoordinates
from repro.net.king import SyntheticKingModel
from repro.net.latency import (
    ConstantLatencyModel,
    EuclideanLatencyModel,
    LatencyModel,
    MatrixLatencyModel,
)
from repro.net.estimation import TriangularEstimator

__all__ = [
    "ASTopology",
    "ConstantLatencyModel",
    "EuclideanLatencyModel",
    "GnpCoordinates",
    "LatencyModel",
    "MatrixLatencyModel",
    "SyntheticKingModel",
    "TransitStubTopology",
    "TriangularEstimator",
]
