"""Latency models: the interface between protocols and the "Internet".

A latency model answers one question — the one-way delay between two
nodes — and everything else (transport, RTT probes, tree costs) is built
on it.  Like the paper's simulator we do not model bandwidth or queueing;
propagation delay dominates for the small control messages and message
summaries these protocols exchange.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.optim import optimizations_enabled


class LatencyModel(abc.ABC):
    """One-way latencies between node ids ``0 .. size-1`` (seconds)."""

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of nodes this model covers."""

    @abc.abstractmethod
    def one_way(self, a: int, b: int) -> float:
        """One-way latency from ``a`` to ``b`` in seconds (symmetric)."""

    def rtt(self, a: int, b: int) -> float:
        """Round-trip time between ``a`` and ``b`` in seconds."""
        return 2.0 * self.one_way(a, b)

    def mean_one_way(self, sample: int = 20000, seed: int = 0) -> float:
        """Mean one-way latency over distinct pairs (sampled for large n).

        Redraws until ``sample`` valid (``a != b``) pairs are collected —
        simply masking out the self-pairs would silently shrink the
        sample below the requested size.
        """
        n = self.size
        rng = np.random.default_rng(seed)
        total_pairs = n * (n - 1) // 2
        if total_pairs <= sample:
            values = [
                self.one_way(i, j) for i in range(n) for j in range(i + 1, n)
            ]
            return float(np.mean(values)) if values else 0.0
        values: List[float] = []
        while len(values) < sample:
            need = sample - len(values)
            a = rng.integers(0, n, size=need)
            b = rng.integers(0, n, size=need)
            mask = a != b
            values.extend(self.one_way(int(i), int(j)) for i, j in zip(a[mask], b[mask]))
        return float(np.mean(values[:sample]))


class ConstantLatencyModel(LatencyModel):
    """Every pair has the same latency.  Useful in unit tests."""

    def __init__(self, size: int, latency: float = 0.05):
        if size <= 0:
            raise ValueError("size must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self._size = size
        self._latency = latency

    @property
    def size(self) -> int:
        return self._size

    def one_way(self, a: int, b: int) -> float:
        self._check(a)
        self._check(b)
        return 0.0 if a == b else self._latency

    def _check(self, node: int) -> None:
        if not 0 <= node < self._size:
            raise IndexError(f"node {node} out of range [0, {self._size})")


class MatrixLatencyModel(LatencyModel):
    """Latencies given by an explicit symmetric matrix (seconds)."""

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("latency matrix must be square")
        if np.any(matrix < 0):
            raise ValueError("latencies must be non-negative")
        if not np.allclose(matrix, matrix.T):
            raise ValueError("latency matrix must be symmetric")
        if np.any(np.diag(matrix) != 0):
            raise ValueError("self-latency must be zero")
        self._matrix = matrix
        # Fast path: nested Python lists read several times faster than
        # numpy scalar indexing + float().  matrix.tolist() yields the
        # exact same float for every cell, so this cannot change results;
        # the numpy matrix stays the validation source of truth.
        self._rows: Optional[List[List[float]]] = (
            matrix.tolist() if optimizations_enabled() else None
        )
        #: Same rows under the transport's optional fast-path protocol:
        #: a model exposing ``dense_rows`` promises ``dense_rows[a][b]``
        #: equals ``one_way(a, b)`` for all pairs.
        self.dense_rows = self._rows

    @property
    def size(self) -> int:
        return self._matrix.shape[0]

    @property
    def matrix(self) -> np.ndarray:
        """The underlying matrix (callers must not mutate it)."""
        return self._matrix

    def one_way(self, a: int, b: int) -> float:
        rows = self._rows
        if rows is not None:
            return rows[a][b]
        return float(self._matrix[a, b])


class EuclideanLatencyModel(LatencyModel):
    """Latency proportional to Euclidean distance between coordinates.

    A simple geometric model used in tests and as the backbone of the
    synthetic King generator (which adds clustering and noise on top).
    """

    def __init__(self, coordinates: Sequence[Sequence[float]], seconds_per_unit: float = 1.0):
        coords = np.asarray(coordinates, dtype=float)
        if coords.ndim != 2:
            raise ValueError("coordinates must be a 2-D array (n_nodes x dims)")
        if seconds_per_unit <= 0:
            raise ValueError("seconds_per_unit must be positive")
        self._coords = coords
        self._scale = seconds_per_unit
        # Pairwise memo keyed on the unordered pair; the model is
        # symmetric, so (a, b) and (b, a) share one cached float.
        self._cache: Optional[Dict[Tuple[int, int], float]] = (
            {} if optimizations_enabled() else None
        )

    @property
    def size(self) -> int:
        return self._coords.shape[0]

    @property
    def coordinates(self) -> np.ndarray:
        return self._coords

    def one_way(self, a: int, b: int) -> float:
        if a == b:
            return 0.0
        cache = self._cache
        if cache is None:
            diff = self._coords[a] - self._coords[b]
            return float(np.sqrt(np.dot(diff, diff)) * self._scale)
        key = (a, b) if a < b else (b, a)
        value = cache.get(key)
        if value is None:
            diff = self._coords[a] - self._coords[b]
            value = float(np.sqrt(np.dot(diff, diff)) * self._scale)
            cache[key] = value
        return value
