"""Latency models: the interface between protocols and the "Internet".

A latency model answers one question — the one-way delay between two
nodes — and everything else (transport, RTT probes, tree costs) is built
on it.  Like the paper's simulator we do not model bandwidth or queueing;
propagation delay dominates for the small control messages and message
summaries these protocols exchange.
"""

from __future__ import annotations

import abc
import os
from array import array
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.optim import lazylat_enabled, optimizations_enabled

#: Environment knob for the ``lazylat`` backend: maximum number of
#: latency rows held by a :class:`LazyRowCache` before LRU eviction.
ENV_CACHE_ROWS = "REPRO_LAZYLAT_ROWS"

#: Default row-cache capacity.  Sized to hold every *site* row of the
#: full King population (1,740 sites) with headroom, so paper-scale runs
#: never thrash while the footprint stays bounded regardless of N.
DEFAULT_CACHE_ROWS = 2048


def lazylat_capacity() -> int:
    """Row-cache capacity for the ``lazylat`` backend (env-tunable)."""
    raw = os.environ.get(ENV_CACHE_ROWS)
    if raw is None:
        return DEFAULT_CACHE_ROWS
    try:
        capacity = int(raw)
    except ValueError:
        raise ValueError(
            f"{ENV_CACHE_ROWS} must be a positive integer, got {raw!r}"
        ) from None
    if capacity < 1:
        raise ValueError(f"{ENV_CACHE_ROWS} must be >= 1, got {capacity}")
    return capacity


class LazyRowCache:
    """Memory-bounded on-demand latency rows — the ``lazylat`` backend.

    A drop-in stand-in for the quadratic ``dense_rows`` tables on the
    transport's inlined send path: ``cache[a]`` returns a row indexable
    by destination, and the contract is

        ``cache[a][b] == model.one_way(a, b)``  for every pair ``a != b``.

    The diagonal is *not* part of the contract (the transport refuses
    self-sends, so ``row[a]`` is never read); this is what lets the King
    model share one cached row between co-located nodes.

    Rows are materialized lazily by ``build_row`` (a callable mapping a
    row key to a 1-D float64 numpy vector), packed into ``array('d')``
    buffers — indexing yields plain Python floats with the exact IEEE
    bits of the source vector, so nothing numpy-typed ever leaks into
    event timestamps — and evicted in least-recently-used order once
    ``capacity`` rows are resident.  Memory is therefore O(capacity x N)
    instead of O(N^2), at the cost of an occasional row rebuild.

    ``key_of`` optionally maps node ids to row keys (the King model maps
    nodes to sites), letting co-located nodes share one cache entry.
    """

    __slots__ = (
        "_build_row",
        "_key_of",
        "_rows",
        "size",
        "capacity",
        "packed",
        "hits",
        "misses",
        "evictions",
    )

    def __init__(
        self,
        build_row: Callable[[int], np.ndarray],
        size: int,
        capacity: Optional[int] = None,
        key_of: Optional[Callable[[int], int]] = None,
        packed: bool = True,
    ):
        if size <= 0:
            raise ValueError("size must be positive")
        if capacity is None:
            capacity = lazylat_capacity()
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._build_row = build_row
        self._key_of = key_of
        # Insertion-ordered dict as the LRU: hits reinsert, evictions
        # pop the oldest entry from the front.
        self._rows: Dict[int, Sequence[float]] = {}
        self.size = size
        self.capacity = capacity
        self.packed = packed
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __getitem__(self, a: int) -> Sequence[float]:
        key = a if self._key_of is None else self._key_of(a)
        rows = self._rows
        row = rows.get(key)
        if row is not None:
            self.hits += 1
            # Refresh recency: move the entry to the back of the dict.
            del rows[key]
            rows[key] = row
            return row
        self.misses += 1
        vector = self._build_row(key)
        if self.packed:
            # tobytes()/frombytes() copies the raw IEEE-754 buffer, so
            # every element is bit-identical to the numpy source; the
            # packed array indexes to plain Python floats.
            row = array("d")
            row.frombytes(np.asarray(vector, dtype=np.float64).tobytes())
        else:
            row = vector.tolist()
        if len(rows) >= self.capacity:
            oldest = next(iter(rows))
            del rows[oldest]
            self.evictions += 1
        rows[key] = row
        return row

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: int) -> bool:
        return key in self._rows

    def row_bytes(self) -> int:
        """Total bytes held by the resident row buffers."""
        import sys

        return sum(sys.getsizeof(row) for row in self._rows.values())

    def stats(self) -> Dict[str, int]:
        """Counters for diagnostics and the memory census report."""
        return {
            "rows": len(self._rows),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "row_bytes": self.row_bytes(),
        }


class LatencyModel(abc.ABC):
    """One-way latencies between node ids ``0 .. size-1`` (seconds)."""

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of nodes this model covers."""

    @abc.abstractmethod
    def one_way(self, a: int, b: int) -> float:
        """One-way latency from ``a`` to ``b`` in seconds (symmetric)."""

    def rtt(self, a: int, b: int) -> float:
        """Round-trip time between ``a`` and ``b`` in seconds."""
        return 2.0 * self.one_way(a, b)

    def mean_one_way(self, sample: int = 20000, seed: int = 0) -> float:
        """Mean one-way latency over distinct pairs (sampled for large n).

        Redraws until ``sample`` valid (``a != b``) pairs are collected —
        simply masking out the self-pairs would silently shrink the
        sample below the requested size.
        """
        n = self.size
        rng = np.random.default_rng(seed)
        total_pairs = n * (n - 1) // 2
        if total_pairs <= sample:
            values = [
                self.one_way(i, j) for i in range(n) for j in range(i + 1, n)
            ]
            return float(np.mean(values)) if values else 0.0
        values: List[float] = []
        while len(values) < sample:
            need = sample - len(values)
            a = rng.integers(0, n, size=need)
            b = rng.integers(0, n, size=need)
            mask = a != b
            values.extend(self.one_way(int(i), int(j)) for i, j in zip(a[mask], b[mask]))
        return float(np.mean(values[:sample]))


class ConstantLatencyModel(LatencyModel):
    """Every pair has the same latency.  Useful in unit tests."""

    def __init__(self, size: int, latency: float = 0.05):
        if size <= 0:
            raise ValueError("size must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self._size = size
        self._latency = latency

    @property
    def size(self) -> int:
        return self._size

    def one_way(self, a: int, b: int) -> float:
        self._check(a)
        self._check(b)
        return 0.0 if a == b else self._latency

    def _check(self, node: int) -> None:
        if not 0 <= node < self._size:
            raise IndexError(f"node {node} out of range [0, {self._size})")


class MatrixLatencyModel(LatencyModel):
    """Latencies given by an explicit symmetric matrix (seconds)."""

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("latency matrix must be square")
        if np.any(matrix < 0):
            raise ValueError("latencies must be non-negative")
        if not np.allclose(matrix, matrix.T):
            raise ValueError("latency matrix must be symmetric")
        if np.any(np.diag(matrix) != 0):
            raise ValueError("self-latency must be zero")
        self._matrix = matrix
        # Fast path: nested Python lists read several times faster than
        # numpy scalar indexing + float().  matrix.tolist() yields the
        # exact same float for every cell, so this cannot change results;
        # the numpy matrix stays the validation source of truth.
        #
        # Under ``lazylat`` the quadratic list-of-lists is replaced by a
        # LazyRowCache over the numpy matrix: same float bits per cell
        # (packed from the row's raw buffer), O(cache) resident memory.
        lazy = lazylat_enabled()
        self._rows: Optional[List[List[float]]] = (
            matrix.tolist() if optimizations_enabled() and not lazy else None
        )
        #: Same rows under the transport's optional fast-path protocol:
        #: a model exposing ``dense_rows`` promises ``dense_rows[a][b]``
        #: equals ``one_way(a, b)`` for all pairs.
        self.dense_rows = self._rows
        #: Memory-bounded alternative under the same protocol, honoured
        #: by the transport when ``dense_rows`` is None; rows agree with
        #: ``one_way`` on every pair (this model's diagonal included).
        self.lazy_rows: Optional[LazyRowCache] = (
            LazyRowCache(self._matrix.__getitem__, matrix.shape[0]) if lazy else None
        )

    @property
    def size(self) -> int:
        return self._matrix.shape[0]

    @property
    def matrix(self) -> np.ndarray:
        """The underlying matrix (callers must not mutate it)."""
        return self._matrix

    def one_way(self, a: int, b: int) -> float:
        rows = self._rows
        if rows is not None:
            return rows[a][b]
        return float(self._matrix[a, b])


class EuclideanLatencyModel(LatencyModel):
    """Latency proportional to Euclidean distance between coordinates.

    A simple geometric model used in tests and as the backbone of the
    synthetic King generator (which adds clustering and noise on top).
    """

    def __init__(self, coordinates: Sequence[Sequence[float]], seconds_per_unit: float = 1.0):
        coords = np.asarray(coordinates, dtype=float)
        if coords.ndim != 2:
            raise ValueError("coordinates must be a 2-D array (n_nodes x dims)")
        if seconds_per_unit <= 0:
            raise ValueError("seconds_per_unit must be positive")
        self._coords = coords
        self._scale = seconds_per_unit
        # Pairwise memo keyed on the unordered pair; the model is
        # symmetric, so (a, b) and (b, a) share one cached float.
        self._cache: Optional[Dict[Tuple[int, int], float]] = (
            {} if optimizations_enabled() else None
        )

    @property
    def size(self) -> int:
        return self._coords.shape[0]

    @property
    def coordinates(self) -> np.ndarray:
        return self._coords

    def one_way(self, a: int, b: int) -> float:
        if a == b:
            return 0.0
        cache = self._cache
        if cache is None:
            diff = self._coords[a] - self._coords[b]
            return float(np.sqrt(np.dot(diff, diff)) * self._scale)
        key = (a, b) if a < b else (b, a)
        value = cache.get(key)
        if value is None:
            diff = self._coords[a] - self._coords[b]
            value = float(np.sqrt(np.dot(diff, diff)) * self._scale)
            cache[key] = value
        return value
