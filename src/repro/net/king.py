"""Synthetic King-like Internet latency data.

The paper drives all delay experiments with the King dataset: measured
RTTs between 1,740 DNS servers, divided by two to obtain one-way
latencies with average 91 ms and maximum 399 ms.  The measurement file
is not available offline, so this module synthesizes a matrix with the
same properties that matter to GoCast's results:

* **Geographic clustering.**  Sites belong to a handful of "continents";
  intra-continent latencies are an order of magnitude below
  inter-continent ones.  This is what makes proximity-only overlays
  partition into per-continent components (Figure 6's ``C_rand = 0``
  curve) and what lets the adapted tree reach ~15 ms average link
  latency versus the ~91 ms random-pair average (Figure 5b).
* **Calibrated scale.**  After generation the matrix is scaled so the
  mean one-way latency matches the King mean (91 ms) and extreme pairs
  sit near the King maximum (399 ms).
* **Measurement noise.**  Per-pair lognormal jitter breaks the triangle
  inequality for a minority of triples, exactly the regime in which the
  triangular estimation heuristic (Section 2.2.1) must still be useful.

Like the paper, when a simulation has more nodes than sites, multiple
nodes share one site ("we simulate multiple nodes at a single DNS server
site"); co-located nodes see a small LAN latency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.net.latency import LatencyModel, LazyRowCache
from repro.sim.optim import lazylat_enabled, optimizations_enabled

#: One-way latency statistics of the King dataset reported in the paper.
KING_MEAN_ONE_WAY = 0.091
KING_MAX_ONE_WAY = 0.399

#: Rough relative sizes of the geographic clusters (continents).
DEFAULT_CLUSTER_WEIGHTS = (0.35, 0.25, 0.20, 0.12, 0.08)

#: Latency between distinct nodes mapped to the same site.
COLOCATED_LATENCY = 0.001


def _generate_site_matrix(
    n_sites: int,
    cluster_weights: Sequence[float],
    jitter_sigma: float,
    rng: np.random.Generator,
    cluster_radius: float = 1.0,
) -> "tuple[np.ndarray, np.ndarray]":
    """Build the raw (uncalibrated) site-to-site one-way latency matrix."""
    weights = np.asarray(cluster_weights, dtype=float)
    weights = weights / weights.sum()
    n_clusters = len(weights)

    cluster_of = rng.choice(n_clusters, size=n_sites, p=weights)

    # Continents sit on a circle; the radius sets the inter/intra
    # latency contrast (default ~6x in the means, with adjacent-continent
    # boundary pairs overlapping the intra tail, as in real King data).
    angles = 2.0 * np.pi * np.arange(n_clusters) / n_clusters
    centers = cluster_radius * np.stack([np.cos(angles), np.sin(angles)], axis=1)

    intra_sigma = 0.12
    coords = centers[cluster_of] + rng.normal(0.0, intra_sigma, size=(n_sites, 2))

    diff = coords[:, None, :] - coords[None, :, :]
    base = np.sqrt(np.sum(diff * diff, axis=2))

    # Last-mile access delay: every path pays a small fixed cost.
    base = base + 0.04

    # Symmetric multiplicative measurement noise.
    noise = rng.lognormal(mean=0.0, sigma=jitter_sigma, size=(n_sites, n_sites))
    noise = np.triu(noise, k=1)
    noise = noise + noise.T
    matrix = base * np.where(noise > 0, noise, 1.0)

    np.fill_diagonal(matrix, 0.0)
    return matrix, cluster_of


def _calibrate(matrix: np.ndarray, target_mean: float, target_max: float) -> np.ndarray:
    """Scale to the target mean, then soft-cap the tail at the target max."""
    off_diag = matrix[np.triu_indices_from(matrix, k=1)]
    current_mean = float(off_diag.mean())
    scaled = matrix * (target_mean / current_mean)

    # Compress (not clip) the tail so max lands at target_max while the
    # bulk of the distribution is untouched.
    current_max = float(scaled.max())
    if current_max > target_max:
        knee = target_max * 0.7
        excess = scaled - knee
        over = excess > 0
        compress = (target_max - knee) / (current_max - knee)
        scaled = np.where(over, knee + excess * compress, scaled)

    # Tail compression nudged the mean down; one corrective rescale of the
    # sub-knee bulk restores it without re-inflating the max.
    off_diag = scaled[np.triu_indices_from(scaled, k=1)]
    drift = target_mean / float(off_diag.mean())
    if abs(drift - 1.0) > 1e-9:
        bulk = scaled < target_max * 0.7
        scaled = np.where(bulk, scaled * drift, scaled)
    np.fill_diagonal(scaled, 0.0)
    return scaled


class SyntheticKingModel(LatencyModel):
    """Clustered, calibrated stand-in for the King latency dataset.

    Parameters
    ----------
    n_nodes:
        Number of simulated nodes (may exceed ``n_sites``).
    n_sites:
        Number of distinct "measured DNS server" sites (paper: 1,740).
        Defaults to ``min(n_nodes, 1740)``.
    seed:
        Generator seed; identical seeds give identical matrices.
    cluster_weights:
        Relative continent sizes.
    jitter_sigma:
        Sigma of the lognormal per-pair noise.
    """

    def __init__(
        self,
        n_nodes: int,
        n_sites: Optional[int] = None,
        seed: int = 0,
        cluster_weights: Sequence[float] = DEFAULT_CLUSTER_WEIGHTS,
        jitter_sigma: float = 0.25,
        cluster_radius: float = 1.0,
        target_mean: float = KING_MEAN_ONE_WAY,
        target_max: float = KING_MAX_ONE_WAY,
    ):
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if n_sites is None:
            n_sites = min(n_nodes, 1740)
        if n_sites <= 1:
            raise ValueError("need at least 2 sites")

        self._n_nodes = n_nodes
        self._n_sites = n_sites
        rng = np.random.default_rng(seed)
        raw, cluster_of = _generate_site_matrix(
            n_sites, cluster_weights, jitter_sigma, rng, cluster_radius
        )
        self._site_matrix = _calibrate(raw, target_mean, target_max)
        self._cluster_of_site = cluster_of

        # Nodes are assigned to sites round-robin over a seeded permutation,
        # so a 1,024-node run uses 1,024 distinct sites and an 8,192-node
        # run places ~4.7 nodes per site — mirroring the paper's setup.
        perm = rng.permutation(n_sites)
        self._site_of_node = np.array(
            [perm[i % n_sites] for i in range(n_nodes)], dtype=np.int64
        )
        # one_way fast path: plain Python ints and row lists.  tolist()
        # preserves every float bit-for-bit, so results are unchanged;
        # the numpy arrays remain the validation source of truth.
        #
        # Under ``lazylat`` the O(n_sites^2) float-object copy of the
        # site matrix is skipped — one_way falls back to numpy scalar
        # indexing, which reads the exact same IEEE doubles — and the
        # per-node site list (O(N), small) is kept for the int fast path.
        lazy = lazylat_enabled()
        if optimizations_enabled():
            self._site_list: Optional[List[int]] = [int(s) for s in self._site_of_node]
            self._site_rows: Optional[List[List[float]]] = (
                None if lazy else self._site_matrix.tolist()
            )
        else:
            self._site_list = None
            self._site_rows = None
        # Dense per-node rows for the transport's send loop (see
        # Network.send): one C-level double index replaces a Python call
        # per message.  Values are exactly one_way's — same site rows,
        # same colocated constant, 0.0 diagonal — and the quadratic
        # table is only built at sizes where its footprint is trivial.
        self.dense_rows: Optional[List[List[float]]] = None
        self.lazy_rows: Optional[LazyRowCache] = None
        if lazy:
            # Memory-bounded replacement: rows are materialized per
            # *site* on demand and shared by every node at that site, so
            # the cache needs at most n_sites entries.  For b != a the
            # values match one_way bit-for-bit (fancy indexing copies
            # the same doubles tolist() would have produced; co-located
            # pairs read COLOCATED_LATENCY).  row[a] itself holds
            # COLOCATED_LATENCY instead of one_way's 0.0 — outside the
            # lazy_rows contract, and the transport rejects self-sends.
            self.lazy_rows = LazyRowCache(
                self._lazy_site_row,
                n_nodes,
                key_of=(
                    self._site_list.__getitem__
                    if self._site_list is not None
                    else self.site_of
                ),
            )
        elif self._site_list is not None and n_nodes <= 2048:
            sites = self._site_list
            srows = self._site_rows
            dense = []
            for a in range(n_nodes):
                sa = sites[a]
                row_a = srows[sa]
                row = [
                    COLOCATED_LATENCY if sa == sb else row_a[sb] for sb in sites
                ]
                row[a] = 0.0
                dense.append(row)
            self.dense_rows = dense

    def _lazy_site_row(self, site: int) -> np.ndarray:
        """One-way latencies from ``site`` to every *node* (float64)."""
        row = self._site_matrix[site][self._site_of_node]
        return np.where(self._site_of_node == site, COLOCATED_LATENCY, row)

    @property
    def size(self) -> int:
        return self._n_nodes

    @property
    def n_sites(self) -> int:
        return self._n_sites

    @property
    def site_matrix(self) -> np.ndarray:
        """Site-to-site one-way latencies (seconds); do not mutate."""
        return self._site_matrix

    def site_of(self, node: int) -> int:
        """The measurement site node ``node`` is placed at."""
        return int(self._site_of_node[node])

    def cluster_of(self, node: int) -> int:
        """The geographic cluster ("continent") of node ``node``."""
        return int(self._cluster_of_site[self.site_of(node)])

    @property
    def n_clusters(self) -> int:
        return int(self._cluster_of_site.max()) + 1

    def one_way(self, a: int, b: int) -> float:
        if a == b:
            return 0.0
        sites = self._site_list
        if sites is not None:
            sa = sites[a]
            sb = sites[b]
        else:
            sa, sb = self._site_of_node[a], self._site_of_node[b]
        if sa == sb:
            return COLOCATED_LATENCY
        srows = self._site_rows
        if srows is not None:
            return srows[sa][sb]
        return float(self._site_matrix[sa, sb])

    def node_latency_submatrix(self, nodes: Sequence[int]) -> np.ndarray:
        """Dense one-way latency matrix restricted to ``nodes``."""
        sites = self._site_of_node[np.asarray(nodes, dtype=np.int64)]
        sub = self._site_matrix[np.ix_(sites, sites)]
        colocated = sites[:, None] == sites[None, :]
        sub = np.where(colocated, COLOCATED_LATENCY, sub)
        np.fill_diagonal(sub, 0.0)
        return sub

    def cluster_sizes(self) -> List[int]:
        """Number of *sites* in each cluster."""
        counts = np.bincount(self._cluster_of_site, minlength=self.n_clusters)
        return [int(c) for c in counts]
