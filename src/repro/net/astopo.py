"""Physical Internet topologies for link-stress experiments.

The paper's summary result (4) reports that, routed over "large-scale
snapshots of the Internet Autonomous Systems", GoCast imposes 4–7x less
traffic on bottleneck network links than fanout-5 push gossip.  Those
snapshots are not available offline, so this module provides the two
standard synthetic substitutes of the paper's era:

* :class:`ASTopology` — a flat Barabási–Albert preferential-attachment
  graph; its power-law degree distribution is the defining property of
  the AS-level Internet and the reason hub links exist.
* :class:`TransitStubTopology` — a GT-ITM-style transit–stub hierarchy:
  a small backbone of transit ASes, regional hubs hanging off it, and
  stub ASes inside each region.  This is the structure that makes the
  paper's result reproducible: proximity-aware overlay links stay
  *inside a region* (cheap, uncontended), while topology-oblivious
  gossip drags every delivery across the long-haul backbone — the
  bottleneck links.

Both expose the same API: member placement (:meth:`host_of`), a
member-to-member latency model derived from shortest physical paths
(so the overlay under test is proximity-aware with respect to the same
network it is routed over), and per-hop routing
(:meth:`route_edges`) for the stress accumulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.net.latency import MatrixLatencyModel

Edge = Tuple[int, int]


def _canonical(u: int, v: int) -> Edge:
    return (u, v) if u <= v else (v, u)


class RoutedTopology:
    """Shared machinery: latency-weighted routing over a physical graph.

    Subclasses must set ``self.graph`` (with per-edge ``latency``),
    ``self.n_members`` and ``self._host_of_member`` before calling
    ``_finalize()``.
    """

    graph: nx.Graph
    n_members: int
    _host_of_member: List[int]

    def _finalize(self) -> None:
        self._paths: Dict[int, Dict[int, List[int]]] = {}
        self._latency_model = self._build_latency_model()

    def host_of(self, member: int) -> int:
        """The AS hosting group member ``member``."""
        return self._host_of_member[member]

    @property
    def latency_model(self) -> MatrixLatencyModel:
        """Member-to-member one-way latencies = shortest-path latency."""
        return self._latency_model

    def _build_latency_model(self) -> MatrixLatencyModel:
        # The member-to-member matrix is handed to MatrixLatencyModel,
        # which picks its own row backend from REPRO_SIM_OPTS — under
        # ``lazylat`` routed topologies inherit the memory-bounded
        # on-demand rows with no code here.
        hosts = sorted(set(self._host_of_member))
        dist_from: Dict[int, Dict[int, float]] = {}
        for h in hosts:
            dist_from[h] = nx.single_source_dijkstra_path_length(
                self.graph, h, weight="latency"
            )
        n = self.n_members
        matrix = np.zeros((n, n), dtype=float)
        # Distinct members on the same AS still pay a small access delay.
        same_as_latency = 0.001
        for i in range(n):
            hi = self._host_of_member[i]
            row = dist_from[hi]
            for j in range(i + 1, n):
                hj = self._host_of_member[j]
                latency = same_as_latency if hi == hj else row[hj] + 0.002
                matrix[i, j] = matrix[j, i] = latency
        return MatrixLatencyModel(matrix)

    def _paths_from(self, host: int) -> Dict[int, List[int]]:
        paths = self._paths.get(host)
        if paths is None:
            paths = nx.single_source_dijkstra_path(self.graph, host, weight="latency")
            self._paths[host] = paths
        return paths

    def route_edges(self, member_a: int, member_b: int) -> List[Edge]:
        """Physical links crossed by a message from ``member_a`` to ``member_b``."""
        ha, hb = self._host_of_member[member_a], self._host_of_member[member_b]
        if ha == hb:
            return []
        path = self._paths_from(ha)[hb]
        return [_canonical(path[i], path[i + 1]) for i in range(len(path) - 1)]

    def edge_count(self) -> int:
        return self.graph.number_of_edges()

    def degree_distribution(self) -> List[int]:
        """Sorted (descending) AS degrees."""
        return sorted((d for _, d in self.graph.degree), reverse=True)

    def members_on_host(self, host: int) -> List[int]:
        return [m for m, h in enumerate(self._host_of_member) if h == host]


class ASTopology(RoutedTopology):
    """Flat power-law AS graph with member placement on stub ASes.

    Parameters
    ----------
    n_as:
        Number of autonomous systems.
    n_members:
        Number of multicast group members to place on stub ASes.
    attachment:
        Barabási–Albert attachment parameter ``m`` (edges per new AS).
    seed:
        Seed for graph generation, edge latencies, and member placement.
    member_sites:
        If set, members pack onto this many stub ASes (groups cluster
        in datacenters/campuses); otherwise each member independently
        picks a stub.
    """

    def __init__(
        self,
        n_as: int = 512,
        n_members: int = 256,
        attachment: int = 2,
        seed: int = 0,
        member_sites: Optional[int] = None,
    ):
        if n_as < 4:
            raise ValueError("need at least 4 ASes")
        if n_members < 1:
            raise ValueError("need at least 1 member")
        if member_sites is not None and not 1 <= member_sites <= n_as:
            raise ValueError("member_sites must be in [1, n_as]")
        self.n_as = n_as
        self.n_members = n_members
        rng = np.random.default_rng(seed)

        self.graph = nx.barabasi_albert_graph(n_as, attachment, seed=int(seed))
        # Inter-AS link latencies: 5–40 ms one-way.  Hub-to-hub backbone
        # links are modestly faster, as in the real Internet core.
        for u, v in self.graph.edges:
            base = rng.uniform(0.005, 0.040)
            if self.graph.degree[u] > 8 and self.graph.degree[v] > 8:
                base *= 0.5
            self.graph.edges[u, v]["latency"] = float(base)

        # Members live on stub ASes: sample with probability ~ 1/degree.
        degrees = np.array([self.graph.degree[a] for a in range(n_as)], dtype=float)
        probs = (1.0 / degrees) / np.sum(1.0 / degrees)
        if member_sites is None:
            pool = rng.choice(n_as, size=n_members, p=probs)
        else:
            sites = rng.choice(n_as, size=member_sites, replace=False, p=probs)
            pool = sites[rng.integers(0, member_sites, size=n_members)]
        self._host_of_member = [int(a) for a in pool]
        self._finalize()


class TransitStubTopology(RoutedTopology):
    """GT-ITM-style transit–stub hierarchy.

    Structure: ``backbone_as`` transit ASes form a Barabási–Albert core
    with 15–35 ms long-haul links; each of ``n_regions`` regional hubs
    attaches to two backbone ASes (5–10 ms); each region contains
    ``stubs_per_region`` stub ASes attached to their hub (1–4 ms) plus a
    few intra-region stub–stub shortcuts.  Group members spread over the
    stubs of all regions.

    The resulting member latencies are strongly clustered (a few ms
    intra-region, ~50–120 ms across regions), so a proximity-aware
    overlay keeps its nearby links and its transit traffic inside
    regions, while random gossip crosses the backbone per delivery —
    reproducing the paper's bottleneck-link result.
    """

    def __init__(
        self,
        n_regions: int = 8,
        stubs_per_region: int = 6,
        backbone_as: int = 12,
        n_members: int = 96,
        seed: int = 0,
    ):
        if n_regions < 2:
            raise ValueError("need at least 2 regions")
        if stubs_per_region < 1 or backbone_as < 3:
            raise ValueError("invalid topology shape")
        if n_members < 1:
            raise ValueError("need at least 1 member")
        self.n_regions = n_regions
        self.stubs_per_region = stubs_per_region
        self.backbone_as = backbone_as
        self.n_members = n_members
        rng = np.random.default_rng(seed)

        graph = nx.barabasi_albert_graph(backbone_as, 2, seed=int(seed))
        for u, v in graph.edges:
            graph.edges[u, v]["latency"] = float(rng.uniform(0.015, 0.035))
            graph.edges[u, v]["tier"] = "backbone"

        next_as = backbone_as
        self._region_of_as: Dict[int, int] = {}
        self._hub_of_region: List[int] = []
        stub_ases: List[int] = []
        for region in range(n_regions):
            hub = next_as
            next_as += 1
            graph.add_node(hub)
            self._region_of_as[hub] = region
            self._hub_of_region.append(hub)
            for attach in rng.choice(backbone_as, size=2, replace=False):
                graph.add_edge(
                    hub, int(attach),
                    latency=float(rng.uniform(0.005, 0.010)), tier="regional",
                )
            region_stubs = []
            for _ in range(stubs_per_region):
                stub = next_as
                next_as += 1
                graph.add_node(stub)
                self._region_of_as[stub] = region
                graph.add_edge(
                    stub, hub,
                    latency=float(rng.uniform(0.001, 0.004)), tier="access",
                )
                region_stubs.append(stub)
            # A couple of intra-region stub-stub shortcuts.
            for _ in range(max(1, stubs_per_region // 3)):
                a, b = rng.choice(region_stubs, size=2, replace=False)
                if not graph.has_edge(int(a), int(b)):
                    graph.add_edge(
                        int(a), int(b),
                        latency=float(rng.uniform(0.002, 0.006)), tier="access",
                    )
            stub_ases.extend(region_stubs)

        self.graph = graph
        self.n_as = next_as
        # Members spread over stubs, round-robin across regions so every
        # region is populated, with a random stub within the region.
        self._host_of_member = []
        for m in range(n_members):
            region = m % n_regions
            stubs = [s for s in stub_ases if self._region_of_as[s] == region]
            self._host_of_member.append(int(rng.choice(stubs)))
        self._finalize()

    def region_of_member(self, member: int) -> int:
        return self._region_of_as[self._host_of_member[member]]

    def backbone_edges(self) -> List[Edge]:
        """The long-haul links — the bottlenecks of this topology."""
        return [
            _canonical(u, v)
            for u, v, data in self.graph.edges(data=True)
            if data.get("tier") in ("backbone", "regional")
        ]
