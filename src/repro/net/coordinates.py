"""GNP-style network coordinates (Ng & Zhang [13]).

The paper uses "the triangular heuristic [13] to estimate latencies";
the same cited work's main contribution is *Global Network Positioning*:
embed nodes into a low-dimensional Euclidean space so that coordinate
distance approximates RTT.  This module implements that alternative
estimator — useful where the triangular bounds are loose — with the
standard two-phase construction:

1. **Landmark phase** — the landmark nodes measure RTTs among
   themselves and solve for landmark coordinates minimizing squared
   relative error (scipy when available, with a pure-numpy coordinate
   descent fallback so the offline environment never breaks).
2. **Node phase** — each other node measures RTTs to the landmarks only
   and solves for its own coordinates against the fixed landmark
   positions.

Both estimators expose the same ``estimate_rtt`` / ``rank_candidates``
API, so GoCast's join and maintenance code can use either.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.net.latency import LatencyModel

try:  # pragma: no cover - exercised implicitly by either branch
    from scipy.optimize import least_squares

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    _HAVE_SCIPY = False


def _fit_landmarks(rtt: np.ndarray, dims: int, rng: np.random.Generator) -> np.ndarray:
    """Embed the landmark RTT matrix into ``dims`` dimensions."""
    n = rtt.shape[0]

    def residuals(flat: np.ndarray) -> np.ndarray:
        coords = flat.reshape(n, dims)
        out = []
        for i in range(n):
            for j in range(i + 1, n):
                dist = np.linalg.norm(coords[i] - coords[j])
                out.append(dist - rtt[i, j])
        return np.asarray(out)

    start = rng.normal(0.0, rtt.mean() or 1.0, size=n * dims)
    if _HAVE_SCIPY:
        fit = least_squares(residuals, start)
        return fit.x.reshape(n, dims)
    return _descend(residuals, start, steps=400).reshape(n, dims)


def _fit_node(
    landmark_coords: np.ndarray, rtts: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Position one node against fixed landmark coordinates."""
    dims = landmark_coords.shape[1]

    def residuals(point: np.ndarray) -> np.ndarray:
        return np.linalg.norm(landmark_coords - point, axis=1) - rtts

    start = landmark_coords.mean(axis=0) + rng.normal(0.0, 0.01, size=dims)
    if _HAVE_SCIPY:
        return least_squares(residuals, start).x
    return _descend(residuals, start, steps=200)


def _descend(residuals, start: np.ndarray, steps: int, lr: float = 0.05) -> np.ndarray:
    """Numerical-gradient descent fallback when scipy is unavailable."""
    x = start.astype(float).copy()
    eps = 1e-6
    for _ in range(steps):
        base = residuals(x)
        grad = np.zeros_like(x)
        for k in range(len(x)):
            x[k] += eps
            grad[k] = (np.sum(residuals(x) ** 2) - np.sum(base ** 2)) / eps
            x[k] -= eps
        norm = np.linalg.norm(grad)
        if norm < 1e-12:
            break
        x -= lr * grad / norm * max(np.sqrt(np.sum(base ** 2)), 1e-6)
    return x


class GnpCoordinates:
    """GNP coordinate estimator over a ground-truth latency model.

    Parameters
    ----------
    model:
        Ground truth used to synthesize the measurements each node
        would have performed.
    landmarks:
        Landmark node ids (7-15 typical).
    dims:
        Embedding dimensionality (Ng & Zhang find 5-7 sufficient for
        the Internet; clustered synthetic data does well with 2-4).
    """

    def __init__(
        self,
        model: LatencyModel,
        landmarks: Sequence[int],
        dims: int = 4,
        seed: int = 0,
    ):
        if len(landmarks) < dims + 1:
            raise ValueError("need at least dims + 1 landmarks")
        self._model = model
        self._landmarks = list(landmarks)
        self._dims = dims
        self._rng = np.random.default_rng(seed)

        n_lm = len(self._landmarks)
        rtt = np.zeros((n_lm, n_lm))
        for i, a in enumerate(self._landmarks):
            for j, b in enumerate(self._landmarks):
                rtt[i, j] = model.rtt(a, b)
        self._landmark_coords = _fit_landmarks(rtt, dims, self._rng)
        self._coords: Dict[int, np.ndarray] = {
            lm: self._landmark_coords[i] for i, lm in enumerate(self._landmarks)
        }

    @property
    def landmarks(self) -> Sequence[int]:
        return tuple(self._landmarks)

    @property
    def dims(self) -> int:
        return self._dims

    def coordinates(self, node: int) -> np.ndarray:
        """The node's (cached) fitted coordinates."""
        coords = self._coords.get(node)
        if coords is None:
            rtts = np.array([self._model.rtt(node, lm) for lm in self._landmarks])
            coords = _fit_node(self._landmark_coords, rtts, self._rng)
            self._coords[node] = coords
        return coords

    def estimate_rtt(self, a: int, b: int) -> float:
        if a == b:
            return 0.0
        return float(np.linalg.norm(self.coordinates(a) - self.coordinates(b)))

    def rank_candidates(self, node: int, candidates: Sequence[int]) -> List[int]:
        """Candidates sorted by increasing estimated RTT from ``node``."""
        return sorted(candidates, key=lambda c: self.estimate_rtt(node, c))

    def estimation_error(self, pairs: Sequence, relative: bool = True) -> float:
        """Mean (relative) absolute error over ``pairs`` of (a, b)."""
        errors = []
        for a, b in pairs:
            true = self._model.rtt(a, b)
            est = self.estimate_rtt(a, b)
            if relative:
                if true <= 0:
                    continue
                errors.append(abs(est - true) / true)
            else:
                errors.append(abs(est - true))
        return float(np.mean(errors)) if errors else 0.0
