"""Overlay construction and adaptation (Section 2.2).

:class:`~repro.core.overlay.state.NeighborTable` holds the node's
random and nearby neighbors with per-neighbor telemetry;
:class:`~repro.core.overlay.manager.OverlayManager` implements the join
handshake, the random-neighbor maintenance of Section 2.2.2, and the
nearby-neighbor maintenance of Section 2.2.3 with conditions C1–C4.
"""

from repro.core.overlay.state import NeighborState, NeighborTable
from repro.core.overlay.manager import OverlayManager

__all__ = ["NeighborState", "NeighborTable", "OverlayManager"]
