"""Overlay join and adaptation protocols (Sections 2.2.1–2.2.3).

The manager owns the link-handshake state machine and the two periodic
maintenance protocols:

* **Random neighbors** (2.2.2): repair deficits from the member list;
  shed surpluses either by *rewiring* two random neighbors to each other
  (degree >= C_rand + 2) or by dropping a link to a random neighbor that
  itself has spare random degree.  A node may legitimately rest at
  C_rand + 1 (the paper proves the stable split is C_rand : C_rand + 1
  at roughly 88% : 12%).
* **Nearby neighbors** (2.2.3): one candidate RTT probe per cycle.
  Replacement applies the paper's four conditions — C1 (only replace a
  neighbor whose own nearby degree is not dangerously low, picking the
  longest-RTT such neighbor), C2 (candidate's degree below
  C_near + 5, checked at the candidate), C3 (the new link must beat the
  candidate's current worst nearby link, checked at the candidate), and
  C4 (the candidate must be at least 2x closer than the neighbor it
  replaces).  Additions reuse C2/C3; drops reuse C1 and shed the
  longest-RTT links first, starting only at C_near + 2 so degrees
  stabilize at C_near or C_near + 1 (paper: ~70% : ~30%).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.core.messages import (
    NEARBY,
    RANDOM,
    LinkAccept,
    LinkDrop,
    LinkReject,
    LinkRequest,
    Ping,
    Pong,
    RewireRequest,
)
from repro.core.overlay.state import NeighborTable

#: How long an unanswered link request or RTT probe stays pending.
HANDSHAKE_TIMEOUT = 2.0


class _PendingRequest:
    __slots__ = ("kind", "is_replacement", "new_rtt", "timeout")

    def __init__(self, kind: str, is_replacement: bool, new_rtt: float, timeout):
        self.kind = kind
        self.is_replacement = is_replacement
        self.new_rtt = new_rtt
        self.timeout = timeout


class OverlayManager:
    """Builds and adapts one node's view of the overlay."""

    def __init__(self, node) -> None:
        self.node = node
        self.table = NeighborTable()
        self._pending: Dict[int, _PendingRequest] = {}
        self._probe_target: Optional[int] = None
        self._probe_nonce = 0
        self._probe_timeout = None
        #: Candidates sorted by estimated latency, scanned once after
        #: join; afterwards the scan falls back to round-robin over the
        #: member view ("the estimated latencies are no longer used").
        self._estimate_queue: Optional[List[int]] = None
        #: Earliest instant at which any neighbor could time out; lets
        #: :meth:`evict_silent_neighbors` skip its per-tick scan.
        self._no_evict_until = 0.0
        #: The node's config, bound once (it is assigned before any
        #: subsystem is constructed and never replaced) — the accessor
        #: runs several times per maintenance tick.
        self._cfg = node.config

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def d_rand(self) -> int:
        return self.table.n_rand

    @property
    def d_near(self) -> int:
        return self.table.n_near

    def neighbor_ids(self) -> List[int]:
        return self.table.ids()

    # ------------------------------------------------------------------
    # Link establishment handshake
    # ------------------------------------------------------------------
    def request_link(
        self,
        peer: int,
        kind: str,
        is_replacement: bool = False,
        new_rtt: float = 0.0,
    ) -> bool:
        """Ask ``peer`` to become a neighbor; returns False if not sent."""
        node = self.node
        if peer == node.node_id or peer in self.table or peer in self._pending:
            return False
        timeout = node.sim.schedule(HANDSHAKE_TIMEOUT, self._expire_pending, peer)
        self._pending[peer] = _PendingRequest(kind, is_replacement, new_rtt, timeout)
        if node.obs.enabled:
            node.obs.metrics.inc("overlay.link_request", kind=kind)
        node.send(
            peer,
            LinkRequest(
                kind=kind,
                nearby_degree=self.d_near,
                random_degree=self.d_rand,
            ),
        )
        return True

    def _expire_pending(self, peer: int) -> None:
        pending = self._pending.get(peer)
        if pending is not None and pending.timeout is not None:
            self._pending.pop(peer, None)

    def on_link_request(self, src: int, msg: LinkRequest) -> None:
        node = self.node
        node.view.add(src)
        if src in self.table:
            # Duplicate request; confirm the existing link.
            node.send(src, LinkAccept(self.table.get(src).kind, self.d_near, self.d_rand))
            return
        if src in self._pending:
            # Crossed requests (possibly with different kinds): the
            # lower node id's request wins so both ends agree on the
            # link's kind.
            if node.node_id < src:
                return  # ours is in flight; the peer yields to it
            pending = self._pending.pop(src)
            if pending.timeout is not None:
                pending.timeout.cancel()

        cfg = self._cfg
        if msg.kind == RANDOM:
            if self.d_rand >= cfg.c_rand + cfg.degree_slack:
                self._reject(src, msg.kind, "random-degree-full")
                return
            rtt = node.measure_rtt(src)
        else:
            # C2: our nearby degree must not be excessive.
            if self.d_near >= cfg.c_near + cfg.degree_slack:
                self._reject(src, msg.kind, "C2")
                return
            rtt = node.measure_rtt(src)
            # C3: if we already have enough nearby neighbors, the new
            # link must be "no worse than the worst nearby link" we
            # currently have (non-strict, per the Adding text in
            # Section 2.2.3 — strict rejection would deadlock on ties).
            if self.d_near >= cfg.c_near and rtt > self.table.max_nearby_rtt():
                self._reject(src, msg.kind, "C3")
                return

        self._add_link(src, msg.kind, rtt)
        state = self.table.get(src)
        state.nearby_degree = msg.nearby_degree
        state.random_degree = msg.random_degree
        node.send(src, LinkAccept(msg.kind, self.d_near, self.d_rand))

    def _reject(self, src: int, kind: str, reason: str) -> None:
        node = self.node
        if node.obs.enabled:
            node.obs.metrics.inc("overlay.link_reject", reason=reason)
            node.obs.tracer.emit(
                node.sim.now, "overlay.reject",
                node=node.node_id, peer=src, kind=kind, reason=reason,
            )
        node.send(src, LinkReject(kind, reason))

    def on_link_accept(self, src: int, msg: LinkAccept) -> None:
        pending = self._pending.pop(src, None)
        if pending is not None and pending.timeout is not None:
            pending.timeout.cancel()
        if src in self.table:
            return
        rtt = pending.new_rtt if (pending and pending.new_rtt > 0) else self.node.measure_rtt(src)
        kind = pending.kind if pending else msg.kind
        self._add_link(src, kind, rtt)
        state = self.table.get(src)
        state.nearby_degree = msg.nearby_degree
        state.random_degree = msg.random_degree
        if pending is not None and pending.is_replacement:
            self._complete_replacement(src, rtt)

    def on_link_reject(self, src: int, msg: LinkReject) -> None:
        pending = self._pending.pop(src, None)
        if pending is not None and pending.timeout is not None:
            pending.timeout.cancel()

    def on_link_drop(self, src: int, msg: LinkDrop) -> None:
        self._remove_link(src, notify=False)

    def on_rewire_request(self, src: int, msg: RewireRequest) -> None:
        target = msg.target
        if target != self.node.node_id and target not in self.table:
            self.request_link(target, RANDOM)

    def on_peer_failed(self, peer: int) -> None:
        """A send to ``peer`` failed: treat the peer as crashed."""
        pending = self._pending.pop(peer, None)
        if pending is not None and pending.timeout is not None:
            pending.timeout.cancel()
        if self._probe_target == peer:
            self._clear_probe()
        self.node.view.remove(peer)
        self._remove_link(peer, notify=False)

    def _add_link(self, peer: int, kind: str, rtt: float) -> None:
        node = self.node
        self.table.add(peer, kind, rtt, node.sim.now)
        node.record_link_change(kind, "add")
        node.on_neighbor_added(peer)
        node.degrees_changed()

    def _remove_link(self, peer: int, notify: bool) -> bool:
        state = self.table.remove(peer)
        if state is None:
            return False
        node = self.node
        if notify:
            node.send(peer, LinkDrop(state.kind))
        node.record_link_change(state.kind, "drop")
        node.on_neighbor_removed(peer)
        node.degrees_changed()
        return True

    def drop_link(self, peer: int) -> bool:
        """Deliberately close the link to ``peer`` (with notification)."""
        return self._remove_link(peer, notify=True)

    def force_link(self, peer: int, kind: str, rtt: float) -> None:
        """Install a link without the handshake (experiment bootstrap)."""
        if peer in self.table:
            return
        self._add_link(peer, kind, rtt)

    # ------------------------------------------------------------------
    # Random-neighbor maintenance (Section 2.2.2)
    # ------------------------------------------------------------------
    def evict_silent_neighbors(self) -> None:
        """Drop neighbors that have been silent past the timeout.

        Backstop for the TCP-reset detector: a peer that crashed while
        we had nothing to send it is still discovered, because healthy
        links carry keepalive gossips every ``keepalive_interval``.
        """
        timeout = self._cfg.neighbor_timeout
        if timeout <= 0:
            return
        now = self.node.sim.now
        # Skip the scan while no eviction is possible: last_heard only
        # moves forward and a new link starts at last_heard=now, so the
        # bound recorded by the previous scan (oldest last_heard seen +
        # timeout) is conservative — before that instant `now -
        # last_heard > timeout` cannot hold for any neighbor.
        if now <= self._no_evict_until:
            return
        # Two-phase so the common all-healthy tick allocates nothing:
        # scan first, then evict from a snapshot (on_peer_failed removes
        # only that peer, so the collected ids stay valid).
        victims = None
        oldest = now
        for peer, state in self.table.items():
            heard = state.last_heard
            if now - heard > timeout:
                if victims is None:
                    victims = []
                victims.append(peer)
            elif heard < oldest:
                oldest = heard
        if victims:
            for peer in victims:
                self.on_peer_failed(peer)
        else:
            self._no_evict_until = oldest + timeout

    def maintain_random(self) -> None:
        cfg = self._cfg
        d = self.table.n_rand
        if d < cfg.c_rand:
            self._repair_random_deficit()
        elif d >= cfg.c_rand + 2:
            self._rewire_random_surplus()
        elif d == cfg.c_rand + 1:
            self._shed_one_random()
        # d == c_rand: nothing to do.

    def _repair_random_deficit(self) -> None:
        node = self.node
        exclude = set(self.table.ids()) | set(self._pending) | {node.node_id}
        candidate = node.view.random_member(exclude)
        if candidate is not None:
            self.request_link(candidate, RANDOM)

    def _rewire_random_surplus(self) -> None:
        """Operation 1: ask Y to link to Z, then drop our links to both."""
        node = self.node
        randoms = self.table.random_neighbors()
        if len(randoms) < 2:
            return
        y, z = node.rng.sample(randoms, 2)
        if node.obs.enabled:
            node.obs.metrics.inc("overlay.rewire")
        node.send(y, RewireRequest(target=z))
        self.drop_link(y)
        self.drop_link(z)

    def _shed_one_random(self) -> None:
        """Operation 2: drop a link to a random neighbor with surplus."""
        cfg = self._cfg
        for peer in self.table.random_neighbors():
            state = self.table.get(peer)
            if state.random_degree > cfg.c_rand:
                self.drop_link(peer)
                return
        # No neighbor has surplus: rest at C_rand + 1 (paper's stable state).

    # ------------------------------------------------------------------
    # Nearby-neighbor maintenance (Section 2.2.3)
    # ------------------------------------------------------------------
    def maintain_nearby(self) -> None:
        cfg = self._cfg
        d = self.table.n_near
        if d >= cfg.c_near + cfg.drop_threshold_slack:
            self._drop_excess_nearby()
        elif d < cfg.c_near:
            self._try_add_nearby()
        else:
            self._try_replace_nearby()

    def _c1_bound(self) -> int:
        return self._cfg.c_near - self._cfg.c1_slack

    def _replaceable(self, exclude: Optional[int] = None) -> List[Tuple[float, int]]:
        """Nearby neighbors eligible under C1, as (rtt, id) pairs.

        UNKNOWN_DEGREE (-1) fails the bound naturally, so neighbors that
        have not yet reported a degree are conservatively protected.
        """
        bound = self._c1_bound()
        out = []
        for peer, state in self.table.of_kind_states(NEARBY):
            if peer == exclude:
                continue
            if state.nearby_degree >= bound:
                out.append((state.rtt, peer))
        return out

    def _has_replaceable(self) -> bool:
        """Whether any nearby neighbor satisfies C1 (short-circuit form
        of :meth:`_replaceable` for the per-tick probe decision)."""
        bound = self._c1_bound()
        for _, state in self.table.of_kind_states(NEARBY):
            if state.nearby_degree >= bound:
                return True
        return False

    def _worst_replaceable_rtt(self) -> float:
        """Longest RTT among C1-eligible nearby neighbors, -inf if none
        (allocation-free form of ``max(self._replaceable())`` for the
        per-pong C4 check)."""
        bound = self._c1_bound()
        worst = -math.inf
        for _, state in self.table.of_kind_states(NEARBY):
            if state.nearby_degree >= bound and state.rtt > worst:
                worst = state.rtt
        return worst

    def _drop_excess_nearby(self) -> None:
        cfg = self._cfg
        while self.d_near > cfg.c_near:
            eligible = self._replaceable()
            if not eligible:
                return
            _, victim = max(eligible)
            self.drop_link(victim)

    def _try_add_nearby(self) -> None:
        candidate = self._next_candidate()
        if candidate is not None:
            # C2/C3 are evaluated at the candidate when it receives the
            # request; at most one addition is attempted per cycle.
            self.request_link(candidate, NEARBY)

    def _try_replace_nearby(self) -> None:
        if self._probe_target is not None:
            return
        if not self._has_replaceable():
            return
        candidate = self._next_candidate()
        if candidate is None:
            return
        node = self.node
        self._probe_target = candidate
        self._probe_nonce += 1
        self._probe_timeout = node.sim.schedule(HANDSHAKE_TIMEOUT, self._expire_probe)
        if node.obs.enabled:
            node.obs.metrics.inc("overlay.probe")
        node.send(candidate, Ping(self._probe_nonce, node.sim.now), reliable=False)

    def _expire_probe(self) -> None:
        self._probe_target = None
        self._probe_timeout = None

    def _clear_probe(self) -> None:
        if self._probe_timeout is not None:
            self._probe_timeout.cancel()
        self._probe_target = None
        self._probe_timeout = None

    def on_ping(self, src: int, msg: Ping) -> None:
        self.node.send(src, Pong(msg.nonce, msg.sent_at), reliable=False)

    def on_pong(self, src: int, msg: Pong) -> None:
        if src != self._probe_target or msg.nonce != self._probe_nonce:
            return
        rtt = self.node.sim.now - msg.sent_at
        self._clear_probe()
        self._evaluate_replacement(src, rtt)

    def _evaluate_replacement(self, candidate: int, rtt: float) -> None:
        if candidate in self.table or candidate in self._pending:
            return
        cfg = self._cfg
        # C1 picks the longest-latency eligible neighbor as the victim.
        worst_rtt = self._worst_replaceable_rtt()
        if worst_rtt == -math.inf:
            return
        # C4: the candidate must be significantly (2x) better.
        if rtt > cfg.replace_rtt_factor * worst_rtt:
            return
        self.request_link(candidate, NEARBY, is_replacement=True, new_rtt=rtt)

    def _complete_replacement(self, new_peer: int, new_rtt: float) -> None:
        """After the candidate accepted, drop the neighbor it replaces.

        Re-evaluated with fresh state (the old victim may itself have
        been dropped while the handshake was in flight); if no neighbor
        still satisfies C1 + C4 the link is simply kept and the regular
        drop protocol restores the degree bound later.
        """
        cfg = self._cfg
        eligible = [
            (link_rtt, peer)
            for link_rtt, peer in self._replaceable(exclude=new_peer)
            if new_rtt <= cfg.replace_rtt_factor * link_rtt
        ]
        if eligible:
            _, victim = max(eligible)
            self.drop_link(victim)

    # ------------------------------------------------------------------
    # Candidate scanning
    # ------------------------------------------------------------------
    def _next_candidate(self) -> Optional[int]:
        """Next nearby-neighbor candidate from the member list.

        First pass: members in increasing *estimated* latency (triangular
        heuristic).  Afterwards: plain round-robin over the view.
        """
        node = self.node
        # Exclusion is tested against the live neighbor map and pending
        # dict directly; the view never contains the owner, so no merged
        # skip set is needed (this runs every maintenance tick).
        neighbors = self.table.state_map()
        pending = self._pending
        if self._estimate_queue is None and node.estimator is not None:
            members = node.view.members()
            ranked = node.estimator.rank_candidates(node.node_id, members)
            ranked.reverse()  # pop() then yields the lowest-estimate first
            self._estimate_queue = ranked
        queue = self._estimate_queue
        if queue:
            while queue:
                candidate = queue.pop()
                if candidate not in neighbors and candidate not in pending:
                    return candidate
        return node.view.round_robin_next_filtered(neighbors, pending)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close_all_links(self) -> None:
        """Gracefully notify all neighbors on leave."""
        for peer in list(self.table.ids()):
            self.drop_link(peer)
