"""Per-neighbor state and the neighbor table.

Every overlay link is either *random* or *nearby* (its kind is agreed at
establishment and symmetric).  Alongside the measured link RTT, the
table caches what the neighbor last told us about itself — its degrees
(needed by conditions C1/C2 of Section 2.2.3) and its distance to the
tree root (used for fast local tree repair) — refreshed by
``DegreeUpdate`` messages and gossip piggybacks.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

from repro.core.messages import LINK_KINDS, NEARBY, RANDOM

#: Sentinel for "the neighbor has not reported this yet".
UNKNOWN_DEGREE = -1


@dataclasses.dataclass
class NeighborState:
    """What a node knows about one of its overlay neighbors."""

    kind: str
    rtt: float
    nearby_degree: int = UNKNOWN_DEGREE
    random_degree: int = UNKNOWN_DEGREE
    dist_to_root: float = math.inf
    root_epoch: int = -1
    last_sent: float = 0.0
    last_heard: float = 0.0
    is_tree_child: bool = False

    def __post_init__(self) -> None:
        if self.kind not in LINK_KINDS:
            raise ValueError(f"unknown link kind {self.kind!r}")
        if self.rtt < 0:
            raise ValueError("rtt must be non-negative")

    @property
    def one_way(self) -> float:
        """Estimated one-way latency of this link."""
        return self.rtt / 2.0


class NeighborTable:
    """A node's current overlay neighbors, indexed by node id.

    Degrees are maintained incrementally and the derived views consulted
    every protocol tick (per-kind id lists, sorted ids) are cached and
    invalidated on membership change — a link's ``kind`` is fixed at
    establishment, so only :meth:`add`/:meth:`remove` can change them.
    All views preserve the same ordering the uncached list
    comprehensions produced (dict insertion order), so callers see
    identical results.
    """

    def __init__(self) -> None:
        self._neighbors: Dict[int, NeighborState] = {}
        #: Incremental per-kind degree counters.  Public plain attributes
        #: (read every maintenance tick and in every DegreeUpdate build);
        #: only add/remove may write them.
        self.n_rand = 0
        self.n_near = 0
        self._kind_cache: Dict[str, List[int]] = {}
        self._kind_state_cache: Dict[str, List[Tuple[int, NeighborState]]] = {}
        self._sorted_ids: Optional[List[int]] = None

    def __len__(self) -> int:
        return len(self._neighbors)

    def __contains__(self, node: int) -> bool:
        return node in self._neighbors

    def get(self, node: int) -> Optional[NeighborState]:
        return self._neighbors.get(node)

    def state_map(self) -> Dict[int, NeighborState]:
        """The live id -> state mapping, for read-only hot paths.

        The table mutates this dict in place and never rebinds it, so a
        caller may hold it across membership changes (the node's
        send/receive path does, saving an attribute chain + method call
        per message).  Callers must not modify it.
        """
        return self._neighbors

    def items(self):
        return self._neighbors.items()

    def ids(self) -> List[int]:
        return list(self._neighbors)

    def sorted_ids(self) -> List[int]:
        """Ids sorted ascending; cached (callers must not mutate)."""
        cached = self._sorted_ids
        if cached is None:
            cached = self._sorted_ids = sorted(self._neighbors)
        return cached

    def add(self, node: int, kind: str, rtt: float, now: float) -> NeighborState:
        if node in self._neighbors:
            raise ValueError(f"node {node} is already a neighbor")
        state = NeighborState(kind=kind, rtt=rtt, last_sent=now, last_heard=now)
        self._neighbors[node] = state
        if kind == RANDOM:
            self.n_rand += 1
        else:
            self.n_near += 1
        self._kind_cache.pop(kind, None)
        self._kind_state_cache.pop(kind, None)
        self._sorted_ids = None
        return state

    def remove(self, node: int) -> Optional[NeighborState]:
        state = self._neighbors.pop(node, None)
        if state is not None:
            if state.kind == RANDOM:
                self.n_rand -= 1
            else:
                self.n_near -= 1
            self._kind_cache.pop(state.kind, None)
            self._kind_state_cache.pop(state.kind, None)
            self._sorted_ids = None
        return state

    # ------------------------------------------------------------------
    # Degree accessors (the D_rand / D_near of the paper)
    # ------------------------------------------------------------------
    @property
    def d_rand(self) -> int:
        return self.n_rand

    @property
    def d_near(self) -> int:
        return self.n_near

    @property
    def degree(self) -> int:
        return len(self._neighbors)

    def of_kind(self, kind: str) -> List[int]:
        """Neighbor ids of ``kind`` in insertion order; cached (callers
        must not mutate the returned list)."""
        cached = self._kind_cache.get(kind)
        if cached is None:
            cached = [n for n, s in self._neighbors.items() if s.kind == kind]
            self._kind_cache[kind] = cached
        return cached

    def of_kind_states(self, kind: str) -> List[Tuple[int, NeighborState]]:
        """``(id, state)`` pairs of ``kind`` in insertion order; cached
        (callers must not mutate the returned list).  Saves the per-peer
        ``get`` lookup in scans that run every maintenance tick."""
        cached = self._kind_state_cache.get(kind)
        if cached is None:
            cached = [(n, s) for n, s in self._neighbors.items() if s.kind == kind]
            self._kind_state_cache[kind] = cached
        return cached

    def random_neighbors(self) -> List[int]:
        return self.of_kind(RANDOM)

    def nearby_neighbors(self) -> List[int]:
        return self.of_kind(NEARBY)

    def max_nearby_rtt(self) -> float:
        """max_nearby_RTT of condition C3; 0.0 with no nearby neighbors."""
        rtts = [s.rtt for s in self._neighbors.values() if s.kind == NEARBY]
        return max(rtts) if rtts else 0.0

    def mean_link_rtt(self) -> float:
        if not self._neighbors:
            return 0.0
        return sum(s.rtt for s in self._neighbors.values()) / len(self._neighbors)
