"""Per-neighbor state and the neighbor table.

Every overlay link is either *random* or *nearby* (its kind is agreed at
establishment and symmetric).  Alongside the measured link RTT, the
table caches what the neighbor last told us about itself — its degrees
(needed by conditions C1/C2 of Section 2.2.3) and its distance to the
tree root (used for fast local tree repair) — refreshed by
``DegreeUpdate`` messages and gossip piggybacks.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional

from repro.core.messages import LINK_KINDS, NEARBY, RANDOM

#: Sentinel for "the neighbor has not reported this yet".
UNKNOWN_DEGREE = -1


@dataclasses.dataclass
class NeighborState:
    """What a node knows about one of its overlay neighbors."""

    kind: str
    rtt: float
    nearby_degree: int = UNKNOWN_DEGREE
    random_degree: int = UNKNOWN_DEGREE
    dist_to_root: float = math.inf
    root_epoch: int = -1
    last_sent: float = 0.0
    last_heard: float = 0.0
    is_tree_child: bool = False

    def __post_init__(self) -> None:
        if self.kind not in LINK_KINDS:
            raise ValueError(f"unknown link kind {self.kind!r}")
        if self.rtt < 0:
            raise ValueError("rtt must be non-negative")

    @property
    def one_way(self) -> float:
        """Estimated one-way latency of this link."""
        return self.rtt / 2.0


class NeighborTable:
    """A node's current overlay neighbors, indexed by node id."""

    def __init__(self) -> None:
        self._neighbors: Dict[int, NeighborState] = {}

    def __len__(self) -> int:
        return len(self._neighbors)

    def __contains__(self, node: int) -> bool:
        return node in self._neighbors

    def get(self, node: int) -> Optional[NeighborState]:
        return self._neighbors.get(node)

    def items(self):
        return self._neighbors.items()

    def ids(self) -> List[int]:
        return list(self._neighbors)

    def add(self, node: int, kind: str, rtt: float, now: float) -> NeighborState:
        if node in self._neighbors:
            raise ValueError(f"node {node} is already a neighbor")
        state = NeighborState(kind=kind, rtt=rtt, last_sent=now, last_heard=now)
        self._neighbors[node] = state
        return state

    def remove(self, node: int) -> Optional[NeighborState]:
        return self._neighbors.pop(node, None)

    # ------------------------------------------------------------------
    # Degree accessors (the D_rand / D_near of the paper)
    # ------------------------------------------------------------------
    @property
    def d_rand(self) -> int:
        return sum(1 for s in self._neighbors.values() if s.kind == RANDOM)

    @property
    def d_near(self) -> int:
        return sum(1 for s in self._neighbors.values() if s.kind == NEARBY)

    @property
    def degree(self) -> int:
        return len(self._neighbors)

    def of_kind(self, kind: str) -> List[int]:
        return [n for n, s in self._neighbors.items() if s.kind == kind]

    def random_neighbors(self) -> List[int]:
        return self.of_kind(RANDOM)

    def nearby_neighbors(self) -> List[int]:
        return self.of_kind(NEARBY)

    def max_nearby_rtt(self) -> float:
        """max_nearby_RTT of condition C3; 0.0 with no nearby neighbors."""
        rtts = [s.rtt for s in self._neighbors.values() if s.kind == NEARBY]
        return max(rtts) if rtts else 0.0

    def mean_link_rtt(self) -> float:
        if not self._neighbors:
            return 0.0
        return sum(s.rtt for s in self._neighbors.values()) / len(self._neighbors)
