"""Node join protocol (Section 2.2.1).

A joining node N knows one bootstrap contact P through an out-of-band
method.  N fetches P's member list, adopts it as its own partial view,
connects to ``C_rand`` random members, ranks the rest by *estimated*
latency (triangular heuristic — measuring RTT to hundreds of members up
front would be too expensive) and connects to the ``C_near`` best
estimates.  The regular maintenance protocols take over from there,
gradually replacing estimate-chosen links with measured low-latency
ones.
"""

from __future__ import annotations

from repro.core.messages import NEARBY, RANDOM, JoinReply, JoinRequest


def start_join(node, bootstrap: int) -> None:
    """Begin the join handshake against ``bootstrap``."""
    if bootstrap == node.node_id:
        raise ValueError("a node cannot bootstrap from itself")
    node.view.add(bootstrap)
    node.send(bootstrap, JoinRequest())


def handle_join_request(node, src: int) -> None:
    """Serve a joiner with our member list (us included)."""
    members = node.view.members()
    members.append(node.node_id)
    node.view.add(src)
    node.send(src, JoinReply(members=tuple(members)))


def handle_join_reply(node, src: int, msg: JoinReply) -> None:
    """Adopt the bootstrap's member list and open initial links."""
    node.view.add_many(m for m in msg.members if m != node.node_id)

    cfg = node.config
    overlay = node.overlay

    exclude = {node.node_id} | set(overlay.table.ids())
    for _ in range(cfg.c_rand):
        candidate = node.view.random_member(exclude)
        if candidate is None:
            break
        overlay.request_link(candidate, RANDOM)
        exclude.add(candidate)

    members = [m for m in node.view.members() if m not in exclude]
    if node.estimator is not None:
        members = node.estimator.rank_candidates(node.node_id, members)
    else:
        node.rng.shuffle(members)
    for candidate in members[: cfg.c_near]:
        overlay.request_link(candidate, NEARBY)
