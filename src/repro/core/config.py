"""GoCast protocol parameters.

Defaults follow Section 2 and Section 3 of the paper exactly:
``C_rand = 1``, ``C_near = 5`` (the paper's headline parameter finding),
gossip period ``t = 0.1 s``, maintenance period ``r = 0.1 s``, buffer
reclaim wait ``b = 120 s``, root heartbeat every 15 s.  The
``request_delay_f`` optimization (delay pull requests until a message
has had ``f`` seconds to arrive via the tree) defaults to off, matching
the main experiments; the paper recommends the tree's 90th-percentile
delay (0.3 s at 1,024 nodes) when enabling it.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class GoCastConfig:
    """Tunable parameters for a GoCast deployment."""

    #: Target number of random neighbors (paper: 1).
    c_rand: int = 1
    #: Target number of proximity-chosen neighbors (paper: 5).
    c_near: int = 5
    #: Gossip period ``t`` in seconds — one gossip is sent per period,
    #: to neighbors in round-robin order.
    gossip_period: float = 0.1
    #: Maintenance period ``r`` in seconds — one random-maintenance and
    #: one nearby-maintenance step per period.
    maintenance_period: float = 0.1
    #: Buffer reclaim wait ``b``: payload is retained this long after the
    #: ID has been gossiped to the last neighbor (paper: two minutes).
    reclaim_wait_b: float = 120.0
    #: Pull-request delay ``f``: wait until a gossiped message is at
    #: least this old before pulling it, giving the tree time to deliver
    #: it first (paper recommends the 90th-percentile tree delay; 0 = off).
    request_delay_f: float = 0.0
    #: Root heartbeat flood period (paper: 15 s).
    heartbeat_period: float = 15.0
    #: Root considered failed after this long without a heartbeat.
    heartbeat_timeout: float = 45.0
    #: Degree-acceptance slack: a node accepts a new random/nearby link
    #: only while its degree is below target + slack (paper: +5).
    degree_slack: int = 5
    #: Nearby degree at which dropping starts (paper: C_near + 2).
    drop_threshold_slack: int = 2
    #: C1 lower bound: a neighbor may be replaced/dropped only if its
    #: nearby degree is at least ``c_near - c1_slack`` (paper: slack 1).
    c1_slack: int = 1
    #: C4 improvement factor: a candidate replaces a neighbor only if
    #: ``rtt(candidate) <= factor * rtt(neighbor)`` (paper: 0.5).
    replace_rtt_factor: float = 0.5
    #: Maximum partial-view size (paper: "hundreds of nodes").
    membership_max: int = 120
    #: Random member addresses piggybacked on each gossip.
    piggyback_members: int = 4
    #: Send an (otherwise suppressed) empty gossip if nothing has been
    #: sent to a neighbor for this long; doubles as failure detection.
    keepalive_interval: float = 2.0
    #: Evict a neighbor after this long without hearing anything from it
    #: (complements TCP-reset detection; with keepalives flowing every
    #: ``keepalive_interval``, a healthy link is never anywhere near
    #: this quiet).  0 disables the timeout.
    neighbor_timeout: float = 10.0
    #: Re-request a pulled message if it has not arrived in this time.
    pull_timeout: float = 1.0
    #: Tolerance for keeping a tree parent that is slightly off the best
    #: path.  MUST stay ~0: any real slack lets co-located clusters far
    #: from the root sustain parent cycles (see TreeManager docs).  Ties
    #: favour the current parent, so 0 does not cause flapping.
    tree_switch_threshold: float = 0.0
    #: Whether multicast messages propagate through the tree at all.
    #: False gives the paper's "proximity overlay"/"random overlay"
    #: gossip-only baselines.
    use_tree: bool = True
    #: Dynamic tuning of the maintenance period (the paper's stated
    #: future work: "As the overlay stabilizes, the opportunity for
    #: improvement diminishes.  The maintenance cycle r can be increased
    #: accordingly").  When on, the period stretches toward
    #: ``maintenance_period_max`` while no link changes occur and snaps
    #: back to ``maintenance_period`` on any change.
    adaptive_maintenance: bool = False
    maintenance_period_max: float = 2.0
    #: Seconds without a link change before the period starts growing.
    maintenance_idle_threshold: float = 5.0
    #: Dynamic tuning of the gossip period ("the gossip period t is
    #: dynamically tunable according to the message rate"): stretches
    #: toward ``gossip_period_max`` while no multicast traffic flows,
    #: snapping back on the next delivery.
    adaptive_gossip: bool = False
    gossip_period_max: float = 0.5

    def __post_init__(self) -> None:
        if self.c_rand < 0 or self.c_near < 0:
            raise ValueError("target degrees must be non-negative")
        if self.c_rand + self.c_near < 1:
            raise ValueError("total target degree must be at least 1")
        if self.gossip_period <= 0 or self.maintenance_period <= 0:
            raise ValueError("periods must be positive")
        if self.reclaim_wait_b < 0 or self.request_delay_f < 0:
            raise ValueError("waits must be non-negative")
        if self.heartbeat_period <= 0 or self.heartbeat_timeout <= self.heartbeat_period:
            raise ValueError("heartbeat timeout must exceed the period")
        if self.degree_slack < 1:
            raise ValueError("degree_slack must be >= 1")
        if self.drop_threshold_slack < 1:
            raise ValueError("drop_threshold_slack must be >= 1")
        if not 0 < self.replace_rtt_factor <= 1:
            raise ValueError("replace_rtt_factor must be in (0, 1]")
        if self.membership_max < self.c_rand + self.c_near:
            raise ValueError("membership view must hold at least the neighbors")

    @property
    def c_degree(self) -> int:
        """Total target node degree ``C_degree = C_rand + C_near``."""
        return self.c_rand + self.c_near
