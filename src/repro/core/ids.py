"""Multicast message identifiers.

"Each message injected into the system has a unique identifier.  The
identifier of a message injected by node P is a concatenation of P's IP
address and a monotonically increasing sequence number locally assigned
by P."  We use the node id in place of the IP address.
"""

from __future__ import annotations

from typing import NamedTuple


class MessageId(NamedTuple):
    """Globally unique multicast message identifier."""

    source: int
    seq: int

    def __str__(self) -> str:
        return f"{self.source}:{self.seq}"


class MessageIdAllocator:
    """Per-node monotonically increasing sequence numbers."""

    def __init__(self, node_id: int):
        self.node_id = node_id
        self._next_seq = 0

    def allocate(self) -> MessageId:
        msg_id = MessageId(self.node_id, self._next_seq)
        self._next_seq += 1
        return msg_id
