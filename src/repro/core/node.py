"""GoCastNode: composition root of the protocol stack.

A node owns one :class:`~repro.core.overlay.manager.OverlayManager`, one
:class:`~repro.core.tree.manager.TreeManager`, one
:class:`~repro.core.dissemination.disseminator.Disseminator` and one
:class:`~repro.core.dissemination.gossip.GossipEngine`, and wires them
to the simulated network and the two periodic timers (gossip period
``t`` and maintenance period ``r``).  Timers start with a random phase
so thousands of nodes do not act in lock-step.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from repro.core import messages as wire
from repro.core.config import GoCastConfig
from repro.core.dissemination.disseminator import Disseminator
from repro.core.dissemination.gossip import GossipEngine
from repro.core.ids import MessageId, MessageIdAllocator
from repro.core.overlay import join as join_protocol
from repro.core.overlay.manager import OverlayManager
from repro.core.tree.manager import TreeManager
from repro.membership.partial_view import PartialView
from repro.net.estimation import TriangularEstimator
from repro.obs import DISABLED, MetricsRegistry, Observability
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer
from repro.sim.trace import DeliveryTracer
from repro.sim.transport import Network


class GoCastNode:
    """One GoCast protocol participant."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        config: Optional[GoCastConfig] = None,
        rng: Optional[random.Random] = None,
        estimator: Optional[TriangularEstimator] = None,
        tracer: Optional[DeliveryTracer] = None,
        events: Optional[MetricsRegistry] = None,
        obs: Optional[Observability] = None,
    ):
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.config = config if config is not None else GoCastConfig()
        self.rng = rng if rng is not None else random.Random(node_id)
        self.estimator = estimator
        self.tracer = tracer if tracer is not None else DeliveryTracer()
        self.events = events
        self.obs = obs if obs is not None else DISABLED

        self.view = PartialView(node_id, self.rng, self.config.membership_max)
        self.overlay = OverlayManager(self)
        self.tree = TreeManager(self)
        self.disseminator = Disseminator(self)
        self.gossip_engine = GossipEngine(self)
        self._id_alloc = MessageIdAllocator(node_id)
        self.alive = False
        #: Frozen nodes run no maintenance or repair of any kind — the
        #: paper's stress-test setup where only dissemination continues.
        self.frozen = False
        #: Timestamps driving the adaptive period tuning (paper's
        #: "dynamically tunable" periods; see GoCastConfig).
        self.last_link_change = 0.0
        self.last_dissemination = 0.0
        #: Application callbacks invoked on each first delivery.
        self.delivery_listeners: List[Callable[[MessageId, int], None]] = []

        self._gossip_timer = PeriodicTimer(
            sim, self.config.gossip_period, self.gossip_engine.on_tick,
            obs=self.obs, name="gossip",
        )
        self._maint_timer = PeriodicTimer(
            sim, self.config.maintenance_period, self._on_maintenance,
            obs=self.obs, name="maintenance",
        )

        self._dispatch = {
            wire.JoinRequest: self._on_join_request,
            wire.JoinReply: self._on_join_reply,
            wire.LinkRequest: self.overlay.on_link_request,
            wire.LinkAccept: self.overlay.on_link_accept,
            wire.LinkReject: self.overlay.on_link_reject,
            wire.LinkDrop: self.overlay.on_link_drop,
            wire.RewireRequest: self.overlay.on_rewire_request,
            wire.Ping: self.overlay.on_ping,
            wire.Pong: self.overlay.on_pong,
            wire.DegreeUpdate: self._apply_degree_update,
            wire.Gossip: self._on_gossip,
            wire.PullRequest: self.disseminator.on_pull_request,
            wire.PullData: self.disseminator.on_pull_data,
            wire.MulticastData: self.disseminator.on_multicast_data,
            wire.TreeHeartbeat: self._on_tree_heartbeat,
            wire.TreeAttach: self._on_tree_attach,
            wire.TreeDetach: self._on_tree_detach,
        }
        # Message types that only ever travel over an established
        # overlay link (the modeled TCP connection).  Receiving one from
        # a peer we hold no link to means the sender's link state is
        # stale — see _on_stale_link.  Handshake traffic, rewire
        # forwarding, UDP probes, and gossip-pull repair legitimately
        # cross non-link pairs and are exempt.  DegreeUpdate is also
        # exempt: it is the highest-frequency message, so it routinely
        # loses the race against a deliberate (and already notified)
        # link drop — answering those would only duplicate the dropper's
        # own LinkDrop — and a one-sided link whose only outbound
        # traffic is degree floods hears nothing back, so the silent-
        # neighbor timeout already evicts it.
        self._link_level_types = (
            wire.Gossip,
            wire.MulticastData,
            wire.TreeHeartbeat,
            wire.TreeAttach,
            wire.TreeDetach,
        )

        # Hot-path binding: every send and receive stamps last_sent /
        # last_heard, so skip the table.get() indirection (the table
        # mutates this dict in place, never rebinds it).
        self._neighbor_states = self.overlay.table.state_map()
        # use_tree is fixed at construction everywhere in the repo;
        # hoisted out of the per-message config chain.
        self._use_tree = self.config.use_tree
        # make_degree_update reuse cache (see there).
        self._degree_update_key: Optional[tuple] = None
        self._degree_update_cache: Optional[wire.DegreeUpdate] = None

        network.register(self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the periodic timers with a random phase."""
        if self.alive:
            return
        self.alive = True
        self._gossip_timer.start(phase=self.rng.uniform(0, self.config.gossip_period))
        self._maint_timer.start(
            phase=self.rng.uniform(0, self.config.maintenance_period)
        )
        self.tree.last_heartbeat = self.sim.now

    def stop(self) -> None:
        """Halt all activity (crash or shutdown); state is retained."""
        self.alive = False
        self._gossip_timer.stop()
        self._maint_timer.stop()
        self.tree.stop()

    def crash(self) -> None:
        """Crash-stop: the network drops traffic, timers go silent."""
        if self.obs.enabled:
            self.obs.metrics.inc("node.crash")
            self.obs.tracer.emit(self.sim.now, "node.crash", node=self.node_id)
        self.network.kill(self.node_id)
        self.stop()

    def leave(self) -> None:
        """Graceful departure: notify neighbors, then vanish."""
        self.overlay.close_all_links()
        self.stop()
        self.network.remove(self.node_id)

    def freeze(self) -> None:
        """Stop all maintenance and repair; dissemination keeps running.

        Reproduces the paper's failure experiments, where "the system
        does not execute any of GoCast's maintenance protocols to repair
        the overlay or the tree" after the crash wave.
        """
        self.frozen = True
        self._maint_timer.stop()
        self.tree.stop()

    def join(self, bootstrap: int) -> None:
        """Join the overlay via the ``bootstrap`` contact (Section 2.2.1)."""
        join_protocol.start_join(self, bootstrap)

    # ------------------------------------------------------------------
    # Application API
    # ------------------------------------------------------------------
    def multicast(self, payload_size: int = 1024, payload: object = None) -> MessageId:
        """Multicast a message of ``payload_size`` bytes to the group.

        ``payload`` is an opaque application object carried to every
        receiver; fetch it in a delivery listener via :meth:`payload_of`.
        """
        if not self.alive:
            raise RuntimeError(f"node {self.node_id} is not running")
        return self.disseminator.multicast(payload_size, payload=payload)

    def payload_of(self, msg_id: MessageId) -> object:
        """The application payload of a buffered message (None once the
        buffer entry has been reclaimed)."""
        entry = self.disseminator.buffer.entry(msg_id)
        return entry.payload if entry is not None else None

    def on_deliver(self, msg_id: MessageId, payload_size: int) -> None:
        for listener in self.delivery_listeners:
            listener(msg_id, payload_size)

    def allocate_message_id(self) -> MessageId:
        return self._id_alloc.allocate()

    # ------------------------------------------------------------------
    # Transport interface
    # ------------------------------------------------------------------
    def send(self, dst: int, msg: object, reliable: bool = True) -> None:
        state = self._neighbor_states.get(dst)
        if state is not None:
            state.last_sent = self.sim.now
        self.network.send(self.node_id, dst, msg, reliable=reliable)

    def handle_message(self, src: int, msg: object) -> None:
        if not self.alive:
            return
        state = self._neighbor_states.get(src)
        if state is not None:
            state.last_heard = self.sim.now
        elif isinstance(msg, self._link_level_types):
            self._on_stale_link(src)
        handler = self._dispatch.get(type(msg))
        if handler is None:
            raise TypeError(f"node {self.node_id}: unhandled message {type(msg).__name__}")
        handler(src, msg)

    def handle_send_failure(self, dst: int, msg: object) -> None:
        if not self.alive or self.frozen:
            return
        self.view.remove(dst)
        self.disseminator.on_peer_failed(dst)
        self.overlay.on_peer_failed(dst)

    def measure_rtt(self, peer: int) -> float:
        """Handshake-time RTT measurement (the simulation's stand-in for
        timing a TCP connection setup)."""
        return self.network.latency.rtt(self.node_id, peer)

    # ------------------------------------------------------------------
    # Cross-subsystem hooks
    # ------------------------------------------------------------------
    def on_neighbor_added(self, peer: int) -> None:
        self.view.add(peer)
        # Tell the new neighbor our state right away (degree info feeds
        # C1/C2; root distance feeds its tree repair).
        self.send(peer, self.make_degree_update())

    def on_neighbor_removed(self, peer: int) -> None:
        self.tree.on_neighbor_removed(peer)

    def degrees_changed(self) -> None:
        # The degree flood is the most common message in a converged
        # overlay, so the per-peer send() wrapper is inlined (stamp
        # last_sent, hand to the network).  Iterating the live state map
        # is safe: Network.send only schedules — reliable-send failures
        # arrive via a later event, never synchronously — so the table
        # cannot change mid-loop.
        update = self.make_degree_update()
        network_send = self.network.send
        node_id = self.node_id
        now = self.sim.now
        for peer, state in self._neighbor_states.items():
            state.last_sent = now
            network_send(node_id, peer, update)

    def make_degree_update(self) -> wire.DegreeUpdate:
        # DegreeUpdates are immutable once built (receivers only read
        # fields), so the previous one is reused until any field drifts
        # — most gossips piggyback an unchanged state.
        table = self.overlay.table
        tree = self.tree
        key = (table.n_near, table.n_rand, tree.dist, tree.epoch, tree.parent)
        if key == self._degree_update_key:
            return self._degree_update_cache
        update = wire.DegreeUpdate(
            nearby_degree=key[0],
            random_degree=key[1],
            dist_to_root=key[2],
            root_epoch=key[3],
            tree_parent=key[4],
        )
        self._degree_update_key = key
        self._degree_update_cache = update
        return update

    def record_link_change(self, kind: str, action: str) -> None:
        self.last_link_change = self.sim.now
        if self.config.adaptive_maintenance:
            # Activity: snap the maintenance period back to its base.
            self._maint_timer.set_period(self.config.maintenance_period)
        if self.events is not None:
            self.events.count(f"link_{action}_{kind}")
            self.events.record("link_changes", self.sim.now, 1.0)
        if self.obs.enabled:
            self.obs.metrics.inc("overlay.link_change", kind=kind, action=action)
            self.obs.tracer.emit(
                self.sim.now, "overlay.adapt",
                node=self.node_id, kind=kind, action=action,
            )

    def record_dissemination_activity(self) -> None:
        """A multicast message moved through this node."""
        self.last_dissemination = self.sim.now
        if self.config.adaptive_gossip:
            self._gossip_timer.set_period(self.config.gossip_period)

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------
    def _on_join_request(self, src: int, msg: wire.JoinRequest) -> None:
        join_protocol.handle_join_request(self, src)

    def _on_join_reply(self, src: int, msg: wire.JoinReply) -> None:
        join_protocol.handle_join_reply(self, src, msg)

    def _apply_degree_update(self, src: int, update: wire.DegreeUpdate) -> None:
        # Registered directly in the dispatch table (also called with
        # gossip piggybacks) — DegreeUpdate is the most frequent message.
        state = self._neighbor_states.get(src)
        if state is None:
            return
        state.nearby_degree = update.nearby_degree
        state.random_degree = update.random_degree
        state.dist_to_root = update.dist_to_root
        state.root_epoch = update.root_epoch
        if self._use_tree and not self.frozen:
            self.tree.reconcile_child(src, update.tree_parent)
            self.tree.on_neighbor_info(src)

    def _on_gossip(self, src: int, msg: wire.Gossip) -> None:
        # Plain loop rather than add_many over a genexpr: this absorbs
        # every piggybacked member sample in the system.  (add() itself
        # rejects the owner, so the id check is just a cheap pre-filter.)
        add = self.view.add
        for m in msg.member_sample:
            add(m)
        self._apply_degree_update(src, msg.degrees)
        self.disseminator.on_gossip(src, msg)

    def _on_stale_link(self, src: int) -> None:
        """Link-level traffic from a peer we hold no link to.

        In the real stack both link directions share one TCP connection,
        so the side that dropped or evicted the link closed it for both
        ends and the sender's next write would fail outright.  The
        simulated transport has no connection state, which lets a
        one-sided link survive indefinitely — e.g. after a partition
        during which only one end saw a send failure, the other end
        keeps its half of the dead link warm off the victim's replies
        forever (and, with a tree edge on it, livelocks in a
        TreeAttach/TreeDetach storm).  Answer with a LinkDrop (the RST
        analog) so the stale holder evicts.  The message itself is still
        dispatched normally: its content is valid, and in the transient
        drop/rewire races (our LinkDrop to the sender still in flight)
        this keeps the established trajectory unchanged — the reply is
        a no-op at a peer that already removed the link.
        """
        if self.frozen or src in self.overlay._pending:
            # Frozen nodes run no repair (the paper's stress-test rule);
            # a pending handshake means the link is about to exist.
            return
        self.send(src, wire.LinkDrop("stale"))

    def _on_tree_heartbeat(self, src: int, msg: wire.TreeHeartbeat) -> None:
        if self.config.use_tree:
            self.tree.on_heartbeat(src, msg)

    def _on_tree_attach(self, src: int, msg: wire.TreeAttach) -> None:
        if self.config.use_tree:
            self.tree.on_attach(src)

    def _on_tree_detach(self, src: int, msg: wire.TreeDetach) -> None:
        if self.config.use_tree:
            self.tree.on_detach(src)

    # ------------------------------------------------------------------
    # Periodic maintenance (period r)
    # ------------------------------------------------------------------
    def _on_maintenance(self) -> None:
        overlay = self.overlay
        overlay.evict_silent_neighbors()
        overlay.maintain_random()
        overlay.maintain_nearby()
        if self._use_tree:
            self.tree.check_root_liveness()
        if self.config.adaptive_maintenance:
            self._tune_maintenance_period()

    def _tune_maintenance_period(self) -> None:
        """Stretch the maintenance period while the overlay is stable.

        The paper's future-work knob: "As the overlay stabilizes, the
        opportunity for improvement diminishes.  The maintenance cycle r
        can be increased accordingly to reduce maintenance overheads."
        The period grows linearly with idle time, capped at
        ``maintenance_period_max``; any link change snaps it back (see
        :meth:`record_link_change`).
        """
        cfg = self.config
        idle = self.sim.now - self.last_link_change
        if idle <= cfg.maintenance_idle_threshold:
            return
        stretch = 1.0 + (idle - cfg.maintenance_idle_threshold) / cfg.maintenance_idle_threshold
        period = min(cfg.maintenance_period_max, cfg.maintenance_period * stretch)
        self._maint_timer.set_period(period)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GoCastNode(id={self.node_id}, d_rand={self.overlay.d_rand}, "
            f"d_near={self.overlay.d_near}, root={self.tree.root})"
        )
