"""The GoCast protocol — the paper's primary contribution.

A :class:`~repro.core.node.GoCastNode` composes three cooperating
subsystems over the shared neighbor table:

* :mod:`repro.core.overlay` — builds and continuously adapts the
  degree-constrained, proximity-aware overlay (Section 2.2): node join,
  random-neighbor maintenance, and nearby-neighbor maintenance with the
  paper's conditions C1–C4.
* :mod:`repro.core.tree` — embeds a low-latency spanning tree in the
  overlay (Section 2.3): DVMRP-style shortest-path parents, periodic
  root heartbeats, and epoch-based root failover.
* :mod:`repro.core.dissemination` — floods multicast messages down the
  tree and, in the background, gossips message-ID summaries round-robin
  to overlay neighbors, pulling anything the tree missed (Section 2.1).
"""

from repro.core.config import GoCastConfig
from repro.core.ids import MessageId
from repro.core.node import GoCastNode

__all__ = ["GoCastConfig", "GoCastNode", "MessageId"]
