"""Message dissemination (Section 2.1).

Multicast messages propagate *unconditionally* through the tree and
*conditionally* through gossips exchanged between overlay neighbors:

* :mod:`repro.core.dissemination.buffer` — the per-node message store
  with heard-from / gossiped-to bookkeeping and reclaim after the
  waiting period ``b``.
* :mod:`repro.core.dissemination.gossip` — the round-robin summary
  sender (one gossip per period ``t``, to one neighbor).
* :mod:`repro.core.dissemination.disseminator` — tree flooding, gossip
  reception, pull requests (with the optional ``f``-second delay that
  gives the tree a head start), and redundancy accounting.
"""

from repro.core.dissemination.buffer import BufferEntry, MessageBuffer
from repro.core.dissemination.disseminator import Disseminator
from repro.core.dissemination.gossip import GossipEngine

__all__ = ["BufferEntry", "Disseminator", "GossipEngine", "MessageBuffer"]
