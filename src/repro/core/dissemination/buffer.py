"""Per-node multicast message buffer.

An entry is created when the node receives (or injects) a message and
records everything the gossip protocol needs:

* ``heard_from`` — neighbors known to already have the message (they
  sent us the data or gossiped its ID), excluded from our summaries to
  them ("excludes the IDs of messages that X heard from Y");
* ``gossiped_to`` — neighbors we already advertised the ID to ("node X
  gossips the ID of a message to each of its neighbors only once");
* the delivery time and age, from which the current message age is
  derived for the ``f``-delay optimization.

Reclaim follows the paper: after the ID has been gossiped to the last
neighbor, the payload is retained for the waiting period ``b`` (two
minutes) to serve stragglers' pull requests, then dropped.  The ID stays
in the duplicate-suppression set forever (simulation runs are finite;
a production port would age this set out too).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set

from repro.core.ids import MessageId


@dataclasses.dataclass
class BufferEntry:
    """Book-keeping for one buffered multicast message."""

    msg_id: MessageId
    payload_size: int
    #: The application's opaque payload object (None for size-only runs).
    payload: object
    deliver_time: float
    age_at_deliver: float
    heard_from: Set[int] = dataclasses.field(default_factory=set)
    gossiped_to: Set[int] = dataclasses.field(default_factory=set)
    reclaim_handle: Optional[object] = None

    def age(self, now: float) -> float:
        """Estimated time since the message was injected at its source."""
        return self.age_at_deliver + (now - self.deliver_time)


class MessageBuffer:
    """Stores received messages until they are safely reclaimable."""

    def __init__(self) -> None:
        self._seen: Set[MessageId] = set()
        self._entries: Dict[MessageId, BufferEntry] = {}
        #: Entries whose reclaim timer is not armed yet — the only ones
        #: the per-tick coverage sweep needs to look at.
        self._unarmed: Dict[MessageId, BufferEntry] = {}
        self.reclaimed = 0

    def __len__(self) -> int:
        return len(self._entries)

    def has_seen(self, msg_id: MessageId) -> bool:
        """True if this node ever received the message (even if reclaimed)."""
        return msg_id in self._seen

    def entry(self, msg_id: MessageId) -> Optional[BufferEntry]:
        return self._entries.get(msg_id)

    def entries(self) -> List[BufferEntry]:
        return list(self._entries.values())

    def insert(
        self,
        msg_id: MessageId,
        payload_size: int,
        now: float,
        age: float,
        from_peer: Optional[int] = None,
        payload: object = None,
    ) -> BufferEntry:
        """Record a newly received (or locally injected) message."""
        if msg_id in self._seen:
            raise ValueError(f"message {msg_id} inserted twice")
        self._seen.add(msg_id)
        entry = BufferEntry(
            msg_id=msg_id,
            payload_size=payload_size,
            payload=payload,
            deliver_time=now,
            age_at_deliver=age,
        )
        if from_peer is not None:
            entry.heard_from.add(from_peer)
        self._entries[msg_id] = entry
        self._unarmed[msg_id] = entry
        return entry

    def unarmed_entries(self) -> List[BufferEntry]:
        """Entries whose reclaim timer has not been armed yet."""
        if not self._unarmed:
            # Fast path for the per-tick coverage sweep: most ticks on
            # most nodes have nothing pending.
            return []
        return list(self._unarmed.values())

    def mark_armed(self, msg_id: MessageId) -> None:
        """The reclaim timer for ``msg_id`` is now armed."""
        self._unarmed.pop(msg_id, None)

    def mark_heard_from(self, msg_id: MessageId, peer: int) -> None:
        entry = self._entries.get(msg_id)
        if entry is not None:
            entry.heard_from.add(peer)

    def ids_to_gossip(self, peer: int, now: float) -> List[BufferEntry]:
        """Entries whose ID should appear in the next gossip to ``peer``."""
        if not self._entries:
            # Fast path: idle keepalive ticks dominate, and an idle
            # buffer has nothing to summarize.
            return []
        return [
            entry
            for entry in self._entries.values()
            if peer not in entry.gossiped_to and peer not in entry.heard_from
        ]

    def mark_gossiped(self, msg_id: MessageId, peer: int) -> None:
        entry = self._entries.get(msg_id)
        if entry is not None:
            entry.gossiped_to.add(peer)

    def fully_gossiped(self, entry: BufferEntry, neighbor_ids) -> bool:
        """True once every current neighbor got or heard the ID."""
        covered = entry.gossiped_to | entry.heard_from
        return all(peer in covered for peer in neighbor_ids)

    def reclaim(self, msg_id: MessageId) -> bool:
        """Drop the payload; the ID remains known for dedup."""
        entry = self._entries.pop(msg_id, None)
        self._unarmed.pop(msg_id, None)
        if entry is None:
            return False
        self.reclaimed += 1
        return True
