"""Tree flooding + gossip-driven pulls: the heart of Section 2.1.

Delivery paths:

* **Tree push** — a node that receives a new message immediately
  forwards it on all its tree links except the one it arrived on.  A
  push for an already-received message is aborted (counted, not
  re-delivered) — the paper's optimization (1).
* **Gossip pull** — a gossip advertising an unknown ID creates a pending
  pull.  With ``request_delay_f > 0`` the request waits until the
  message is at least ``f`` seconds old, giving the tree its head start
  (optimization (2)); by default it is sent immediately.  Unanswered
  pulls retry against any other neighbor that advertised the ID.
  A message obtained by pull is treated exactly like a tree arrival:
  it is delivered and *immediately forwarded along the remaining tree
  links*, which is how messages race through tree fragments when the
  tree is broken (the reason "GoCast" beats "proximity overlay" in
  Figure 3b).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.dissemination.buffer import BufferEntry, MessageBuffer
from repro.core.ids import MessageId
from repro.core.messages import Gossip, MulticastData, PullData, PullEntry, PullRequest

#: Give up re-requesting a message after this many unanswered pulls; the
#: next gossip advertising the ID starts the process afresh.
MAX_PULL_ATTEMPTS = 5


class _PendingPull:
    __slots__ = ("sources", "age_estimate", "heard_at", "requested_from", "attempts", "handle")

    def __init__(self, age_estimate: float, heard_at: float):
        self.sources: Set[int] = set()
        self.age_estimate = age_estimate
        self.heard_at = heard_at
        self.requested_from: Optional[int] = None
        self.attempts = 0
        self.handle = None  # pending request or timeout event


class Disseminator:
    """One node's dissemination engine."""

    def __init__(self, node) -> None:
        self.node = node
        self.buffer = MessageBuffer()
        self._pending: Dict[MessageId, _PendingPull] = {}

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------
    def multicast(self, payload_size: int = 1024, payload: object = None) -> MessageId:
        """Start a multicast from this node ("any node can start one").

        ``payload`` is an opaque application object carried to every
        receiver (None keeps the simulation size-only).
        """
        node = self.node
        msg_id = node.allocate_message_id()
        node.tracer.injected(msg_id, node.sim.now, node.node_id)
        if node.obs.enabled:
            node.obs.metrics.inc("dissem.injected")
            node.obs.tracer.emit(
                node.sim.now, "dissem.inject", node=node.node_id, msg=str(msg_id)
            )
        node.record_dissemination_activity()
        self.buffer.insert(msg_id, payload_size, node.sim.now, age=0.0, payload=payload)
        self._forward_tree(msg_id, exclude=None)
        return msg_id

    # ------------------------------------------------------------------
    # Tree path
    # ------------------------------------------------------------------
    def on_multicast_data(self, src: int, msg: MulticastData) -> None:
        node = self.node
        if self.buffer.has_seen(msg.msg_id):
            # Optimization (1): abort the redundant transfer.
            self.buffer.mark_heard_from(msg.msg_id, src)
            node.tracer.redundant(msg.msg_id, node.node_id)
            node.tracer.aborted(msg.msg_id, node.node_id)
            if node.obs.enabled:
                node.obs.metrics.inc("dissem.push_aborted")
            return
        owl = self._one_way_to(src)
        self._deliver(
            msg.msg_id, msg.payload_size, msg.age + owl, src,
            via_pull=False, payload=msg.payload, owl=owl,
        )

    def _forward_tree(self, msg_id: MessageId, exclude: Optional[int]) -> None:
        node = self.node
        if not node.config.use_tree:
            return
        entry = self.buffer.entry(msg_id)
        if entry is None:
            return
        age = entry.age(node.sim.now)
        data = MulticastData(msg_id, age, entry.payload_size, entry.payload)
        pushed = 0
        for peer in node.tree.tree_neighbors():
            if peer == exclude:
                continue
            node.send(peer, data)
            entry.heard_from.add(peer)
            pushed += 1
        if pushed and node.obs.enabled:
            node.obs.metrics.inc("dissem.tree_push", amount=pushed)
            node.obs.tracer.emit(
                node.sim.now, "tree.push",
                node=node.node_id, msg=str(msg_id), fanout=pushed,
            )

    # ------------------------------------------------------------------
    # Gossip path
    # ------------------------------------------------------------------
    def on_gossip(self, src: int, gossip: Gossip) -> None:
        node = self.node
        owl = self._one_way_to(src)
        immediate: List[MessageId] = []
        new_ids = 0
        for msg_id, age in gossip.summaries:
            local_age = age + owl
            if self.buffer.has_seen(msg_id):
                self.buffer.mark_heard_from(msg_id, src)
                continue
            pending = self._pending.get(msg_id)
            if pending is not None:
                pending.sources.add(src)
                continue
            new_ids += 1
            pending = _PendingPull(age_estimate=local_age, heard_at=node.sim.now)
            pending.sources.add(src)
            self._pending[msg_id] = pending
            wait = node.config.request_delay_f - local_age
            if wait > 0:
                pending.handle = node.sim.schedule(wait, self._send_pull, msg_id)
            else:
                immediate.append(msg_id)
        if gossip.summaries and node.obs.enabled:
            # Gossip-round effectiveness: how many advertised IDs were
            # actually news to this receiver.
            node.obs.metrics.inc("gossip.summaries_heard", amount=len(gossip.summaries))
            if new_ids:
                node.obs.metrics.inc("gossip.summaries_new", amount=new_ids)
        if immediate:
            self._request(src, immediate)

    def _send_pull(self, msg_id: MessageId) -> None:
        """A deferred pull became due (f-delay elapsed or retry)."""
        pending = self._pending.get(msg_id)
        if pending is None:
            return
        pending.handle = None
        if self.buffer.has_seen(msg_id):
            self._pending.pop(msg_id, None)
            return
        source = self._choose_source(pending)
        if source is None:
            self._pending.pop(msg_id, None)
            return
        self._request(source, [msg_id])

    def _choose_source(self, pending: _PendingPull) -> Optional[int]:
        """Prefer a source we have not asked yet."""
        if not pending.sources:
            return None
        fresh = [s for s in pending.sources if s != pending.requested_from]
        pool = fresh if fresh else list(pending.sources)
        return self.node.rng.choice(sorted(pool))

    def _request(self, source: int, ids: List[MessageId]) -> None:
        node = self.node
        if node.obs.enabled:
            node.obs.metrics.inc("dissem.pull_request", amount=len(ids))
            node.obs.tracer.emit(
                node.sim.now, "gossip.pull",
                node=node.node_id, source=source, ids=len(ids),
            )
        node.send(source, PullRequest(ids=tuple(ids)))
        for msg_id in ids:
            pending = self._pending.get(msg_id)
            if pending is None:
                continue
            pending.requested_from = source
            pending.attempts += 1
            if node.obs.enabled:
                node.obs.tracer.emit(
                    node.sim.now, "pull.request",
                    node=node.node_id, source=source, msg=str(msg_id),
                    attempt=pending.attempts,
                )
            if pending.handle is not None:
                pending.handle.cancel()
            pending.handle = node.sim.schedule(
                node.config.pull_timeout, self._pull_timed_out, msg_id
            )

    def _pull_timed_out(self, msg_id: MessageId) -> None:
        node = self.node
        pending = self._pending.get(msg_id)
        if pending is None:
            return
        pending.handle = None
        if self.buffer.has_seen(msg_id):
            self._pending.pop(msg_id, None)
            return
        give_up = pending.attempts >= MAX_PULL_ATTEMPTS
        if node.obs.enabled:
            node.obs.metrics.inc(
                "dissem.pull_timeout", action="gave-up" if give_up else "retry"
            )
            node.obs.tracer.emit(
                node.sim.now, "pull.timeout",
                node=node.node_id, msg=str(msg_id), attempts=pending.attempts,
                action="gave-up" if give_up else "retry",
            )
        if give_up:
            # Give up for now; a future gossip re-advertises the ID.
            self._pending.pop(msg_id, None)
            return
        self._send_pull(msg_id)

    def on_pull_request(self, src: int, msg: PullRequest) -> None:
        node = self.node
        now = node.sim.now
        available: List[PullEntry] = []
        for msg_id in msg.ids:
            entry = self.buffer.entry(msg_id)
            if entry is not None:
                available.append(
                    (msg_id, entry.age(now), entry.payload_size, entry.payload)
                )
                # The requester evidently knows the ID already.
                entry.heard_from.add(src)
        if available:
            if node.obs.enabled:
                node.obs.tracer.emit(
                    node.sim.now, "pull.reply",
                    node=node.node_id, peer=src, served=len(available),
                )
            node.send(src, PullData(messages=tuple(available)))

    def on_pull_data(self, src: int, msg: PullData) -> None:
        node = self.node
        owl = self._one_way_to(src)
        for msg_id, age, size, payload in msg.messages:
            if self.buffer.has_seen(msg_id):
                node.tracer.redundant(msg_id, node.node_id)
                continue
            self._deliver(
                msg_id, size, age + owl, src, via_pull=True, payload=payload, owl=owl
            )

    # ------------------------------------------------------------------
    # Common delivery path
    # ------------------------------------------------------------------
    def _deliver(
        self,
        msg_id: MessageId,
        size: int,
        age: float,
        from_peer: int,
        via_pull: bool,
        payload: object = None,
        owl: float = 0.0,
    ) -> None:
        node = self.node
        pending = self._pending.pop(msg_id, None)
        if pending is not None and pending.handle is not None:
            pending.handle.cancel()
        self.buffer.insert(
            msg_id, size, node.sim.now, age=age, from_peer=from_peer, payload=payload
        )
        node.tracer.delivered(msg_id, node.node_id, node.sim.now)
        node.record_dissemination_activity()
        if via_pull:
            node.tracer.pulled(msg_id, node.node_id)
        if node.obs.enabled:
            node.obs.metrics.inc(
                "dissem.delivered", via="pull" if via_pull else "tree"
            )
            # Pull-repair wait: first advertisement to delivery.
            waited = 0.0
            if via_pull and pending is not None:
                waited = node.sim.now - pending.heard_at
                node.obs.metrics.observe("dissem.pull_latency", waited)
            node.obs.tracer.emit(
                node.sim.now, "dissem.deliver",
                node=node.node_id, msg=str(msg_id), src=from_peer,
                via="pull" if via_pull else "tree", owl=owl, waited=waited,
            )
        node.on_deliver(msg_id, size)
        # Pulled messages restart the tree flood inside our fragment.
        self._forward_tree(msg_id, exclude=from_peer)

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------
    @property
    def pending_pulls(self) -> int:
        """Messages currently known only by ID (awaiting a pull)."""
        return len(self._pending)

    def maybe_schedule_reclaim(self, entry: BufferEntry) -> None:
        """Arm the reclaim timer once the ID reached every neighbor."""
        node = self.node
        if entry.reclaim_handle is not None:
            return
        # Iterate the live neighbor dict directly (no list copy).
        if not self.buffer.fully_gossiped(entry, node._neighbor_states):
            return
        entry.reclaim_handle = node.sim.schedule(
            node.config.reclaim_wait_b, self.buffer.reclaim, entry.msg_id
        )
        self.buffer.mark_armed(entry.msg_id)

    def sweep_reclaims(self) -> None:
        """Arm reclaim timers for entries that became fully covered via
        pushes/pulls rather than our own gossips (called per gossip tick;
        only entries without an armed timer are examined)."""
        if not self.buffer._unarmed:
            # Same-package fast path: most ticks on most nodes have
            # nothing pending, and this runs every gossip period.
            return
        for entry in self.buffer.unarmed_entries():
            self.maybe_schedule_reclaim(entry)

    def on_peer_failed(self, peer: int) -> None:
        """Retry any pull that was waiting on a crashed neighbor."""
        for msg_id in list(self._pending):
            pending = self._pending.get(msg_id)
            if pending is None:
                continue
            pending.sources.discard(peer)
            if pending.requested_from == peer:
                pending.requested_from = None
                if pending.handle is not None:
                    pending.handle.cancel()
                    pending.handle = None
                if pending.sources:
                    self._send_pull(msg_id)
                else:
                    self._pending.pop(msg_id, None)

    def _one_way_to(self, peer: int) -> float:
        state = self.node.overlay.table.get(peer)
        if state is not None:
            return state.one_way
        return self.node.measure_rtt(peer) / 2.0
