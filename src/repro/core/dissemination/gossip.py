"""Round-robin neighbor gossip (the background channel of Section 2.1).

Every gossip period ``t`` the node picks its next overlay neighbor in
round-robin order and sends one summary: the IDs (with age estimates) of
messages that neighbor has neither heard from us nor advertised to us.
With ``s`` neighbors a given pair therefore exchanges a gossip every
``s * t`` seconds (~0.6 s at the default degree 6).

An empty gossip "can be saved"; we suppress it unless nothing at all has
been sent to that neighbor for ``keepalive_interval`` seconds, in which
case the empty gossip doubles as a failure-detection keepalive (a send
to a crashed neighbor fails and evicts it from the overlay).

Every gossip piggybacks a few random member addresses (the partial
membership service of [5]) and the sender's degree / root-distance
state.
"""

from __future__ import annotations

from repro.core.messages import Gossip


class GossipEngine:
    """Owns the round-robin cursor and builds outgoing gossips."""

    def __init__(self, node) -> None:
        self.node = node
        # The node's config is bound once and never replaced; skip the
        # node.config attribute chain in the per-tick paths below.
        self._cfg = node.config
        self._cursor = 0
        self.gossips_sent = 0
        self.gossips_saved = 0

    def on_tick(self) -> None:
        """One gossip period elapsed: gossip to the next neighbor."""
        node = self.node
        node.disseminator.sweep_reclaims()
        if self._cfg.adaptive_gossip:
            self._tune_period()
        # _next_neighbor, inlined: this is every gossip tick on every
        # node.  sorted_ids() is cached by the table and invalidated on
        # membership change.
        neighbors = node.overlay.table.sorted_ids()
        if not neighbors:
            return
        cursor = self._cursor % len(neighbors)
        peer = neighbors[cursor]
        self._cursor = cursor + 1
        self._gossip_to(peer)

    def _tune_period(self) -> None:
        """Stretch the gossip period while no multicast traffic flows.

        "The gossip period t is dynamically tunable according to the
        message rate" (Section 2.1).  Idle systems converge toward
        ``gossip_period_max`` (keepalives still flow at that pace); the
        first delivery snaps back to the base period (see
        :meth:`GoCastNode.record_dissemination_activity`).

        Writes the timer period directly (``set_period`` minus its
        positivity check — both candidate values are validated config
        fields): this runs every gossip tick on every node.
        """
        node = self.node
        cfg = self._cfg
        idle = node.sim.now - node.last_dissemination
        if idle <= 1.0:
            node._gossip_timer._period = cfg.gossip_period
            return
        period = cfg.gossip_period * idle
        period_max = cfg.gossip_period_max
        node._gossip_timer._period = period_max if period > period_max else period

    def _gossip_to(self, peer: int) -> None:
        node = self.node
        now = node.sim.now
        buffer = node.disseminator.buffer
        entries = buffer.ids_to_gossip(peer, now)

        state = node._neighbor_states.get(peer)
        if not entries:
            # Nothing to advertise: save the gossip unless the link has
            # been silent long enough to need a keepalive.
            if (
                state is not None
                and now - state.last_sent < self._cfg.keepalive_interval
            ):
                self.gossips_saved += 1
                if node.obs.enabled:
                    node.obs.metrics.inc("gossip.saved")
                return

        if entries:
            summaries = tuple((entry.msg_id, entry.age(now)) for entry in entries)
        else:
            summaries = ()
        sample = node.view.sample_excluding(self._cfg.piggyback_members, peer)
        gossip = Gossip(
            summaries=summaries,
            member_sample=tuple(sample),
            degrees=node.make_degree_update(),
        )
        node.send(peer, gossip)
        self.gossips_sent += 1
        if node.obs.enabled:
            node.obs.metrics.inc("gossip.sent")
            if summaries:
                node.obs.metrics.inc("gossip.summaries_sent", amount=len(summaries))
            node.obs.tracer.emit(
                now, "gossip.summary",
                node=node.node_id, peer=peer, summaries=len(summaries),
            )
        for entry in entries:
            buffer.mark_gossiped(entry.msg_id, peer)
            node.disseminator.maybe_schedule_reclaim(entry)
