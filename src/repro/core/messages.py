"""Wire messages exchanged by GoCast nodes.

Messages between overlay neighbors travel over the pre-established
reliable channels (TCP in the paper); join traffic and RTT probes
between non-neighbors use unreliable datagrams (UDP).  Each message
reports an approximate ``wire_size`` in bytes so experiments can account
for traffic volume without serializing anything.
"""

from __future__ import annotations

import dataclasses
from typing import ClassVar, Optional, Tuple

from repro.core.ids import MessageId

#: Link kinds.  A link's kind is agreed at establishment and symmetric.
RANDOM = "random"
NEARBY = "nearby"
LINK_KINDS = (RANDOM, NEARBY)

_HEADER = 20


@dataclasses.dataclass(frozen=True)
class JoinRequest:
    """New node asks a bootstrap contact for its member list."""

    FIXED_WIRE_SIZE: ClassVar[int] = _HEADER

    def wire_size(self) -> int:
        return self.FIXED_WIRE_SIZE


@dataclasses.dataclass(frozen=True)
class JoinReply:
    """Bootstrap contact's member list, adopted by the joiner."""

    members: Tuple[int, ...]

    def wire_size(self) -> int:
        return _HEADER + 6 * len(self.members)


@dataclasses.dataclass(frozen=True)
class LinkRequest:
    """Ask the receiver to become an overlay neighbor of the sender.

    The receiver evaluates its local acceptance conditions (degree slack
    for both kinds; C2/C3 for nearby links) and replies with
    :class:`LinkAccept` or :class:`LinkReject`.
    """

    kind: str
    #: Sender's current degrees, for the receiver's bookkeeping.
    nearby_degree: int = 0
    random_degree: int = 0

    FIXED_WIRE_SIZE: ClassVar[int] = _HEADER + 4

    def wire_size(self) -> int:
        return self.FIXED_WIRE_SIZE


@dataclasses.dataclass(frozen=True)
class LinkAccept:
    kind: str
    nearby_degree: int
    random_degree: int

    FIXED_WIRE_SIZE: ClassVar[int] = _HEADER + 4

    def wire_size(self) -> int:
        return self.FIXED_WIRE_SIZE


@dataclasses.dataclass(frozen=True)
class LinkReject:
    kind: str
    reason: str

    FIXED_WIRE_SIZE: ClassVar[int] = _HEADER + 4

    def wire_size(self) -> int:
        return self.FIXED_WIRE_SIZE


@dataclasses.dataclass(frozen=True)
class LinkDrop:
    """Notify a neighbor that the link is being closed."""

    kind: str

    FIXED_WIRE_SIZE: ClassVar[int] = _HEADER

    def wire_size(self) -> int:
        return self.FIXED_WIRE_SIZE


@dataclasses.dataclass(frozen=True)
class RewireRequest:
    """Random-degree reduction, operation 1 of Section 2.2.2.

    X (with random degree >= C_rand + 2) asks its random neighbor Y to
    establish a random link to X's other random neighbor ``target``,
    then drops its own links to both.
    """

    target: int

    FIXED_WIRE_SIZE: ClassVar[int] = _HEADER + 6

    def wire_size(self) -> int:
        return self.FIXED_WIRE_SIZE


@dataclasses.dataclass(frozen=True)
class Ping:
    """UDP RTT probe used by nearby-neighbor maintenance."""

    nonce: int
    sent_at: float

    FIXED_WIRE_SIZE: ClassVar[int] = _HEADER + 12

    def wire_size(self) -> int:
        return self.FIXED_WIRE_SIZE


@dataclasses.dataclass(frozen=True)
class Pong:
    nonce: int
    sent_at: float

    FIXED_WIRE_SIZE: ClassVar[int] = _HEADER + 12

    def wire_size(self) -> int:
        return self.FIXED_WIRE_SIZE


@dataclasses.dataclass(frozen=True)
class DegreeUpdate:
    """Piggybacked state a node shares with its overlay neighbors.

    Carries the degrees needed by conditions C1/C2, the sender's current
    distance to the tree root (used for fast local tree repair when a
    parent link disappears), and the sender's tree parent — the ground
    truth against which neighbors reconcile their ``children`` sets
    (crossing attach/detach messages can leave stale child entries).
    """

    nearby_degree: int
    random_degree: int
    dist_to_root: float
    root_epoch: int
    tree_parent: Optional[int] = None

    FIXED_WIRE_SIZE: ClassVar[int] = _HEADER + 18

    def wire_size(self) -> int:
        return self.FIXED_WIRE_SIZE


@dataclasses.dataclass(frozen=True)
class Gossip:
    """Round-robin message summary sent to one overlay neighbor.

    ``summaries`` pairs each advertised :class:`MessageId` with the
    message's age (seconds since injection, estimated by accumulating
    per-hop delays), which the receiver uses for the ``f``-delay pull
    optimization.  A few random member addresses and the sender's degree
    state piggyback on every gossip.
    """

    summaries: Tuple[Tuple[MessageId, float], ...]
    member_sample: Tuple[int, ...]
    degrees: DegreeUpdate

    def wire_size(self) -> int:
        return _HEADER + 12 * len(self.summaries) + 6 * len(self.member_sample) + 12


@dataclasses.dataclass(frozen=True)
class PullRequest:
    """Request full messages discovered through a gossip."""

    ids: Tuple[MessageId, ...]

    def wire_size(self) -> int:
        return _HEADER + 8 * len(self.ids)


#: One served message in a :class:`PullData`:
#: ``(id, age_at_send, payload_size, payload)``.  Shared with the
#: serving side (``Disseminator.on_pull_request``) so the reply's shape
#: is stated in exactly one place.
PullEntry = Tuple[MessageId, float, int, object]


@dataclasses.dataclass(frozen=True)
class PullData:
    """Full messages served in response to a :class:`PullRequest`.

    Each element is a :data:`PullEntry` — ``payload`` is the
    application's opaque object (None when the simulation models sizes
    only).
    """

    messages: Tuple[PullEntry, ...]

    def wire_size(self) -> int:
        return _HEADER + sum(12 + size for _, _, size, _ in self.messages)


@dataclasses.dataclass(frozen=True)
class MulticastData:
    """A multicast message travelling along a tree link.

    ``age`` is the elapsed time since injection as estimated at send
    time; the receiver adds the link's one-way latency.  ``payload`` is
    the application's opaque object (None for size-only simulations).
    """

    msg_id: MessageId
    age: float
    payload_size: int
    payload: object = None

    def wire_size(self) -> int:
        return _HEADER + 12 + self.payload_size


@dataclasses.dataclass(frozen=True)
class TreeHeartbeat:
    """Root-flooded heartbeat, also the distance-vector update wave.

    Flooded on *every* overlay link (Section 2.3) so it detects overlay
    partitions; ``dist`` accumulates link latencies from the root and
    drives shortest-path parent selection.
    """

    epoch: int
    root: int
    seq: int
    dist: float

    FIXED_WIRE_SIZE: ClassVar[int] = _HEADER + 16

    def wire_size(self) -> int:
        return self.FIXED_WIRE_SIZE


@dataclasses.dataclass(frozen=True)
class TreeAttach:
    """Sender adopts the receiver as its tree parent."""

    FIXED_WIRE_SIZE: ClassVar[int] = _HEADER

    def wire_size(self) -> int:
        return self.FIXED_WIRE_SIZE


@dataclasses.dataclass(frozen=True)
class TreeDetach:
    """Sender is no longer the receiver's tree child (or vice versa)."""

    FIXED_WIRE_SIZE: ClassVar[int] = _HEADER

    def wire_size(self) -> int:
        return self.FIXED_WIRE_SIZE
