"""Tree construction and maintenance (Section 2.3).

The single shared dissemination tree is embedded in the overlay: every
tree link is an overlay link, and tree links lie on the (latency)
shortest paths between the conceptual root and all other nodes.  The
algorithm is DVMRP-in-spirit: the root's periodic heartbeat, flooded on
*every* overlay link, doubles as a distance-vector wave from which each
node picks its lowest-latency parent.  Epoch-numbered root claims give
crash failover ("if the root fails, one of its neighbors will take over
its role").
"""

from repro.core.tree.manager import TreeManager

__all__ = ["TreeManager"]
