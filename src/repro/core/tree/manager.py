"""The shared-tree state machine.

Parent selection.  Each heartbeat flood is one distance-vector wave:
a node's distance for wave ``seq`` is the minimum over neighbors of
(neighbor's advertised distance + link one-way latency), and the node
re-floods whenever its distance improves, so the wave converges to
shortest paths within one flood.  The first copy of a wave typically
arrives over the lowest-latency path, so convergence is fast and
re-floods are rare once the overlay stabilizes.  A node keeps its
parent only while the parent lies on (within ``tree_switch_threshold``
of) its best path — a strict invariant; see
:meth:`TreeManager._consider_parent_switch` for why any real slack
would let co-located clusters sustain parent cycles.

Failover.  Roots are ordered by ``(epoch, -node_id)``: a higher epoch
always wins, ties go to the smaller node id.  A node that misses
heartbeats for ``heartbeat_timeout`` claims the root role with
``epoch + 1`` — immediately if it was an overlay neighbor of the dead
root (the paper's rule), after twice the timeout otherwise (so a
partition that contains no ex-neighbor still elects a root).  Competing
claims resolve through the precedence rule as heartbeats flood.

Repair.  When a parent link disappears, the node immediately re-attaches
to the overlay neighbor advertising the best root distance (neighbors
piggyback their distance on gossips and degree updates), falling back to
the next heartbeat wave when nothing is known.
"""

from __future__ import annotations

import math
from typing import List, Optional, Set

from repro.core.messages import TreeAttach, TreeDetach, TreeHeartbeat
from repro.sim.timers import PeriodicTimer


def root_precedes(epoch_a: int, root_a: int, epoch_b: int, root_b: int) -> bool:
    """True if claim A takes precedence over claim B."""
    if epoch_a != epoch_b:
        return epoch_a > epoch_b
    return root_a < root_b


class TreeManager:
    """One node's view of the shared dissemination tree."""

    def __init__(self, node) -> None:
        self.node = node
        self.epoch = -1
        self.root: Optional[int] = None
        self.parent: Optional[int] = None
        self.children: Set[int] = set()
        self.dist = math.inf
        self.last_heartbeat = 0.0
        self._wave_seq = -1
        self._wave_best_src: Optional[int] = None
        #: Distance via the current parent as confirmed *in the current
        #: wave* (None until the parent's copy of the wave arrives).
        self._wave_parent_cand: Optional[float] = None
        self._hb_seq = 0
        self._hb_timer: Optional[PeriodicTimer] = None
        #: True when our overlay link to the current root vanished —
        #: preserves "I was the root's neighbor" for the failover fast
        #: path even after failure detection removed the link.
        self._lost_root_link = False
        #: Counts parent switches, for adaptation experiments.
        self.parent_switches = 0

    # ------------------------------------------------------------------
    # Role management
    # ------------------------------------------------------------------
    @property
    def is_root(self) -> bool:
        return self.root == self.node.node_id

    def become_root(self, epoch: Optional[int] = None) -> None:
        """Assume the root role (initial designation or failover claim)."""
        node = self.node
        self.epoch = self.epoch + 1 if epoch is None else epoch
        self.root = node.node_id
        if node.obs.enabled:
            node.obs.metrics.inc("tree.root_claim")
            node.obs.tracer.emit(
                node.sim.now, "tree.root_claim", node=node.node_id, epoch=self.epoch
            )
        self.dist = 0.0
        self._lost_root_link = False
        self._wave_parent_cand = None
        if self.parent is not None:
            self._send_detach(self.parent)
            self.parent = None
        self.last_heartbeat = node.sim.now
        if self._hb_timer is None:
            self._hb_timer = PeriodicTimer(
                node.sim, node.config.heartbeat_period, self._emit_heartbeat,
                obs=node.obs, name="heartbeat",
            )
        self._hb_timer.start(phase=0.0)

    def _resign_root(self) -> None:
        if self._hb_timer is not None:
            self._hb_timer.stop()

    def stop(self) -> None:
        self._resign_root()

    def _emit_heartbeat(self) -> None:
        if not self.is_root:
            self._resign_root()
            return
        self._hb_seq += 1
        self.last_heartbeat = self.node.sim.now
        if self.node.obs.enabled:
            self.node.obs.metrics.inc("tree.heartbeat_wave")
        beat = TreeHeartbeat(self.epoch, self.root, self._hb_seq, 0.0)
        self._flood(beat, exclude=None)

    def _flood(self, beat: TreeHeartbeat, exclude: Optional[int]) -> None:
        for peer in self.node.overlay.table.ids():
            if peer != exclude:
                self.node.send(peer, beat)

    # ------------------------------------------------------------------
    # Heartbeat processing (distance-vector wave)
    # ------------------------------------------------------------------
    def on_heartbeat(self, src: int, msg: TreeHeartbeat) -> None:
        if self.node.frozen:
            return
        state = self.node.overlay.table.get(src)
        if state is None:
            # Race with a link teardown; distances over a vanished link
            # are meaningless.
            return

        if self.root is not None and root_precedes(
            self.epoch, self.root, msg.epoch, msg.root
        ):
            # The sender follows a stale root; teach it ours directly.
            self.node.send(
                src, TreeHeartbeat(self.epoch, self.root, self._wave_seq, self.dist)
            )
            return

        if self.root is None or root_precedes(msg.epoch, msg.root, self.epoch, self.root):
            self._adopt_root(msg.epoch, msg.root)

        self.last_heartbeat = self.node.sim.now
        # The wave doubles as fresh distance info about the sender,
        # which local repair uses when a parent link later vanishes.
        state.dist_to_root = msg.dist
        state.root_epoch = msg.epoch

        if self.is_root:
            # An echo of our own wave: the root's distance is 0 by
            # definition and it never takes a parent.
            return
        if msg.seq > self._wave_seq:
            # Close out the previous wave first: a parent that never
            # confirmed during a whole wave is unreachable from the root
            # (every live node floods at least once per wave) — abandon
            # it for the best source that wave produced.
            if (
                self._wave_seq >= 0
                and self.parent is not None
                and self._wave_parent_cand is None
                and self._wave_best_src is not None
                and self._wave_best_src != self.parent
            ):
                self._switch_to(self._wave_best_src)
            self._wave_seq = msg.seq
            self.dist = math.inf
            self._wave_best_src = None
            self._wave_parent_cand = None
        elif msg.seq < self._wave_seq:
            return

        cand = msg.dist + state.one_way
        if src == self.parent:
            self._wave_parent_cand = cand
        if cand < self.dist:
            self.dist = cand
            self._wave_best_src = src
            self._flood(
                TreeHeartbeat(msg.epoch, msg.root, msg.seq, self.dist), exclude=src
            )
        self._consider_parent_switch()

    def _adopt_root(self, epoch: int, root: int) -> None:
        was_root = self.is_root
        self.epoch = epoch
        self.root = root
        self._lost_root_link = False
        self._wave_seq = -1
        self.dist = math.inf
        self._wave_parent_cand = None
        self._wave_best_src = None
        if was_root:
            self._resign_root()

    def _consider_parent_switch(self) -> None:
        """Keep the parent only while it matches the best path.

        The invariant that makes the parent graph a tree is: a node's
        parent-candidate distance may exceed the node's best distance by
        at most the (small) configured tolerance.  Any slack beyond a
        tolerance of ~0 lets a tight low-latency cluster far from the
        root sustain a parent *cycle* fed by outside wave arrivals —
        the cycle condition is sum(intra-cluster latencies) <=
        tolerance * sum(distances), easily met by co-located nodes — so
        the default tolerance is exactly 0 and ties favour the current
        parent.
        """
        best = self._wave_best_src
        if best is None or best == self.parent:
            return
        if self.parent is None:
            self._switch_to(best)
            return
        if self._wave_parent_cand is None:
            # The parent's copy of this wave has not arrived yet; judge
            # it when it does (or at wave close-out if it never does).
            return
        tolerance = self.node.config.tree_switch_threshold
        if self._wave_parent_cand > self.dist * (1.0 + tolerance) + 1e-12:
            self._switch_to(best)

    def _switch_to(self, best: int) -> None:
        if best in self.children:
            # Switching toward a current child is legal — it is how
            # parent cycles break: our TreeAttach makes the child yield
            # its own parent pointer (see on_attach) — but the child
            # must first stop being our child.
            self.children.discard(best)
            state = self.node.overlay.table.get(best)
            if state is not None:
                state.is_tree_child = False
        self._set_parent(best)
        self._wave_parent_cand = self.dist

    def _set_parent(self, new_parent: Optional[int]) -> None:
        if new_parent == self.parent:
            return
        old = self.parent
        self.parent = new_parent
        if old is not None:
            self._send_detach(old)
        if new_parent is not None:
            self.parent_switches += 1
            if self.node.obs.enabled:
                self.node.obs.metrics.inc("tree.parent_switch")
                self.node.obs.tracer.emit(
                    self.node.sim.now, "tree.parent_switch",
                    node=self.node.node_id, old=old, new=new_parent,
                )
            self.node.send(new_parent, TreeAttach())

    def _send_detach(self, peer: int) -> None:
        if peer in self.node.overlay.table:
            self.node.send(peer, TreeDetach())

    def _record_orphaned(self, cause: str) -> None:
        """Instrumentation only: the node just lost its parent pointer."""
        node = self.node
        if node.obs.enabled:
            node.obs.metrics.inc("tree.orphaned", cause=cause)
            node.obs.tracer.emit(
                node.sim.now, "tree.orphaned", node=node.node_id, cause=cause
            )

    # ------------------------------------------------------------------
    # Attach / detach bookkeeping
    # ------------------------------------------------------------------
    def on_attach(self, src: int) -> None:
        state = self.node.overlay.table.get(src)
        if state is None:
            # Not (or no longer) an overlay neighbor: refuse the child.
            self.node.send(src, TreeDetach())
            return
        if src == self.parent:
            # Our parent adopted us as *its* parent: yield ours to break
            # the two-cycle, then re-attach elsewhere.
            self.parent = None
            self._wave_parent_cand = None
            self._record_orphaned("parent-yield")
        self.children.add(src)
        state.is_tree_child = True
        if self.parent is None and not self.is_root:
            self._repair_parent()

    def on_detach(self, src: int) -> None:
        self.children.discard(src)
        state = self.node.overlay.table.get(src)
        if state is not None:
            state.is_tree_child = False
        if src == self.parent:
            # A parent refusing us (attach raced with a link drop).
            self.parent = None
            self._record_orphaned("parent-refused")
            self._repair_parent()

    # ------------------------------------------------------------------
    # Overlay change hooks
    # ------------------------------------------------------------------
    def on_neighbor_removed(self, peer: int) -> None:
        self.children.discard(peer)
        if peer == self.root:
            self._lost_root_link = True
        if peer == self.parent:
            self.parent = None
            self._wave_parent_cand = None
            self._record_orphaned("link-lost")
            self._repair_parent()

    def on_neighbor_info(self, peer: int) -> None:
        """A neighbor reported fresh root-distance info (piggyback)."""
        if self.parent is None and not self.is_root and self.root is not None:
            self._repair_parent()

    def reconcile_child(self, peer: int, peer_parent: Optional[int]) -> None:
        """Align our ``children`` set with the peer's parent pointer.

        Crossing attach/detach messages (e.g. two nodes adopting each
        other in the same wave, both yielding) can leave a stale child
        entry on either side; the parent pointer the peer piggybacks on
        its degree updates is the ground truth.
        """
        # The neighbor state is only looked up on the (rare) mutating
        # branches; the common case — peer parented elsewhere and not a
        # recorded child — costs two comparisons.
        if peer_parent == self.node.node_id:
            if peer not in self.children and peer != self.parent:
                self.children.add(peer)
                state = self.node.overlay.table.get(peer)
                if state is not None:
                    state.is_tree_child = True
        elif peer in self.children:
            self.children.discard(peer)
            state = self.node.overlay.table.get(peer)
            if state is not None:
                state.is_tree_child = False

    def _repair_parent(self) -> None:
        """Re-attach via the neighbor advertising the best root distance."""
        if self.is_root or self.node.frozen:
            return
        table = self.node.overlay.table
        best_peer = None
        best_dist = math.inf
        for peer, state in table.items():
            if state.root_epoch != self.epoch or state.is_tree_child:
                continue
            cand = state.dist_to_root + state.one_way
            if cand < best_dist:
                best_dist = cand
                best_peer = peer
        if best_peer is not None:
            self.dist = best_dist
            self._wave_parent_cand = best_dist
            if self.node.obs.enabled:
                self.node.obs.metrics.inc("tree.reattach")
                self.node.obs.tracer.emit(
                    self.node.sim.now, "tree.reattach",
                    node=self.node.node_id, parent=best_peer, dist=best_dist,
                )
            self._set_parent(best_peer)
        # Otherwise stay detached; the next heartbeat wave re-attaches us.

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    def check_root_liveness(self) -> None:
        """Called from the maintenance tick; claims the root role on timeout."""
        node = self.node
        if self.is_root:
            return
        silent_for = node.sim.now - self.last_heartbeat
        timeout = node.config.heartbeat_timeout
        if silent_for <= timeout:
            return
        was_root_neighbor = self._lost_root_link or (
            self.root is not None and self.root in node.overlay.table
        )
        if was_root_neighbor or silent_for > 2.0 * timeout:
            self.become_root()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def tree_neighbors(self) -> List[int]:
        """Current tree links (parent + children), restricted to live links."""
        table = self.node.overlay.table
        out = [c for c in self.children if c in table]
        if self.parent is not None and self.parent in table and self.parent not in self.children:
            out.append(self.parent)
        return out
