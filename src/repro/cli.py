"""Command-line interface to the experiment harness.

Usage::

    python -m repro list
    python -m repro run fig3a
    python -m repro run fig6 --scale smoke --seed 3
    python -m repro run all --scale default
    python -m repro batch --trials 16 --workers 4 --fail 0.2 --json
    python -m repro obs summary --fail 0.1
    python -m repro obs trace --category gossip.pull --out pulls.jsonl
    python -m repro obs profile --nodes 128
    python -m repro obs paths --nodes 24 --fail 0.25 --message 3:0
    python -m repro obs health --fail 0.25 --no-freeze
    python -m repro obs anomalies --fail 0.25 --retry-threshold 2
    python -m repro chaos list
    python -m repro chaos run steady-churn --n 128 --seed 1
    python -m repro obs trace --scenario flapping-partition --category invariant.violation
    python -m repro obs ledger --limit 10
    python -m repro obs ledger --import-bench BENCH_core.json
    python -m repro obs compare latest~1 latest
    python -m repro obs regress --against HEAD~0
    python -m repro obs export --scenario flapping-partition --out trace.json

Each experiment prints the same table the corresponding paper artifact
reports (see EXPERIMENTS.md).  ``--scale`` overrides the ``REPRO_SCALE``
environment variable for the invocation.  The ``obs`` subcommands run a
single instrumented delay experiment (see docs/OBSERVABILITY.md) and
report its metrics, trace events, callback profile, reconstructed
delivery paths, health trajectory, or detected anomalies.  ``chaos``
runs a named churn/partition/loss scenario under runtime invariant
checking and prints the violation report (see docs/CHAOS.md); the
``--scenario`` option injects the same scenarios into any ``obs`` or
``batch`` run.

``obs ledger``, ``obs compare`` and ``obs regress`` operate on the
append-only run ledger every bench/batch/chaos/figure run records
(``.repro/ledger/``; see docs/OBSERVABILITY.md): listing/importing
records, diffing two runs under per-metric tolerance rules, and gating
the latest run against a reference — exiting nonzero on regression.
``obs export`` writes a Chrome-trace/Perfetto JSON view of a run.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict

from repro.experiments import (
    ablations,
    adaptation,
    churn,
    diameter,
    extensions,
    failover,
    fanout,
    fig1,
    fig3,
    fig4,
    fig5,
    fig6,
    linkstress,
    loss,
    message_rate,
    random_links,
    text_metrics,
)
from repro.experiments.scenarios import PROTOCOLS


def _fig3a(seed: int):
    return fig3.run(fail_fraction=0.0, seed=seed)


def _fig3b(seed: int):
    return fig3.run(fail_fraction=0.2, drain_time=45.0, seed=seed)


#: Experiment id -> (description, runner).  Runners take a seed and
#: return an object with ``format_table()``.
EXPERIMENTS: Dict[str, tuple] = {
    "fig1": ("analytic push-gossip reliability", lambda seed: fig1.run()),
    "fig3a": ("delay CDFs, five protocols, no failures", _fig3a),
    "fig3b": ("delay CDFs under 20% failures", _fig3b),
    "fig4": ("GoCast scalability (two sizes x two fail levels)",
             lambda seed: fig4.run(seed=seed)),
    "fig5": ("overlay/tree adaptation over time", lambda seed: fig5.run(seed=seed)),
    "fig6": ("resilience vs failed fraction vs C_rand",
             lambda seed: fig6.run(seed=seed)),
    "tdeg": ("in-text converged degree split",
             lambda seed: text_metrics.run_degree_split(seed=seed)),
    "tred": ("in-text delivery redundancy vs f",
             lambda seed: text_metrics.run_redundancy(seed=seed)),
    "r1": ("link churn over time", lambda seed: adaptation.run(seed=seed)),
    "r2": ("link latency vs number of random links",
           lambda seed: random_links.run(seed=seed)),
    "r3": ("overlay diameter vs size", lambda seed: diameter.run(seed=seed)),
    "r4": ("long-haul link stress vs push gossip",
           lambda seed: linkstress.run(seed=seed)),
    "r5": ("push-gossip delay vs fanout", lambda seed: fanout.run(seed=seed)),
    "ablation-c4": ("C4 improvement-factor ablation",
                    lambda seed: ablations.run_c4_factor(seed=seed)),
    "ablation-drop": ("drop-threshold ablation",
                      lambda seed: ablations.run_drop_threshold(seed=seed)),
    "ablation-c1": ("C1 bound ablation",
                    lambda seed: ablations.run_c1_bound(seed=seed)),
    "pushpull": ("footnote 1: push vs push-pull gossip",
                 lambda seed: extensions.run_pushpull(seed=seed)),
    "overhead": ("per-node control overhead vs size",
                 lambda seed: extensions.run_overhead(seed=seed)),
    "churn": ("sustained join/leave churn self-healing",
              lambda seed: churn.run(seed=seed)),
    "failover": ("root-crash failover timing",
                 lambda seed: failover.run(seeds=(seed, seed + 1))),
    "loss": ("datagram-loss robustness",
             lambda seed: loss.run(seed=seed)),
    "rate": ("message-rate sensitivity (delay flat, gossip amortizes)",
             lambda seed: message_rate.run(seed=seed)),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GoCast (DSN 2005) reproduction — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id from 'list', or 'all'")
    run.add_argument(
        "--scale",
        choices=("smoke", "default", "full", "paper"),
        help="override REPRO_SCALE for this invocation",
    )
    run.add_argument("--seed", type=int, default=1, help="simulation seed")

    batch = sub.add_parser(
        "batch",
        help="run a multi-trial parallel batch of one scenario",
        description="Fan N independent trials of one scenario across worker "
        "processes, with per-trial seeds derived from the root seed; prints "
        "pooled statistics with across-trial stddev/CI (see docs/EXPERIMENTS.md).",
    )
    batch.add_argument(
        "--trials", type=int, default=8, help="number of independent trials (default 8)"
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; 1 runs in-process (default 1)",
    )
    batch.add_argument(
        "--metrics",
        action="store_true",
        help="collect observability metrics in every trial and merge them",
    )
    batch.add_argument(
        "--series-period", type=float, default=0.0,
        help="capacity-sampler period in sim seconds for --metrics trials; "
        "0 disables (default 0)",
    )
    batch.add_argument(
        "--json",
        action="store_true",
        help="print the batch as JSON instead of a table",
    )
    batch.add_argument("--out", help="also write the JSON batch report to this file")

    bench = sub.add_parser(
        "bench",
        help="benchmark the simulation core (events/sec); see docs/PERFORMANCE.md",
        description="Run the fixed-seed GoCast delay scenario at the bench "
        "sizes and report wall time, peak RSS and events/sec, merging the "
        "numbers into BENCH_core.json next to the recorded baseline.",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="single tiny run (CI fast lane); does not write the report",
    )
    bench.add_argument(
        "--sizes", help="comma-separated node counts (default 128,512)"
    )
    bench.add_argument(
        "--repeats", type=int, default=3,
        help="runs per size, best kept (default 3)",
    )
    bench.add_argument(
        "--label", default="current",
        help="report section to write (default 'current')",
    )
    bench.add_argument(
        "--out", default="BENCH_core.json",
        help="report path (default BENCH_core.json)",
    )
    bench.add_argument(
        "--mem", action="store_true",
        help="also census memory per size and record bytes_per_node "
        "(default sizes 128,512,1024)",
    )
    bench.add_argument(
        "--paper", action="store_true",
        help="paper-scale size matrix 1024,1740,4096; run under "
        "REPRO_SIM_OPTS=all,lazylat with a dedicated --label "
        "(e.g. paper-lazylat) so 'current' keeps its configuration",
    )

    obs = sub.add_parser(
        "obs", help="run one instrumented experiment; report its observability"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    summary = obs_sub.add_parser(
        "summary", help="protocol counters, derived ratios, histograms"
    )
    trace = obs_sub.add_parser(
        "trace", help="structured event trace (print or JSONL export)"
    )
    trace.add_argument("--category", help="only events of this category")
    trace.add_argument("--out", help="write JSONL here instead of printing")
    trace.add_argument(
        "--limit", type=int, default=40, help="max events to print (default 40)"
    )
    profile = obs_sub.add_parser(
        "profile", help="wall-clock attribution per callback category"
    )
    profile.add_argument(
        "--top-k", type=int, default=10, help="hot callbacks to list (default 10)"
    )
    paths = obs_sub.add_parser(
        "paths",
        help="reconstruct per-message delivery paths (tree vs pull-repair)",
        description="Rebuild the hop-by-hop path every delivered (message, "
        "node) pair took through the overlay, attributed to the embedded "
        "tree or to gossip pull-repair, with a per-hop latency breakdown.",
    )
    paths.add_argument("--message", help="show full paths for this message id "
                       "(e.g. 3:0); omit for the summary")
    paths.add_argument(
        "--limit", type=int, default=10, help="max paths to print (default 10)"
    )
    health = obs_sub.add_parser(
        "health",
        help="overlay/tree health trajectory (fragments, orphans, degrees)",
        description="Print the periodic health samples: tree fragment count, "
        "orphaned/stale-route nodes, degree distribution vs the C_rand/C_near "
        "targets, and pending-pull queue depths.",
    )
    anomalies = obs_sub.add_parser(
        "anomalies",
        help="flag slow deliveries, stuck orphans, and multi-retry pulls",
        description="Cross-check the run against configurable bounds: "
        "deliveries slower than a multiple of tree-depth x median-RTT, nodes "
        "orphaned for too many health intervals, pulls needing repeated "
        "retries.",
    )
    anomalies.add_argument(
        "--delay-factor", type=float, default=3.0,
        help="delay bound = FACTOR x tree depth x median hop RTT (default 3)",
    )
    anomalies.add_argument(
        "--orphan-intervals", type=int, default=5,
        help="flag nodes orphaned for at least this many health samples "
        "(default 5)",
    )
    anomalies.add_argument(
        "--retry-threshold", type=int, default=2,
        help="flag pulls with at least this many retries (default 2)",
    )
    series = obs_sub.add_parser(
        "series",
        help="capacity trajectory: events/sec, queue depth, per-layer rates",
        description="Run one instrumented experiment with the capacity "
        "sampler armed and print the time series of engine throughput, "
        "scheduler occupancy, live message-buffer depth, and per-layer "
        "message/byte rates (see docs/OBSERVABILITY.md).",
    )
    series.add_argument(
        "--period", type=float, default=1.0,
        help="sampling period in sim seconds (default 1)",
    )
    series.add_argument(
        "--limit", type=int, default=24,
        help="max table rows; the series is thinned to fit (default 24)",
    )
    mem = obs_sub.add_parser(
        "mem",
        help="per-subsystem memory census and bytes-per-node",
        description="Run one experiment to completion, then deep-walk the "
        "live system and report where the bytes live: per-subsystem "
        "breakdown, bytes/node, and (with --alloc) the top retained-"
        "allocation sites attributed by tracemalloc.",
    )
    mem.add_argument(
        "--alloc", action="store_true",
        help="run under tracemalloc and report retained-allocation sites",
    )
    mem.add_argument(
        "--top", type=int, default=15,
        help="allocation sites to list with --alloc (default 15)",
    )
    mem.add_argument("--out", help="also write the JSON census report here")
    flame = obs_sub.add_parser(
        "flame",
        help="stack-sampling profile of one run (speedscope/collapsed)",
        description="Run one experiment under a wall-clock stack sampler "
        "and export the profile as speedscope JSON (open at "
        "https://www.speedscope.app) or collapsed stacks (flamegraph.pl / "
        "inferno input).",
    )
    flame.add_argument(
        "--out", default="flame.speedscope.json",
        help="output path (default flame.speedscope.json)",
    )
    flame.add_argument(
        "--format", choices=("speedscope", "collapsed"), default="speedscope",
        help="output format (default speedscope)",
    )
    flame.add_argument(
        "--interval", type=float, default=0.002,
        help="sampling interval in wall seconds (default 0.002)",
    )
    export = obs_sub.add_parser(
        "export",
        help="export a deep trace as Chrome-trace/Perfetto JSON",
        description="Run one instrumented experiment (profiler on) and "
        "write its trace in the Trace Event Format that chrome://tracing "
        "and ui.perfetto.dev open directly — protocol categories, chaos "
        "phases, invariant violations, and profiler categories each get "
        "their own track group.  --trace converts a previously exported "
        "JSONL trace instead of running anything.",
    )
    export.add_argument(
        "--format", choices=("chrome-trace",), default="chrome-trace",
        help="output format (default chrome-trace)",
    )
    export.add_argument(
        "--out", default="trace-export.json",
        help="output path (default trace-export.json)",
    )
    export.add_argument(
        "--trace",
        help="convert this JSONL trace file (from 'repro obs trace --out') "
        "instead of running an experiment",
    )

    ledger = obs_sub.add_parser(
        "ledger",
        help="list, show, or import run-ledger records",
        description="The append-only run ledger (.repro/ledger/runs.jsonl "
        "or $REPRO_LEDGER_DIR) records one line per bench/batch/chaos/"
        "figure run: commit, environment, scenario, seeds, and outcome.",
    )
    ledger.add_argument(
        "--show", metavar="REF",
        help="print one record in full (run id/prefix, commit, name, "
        "latest[~K], or HEAD[~K])",
    )
    ledger.add_argument(
        "--import-bench", metavar="PATH",
        help="migrate the label sections of a BENCH_core.json report "
        "into ledger records",
    )
    compare = obs_sub.add_parser(
        "compare",
        help="diff two ledger runs under per-metric tolerance rules",
    )
    compare.add_argument("base", help="baseline run reference")
    compare.add_argument("current", help="candidate run reference")
    regress = obs_sub.add_parser(
        "regress",
        help="gate the latest run against a reference; nonzero on regression",
        description="Compare the newest ledger run against --against REF "
        "(the reference excludes the candidate itself, so 'regress "
        "--against HEAD~0' right after a rerun diffs it against the "
        "previous run at this commit; with only one matching run the "
        "candidate is compared against itself, which trivially passes).",
    )
    regress.add_argument(
        "--against", required=True, metavar="REF",
        help="baseline reference (latest[~K], HEAD[~K], run id/prefix, "
        "commit, or run name)",
    )
    regress.add_argument(
        "--run", metavar="REF",
        help="candidate run (default: the newest matching record)",
    )
    for cmd in (ledger, compare, regress):
        cmd.add_argument(
            "--kind", choices=("bench", "experiment", "batch", "chaos"),
            help="only consider runs of this kind",
        )
        cmd.add_argument(
            "--dir",
            help="ledger directory (default $REPRO_LEDGER_DIR or .repro/ledger)",
        )
    ledger.add_argument(
        "--limit", type=int, default=20,
        help="max records to list (default 20; 0 = all)",
    )
    for cmd in (compare, regress):
        cmd.add_argument(
            "--warn-only", action="store_true",
            help="report regressions but exit 0 anyway (CI advisory lane)",
        )
        cmd.add_argument(
            "--allow-opts-mismatch", action="store_true",
            help="compare runs whose REPRO_SIM_OPTS token sets differ "
            "(refused by default: deltas would measure the configuration, "
            "not the code)",
        )
    for cmd in (summary, trace, profile, paths, health, anomalies,
                series, mem, export, ledger, compare, regress):
        cmd.add_argument(
            "--json", action="store_true",
            help="machine-readable JSON output",
        )

    chaos = sub.add_parser(
        "chaos",
        help="run a chaos scenario under runtime invariant checking",
        description="Drive a named (or JSON-defined) churn/partition/loss "
        "scenario against a live GoCast system while the runtime invariant "
        "checker audits overlay, tree, and delivery correctness; prints the "
        "fault summary and violation report (see docs/CHAOS.md).",
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)
    chaos_sub.add_parser("list", help="list the canned scenarios")
    chaos_run = chaos_sub.add_parser(
        "run", help="run one scenario and print the invariant report"
    )
    chaos_run.add_argument(
        "scenario",
        help="canned scenario name (see 'chaos list') or a JSON scenario file",
    )
    chaos_run.add_argument(
        "--n", type=int, default=64, help="initial node count (default 64)"
    )
    chaos_run.add_argument("--seed", type=int, default=1, help="simulation seed")
    chaos_run.add_argument(
        "--adapt", type=float, default=20.0,
        help="undisturbed adaptation time before the chaos starts (default 20)",
    )
    chaos_run.add_argument(
        "--messages", type=int, default=20,
        help="messages injected across the chaos window (default 20)",
    )
    chaos_run.add_argument(
        "--drain", type=float, default=20.0,
        help="quiescent repair/drain time after the chaos ends (default 20)",
    )
    chaos_run.add_argument(
        "--period", type=float, default=0.5,
        help="invariant sampling period in sim seconds (default 0.5)",
    )
    chaos_run.add_argument(
        "--hard-fail",
        action="store_true",
        help="raise on the first invariant violation instead of recording it",
    )
    chaos_run.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    chaos_run.add_argument("--out", help="also write the JSON report to this file")

    for cmd in (summary, trace, profile, paths, health, anomalies,
                series, mem, flame, export, batch):
        cmd.add_argument(
            "--protocol",
            choices=PROTOCOLS,
            default="gocast",
            help="protocol to run (default gocast)",
        )
        cmd.add_argument("--nodes", type=int, help="override node count")
        cmd.add_argument(
            "--adapt", type=float, help="override adaptation time (seconds)"
        )
        cmd.add_argument("--messages", type=int, help="override message count")
        cmd.add_argument(
            "--fail", type=float, default=0.0, help="crash fraction (default 0)"
        )
        cmd.add_argument("--seed", type=int, default=1, help="simulation seed")
        cmd.add_argument(
            "--drain", type=float, help="override drain time (seconds)"
        )
        cmd.add_argument(
            "--no-freeze",
            action="store_true",
            help="let survivors keep running maintenance/repair after the "
            "crash wave (the paper freezes them; repair needs this off)",
        )
        cmd.add_argument(
            "--health-period", type=float, default=1.0,
            help="health-sampling period in sim seconds; 0 disables "
            "(default 1)",
        )
        cmd.add_argument(
            "--scale",
            choices=("smoke", "default", "full", "paper"),
            default="smoke",
            help="scale preset (default smoke)",
        )
        cmd.add_argument(
            "--scenario",
            help="inject this chaos scenario (canned name or JSON file) "
            "during the workload; see 'repro chaos list'",
        )
    return parser


def cmd_list(out=None) -> int:
    out = out if out is not None else sys.stdout
    width = max(len(name) for name in EXPERIMENTS)
    for name, (description, _runner) in EXPERIMENTS.items():
        print(f"  {name:<{width}}  {description}", file=out)
    return 0


def cmd_run(experiment: str, scale, seed: int, out=None) -> int:
    out = out if out is not None else sys.stdout
    if scale is not None:
        os.environ["REPRO_SCALE"] = scale
    names = list(EXPERIMENTS) if experiment == "all" else [experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; "
              f"see 'python -m repro list'", file=sys.stderr)
        return 2
    from repro.obs.ledger import record_run

    for name in names:
        description, runner = EXPERIMENTS[name]
        print(f"== {name}: {description} (seed {seed}) ==", file=out)
        started = time.time()
        result = runner(seed)
        print(result.format_table(), file=out)
        elapsed = time.time() - started
        print(f"-- {elapsed:.1f}s\n", file=out)
        # Results that expose ledger_metrics() get a run-ledger record
        # (fig3-fig6 do; see repro.obs.ledger).
        sections = getattr(result, "ledger_metrics", None)
        if callable(sections):
            metrics, exact = sections()
            metrics = {**metrics, "wall_s": elapsed}
            record_run(
                "experiment",
                f"experiment:{name}",
                metrics=metrics,
                exact=exact,
                scenario={
                    "experiment": name,
                    "scale": os.environ.get("REPRO_SCALE", "default"),
                },
                seeds=[seed],
            )
    return 0


def _scenario_arg(value):
    """A ``--scenario``/``chaos run`` operand: JSON file path or canned name."""
    import json

    if os.path.isfile(value):
        with open(value, "r", encoding="utf-8") as fh:
            return json.load(fh)
    return value


def _obs_scenario(args):
    from repro.experiments.scenarios import paper_scenario

    overrides = {"fail_fraction": args.fail, "seed": args.seed}
    if args.nodes is not None:
        overrides["n_nodes"] = args.nodes
    if args.adapt is not None:
        overrides["adapt_time"] = args.adapt
    if args.messages is not None:
        overrides["n_messages"] = args.messages
    if args.drain is not None:
        overrides["drain_time"] = args.drain
    if getattr(args, "no_freeze", False):
        overrides["freeze_on_failure"] = False
    if getattr(args, "scenario", None):
        overrides["chaos"] = _scenario_arg(args.scenario)
    return paper_scenario(args.protocol, scale=args.scale, **overrides)


def cmd_batch(args, out=None) -> int:
    import json

    out = out if out is not None else sys.stdout
    from repro.experiments.batch import record_batch_run, run_batch

    try:
        scenario = _obs_scenario(args)
        started = time.perf_counter()
        result = run_batch(
            scenario,
            n_trials=args.trials,
            workers=args.workers,
            root_seed=args.seed,
            collect_metrics=args.metrics,
            health_period=args.health_period,
            series_period=args.series_period,
        )
    except ValueError as exc:
        print(f"invalid batch: {exc}", file=sys.stderr)
        return 2
    record_batch_run(result, wall_s=time.perf_counter() - started)
    payload = None
    if args.json or args.out:
        payload = json.dumps(result.to_json_dict(), indent=2, allow_nan=False)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
    if args.json:
        print(payload, file=out)
    else:
        print(result.format_table(), file=out)
        if args.out:
            print(f"wrote JSON report to {args.out}", file=out)
    return 0


def cmd_obs(args, out=None) -> int:
    import json

    out = out if out is not None else sys.stdout
    if args.obs_command in ("ledger", "compare", "regress"):
        return cmd_obs_ledger(args, out)
    if args.obs_command == "export":
        return cmd_obs_export(args, out)
    if args.obs_command == "mem":
        return cmd_obs_mem(args, out)
    if args.obs_command == "flame":
        return cmd_obs_flame(args, out)
    from repro.experiments.runner import run_delay_experiment
    from repro.obs import Observability
    from repro.obs.ledger import json_safe
    from repro.obs.summary import format_metrics_summary

    try:
        scenario = _obs_scenario(args)
    except ValueError as exc:
        print(f"invalid scenario: {exc}", file=sys.stderr)
        return 2
    # Path reconstruction needs every provenance event; give the
    # diagnostics commands a ring buffer large enough not to wrap.
    capacity = 1 << 20 if args.obs_command in ("paths", "anomalies") else 65536
    obs = Observability(
        profile=args.obs_command == "profile",
        trace_capacity=capacity,
        health_period=args.health_period,
        series_period=args.period if args.obs_command == "series" else 0.0,
    )
    if not args.json:
        print(
            f"== obs {args.obs_command}: {scenario.protocol} "
            f"n={scenario.n_nodes} fail={scenario.fail_fraction:.0%} "
            f"seed={scenario.seed} ==",
            file=out,
        )
    result = run_delay_experiment(scenario, obs=obs)
    if not args.json:
        print(result.summary_row(), file=out)
        print(file=out)

    if args.obs_command == "summary":
        if args.json:
            print(json.dumps(json_safe(result.metrics or {}), indent=2,
                             default=str), file=out)
        else:
            print(format_metrics_summary(result.metrics), file=out)
    elif args.obs_command == "paths":
        return _print_paths(args, obs, result, out)
    elif args.obs_command == "health":
        return _print_health(args, result, out)
    elif args.obs_command == "anomalies":
        return _print_anomalies(args, obs, result, out)
    elif args.obs_command == "series":
        from repro.obs.series import format_series

        section = (result.metrics or {}).get("capacity") or {}
        if args.json:
            print(json.dumps(json_safe(section), indent=2, default=str),
                  file=out)
        elif not section.get("samples"):
            print("no capacity samples recorded (run shorter than the "
                  "sampling period?)", file=out)
        else:
            print(format_series(section, limit=args.limit), file=out)
    elif args.obs_command == "trace":
        if args.out:
            n = obs.tracer.export_jsonl(args.out)
            print(f"wrote {n} events to {args.out} "
                  f"({obs.tracer.dropped} dropped by the ring buffer)", file=out)
        elif args.json:
            events = obs.tracer.events(category=args.category)
            payload = {
                "emitted": obs.tracer.emitted,
                "dropped": obs.tracer.dropped,
                "events": [
                    {"t": e.time, "cat": e.category,
                     "fields": json_safe(dict(e.fields))}
                    for e in events[-args.limit:]
                ],
            }
            print(json.dumps(payload, indent=2, default=str), file=out)
        else:
            events = obs.tracer.events(category=args.category)
            for event in events[-args.limit:]:
                fields = " ".join(f"{k}={v}" for k, v in event.fields.items())
                print(f"{event.time:10.4f}  {event.category:<16} {fields}", file=out)
            print(
                f"-- {len(events)} events"
                + (f" in category {args.category}" if args.category else "")
                + f" ({obs.tracer.dropped} dropped)",
                file=out,
            )
    else:
        report = obs.profiler.report(top_k=args.top_k)
        if args.json:
            print(json.dumps(json_safe(report.to_dict()), indent=2,
                             default=str), file=out)
        else:
            print(report.format_table(), file=out)
    return 0


def cmd_obs_ledger(args, out=None) -> int:
    """The ledger-backed subcommands: ledger / compare / regress."""
    import json

    out = out if out is not None else sys.stdout
    from repro.obs.ledger import (
        Ledger,
        LedgerError,
        format_ledger_table,
        import_bench_json,
    )
    from repro.obs.regress import OptsMismatchError, compare_records

    store = Ledger(args.dir)
    try:
        if args.obs_command == "ledger":
            if args.import_bench:
                records = import_bench_json(args.import_bench, store)
                print(
                    f"imported {len(records)} record(s) from "
                    f"{args.import_bench} into {store.path}",
                    file=out,
                )
                return 0
            records = store.records()
            if args.kind:
                records = [r for r in records if r.kind == args.kind]
            if args.show:
                record = store.resolve(args.show, records=records)
                print(json.dumps(record.to_dict(), indent=2, sort_keys=True,
                                 default=str), file=out)
                return 0
            if args.json:
                shown = records[-args.limit:] if args.limit else records
                print(json.dumps([r.to_dict() for r in shown], indent=2,
                                 default=str), file=out)
            else:
                print(format_ledger_table(records, limit=args.limit), file=out)
            return 0

        # --warn-only is the CI advisory lane: it demotes the opts-set
        # refusal to a note the same way it demotes the exit code.
        allow_mismatch = args.allow_opts_mismatch or args.warn_only
        if args.obs_command == "compare":
            base = store.resolve(args.base, kind=args.kind)
            current = store.resolve(args.current, kind=args.kind)
            comparison = compare_records(
                base, current, allow_opts_mismatch=allow_mismatch
            )
        else:  # regress
            records = store.records()
            if args.run:
                current = store.resolve(args.run, kind=args.kind, records=records)
            else:
                current = store.latest(kind=args.kind, records=records)
            if current is None:
                raise LedgerError(
                    f"no candidate run in ledger {store.path}; run a bench/"
                    "batch/chaos first (or check --kind)"
                )
            try:
                base = store.resolve(
                    args.against, kind=args.kind, exclude=current, records=records
                )
            except LedgerError:
                # The ref may match only the candidate itself (fresh
                # ledger with a single run at this commit): self-compare,
                # which trivially passes.  A ref that matches nothing at
                # all is still an error.
                base = store.resolve(args.against, kind=args.kind, records=records)
            comparison = compare_records(
                base, current, allow_opts_mismatch=allow_mismatch
            )
            if base.run_id == current.run_id:
                comparison.notes.append(
                    f"reference {args.against!r} only matches the candidate "
                    "itself; compared the run against itself"
                )
    except OptsMismatchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except LedgerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(comparison.to_dict(), indent=2, default=str), file=out)
    else:
        print(comparison.format_table(), file=out)
    if comparison.regressions and not args.warn_only:
        return 1
    return 0


def cmd_obs_export(args, out=None) -> int:
    """``repro obs export``: run (or load) a trace, write Chrome-trace JSON."""
    import json

    out = out if out is not None else sys.stdout
    from repro.obs.export import export_chrome_trace, trace_tracks, validate_chrome_trace
    from repro.obs.ledger import environment_provenance
    from repro.obs.tracer import SimTracer

    profile = None
    meta = {"env": environment_provenance()}
    if args.trace:
        try:
            events = SimTracer.load_jsonl(args.trace)
        except OSError as exc:
            print(f"error: cannot read trace file {args.trace}: "
                  f"{exc.strerror or exc}", file=sys.stderr)
            return 2
        except (ValueError, KeyError, TypeError) as exc:
            print(f"error: {args.trace} is not a JSONL trace written by "
                  f"'repro obs trace --out' ({exc})", file=sys.stderr)
            return 2
        if not events:
            print(f"error: no trace events in {args.trace}", file=sys.stderr)
            return 2
        meta["source"] = args.trace
    else:
        from repro.experiments.runner import run_delay_experiment
        from repro.obs import Observability

        try:
            scenario = _obs_scenario(args)
        except ValueError as exc:
            print(f"invalid scenario: {exc}", file=sys.stderr)
            return 2
        obs = Observability(
            profile=True, trace_capacity=1 << 20,
            health_period=args.health_period,
        )
        result = run_delay_experiment(scenario, obs=obs)
        if not args.json:
            print(result.summary_row(), file=out)
        events = obs.tracer.events()
        profile = obs.profiler.report().to_dict()
        meta["scenario"] = {
            "protocol": scenario.protocol,
            "n_nodes": scenario.n_nodes,
            "fail_fraction": scenario.fail_fraction,
            "seed": scenario.seed,
            "chaos": getattr(args, "scenario", None),
        }
        if obs.tracer.dropped:
            print(
                f"warning: ring buffer dropped {obs.tracer.dropped} events; "
                "the exported timeline is incomplete",
                file=sys.stderr,
            )

    doc = export_chrome_trace(args.out, events, profile=profile, meta=meta)
    problems = validate_chrome_trace(doc)
    tracks = trace_tracks(doc)
    if args.json:
        print(json.dumps(
            {"out": args.out, "n_events": len(doc["traceEvents"]),
             "tracks": tracks, "problems": problems},
            indent=2,
        ), file=out)
    else:
        summary = ", ".join(
            f"{name}: {len(names)} track(s)" for name, names in sorted(tracks.items())
        )
        print(f"wrote {args.out} ({len(doc['traceEvents'])} trace events; "
              f"{summary})", file=out)
        print("open it at https://ui.perfetto.dev or chrome://tracing", file=out)
    if problems:
        for problem in problems[:10]:
            print(f"error: {problem}", file=sys.stderr)
        return 1
    return 0


def cmd_obs_mem(args, out=None) -> int:
    """``repro obs mem``: per-subsystem census + bytes-per-node."""
    import json

    out = out if out is not None else sys.stdout
    from repro.obs.ledger import record_run
    from repro.obs.memory import format_memory_report, run_memory_experiment

    try:
        scenario = _obs_scenario(args)
        report = run_memory_experiment(scenario, alloc=args.alloc, top=args.top)
    except ValueError as exc:
        print(f"invalid scenario: {exc}", file=sys.stderr)
        return 2

    census = report.census
    # One ledger record per census so `repro obs regress` can gate
    # bytes_per_node; subsystem bytes ride along as mem.* info metrics.
    record_run(
        "experiment",
        "obs-mem",
        metrics={
            "bytes_per_node": census.bytes_per_node,
            **{f"mem.{name}": float(size)
               for name, size in sorted(census.by_subsystem.items())},
        },
        exact={"events_executed": report.events_executed},
        scenario={
            "protocol": scenario.protocol,
            "n_nodes": scenario.n_nodes,
            "adapt_time": scenario.adapt_time,
            "n_messages": scenario.n_messages,
            "fail_fraction": scenario.fail_fraction,
        },
        seeds=[scenario.seed],
    )

    payload = None
    if args.json or args.out:
        payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
    if args.json:
        print(payload, file=out)
    else:
        print(
            f"== obs mem: {scenario.protocol} n={scenario.n_nodes} "
            f"seed={scenario.seed} ==",
            file=out,
        )
        print(format_memory_report(report), file=out)
        if args.out:
            print(f"wrote JSON census to {args.out}", file=out)
    return 0


def cmd_obs_flame(args, out=None) -> int:
    """``repro obs flame``: stack-sampled profile of one run."""
    out = out if out is not None else sys.stdout
    from repro.experiments.runner import run_delay_experiment
    from repro.obs.flame import FlameSampler, validate_speedscope, write_speedscope

    try:
        scenario = _obs_scenario(args)
    except ValueError as exc:
        print(f"invalid scenario: {exc}", file=sys.stderr)
        return 2

    sampler = FlameSampler(interval=args.interval)
    with sampler:
        result = run_delay_experiment(scenario)
    print(result.summary_row(), file=out)

    if args.format == "collapsed":
        text = sampler.collapsed_text()
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        stacks = len(text.splitlines())
        print(
            f"wrote {stacks} collapsed stacks ({len(sampler.samples)} samples, "
            f"{sampler.dropped} dropped) to {args.out}",
            file=out,
        )
        return 0

    name = f"repro {scenario.protocol} n={scenario.n_nodes} seed={scenario.seed}"
    doc = sampler.speedscope(name=name)
    problems = validate_speedscope(doc)
    if problems:
        for problem in problems:
            print(f"invalid speedscope document: {problem}", file=sys.stderr)
        return 1
    write_speedscope(doc, args.out)
    profile = doc["profiles"][0]
    print(
        f"wrote speedscope profile to {args.out} "
        f"({len(profile['samples'])} samples over "
        f"{profile['endValue']:.2f}s wall, {sampler.dropped} dropped); "
        "open at https://www.speedscope.app",
        file=out,
    )
    return 0


def _warn_dropped(obs, out) -> None:
    if obs.tracer.dropped:
        print(
            f"warning: ring buffer dropped {obs.tracer.dropped} events; "
            "reconstruction may be incomplete (raise trace capacity)",
            file=out,
        )


def _print_paths(args, obs, result, out) -> int:
    import dataclasses
    import json

    from repro.obs.ledger import json_safe
    from repro.obs.provenance import PathReconstructor, format_provenance_summary

    recon = PathReconstructor(obs.tracer.events())
    if not args.json:
        _warn_dropped(obs, out)
    counters = (result.metrics or {}).get("counters", {})
    if not recon.n_deliveries:
        print("no delivery records in the trace (did the run deliver "
              "anything via the GoCast stack?)",
              file=sys.stderr if args.json else out)
        return 2 if args.json else 0
    if args.json:
        if args.message:
            paths = recon.paths_for_message(args.message)
            if not paths:
                print(f"error: no deliveries recorded for message "
                      f"{args.message!r}", file=sys.stderr)
                return 2
            payload = [dataclasses.asdict(p) for p in paths[: args.limit]]
        else:
            payload = {
                "summary": recon.summary(),
                "messages": {
                    msg: len(recon.paths_for_message(msg))
                    for msg in recon.message_ids()
                },
            }
        print(json.dumps(json_safe(payload), indent=2, default=str), file=out)
        return 0
    if args.message:
        paths = recon.paths_for_message(args.message)
        if not paths:
            known = ", ".join(recon.message_ids())
            print(f"no deliveries recorded for message {args.message!r}; "
                  f"known messages: {known}", file=out)
            return 2
        complete = sum(1 for p in paths if p.complete)
        for path in paths[: args.limit]:
            print(path.format(), file=out)
            print(file=out)
        if len(paths) > args.limit:
            print(f"... {len(paths) - args.limit} more paths "
                  f"(raise --limit)", file=out)
        print(f"-- {len(paths)} paths for {args.message}: "
              f"{complete} complete, {len(paths) - complete} incomplete",
              file=out)
    else:
        print(format_provenance_summary(recon.summary(), counters), file=out)
        print(file=out)
        for msg in recon.message_ids():
            paths = recon.paths_for_message(msg)
            by_via = {"tree": 0, "pull-repair": 0}
            for p in paths:
                by_via[p.attribution] += 1
            print(f"  {msg}: {len(paths)} receivers "
                  f"(tree={by_via['tree']} pull-repair={by_via['pull-repair']}); "
                  f"use --message {msg} for hop detail", file=out)
    return 0


def _print_health(args, result, out) -> int:
    import json

    from repro.obs.health import format_health
    from repro.obs.ledger import json_safe

    health = (result.metrics or {}).get("health")
    if not health:
        print("no health samples (health monitoring runs on the overlay "
              "protocols with --health-period > 0)",
              file=sys.stderr if args.json else out)
        return 2
    if args.json:
        print(json.dumps(json_safe(health), indent=2, default=str), file=out)
    else:
        print(format_health(health), file=out)
    return 0


def _print_anomalies(args, obs, result, out) -> int:
    from repro.obs.health import orphan_anomalies
    from repro.obs.provenance import PathReconstructor

    recon = PathReconstructor(obs.tracer.events())
    if args.json:
        import json

        from repro.obs.ledger import json_safe

        health = (result.metrics or {}).get("health") or {}
        payload = {
            "slow_deliveries": recon.delay_anomalies(factor=args.delay_factor),
            "stuck_orphans": orphan_anomalies(
                health, min_intervals=args.orphan_intervals
            ),
            "multi_retry_pulls": recon.retry_anomalies(
                min_retries=args.retry_threshold
            ),
        }
        print(json.dumps(json_safe(payload), indent=2, default=str), file=out)
        return 0
    _warn_dropped(obs, out)
    total = 0

    slow = recon.delay_anomalies(factor=args.delay_factor)
    print(f"== slow deliveries (> {args.delay_factor:g} x tree depth x "
          f"median hop RTT) ==", file=out)
    for a in slow:
        print(f"  {a['msg']} -> node {a['node']}: delay {a['delay']:.4f}s "
              f"(bound {a['bound']:.4f}s, via {a['attribution']}, "
              f"{a['hops']} hops)", file=out)
    print(f"  {len(slow)} flagged", file=out)
    total += len(slow)

    health = (result.metrics or {}).get("health") or {}
    stuck = orphan_anomalies(health, min_intervals=args.orphan_intervals)
    print(f"== stuck orphans (>= {args.orphan_intervals} health intervals) ==",
          file=out)
    for a in stuck:
        print(f"  node {a['node']}: orphaned/stale for {a['intervals']} "
              f"intervals ({a['seconds']:g}s)", file=out)
    print(f"  {len(stuck)} flagged", file=out)
    total += len(stuck)

    retried = recon.retry_anomalies(min_retries=args.retry_threshold)
    print(f"== multi-retry pulls (>= {args.retry_threshold} retries) ==",
          file=out)
    for a in retried:
        status = "delivered" if a["delivered"] else "NOT delivered"
        print(f"  {a['msg']} -> node {a['node']}: {a['attempts']} attempts "
              f"({a['retries']} retries), {status}", file=out)
    print(f"  {len(retried)} flagged", file=out)
    total += len(retried)

    print(f"-- {total} anomalies total", file=out)
    return 0


def cmd_chaos(args, out=None) -> int:
    import json

    out = out if out is not None else sys.stdout
    from repro.experiments.chaos import run_chaos
    from repro.sim.scenarios import CANNED

    if args.chaos_command == "list":
        width = max(len(name) for name in CANNED)
        for name, scenario in CANNED.items():
            phases = ", ".join(p.kind for p in scenario.phases)
            print(f"  {name:<{width}}  {scenario.description} [{phases}]",
                  file=out)
        return 0
    try:
        report = run_chaos(
            _scenario_arg(args.scenario),
            n_nodes=args.n,
            seed=args.seed,
            adapt_time=args.adapt,
            n_messages=args.messages,
            drain_time=args.drain,
            invariant_period=args.period,
            hard_fail=args.hard_fail,
        )
    except (KeyError, ValueError) as exc:
        print(f"invalid scenario: {exc}", file=sys.stderr)
        return 2
    payload = None
    if args.json or args.out:
        payload = json.dumps(report.to_json_dict(), indent=2, allow_nan=False)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
    if args.json:
        print(payload, file=out)
    else:
        print(report.format_report(), file=out)
        if args.out:
            print(f"wrote JSON report to {args.out}", file=out)
    return 1 if report.total_violations else 0


def cmd_bench(args) -> int:
    from repro.experiments import bench
    from repro.sim.optim import SimOptsError

    try:
        bench.validate_sim_opts()
    except SimOptsError as exc:
        print(f"repro bench: {exc}", file=sys.stderr)
        return 2

    if args.smoke:
        sizes, repeats, out_path = bench.SMOKE_SIZES, 1, None
    else:
        if args.paper:
            default_sizes = bench.PAPER_SIZES
        elif args.mem:
            default_sizes = bench.MEM_SIZES
        else:
            default_sizes = bench.FULL_SIZES
        sizes = (
            tuple(int(s) for s in args.sizes.split(","))
            if args.sizes
            else default_sizes
        )
        repeats, out_path = args.repeats, args.out
    report = bench.run_bench(
        sizes, repeats, label=args.label, out_path=out_path, mem=args.mem
    )
    print(bench.format_report(report))
    if out_path is not None:
        print(f"\nwrote {out_path} (section: {args.label})")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "obs":
        return cmd_obs(args)
    if args.command == "batch":
        return cmd_batch(args)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "chaos":
        return cmd_chaos(args)
    return cmd_run(args.experiment, args.scale, args.seed)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
