"""Overlay-gossip baselines: GoCast without its tree.

The paper's "proximity overlay" and "random overlay" curves are
"simplified versions of the GoCast protocol that only propagate
messages through gossips exchanged between overlay neighbors; the
system neither maintains nor uses the tree."

* *Proximity overlay*: 5 nearby + 1 random neighbor per node — isolates
  the value of the tree (GoCast minus tree).
* *Random overlay*: 6 random neighbors only — additionally removes
  proximity awareness; its delay resembles plain gossip but its
  *reliability* is perfect because the overlay stays connected.

Both are plain :class:`~repro.core.config.GoCastConfig` presets with
``use_tree=False``; the node implementation is unchanged.
"""

from __future__ import annotations

from repro.core.config import GoCastConfig


def proximity_overlay_config(**overrides) -> GoCastConfig:
    """GoCast overlay (1 random + 5 nearby), gossip-only dissemination."""
    params = dict(c_rand=1, c_near=5, use_tree=False)
    params.update(overrides)
    return GoCastConfig(**params)


def random_overlay_config(degree: int = 6, **overrides) -> GoCastConfig:
    """Purely random overlay of the given degree, gossip-only."""
    params = dict(c_rand=degree, c_near=0, use_tree=False)
    params.update(overrides)
    return GoCastConfig(**params)
