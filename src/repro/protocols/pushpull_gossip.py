"""Push-pull gossip — the improvement sketched in the paper's footnote 1.

"This situation [low reliability at small fanouts] can be improved by
combining both push and pull in gossip disseminations [9].  The
challenge, however, is to avoid the overheads of unnecessary pulls when
there is no multicast message."

Each gossip still pushes the sender's fresh IDs to one random node per
period, but the receiver additionally *answers* with any recent IDs of
its own that the sender's summary did not mention — so information
flows both ways per exchange, roughly squaring the per-round spread
factor (Karp et al., FOCS 2000).  The overhead guard the footnote
worries about is respected: a node with no recently received messages
sends no gossip, and a receiver with nothing new sends no answer, so an
idle system is silent.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Optional, Sequence, Tuple

from repro.protocols.base import RandomGossip, RandomGossipNode
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer
from repro.sim.trace import DeliveryTracer
from repro.sim.transport import Network

_HEADER = 20


@dataclasses.dataclass(frozen=True)
class PushPullGossip(RandomGossip):
    """A push gossip whose receiver is invited to answer with news.

    Inherits the summary layout; the distinct type tells the receiver
    to compute the pull direction.
    """


class PushPullGossipNode(RandomGossipNode):
    """Push-pull gossip with fanout ``F`` (footnote 1 / Karp et al.)."""

    #: How recently a message must have arrived to be offered in the
    #: pull direction (bounds the answer size, like the paper's
    #: "IDs of messages received in less than one second").
    PULL_WINDOW = 2.0
    #: A node keeps sending pull probes this long after it last saw
    #: evidence of traffic; afterwards it goes silent (footnote 1's
    #: "avoid the overheads of unnecessary pulls").
    ACTIVE_WINDOW = 2.0

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        membership: Sequence[int],
        fanout: int = 5,
        gossip_period: float = 0.1,
        rng: Optional[random.Random] = None,
        tracer: Optional[DeliveryTracer] = None,
    ):
        super().__init__(node_id, sim, network, membership, fanout, rng, tracer)
        if gossip_period <= 0:
            raise ValueError("gossip_period must be positive")
        self.gossip_period = gossip_period
        self.gossips_sent = 0
        self.answers_sent = 0
        self._timer = PeriodicTimer(sim, gossip_period, self._on_tick)

    def start(self) -> None:
        super().start()
        self._timer.start(phase=self.rng.uniform(0, self.gossip_period))

    def stop(self) -> None:
        super().stop()
        self._timer.stop()

    def _on_tick(self) -> None:
        if not self.membership:
            return
        active = self.active_summaries()
        if not active:
            # The pull half: no fanout budget left to push, but the
            # system was recently active, so exchange news with a random
            # node — the probe carries our own recent IDs (without
            # consuming fanout budget) and the answer brings back
            # whatever we are missing.  Once the system goes quiet the
            # probes stop too — footnote 1's guard against unnecessary
            # pulls.
            now = self.sim.now
            if now - self.last_heard_traffic <= self.ACTIVE_WINDOW:
                recent = tuple(
                    (msg_id, entry.age(now))
                    for msg_id, entry in self._messages.items()
                    if now - entry.deliver_time <= self.PULL_WINDOW
                )
                target = self.membership[self.rng.randrange(len(self.membership))]
                self.send(target, PushPullGossip(summaries=recent))
                self.gossips_sent += 1
            return
        target = self.membership[self.rng.randrange(len(self.membership))]
        summaries = []
        for msg_id, age, entry in active:
            summaries.append((msg_id, age))
            entry.remaining_fanout -= 1
        self.send(target, PushPullGossip(summaries=tuple(summaries)))
        self.gossips_sent += 1

    def handle_message(self, src: int, msg: object) -> None:
        if isinstance(msg, PushPullGossip) and self.alive:
            self._answer_with_news(src, msg)
        super().handle_message(src, msg)

    def _answer_with_news(self, src: int, gossip: PushPullGossip) -> None:
        """The pull direction: offer recent IDs the sender did not mention."""
        mentioned = {msg_id for msg_id, _age in gossip.summaries}
        now = self.sim.now
        news: Tuple = tuple(
            (msg_id, entry.age(now))
            for msg_id, entry in self._messages.items()
            if msg_id not in mentioned
            and now - entry.deliver_time <= self.PULL_WINDOW
        )
        if news:
            self.send(src, RandomGossip(summaries=news))
            self.answers_sent += 1
