"""No-wait gossip — the paper's "no-wait gossip" baseline.

"Upon receiving a multicast message, a node immediately gossips the
message to 5 other nodes without waiting for the next gossip period (in
other words, the gossip period t = 0)."

Used by the paper to reveal the fundamental delay floor of gossip
multicast: even with zero gossip-period waiting it remains slower than
GoCast, because gossip targets are latency-oblivious random nodes and
the summary-then-pull exchange costs an extra round trip per hop.
"""

from __future__ import annotations

from repro.core.ids import MessageId
from repro.protocols.base import RandomGossip, RandomGossipNode


class NoWaitGossipNode(RandomGossipNode):
    """Push gossip with an immediate burst of ``fanout`` gossips."""

    def on_new_message(self, msg_id: MessageId) -> None:
        entry = self.message_entry(msg_id)
        if entry is None or not self.membership:
            return
        summary = ((msg_id, entry.age(self.sim.now)),)
        for target in self.random_targets(self.fanout):
            self.send(target, RandomGossip(summaries=summary))
        entry.remaining_fanout = 0
