"""Push-based gossip multicast — the paper's "gossip" baseline.

"Every t = 0.1 seconds, each node sends a gossip to a random node.  The
gossip fanout is 5, i.e., a node gossips the ID of a received multicast
message to 5 random nodes (one node per gossip period)."

So each gossip carries the IDs of all messages with remaining fanout
budget, each inclusion consumes one unit of the message's budget, and a
message stops being advertised after ``fanout`` gossips.  With complete
randomness the number of times different nodes hear a given ID varies
wildly, which is why reliability follows ``exp(-exp(ln n - F))`` and a
1,024-node system needs fanout ~15 for 1,000-message reliability 0.5
(Figure 1).
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.protocols.base import RandomGossip, RandomGossipNode
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer
from repro.sim.trace import DeliveryTracer
from repro.sim.transport import Network


class PushGossipNode(RandomGossipNode):
    """Bimodal-Multicast-style push gossip with fanout ``F``."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        membership: Sequence[int],
        fanout: int = 5,
        gossip_period: float = 0.1,
        rng: Optional[random.Random] = None,
        tracer: Optional[DeliveryTracer] = None,
    ):
        super().__init__(node_id, sim, network, membership, fanout, rng, tracer)
        if gossip_period <= 0:
            raise ValueError("gossip_period must be positive")
        self.gossip_period = gossip_period
        self.gossips_sent = 0
        self._timer = PeriodicTimer(sim, gossip_period, self._on_tick)

    def start(self) -> None:
        super().start()
        self._timer.start(phase=self.rng.uniform(0, self.gossip_period))

    def stop(self) -> None:
        super().stop()
        self._timer.stop()

    def _on_tick(self) -> None:
        active = self.active_summaries()
        if not active or not self.membership:
            return
        target = self.membership[self.rng.randrange(len(self.membership))]
        summaries = []
        for msg_id, age, entry in active:
            summaries.append((msg_id, age))
            entry.remaining_fanout -= 1
        self.send(target, RandomGossip(summaries=tuple(summaries)))
        self.gossips_sent += 1
