"""Baseline dissemination protocols the paper compares against.

* :mod:`repro.protocols.push_gossip` — the "gossip" curve: a push-based
  gossip multicast in the style of Bimodal Multicast, fanout ``F``, one
  gossip to one uniformly random node per period ``t``.
* :mod:`repro.protocols.nowait_gossip` — the "no-wait gossip" curve:
  upon receiving a message a node immediately gossips its ID to ``F``
  random nodes (gossip period effectively zero); reveals the fundamental
  delay limit of gossip multicast.
* :mod:`repro.protocols.overlay_gossip` — the "proximity overlay" and
  "random overlay" curves: the full GoCast overlay but dissemination
  through neighbor gossip only (no tree).  These are configuration
  presets of :class:`~repro.core.node.GoCastNode`.
* :mod:`repro.protocols.pushpull_gossip` — the push+pull combination
  the paper's footnote 1 sketches as the fix for push gossip's
  reliability, with its "no unnecessary pulls" guard.
"""

from repro.protocols.nowait_gossip import NoWaitGossipNode
from repro.protocols.overlay_gossip import proximity_overlay_config, random_overlay_config
from repro.protocols.push_gossip import PushGossipNode
from repro.protocols.pushpull_gossip import PushPullGossipNode

__all__ = [
    "NoWaitGossipNode",
    "PushGossipNode",
    "PushPullGossipNode",
    "proximity_overlay_config",
    "random_overlay_config",
]
