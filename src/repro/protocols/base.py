"""Shared machinery for the random-gossip baseline protocols.

Both push gossip and no-wait gossip follow the same anti-entropy shape:
advertise message IDs to random nodes, answer pull requests with the
payloads.  The difference is purely *when* IDs are advertised, so the
common node keeps per-message fanout budgets and pull bookkeeping and
lets subclasses decide the advertisement schedule.

All traffic is unreliable (UDP-like): the baselines maintain no
connections, so sends to crashed nodes vanish silently — which is
exactly why "some nodes in a 1,024-node system never hear about a given
message" with small fanouts.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.ids import MessageId, MessageIdAllocator
from repro.core.messages import PullData, PullRequest
from repro.sim.engine import Simulator
from repro.sim.trace import DeliveryTracer
from repro.sim.transport import Network

_HEADER = 20


@dataclasses.dataclass(frozen=True)
class RandomGossip:
    """ID summary pushed to a uniformly random node."""

    summaries: Tuple[Tuple[MessageId, float], ...]

    def wire_size(self) -> int:
        return _HEADER + 12 * len(self.summaries)


@dataclasses.dataclass
class _GossipedMessage:
    payload_size: int
    deliver_time: float
    age_at_deliver: float
    remaining_fanout: int

    def age(self, now: float) -> float:
        return self.age_at_deliver + (now - self.deliver_time)


class RandomGossipNode:
    """Common base of the push-gossip and no-wait-gossip baselines."""

    #: How long an unanswered pull blocks re-requesting the same ID.
    PULL_TIMEOUT = 1.0

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        membership: Sequence[int],
        fanout: int = 5,
        rng: Optional[random.Random] = None,
        tracer: Optional[DeliveryTracer] = None,
    ):
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.node_id = node_id
        self.sim = sim
        self.network = network
        #: Full membership, as assumed by Bimodal-style protocols.
        self.membership = [m for m in membership if m != node_id]
        self.fanout = fanout
        self.rng = rng if rng is not None else random.Random(node_id)
        self.tracer = tracer if tracer is not None else DeliveryTracer()
        self._messages: Dict[MessageId, _GossipedMessage] = {}
        self._pending: Dict[MessageId, object] = {}
        self._id_alloc = MessageIdAllocator(node_id)
        self.alive = False
        #: Last time this node saw evidence of multicast traffic (a
        #: delivery or any incoming gossip); drives push-pull's
        #: "pull only while the system is active" guard.
        self.last_heard_traffic = float("-inf")
        network.register(self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.alive = True

    def stop(self) -> None:
        self.alive = False

    def crash(self) -> None:
        self.network.kill(self.node_id)
        self.stop()

    # ------------------------------------------------------------------
    # Application API
    # ------------------------------------------------------------------
    def multicast(self, payload_size: int = 1024) -> MessageId:
        if not self.alive:
            raise RuntimeError(f"node {self.node_id} is not running")
        msg_id = self._id_alloc.allocate()
        self.tracer.injected(msg_id, self.sim.now, self.node_id)
        self._store(msg_id, payload_size, age=0.0)
        return msg_id

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def on_new_message(self, msg_id: MessageId) -> None:
        """Called when a message first becomes available locally."""

    # ------------------------------------------------------------------
    # Message plumbing
    # ------------------------------------------------------------------
    def send(self, dst: int, msg: object) -> None:
        self.network.send(self.node_id, dst, msg, reliable=False)

    def random_targets(self, count: int) -> List[int]:
        if count >= len(self.membership):
            return list(self.membership)
        return self.rng.sample(self.membership, count)

    def handle_message(self, src: int, msg: object) -> None:
        if not self.alive:
            return
        if isinstance(msg, RandomGossip):
            self._on_gossip(src, msg)
        elif isinstance(msg, PullRequest):
            self._on_pull_request(src, msg)
        elif isinstance(msg, PullData):
            self._on_pull_data(src, msg)
        else:
            raise TypeError(f"baseline node: unhandled message {type(msg).__name__}")

    def handle_send_failure(self, dst: int, msg: object) -> None:
        """Unreliable transport never reports failures; nothing to do."""

    # ------------------------------------------------------------------
    # Gossip / pull mechanics
    # ------------------------------------------------------------------
    def _on_gossip(self, src: int, gossip: RandomGossip) -> None:
        if gossip.summaries:
            # Empty gossips are pull probes, not traffic evidence —
            # counting them would make probing self-sustaining.
            self.last_heard_traffic = self.sim.now
        unknown = [
            msg_id
            for msg_id, _age in gossip.summaries
            if msg_id not in self._messages and msg_id not in self._pending
        ]
        if not unknown:
            return
        for msg_id in unknown:
            self._pending[msg_id] = self.sim.schedule(
                self.PULL_TIMEOUT, self._expire_pending, msg_id
            )
        self.send(src, PullRequest(ids=tuple(unknown)))

    def _expire_pending(self, msg_id: MessageId) -> None:
        # The pull went unanswered; allow a future gossip to retry.
        self._pending.pop(msg_id, None)

    def _on_pull_request(self, src: int, msg: PullRequest) -> None:
        now = self.sim.now
        available = [
            (msg_id, self._messages[msg_id].age(now),
             self._messages[msg_id].payload_size, None)
            for msg_id in msg.ids
            if msg_id in self._messages
        ]
        if available:
            self.send(src, PullData(messages=tuple(available)))

    def _on_pull_data(self, src: int, msg: PullData) -> None:
        owl = self.network.latency.one_way(src, self.node_id)
        for msg_id, age, size, _payload in msg.messages:
            handle = self._pending.pop(msg_id, None)
            if handle is not None:
                handle.cancel()
            if msg_id in self._messages:
                self.tracer.redundant(msg_id, self.node_id)
                continue
            self.tracer.delivered(msg_id, self.node_id, self.sim.now)
            self.tracer.pulled(msg_id, self.node_id)
            self._store(msg_id, size, age=age + owl)

    def _store(self, msg_id: MessageId, payload_size: int, age: float) -> None:
        self.last_heard_traffic = self.sim.now
        self._messages[msg_id] = _GossipedMessage(
            payload_size=payload_size,
            deliver_time=self.sim.now,
            age_at_deliver=age,
            remaining_fanout=self.fanout,
        )
        self.on_new_message(msg_id)

    def message_entry(self, msg_id: MessageId) -> Optional[_GossipedMessage]:
        return self._messages.get(msg_id)

    def active_summaries(self) -> List[Tuple[MessageId, float, _GossipedMessage]]:
        """Messages whose fanout budget is not exhausted."""
        now = self.sim.now
        return [
            (msg_id, entry.age(now), entry)
            for msg_id, entry in self._messages.items()
            if entry.remaining_fanout > 0
        ]
