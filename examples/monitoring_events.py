#!/usr/bin/env python
"""System-monitoring event dissemination under failures.

The paper's motivating application: "disseminating system monitoring
events to facilitate the management of distributed systems".  A
management cluster multicasts monitoring events at a steady rate while
a rack-sized slice of the fleet crashes mid-run — mission-critical
consumers must keep receiving every event, fast, with no repair time
allowed (the paper's stress discipline).

Run:  python examples/monitoring_events.py
"""

import numpy as np

from repro.experiments import GoCastSystem, ScenarioConfig


def main() -> None:
    scenario = ScenarioConfig(
        protocol="gocast",
        n_nodes=96,
        adapt_time=40.0,
        n_messages=60,
        message_rate=50.0,   # 50 monitoring events per second
        payload_size=512,    # small alert payloads
        seed=11,
    )
    system = GoCastSystem(scenario)
    system.run_adaptation()
    print(f"{scenario.n_nodes} monitors online; overlay adapted for "
          f"{scenario.adapt_time:.0f} s")

    # Phase 1: healthy fleet.
    healthy_end = system.schedule_workload(start=system.sim.now + 0.1)
    system.run_until(healthy_end + 10.0)
    receivers = sorted(system.live_node_ids())
    healthy_delays = system.tracer.delays(receivers)
    print(f"\nPhase 1 — healthy: {system.tracer.n_messages} events")
    print(f"  reliability: {system.tracer.reliability(receivers):.6f}")
    print(f"  p50/p99 delay: {np.percentile(healthy_delays, 50) * 1000:.0f} / "
          f"{np.percentile(healthy_delays, 99) * 1000:.0f} ms")

    # Phase 2: 20% of the fleet crashes at once; no repair is allowed
    # (maintenance frozen) — only GoCast's built-in gossip redundancy
    # may compensate, exactly the paper's Figure 3(b) discipline.
    crash_time = system.sim.now + 1.0
    victims = system.fail_random_fraction(crash_time, 0.2)
    system.run_until(crash_time + 0.1)
    print(f"\nPhase 2 — {len(victims)} monitors crashed; repair frozen")

    before = system.tracer.n_messages
    storm_end = system.schedule_workload(start=system.sim.now + 0.1)
    system.run_until(storm_end + 30.0)

    live = sorted(system.live_node_ids())
    # Only phase-2 messages: recompute delays for new messages.
    all_delays = system.tracer.delays(live)
    storm_delays = all_delays[len(healthy_delays):] if len(all_delays) > len(
        healthy_delays) else all_delays
    print(f"  events during storm: {system.tracer.n_messages - before}")
    print(f"  reliability to live monitors: "
          f"{system.tracer.reliability(live):.6f}")
    if storm_delays.size:
        print(f"  p50/p99 delay: {np.percentile(storm_delays, 50) * 1000:.0f} / "
              f"{np.percentile(storm_delays, 99) * 1000:.0f} ms")
    print(f"  pulled via gossip (tree gaps bridged): "
          f"{system.tracer.pulled_deliveries}")


if __name__ == "__main__":
    main()
