#!/usr/bin/env python
"""Quickstart: a 64-node GoCast group delivering a handful of multicasts.

This is the smallest end-to-end use of the public API:

1. Describe the deployment with a :class:`ScenarioConfig`.
2. Build a :class:`GoCastSystem` (synthetic Internet latencies, one
   GoCast node per participant, partial views, a designated tree root).
3. Let the overlay adapt, send messages, read the delivery statistics.

Run:  python examples/quickstart.py
"""

from repro.experiments import GoCastSystem, ScenarioConfig


def main() -> None:
    scenario = ScenarioConfig(
        protocol="gocast",
        n_nodes=64,
        adapt_time=30.0,   # overlay adaptation before traffic (paper: 500 s)
        n_messages=20,
        message_rate=100.0,
        seed=7,
    )
    system = GoCastSystem(scenario)

    print(f"Adapting a {scenario.n_nodes}-node overlay for "
          f"{scenario.adapt_time:.0f} simulated seconds ...")
    system.run_adaptation()

    snapshot = system.snapshot()
    print(f"  connected: {snapshot.is_connected()}")
    print(f"  mean node degree: {snapshot.mean_degree():.2f} "
          f"(target {system.config.c_degree})")
    print(f"  mean overlay link latency: "
          f"{snapshot.mean_link_latency() * 1000:.1f} ms")
    print(f"  mean tree link latency: "
          f"{snapshot.mean_tree_link_latency(system.latency) * 1000:.1f} ms "
          f"(random-pair average ≈ {system.latency.mean_one_way() * 1000:.0f} ms)")

    # An application subscribes by appending a delivery listener.
    deliveries = []
    system.nodes[3].delivery_listeners.append(
        lambda msg_id, size: deliveries.append(msg_id)
    )

    print(f"\nMulticasting {scenario.n_messages} messages from random sources ...")
    end = system.schedule_workload(start=system.sim.now + 0.1)
    system.run_until(end + 10.0)

    tracer = system.tracer
    receivers = sorted(system.live_node_ids())
    print(f"  reliability: {tracer.reliability(receivers):.6f}")
    print(f"  mean delay: {tracer.mean_delay(receivers) * 1000:.0f} ms")
    print(f"  90th percentile delay: "
          f"{tracer.delay_percentile(90, receivers) * 1000:.0f} ms")
    print(f"  worst delay: {tracer.max_delay(receivers) * 1000:.0f} ms")
    print(f"  receptions per delivery: {tracer.receptions_per_delivery():.4f} "
          f"(1.0 = no redundancy)")
    print(f"  node 3 observed {len(deliveries)} deliveries via its listener")

    # Introspection: render the dissemination tree's top levels.
    from repro.analysis import render_tree

    print("\nDissemination tree (top levels):")
    tree = render_tree(system.live_nodes(), max_depth=2)
    print("\n".join(tree.splitlines()[:15]))


if __name__ == "__main__":
    main()
