#!/usr/bin/env python
"""Mini Figure 3: compare all five protocols on one workload.

Runs GoCast, the two overlay-gossip ablations, push gossip and no-wait
gossip on identical scaled-down workloads, with and without a 20% crash
wave, and prints paper-style delay/reliability rows.

Run:  python examples/compare_protocols.py          (a few minutes)
      REPRO_SCALE=smoke python examples/compare_protocols.py   (fast)
"""

import os

from repro.experiments import fig3


def main() -> None:
    os.environ.setdefault("REPRO_SCALE", "smoke")
    for fail_fraction in (0.0, 0.2):
        label = "no failures" if fail_fraction == 0 else "20% concurrent failures"
        print(f"\n=== {label} ===")
        result = fig3.run(fail_fraction=fail_fraction)
        print(result.format_table())


if __name__ == "__main__":
    main()
