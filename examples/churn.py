#!/usr/bin/env python
"""Continuous churn: nodes keep joining and leaving while traffic flows.

The paper evaluates a one-shot crash wave; this example exercises the
self-healing machinery in steady state instead: every few seconds one
node leaves gracefully and a fresh node joins through the full join
protocol (bootstrap contact, member-list adoption, estimated-latency
neighbor selection).  Delivery to the current membership must stay
complete throughout.

Run:  python examples/churn.py
"""

from repro.core.node import GoCastNode
from repro.experiments import GoCastSystem, ScenarioConfig
from repro.sim.failures import ChurnProcess


def main() -> None:
    scenario = ScenarioConfig(
        protocol="gocast", n_nodes=64, adapt_time=30.0, n_messages=100,
        message_rate=20.0, seed=13,
    )
    # Reserve id space for joiners: the latency model covers 2x nodes.
    from repro.net.king import SyntheticKingModel

    latency = SyntheticKingModel(2 * scenario.n_nodes, seed=scenario.seed)
    system = GoCastSystem(scenario, latency=latency)
    system.run_adaptation()
    print(f"{scenario.n_nodes}-node group adapted; starting churn")

    next_id = scenario.n_nodes
    churn_rng = system.rngs.stream("churn")

    def one_leave() -> None:
        live = sorted(system.live_node_ids())
        # Never remove the tree root in this demo (root failover is
        # exercised in the tests; here we isolate join/leave churn).
        candidates = [n for n in live if n != system.root_id]
        victim = candidates[churn_rng.randrange(len(candidates))]
        system.nodes[victim].leave()

    def one_join() -> None:
        nonlocal next_id
        if next_id >= latency.size:
            return
        node = GoCastNode(
            next_id,
            system.sim,
            system.network,
            config=system.config,
            rng=system.rngs.node_stream(next_id),
            estimator=system.estimator,
            tracer=system.tracer,
            events=system.events,
        )
        system.nodes[next_id] = node
        node.start()
        bootstrap = sorted(system.live_node_ids() - {next_id})[0]
        node.join(bootstrap)
        next_id += 1

    churn = ChurnProcess(system.sim, interval=3.0, leave_callback=one_leave,
                         join_callback=one_join)
    churn.start()

    end = system.schedule_workload(start=system.sim.now + 0.5)
    system.run_until(end + 20.0)
    churn.stop()
    system.run_until(system.sim.now + 10.0)

    import numpy as np

    live = sorted(system.live_node_ids())
    snap = system.snapshot()
    print(f"\nAfter {churn.events} leave+join events:")
    print(f"  live nodes: {len(live)} (ids up to {max(live)})")
    print(f"  overlay connected: {snap.is_connected()}")
    print(f"  mean degree: {snap.mean_degree():.2f}")
    print(f"  messages sent: {system.tracer.n_messages}")
    # Long-lived members see normal latencies; joiners additionally
    # catch up on messages sent *before* they joined via gossip
    # anti-entropy, which shows up as a long (benign) delay tail.
    veterans = [n for n in live if n < scenario.n_nodes]
    vet_delays = system.tracer.delays(veterans)
    print(f"  surviving original members: {len(veterans)}")
    print(f"    reliability: {system.tracer.reliability(veterans):.6f}")
    print(f"    p50/p99 delay: {np.percentile(vet_delays, 50) * 1000:.0f} / "
          f"{np.percentile(vet_delays, 99) * 1000:.0f} ms")
    joiner_delays = system.tracer.delays([n for n in live if n >= scenario.n_nodes])
    if joiner_delays.size:
        print(f"  joiners caught up on {joiner_delays.size} older messages "
              f"(catch-up delay up to {joiner_delays.max():.1f} s)")


if __name__ == "__main__":
    main()
