#!/usr/bin/env python
"""Heterogeneous deployment: beefy broker nodes + adaptive overhead.

A realistic production shape the paper hints at but does not evaluate:
a few high-capacity "broker" machines take on triple the neighbor load
(capacity-aware degrees — "tuning node degree according to node
capacity can be accommodated in our protocol"), and all nodes run the
adaptive maintenance/gossip periods (the paper's future-work knob) so
the converged system goes quiet between bursts of traffic.

Run:  python examples/datacenter_brokers.py
"""

from repro.core.config import GoCastConfig
from repro.experiments import GoCastSystem, ScenarioConfig


def main() -> None:
    base = GoCastConfig(
        adaptive_maintenance=True,
        adaptive_gossip=True,
        maintenance_period_max=2.0,
        gossip_period_max=0.5,
    )
    broker = GoCastConfig(
        c_rand=2,
        c_near=12,
        adaptive_maintenance=True,
        adaptive_gossip=True,
        maintenance_period_max=2.0,
        gossip_period_max=0.5,
    )
    scenario = ScenarioConfig(
        protocol="gocast", n_nodes=72, adapt_time=40.0,
        n_messages=30, message_rate=30.0, gocast=base, seed=21,
    )
    brokers = {0: broker, 1: broker, 2: broker}
    system = GoCastSystem(scenario, config_overrides=brokers)
    system.run_adaptation()

    snap = system.snapshot()
    print("After adaptation:")
    for broker_id in brokers:
        node = system.nodes[broker_id]
        print(f"  broker {broker_id}: degree {node.overlay.table.degree} "
              f"(nearby {node.overlay.d_near}, random {node.overlay.d_rand})")
    regular = [system.nodes[i].overlay.table.degree for i in range(3, 72)]
    print(f"  regular nodes: mean degree {sum(regular) / len(regular):.2f}")
    print(f"  overlay connected: {snap.is_connected()}")

    # Quiet period: adaptive periods stretch, control traffic falls.
    before = system.network.messages_sent
    system.run_until(system.sim.now + 10.0)
    quiet_rate = (system.network.messages_sent - before) / (10 * 72)
    print(f"\nIdle control traffic: {quiet_rate:.1f} msgs/node/s "
          f"(periods stretched adaptively)")

    # Burst of traffic: everything snaps back and delivers.
    end = system.schedule_workload(start=system.sim.now + 0.1)
    system.run_until(end + 10.0)
    receivers = sorted(system.live_node_ids())
    print(f"\nBurst of {scenario.n_messages} messages:")
    print(f"  reliability: {system.tracer.reliability(receivers):.6f}")
    print(f"  mean delay: {system.tracer.mean_delay(receivers) * 1000:.0f} ms")


if __name__ == "__main__":
    main()
