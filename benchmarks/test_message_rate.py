"""Extension bench: delivery delay is flat in the message rate, and
gossip overhead amortizes (one summary carries many IDs)."""

from benchmarks.conftest import run_once
from repro.experiments import message_rate


def test_delay_flat_in_message_rate(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: message_rate.run(
            rates=(5.0, 25.0, 100.0),
            n_nodes=min(bench_scale["n_nodes"], 96),
            adapt_time=bench_scale["adapt_time"],
        ),
    )
    print()
    print(result.format_table())

    # Tree forwarding is rate-independent: delays within 25% across a
    # 20x rate sweep, reliability always perfect.
    assert result.delay_spread() < 1.25
    for outcome in result.outcomes:
        assert outcome.reliability == 1.0
    # Gossip overhead per message falls as summaries batch more IDs.
    per_msg = [o.gossips_per_message for o in result.outcomes]
    assert per_msg[-1] < 0.5 * per_msg[0]
