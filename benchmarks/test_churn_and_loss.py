"""Extension benches: sustained churn self-healing and datagram-loss robustness."""

from benchmarks.conftest import run_once
from repro.experiments import churn, loss


def test_sustained_churn_self_healing(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: churn.run(
            churn_intervals=(5.0, 2.0),
            n_nodes=min(bench_scale["n_nodes"], 96),
            adapt_time=bench_scale["adapt_time"],
        ),
    )
    print()
    print(result.format_table())

    for outcome in result.outcomes:
        # Long-lived members never miss a message, at any churn rate.
        assert outcome.veteran_reliability == 1.0
        assert outcome.connected
        # Degrees stay concentrated near the target despite churn.
        assert 5.0 <= outcome.mean_degree <= 7.5
        assert outcome.events > 0


def test_datagram_loss_robustness(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: loss.run(
            loss_rates=(0.0, 0.1, 0.3),
            n_nodes=min(bench_scale["n_nodes"], 96),
            adapt_time=bench_scale["adapt_time"],
            n_messages=bench_scale["n_messages"],
        ),
    )
    print()
    print(result.format_table())

    clean = result.outcomes[0]
    lossy = result.outcomes[-1]
    # Dissemination rides reliable channels: loss never costs delivery.
    for outcome in result.outcomes:
        assert outcome.reliability == 1.0
    # Heavy probe loss costs at most a modest link-quality penalty.
    assert lossy.mean_link_latency < 2.0 * clean.mean_link_latency
    assert lossy.mean_delay < 2.0 * clean.mean_delay
