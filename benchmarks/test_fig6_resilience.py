"""Figure 6 — largest connected component vs failed fraction and C_rand.

Paper shape to reproduce: with C_rand = 0 the overlay is partitioned
even before failures (nearby links never bridge continents); with
C_rand = 1 it survives 25% concurrent failures connected; C_rand = 4 is
barely better than 1 — the justification for one random link per node.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig6


def test_fig6_resilience(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: fig6.run(
            n_nodes=bench_scale["n_nodes"],
            adapt_time=bench_scale["adapt_time"],
            c_rand_values=(0, 1, 2, 4),
            trials=3,
        ),
    )
    print()
    print(result.format_table())

    # One random link keeps the overlay connected through 25% failures.
    assert result.q(1, 0.25) >= 0.99
    # More random links help only marginally beyond one.
    assert result.q(4, 0.25) - result.q(1, 0.25) < 0.05
    # Zero random links is the worst configuration at heavy failure.
    assert result.q(0, 0.5) <= result.q(1, 0.5)
    assert result.q(0, 0.5) <= result.q(4, 0.5)
