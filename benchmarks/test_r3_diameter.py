"""Summary result R3 — overlay diameter grows logarithmically with size.

Paper: "the diameter of the overlay grows from 6 hops to 10 hops when
the system size increases from 256 nodes to 8,192 nodes" — roughly one
extra hop per doubling, as expected of a degree-6 overlay with a random
link per node.
"""

from benchmarks.conftest import run_once
from repro.experiments import diameter


def test_r3_diameter(benchmark, bench_scale):
    base = max(32, bench_scale["n_nodes"] // 4)
    sizes = (base, 2 * base, 4 * base)
    result = run_once(
        benchmark,
        lambda: diameter.run(sizes=sizes, adapt_time=bench_scale["adapt_time"] / 2),
    )
    print()
    print(result.format_table())

    # Non-decreasing, small absolute values, logarithmic growth.
    ds = result.diameters
    assert all(a <= b for a, b in zip(ds, ds[1:]))
    assert ds[-1] <= 12
    assert result.growth_is_logarithmic()
