"""Figure 5 — adaptation of the overlay (5a: degrees) and tree (5b: latency).

Paper shape to reproduce: starting all-random, the degree distribution
concentrates on the target degree 6 within seconds (22% -> 57% after
5 s -> ~60% converged; average 6.4); mean overlay-link latency drops
steeply in the first minute; tree links converge near 15 ms versus the
91 ms random-pair average.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig5


def test_fig5_adaptation(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: fig5.run(
            n_nodes=bench_scale["n_nodes"],
            duration=bench_scale["adapt_time"],
            histogram_times=(0.0, 5.0),
        ),
    )
    print()
    print(result.format_table())

    duration = result.times[-1]
    # 5a: convergence toward the target degree.
    initial = result.degree_fraction_at(0.0, result.target_degree)
    after_5s = result.degree_fraction_at(5.0, result.target_degree)
    final = result.degree_fraction_at(duration, result.target_degree)
    assert after_5s > initial
    assert final >= 0.45  # paper: ~60%
    assert 5.8 <= result.final_mean_degree <= 7.0  # paper: 6.4

    # 5b: link quality improves dramatically; tree links are the best.
    assert result.overlay_latency[-1] < 0.6 * result.overlay_latency[0]
    assert result.tree_latency[-1] < result.overlay_latency[-1]
    # Tree links far below the random-pair average (paper: 15.5 vs 91 ms).
    assert result.tree_latency[-1] < 0.4 * result.random_pair_latency
    # Random links stay long; nearby links got short.
    assert result.nearby_latency[-1] < 0.5 * result.random_latency[-1]
