"""Summary result R5 — push-gossip delay barely improves with fanout.

Paper: fanout 5 -> 9 cuts delay only ~5%; 9 -> 15 has virtually no
impact.  The delay floor is set by the gossip period (one target per
0.1 s) and the summary-then-pull round trip, not by the fanout.
"""

from benchmarks.conftest import run_once
from repro.experiments import fanout


def test_r5_fanout_sweep(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: fanout.run(
            fanouts=(5, 9, 15),
            n_nodes=bench_scale["n_nodes"],
            n_messages=bench_scale["n_messages"],
        ),
    )
    print()
    print(result.format_table())

    # Tripling the fanout buys only a modest improvement (paper: ~5%).
    assert result.relative_improvement(5, 15) < 0.30
    # Reliability does improve with fanout, though.
    assert result.results[15].reliability >= result.results[5].reliability
