"""Summary result R1 — link changes per second drop sharply over time.

Paper: "the number of changed links per second drops exponentially over
time" as the overlay converges from its all-random start.
"""

from benchmarks.conftest import run_once
from repro.experiments import adaptation


def test_r1_link_churn(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: adaptation.run(
            n_nodes=bench_scale["n_nodes"],
            duration=bench_scale["adapt_time"],
            bucket=bench_scale["adapt_time"] / 16,
        ),
    )
    print()
    print(result.format_table())

    # Early churn dwarfs late churn (paper: exponential decay).
    assert result.early_rate() > 5.0 * max(result.late_rate(), 0.1)
