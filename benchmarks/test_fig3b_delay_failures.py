"""Figure 3(b) — delay CDFs under 20% concurrent failures, no repair.

Paper shape to reproduce: overlay protocols still deliver everything to
every live node; GoCast slows (tree fragments bridged by gossip) but
keeps the lead (headline: 2.3x faster than push gossip); push gossip
loses a larger fraction of (message, node) pairs than in 3(a).
"""

from benchmarks.conftest import run_once
from repro.experiments import fig3


def test_fig3b_delay_with_failures(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: fig3.run(fail_fraction=0.2, drain_time=45.0, **bench_scale),
    )
    print()
    print(result.format_table())

    r = result.results
    assert r["gocast"].reliability == 1.0
    assert r["proximity"].reliability == 1.0
    assert r["random_overlay"].reliability == 1.0
    assert r["push_gossip"].reliability < 1.0
    assert r["gocast"].mean_delay < r["proximity"].mean_delay
    assert r["gocast"].mean_delay < r["push_gossip"].mean_delay
    # Headline factor 2.3x; shape check >= 1.5x.
    assert result.speedup_vs_gossip() >= 1.5
