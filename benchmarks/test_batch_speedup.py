"""Batch-runner parallel speedup: 16 fig-3-style trials, 4 workers.

The batch runner exists to make paper-scale multi-trial statistics
cheap: N independent trials should cost ~N/workers sequential trials
plus pool overhead.  This benchmark runs a 16-trial GoCast batch (the
Figure 3 scenario shape) both sequentially and on 4 workers, prints the
wall-clock ratio, asserts bit-identical outputs, and loosely asserts a
>= 2.5x speedup — only on machines with at least 4 usable cores, since
the ratio is meaningless on a starved box.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_batch_speedup.py -s
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.experiments.batch import run_batch
from repro.experiments.scenarios import ScenarioConfig

N_TRIALS = 16
WORKERS = 4
#: Loose floor for a 4-worker pool (perfect scaling would be ~4x).
MIN_SPEEDUP = 2.5


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_batch_speedup_16_trials_4_workers():
    scenario = ScenarioConfig(
        protocol="gocast", n_nodes=64, adapt_time=30.0, n_messages=20,
        drain_time=20.0, seed=3,
    )

    t0 = time.perf_counter()
    serial = run_batch(scenario, n_trials=N_TRIALS, workers=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    pooled = run_batch(scenario, n_trials=N_TRIALS, workers=WORKERS)
    pooled_s = time.perf_counter() - t0

    speedup = serial_s / pooled_s
    cores = _usable_cores()
    print(
        f"\n{N_TRIALS} trials: sequential {serial_s:.1f}s, "
        f"{WORKERS} workers {pooled_s:.1f}s -> {speedup:.2f}x "
        f"({cores} usable cores)"
    )
    print(pooled.format_table())

    # Correctness before speed: parallelism must not change the result.
    assert np.array_equal(serial.delays, pooled.delays)
    assert serial.mean_delay == pooled.mean_delay
    assert serial.reliability == pooled.reliability

    if cores < WORKERS:
        pytest.skip(
            f"only {cores} usable core(s); the {MIN_SPEEDUP}x assertion "
            f"needs >= {WORKERS}"
        )
    assert speedup >= MIN_SPEEDUP, (
        f"parallel batch only {speedup:.2f}x faster than sequential "
        f"(expected >= {MIN_SPEEDUP}x on {cores} cores)"
    )
