#!/usr/bin/env python
"""Core-engine benchmark entry point (see repro.experiments.bench).

Usage (from the repo root):

    PYTHONPATH=src python benchmarks/bench_core.py            # full matrix
    PYTHONPATH=src python benchmarks/bench_core.py --smoke    # CI fast lane

Writes/merges ``BENCH_core.json``; ``repro bench`` is the same harness
behind the CLI.  ``docs/PERFORMANCE.md`` explains how to read and
update the report.
"""

import sys

from repro.experiments.bench import main

if __name__ == "__main__":
    sys.exit(main())
