"""Micro-benchmarks of the simulation substrate itself.

Not paper artifacts — these track the cost of the hot paths that bound
how large a simulation fits in a time budget: raw event throughput,
transport sends, and a running GoCast node's per-simulated-second cost.
"""

import random

from repro.experiments.runner import run_delay_experiment
from repro.experiments.scenarios import ScenarioConfig
from repro.net.latency import ConstantLatencyModel
from repro.sim.engine import Simulator
from repro.sim.transport import Network


def test_engine_event_throughput(benchmark):
    def run_events():
        sim = Simulator()
        for i in range(20_000):
            sim.schedule(i * 0.001, lambda: None)
        sim.run()
        return sim.events_executed

    executed = benchmark(run_events)
    assert executed == 20_000


def test_transport_send_throughput(benchmark):
    class Sink:
        def __init__(self, node_id):
            self.node_id = node_id
            self.count = 0

        def handle_message(self, src, msg):
            self.count += 1

        def handle_send_failure(self, dst, msg):
            pass

    def run_sends():
        sim = Simulator()
        network = Network(sim, ConstantLatencyModel(2, 0.001), rng=random.Random(1))
        a, b = Sink(0), Sink(1)
        network.register(a)
        network.register(b)
        for _ in range(10_000):
            network.send(0, 1, "payload")
        sim.run()
        return b.count

    delivered = benchmark(run_sends)
    assert delivered == 10_000


def test_small_gocast_run_cost(benchmark):
    def run_sim():
        scenario = ScenarioConfig(
            protocol="gocast", n_nodes=32, adapt_time=10.0, n_messages=10,
            drain_time=5.0, seed=1,
        )
        return run_delay_experiment(scenario)

    result = benchmark.pedantic(run_sim, rounds=1, iterations=1)
    assert result.reliability == 1.0
