"""Summary result R4 — bottleneck physical-link stress, GoCast vs gossip.

Paper: routed over AS-level Internet snapshots, GoCast imposes 4-7x
less traffic on bottleneck links than fanout-5 push gossip, because its
proximity-aware links keep most hops inside regions while random gossip
repeatedly crosses the backbone hubs.
"""

from benchmarks.conftest import run_once
from repro.experiments import linkstress


def test_r4_link_stress(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: linkstress.run(
            n_members=min(bench_scale["n_nodes"], 128),
            adapt_time=bench_scale["adapt_time"],
            n_messages=bench_scale["n_messages"],
        ),
    )
    print()
    print(result.format_table())

    # GoCast's long-haul links carry several times less dissemination
    # traffic (paper band: 4-7x; shape check >= 3x).
    assert result.stress_reduction() >= 3.0
    # Its worst single backbone link is also far lighter.
    gocast_max, _ = result.backbone_load("gocast")
    gossip_max, _ = result.backbone_load("push_gossip")
    assert gocast_max < 0.5 * gossip_max
