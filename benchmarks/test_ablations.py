"""Ablation benches for the design choices DESIGN.md calls out.

Each compares the paper's setting against the alternative it rejects
(Section 2.2.3's discussion) on convergence cost and outcome quality.
"""

from benchmarks.conftest import run_once
from repro.experiments import ablations


def test_ablation_c4_factor(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: ablations.run_c4_factor(
            n_nodes=bench_scale["n_nodes"], adapt_time=bench_scale["adapt_time"]
        ),
    )
    print()
    print(result.format_table())
    paper = result.outcomes["paper (0.5)"]
    greedy = result.outcomes["greedy (0.99)"]
    # Greedy replacement churns more links for a comparable outcome.
    assert greedy.total_link_changes > paper.total_link_changes
    assert paper.connected


def test_ablation_drop_threshold(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: ablations.run_drop_threshold(
            n_nodes=bench_scale["n_nodes"], adapt_time=bench_scale["adapt_time"]
        ),
    )
    print()
    print(result.format_table())
    paper = result.outcomes["paper (+2)"]
    aggressive = result.outcomes["aggressive (+1)"]
    # Paper: the aggressive threshold "increases the number of link
    # changes by almost one third" and "takes longer to stabilize".
    # The durable signature is the post-convergence churn rate (totals
    # are dominated by the initial all-random convergence, which both
    # variants share); the paper's own factor is ~1.33.
    assert aggressive.late_churn_rate > 1.2 * max(paper.late_churn_rate, 0.05)
    assert paper.connected and aggressive.connected


def test_ablation_c1_bound(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: ablations.run_c1_bound(
            n_nodes=bench_scale["n_nodes"], adapt_time=bench_scale["adapt_time"]
        ),
    )
    print()
    print(result.format_table())
    paper = result.outcomes["paper (C_near-1)"]
    strict = result.outcomes["strict (C_near)"]
    # Paper: the strict bound "would produce an overlay whose link
    # latencies are dramatically higher".
    assert strict.nearby_link_latency > paper.nearby_link_latency
    assert paper.connected
