"""Figure 3(a) — delay CDFs of five protocols, no failures.

Paper shape to reproduce: GoCast fastest by a wide margin (headline:
8.9x lower delay than push gossip), then no-wait gossip, then proximity
overlay, then random overlay ~ push gossip; the overlay protocols
deliver every message to every node while push gossip misses some pairs.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig3


def test_fig3a_delay_no_failures(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: fig3.run(fail_fraction=0.0, drain_time=30.0, **bench_scale),
    )
    print()
    print(result.format_table())

    r = result.results
    # Ordering: GoCast beats everything.
    for other in ("proximity", "random_overlay", "push_gossip", "nowait_gossip"):
        assert r["gocast"].mean_delay < r[other].mean_delay
    # Proximity-aware gossip beats random-overlay gossip.
    assert r["proximity"].mean_delay < r["random_overlay"].mean_delay
    # Overlay protocols are perfectly reliable; push gossip is not.
    assert r["gocast"].reliability == 1.0
    assert r["proximity"].reliability == 1.0
    assert r["random_overlay"].reliability == 1.0
    assert r["push_gossip"].reliability < 1.0
    # Headline factor: the paper reports 8.9x; shape check >= 4x.
    assert result.speedup_vs_gossip() >= 4.0
