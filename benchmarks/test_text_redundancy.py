"""In-text claim T-red — delivery redundancy and the f-delay optimization.

Paper: a node receives a message on average 1.02 times (gossip racing
the tree); delaying pull requests until the message is f = 0.3 s old
cuts the redundant probability to ~0.0005 with almost no delay impact.
"""

from benchmarks.conftest import run_once
from repro.experiments import text_metrics


def test_text_redundancy(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: text_metrics.run_redundancy(
            n_nodes=bench_scale["n_nodes"],
            adapt_time=bench_scale["adapt_time"],
            n_messages=bench_scale["n_messages"],
            f_values=(0.0, 0.3),
        ),
    )
    print()
    print(result.format_table())

    base = result.receptions(0.0)
    delayed = result.receptions(0.3)
    # Small redundancy without the optimization (paper: 1.02).
    assert 1.0 <= base < 1.15
    # The f-delay reduces redundancy...
    assert delayed <= base
    assert delayed < 1.02
    # ...without wrecking delay (within 50% of the baseline mean).
    assert result.by_f[0.3][1] < result.by_f[0.0][1] * 1.5
