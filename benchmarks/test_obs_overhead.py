"""Zero-overhead assertion for the observability layer.

The instrumentation contract (docs/OBSERVABILITY.md): with
observability disabled, a fixed-seed run is bit-identical to the
uninstrumented path and costs the same wall-clock to within noise.
Every hook is guarded by a single ``obs.enabled`` attribute check, so
the disabled path adds only those checks — this benchmark measures the
two paths back to back and fails if the disabled layer ever grows a
real cost (e.g. someone adds an unguarded hook).
"""

import time

import numpy as np

from repro.experiments.runner import run_delay_experiment
from repro.experiments.scenarios import paper_scenario
from repro.obs import Observability

#: Accept up to this fractional slowdown for the disabled path.  Single
#: runs jitter by a few percent, so both arms are measured interleaved
#: (warmup round discarded, min over the rest) before comparing.
MAX_DISABLED_OVERHEAD = 0.05
REPEATS = 4


def _scenario():
    return paper_scenario("gocast", scale="smoke", n_nodes=48, seed=11)


def _interleaved_best(fn_a, fn_b, repeats=REPEATS):
    """(best_a, last_result_a, best_b, last_result_b), arms alternated."""
    best_a = best_b = float("inf")
    result_a = result_b = None
    for i in range(repeats + 1):
        t0 = time.perf_counter()
        result_a = fn_a()
        dt_a = time.perf_counter() - t0
        t0 = time.perf_counter()
        result_b = fn_b()
        dt_b = time.perf_counter() - t0
        if i == 0:
            continue  # warmup: allocator and caches settle
        best_a = min(best_a, dt_a)
        best_b = min(best_b, dt_b)
    return best_a, result_a, best_b, result_b


def test_disabled_observability_costs_nothing(benchmark):
    def compare():
        return _interleaved_best(
            lambda: run_delay_experiment(_scenario()),
            lambda: run_delay_experiment(
                _scenario(), obs=Observability(enabled=False)
            ),
        )

    plain_s, plain, disabled_s, disabled = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )

    # Bit-identical simulation with the layer disabled.
    assert np.array_equal(plain.delays, disabled.delays)
    assert plain.sent_by_type == disabled.sent_by_type
    assert plain.messages_sent == disabled.messages_sent

    overhead = disabled_s / plain_s - 1.0
    print(
        f"\nplain={plain_s:.3f}s disabled={disabled_s:.3f}s "
        f"overhead={overhead:+.1%} (budget {MAX_DISABLED_OVERHEAD:.0%})"
    )
    assert overhead <= MAX_DISABLED_OVERHEAD


def test_disabled_observability_with_series_period_costs_nothing(benchmark):
    """The capacity sampler is gated on ``obs.enabled`` like everything
    else: a disabled Observability with ``series_period`` set must never
    arm the sampling timer, so the run stays bit-identical and within
    the standard disabled-path budget."""

    def compare():
        return _interleaved_best(
            lambda: run_delay_experiment(_scenario()),
            lambda: run_delay_experiment(
                _scenario(),
                obs=Observability(enabled=False, series_period=1.0),
            ),
        )

    plain_s, plain, disabled_s, disabled = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )

    assert np.array_equal(plain.delays, disabled.delays)
    assert plain.sent_by_type == disabled.sent_by_type
    assert disabled.metrics is None or "capacity" not in (disabled.metrics or {})

    overhead = disabled_s / plain_s - 1.0
    print(
        f"\nplain={plain_s:.3f}s disabled+series={disabled_s:.3f}s "
        f"overhead={overhead:+.1%} (budget {MAX_DISABLED_OVERHEAD:.0%})"
    )
    assert overhead <= MAX_DISABLED_OVERHEAD


def test_enabled_observability_overhead_is_bounded(benchmark):
    """Informative companion: the *enabled* layer should stay cheap
    (counters and ring-buffer appends), well under 2x."""

    def compare():
        plain_s, _, enabled_s, result = _interleaved_best(
            lambda: run_delay_experiment(_scenario()),
            lambda: run_delay_experiment(_scenario(), obs=Observability()),
            repeats=2,
        )
        return plain_s, enabled_s, result

    plain_s, enabled_s, result = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert result.metrics is not None
    overhead = enabled_s / plain_s - 1.0
    print(f"\nenabled instrumentation overhead: {overhead:+.1%}")
    assert enabled_s < 2.0 * plain_s
