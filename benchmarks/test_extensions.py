"""Extension benches: footnote 1 (push-pull) and the constant-overhead claim."""

from benchmarks.conftest import run_once
from repro.experiments import extensions


def test_footnote1_pushpull_reliability(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: extensions.run_pushpull(
            fanouts=(2, 3, 5), n_nodes=bench_scale["n_nodes"]
        ),
    )
    print()
    print(result.format_table())

    # Push-pull dominates push-only at every fanout and is near-perfect
    # already at fanout 2 (footnote 1 / Karp et al.).
    for f in result.fanouts:
        assert result.reliability[("push-pull", f)] >= result.reliability[("push", f)]
    assert result.reliability[("push-pull", 2)] > 0.99
    assert result.reliability[("push", 2)] < 0.95
    # The footnote's challenge is met: both go silent when idle.
    assert result.idle_traffic["push-pull"] == 0


def test_constant_per_node_overhead(benchmark):
    result = run_once(
        benchmark,
        lambda: extensions.run_overhead(sizes=(32, 64, 128)),
    )
    print()
    print(result.format_table())

    # Paper: "the maintenance cost and gossip overhead at a node is
    # independent of the size of the system."  Allow 50% wiggle for the
    # small-size end effects.
    assert result.max_growth() < 1.5
