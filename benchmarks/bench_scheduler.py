#!/usr/bin/env python
"""Scheduler microbenchmark: binary heap vs calendar queue.

Drives the *engine alone* — no protocol logic, no transport — with the
recorded timer workload mix the GoCast simulations generate: a standing
population of staggered 0.1 s periodic timers, each fire scheduling a
couple of fire-and-forget deliveries 20–140 ms out, with a slice of the
population periodically cancelled and rescheduled (churn corpses).
That isolates the scheduler's contribution to the end-to-end numbers
in ``BENCH_core.json``: every mode executes the exact same event
stream (same seed, same counts — asserted), so the wall-time ratio is
purely the scheduler.

Modes:

- ``heap``          — plain binary heap (``REPRO_SIM_OPTS=0`` engine)
- ``wheel,pool``    — the PR-4 configuration (heap + timer wheel + pool)
- ``calqueue,wheel``— calendar queue without batched dispatch
- ``all``           — calendar queue + batched same-timestamp dispatch

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/bench_scheduler.py            # full
    PYTHONPATH=src python benchmarks/bench_scheduler.py --smoke    # CI

The full run merges a ``scheduler`` section into ``BENCH_core.json``
and appends one record to the run ledger (the PR-6 hooks), so
``repro obs regress`` can gate scheduler regressions like any other
perf number.
"""

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.experiments.bench import DEFAULT_OUT
from repro.obs.ledger import environment_provenance, record_run
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer

#: (label, Simulator opts) — labels are the BENCH section/ledger keys.
MODES = (
    ("heap", frozenset()),
    ("wheel_pool", frozenset({"wheel", "pool"})),
    ("calqueue", frozenset({"calqueue", "wheel"})),
    ("all", frozenset({"calqueue", "wheel", "batch"})),
)


def run_workload(opts, n_timers=1024, duration=40.0, fanout=3, seed=7):
    """One deterministic timer-mix run; returns (wall_s, events).

    The knobs are matched to the recorded N=512 GoCast run: ~1k wheel
    timers and a standing population of ~13k in-flight deliveries
    (fanout x mean-latency / period), with delivery latencies spanning
    the King range plus multi-hop gossip chains (50–800 ms).
    """
    rng = random.Random(seed)
    sim = Simulator(opts=opts)
    # Pre-draw everything random so each mode replays the identical
    # schedule (the engine is deterministic; the draws must be too).
    phases = [0.1 * rng.random() for _ in range(n_timers)]
    latencies = [0.05 + 0.75 * rng.random() for _ in range(4096)]
    churn_at = [2.0 + 36.0 * rng.random() for _ in range(n_timers // 8)]

    sink = 0
    lat_i = 0

    def deliver():
        nonlocal sink
        sink += 1

    timers = []

    def make_tick():
        def tick():
            # A timer fire fans out `fanout` deliveries, like a gossip
            # round fanning out messages.
            nonlocal lat_i
            for _ in range(fanout):
                sim.schedule_anon(latencies[lat_i & 4095], deliver)
                lat_i += 1

        return tick

    for i in range(n_timers):
        t = PeriodicTimer(sim, 0.1, make_tick())
        t.start(phase=phases[i])
        timers.append(t)

    # Churn: stop-and-restart a slice of the population mid-run,
    # leaving lazy-cancel corpses for the scheduler to skip/compact.
    def churn(idx):
        timers[idx].stop()
        timers[idx].start(phase=0.05)

    for j, at in enumerate(churn_at):
        sim.schedule_at(at, churn, j)

    t0 = time.perf_counter()
    sim.run_until(duration)
    wall = time.perf_counter() - t0
    return wall, sim.events_executed


def bench_modes(n_timers, duration, repeats):
    # Round-robin the repeats across modes rather than finishing one
    # mode before starting the next: if machine load drifts during the
    # benchmark (thermal throttling, noisy neighbours), sequential
    # ordering systematically penalises whichever mode runs last.
    walls = {label: [] for label, _ in MODES}
    events_by_mode = {}
    for _ in range(repeats):
        for label, opts in MODES:
            wall, events = run_workload(opts, n_timers=n_timers, duration=duration)
            walls[label].append(wall)
            events_by_mode[label] = events
    reference_events = events_by_mode[MODES[0][0]]
    results = {}
    for label, _ in MODES:
        # Identical event streams are the whole point; a drift here
        # means a scheduler bug, not noise.
        assert events_by_mode[label] == reference_events, (
            f"{label} executed {events_by_mode[label]} events, "
            f"reference {reference_events}"
        )
        best = min(walls[label])
        results[label] = {
            "wall_s_best": round(best, 4),
            "wall_s_all": [round(w, 4) for w in walls[label]],
            "events_executed": reference_events,
            "events_per_sec": round(reference_events / best, 1) if best else 0.0,
        }
    return results


def format_table(results):
    base = results.get("heap", {}).get("wall_s_best")
    lines = [f"{'mode':<14} {'events':>9} {'wall(s)':>9} {'ev/sec':>11} {'vs heap':>8}"]
    for label, entry in results.items():
        speed = (
            f"{base / entry['wall_s_best']:7.2f}x"
            if base and entry["wall_s_best"]
            else "     --"
        )
        lines.append(
            f"{label:<14} {entry['events_executed']:>9} "
            f"{entry['wall_s_best']:9.3f} {entry['events_per_sec']:11.1f} {speed}"
        )
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="bench_scheduler",
        description="Microbenchmark the event scheduler (heap vs calendar queue).",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny run, no report write (CI fast lane)",
    )
    parser.add_argument("--timers", type=int, default=1024)
    parser.add_argument("--duration", type=float, default=40.0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out", type=str, default=DEFAULT_OUT,
        help=f"report to merge the 'scheduler' section into (default {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        n_timers, duration, repeats, out_path = 64, 5.0, 1, None
    else:
        n_timers, duration, repeats = args.timers, args.duration, args.repeats
        out_path = args.out

    results = bench_modes(n_timers, duration, repeats)
    print(format_table(results))

    env = environment_provenance()
    section = {
        "commit": env.get("commit"),
        "python": env.get("python"),
        "env": env,
        "workload": {"n_timers": n_timers, "duration": duration,
                     "repeats": repeats, "seed": 7},
        "modes": results,
    }
    if out_path is not None:
        report = {}
        path = Path(out_path)
        if path.exists():
            try:
                report = json.loads(path.read_text())
            except (OSError, ValueError):
                report = {}
        report["scheduler"] = section
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"\nmerged 'scheduler' section into {out_path}")

    # PR-6 ledger hooks: perf numbers as metrics (tolerance-checked by
    # `repro obs regress`), the deterministic count as an exact field.
    metrics = {
        f"{label}.events_per_sec": entry["events_per_sec"]
        for label, entry in results.items()
    }
    metrics.update(
        {f"{label}.wall_s_best": entry["wall_s_best"] for label, entry in results.items()}
    )
    record_run(
        "bench",
        "scheduler",
        metrics=metrics,
        exact={"events_executed": results["heap"]["events_executed"]},
        scenario={"n_timers": n_timers, "duration": duration,
                  "repeats": repeats, "seed": 7},
        seeds=[7],
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
