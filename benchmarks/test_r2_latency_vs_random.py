"""Summary result R2 — mean link latency grows ~linearly with C_rand.

Paper: "the average latency of the overlay links grows almost linearly
with the number of random links, which again justifies our use of only
one random link per node."
"""

from benchmarks.conftest import run_once
from repro.experiments import random_links


def test_r2_latency_vs_random_links(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: random_links.run(
            n_nodes=bench_scale["n_nodes"],
            adapt_time=bench_scale["adapt_time"],
            c_rand_values=(0, 1, 2, 3, 4, 5),
        ),
    )
    print()
    print(result.format_table())

    lat = result.mean_overlay_latency
    # Strictly more random links -> strictly worse mean latency.
    assert all(a < b for a, b in zip(lat, lat[1:]))
    # Close to linear (paper: "almost linearly").
    assert result.linear_fit_r2() > 0.95
