"""In-text claim T-deg — converged degree splits.

Paper: "approximately 88% of nodes have C_rand random neighbors and 12%
of nodes have C_rand + 1"; "about 70% of nodes have C_near nearby
neighbors and about 30% have C_near + 1".
"""

from benchmarks.conftest import run_once
from repro.experiments import text_metrics


def test_text_degree_split(benchmark, bench_scale):
    result = run_once(
        benchmark,
        lambda: text_metrics.run_degree_split(
            n_nodes=bench_scale["n_nodes"], adapt_time=bench_scale["adapt_time"]
        ),
    )
    print()
    print(result.format_table())

    # Random degrees concentrate on {C_rand, C_rand + 1}, mostly C_rand.
    at_target = result.random_split.get(result.c_rand, 0.0)
    at_plus_one = result.random_split.get(result.c_rand + 1, 0.0)
    assert at_target + at_plus_one >= 0.9
    assert at_target > at_plus_one

    # Nearby degrees concentrate on {C_near, C_near + 1}.
    near_target = result.nearby_split.get(result.c_near, 0.0)
    near_plus_one = result.nearby_split.get(result.c_near + 1, 0.0)
    assert near_target + near_plus_one >= 0.75
    assert near_target > 0.3
