"""Figure 1 — analytic push-gossip reliability curves.

Regenerates both curves at the paper's exact parameters (n = 1024,
fanout 1..25).  Checked against the paper: reliability for 1,000
messages stays below 0.5 until fanout 15.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig1


def test_fig1_reliability(benchmark):
    result = run_once(benchmark, lambda: fig1.run(n=1024))
    print()
    print(result.format_table())
    assert result.min_fanout_for_half == 15
    # Single-message curve crosses 0.99 before fanout 12.
    assert any(p > 0.99 for f, p in zip(result.fanouts, result.p_one_message) if f <= 12)
