"""Extension bench: root-failover timing (Section 2.3's unquantified claim)."""

from benchmarks.conftest import run_once
from repro.experiments import failover


def test_root_failover_timing(benchmark, bench_scale):
    timeout = 12.0
    result = run_once(
        benchmark,
        lambda: failover.run(
            seeds=(1, 2, 3),
            n_nodes=min(bench_scale["n_nodes"], 96),
            adapt_time=bench_scale["adapt_time"],
            heartbeat_timeout=timeout,
        ),
    )
    print()
    print(result.format_table())

    for outcome in result.outcomes:
        # A claim appears within the timeout plus a little slack...
        assert outcome.claim_time < timeout + 5.0
        # ...and the whole system follows one new root within roughly a
        # further heartbeat flood (the ex-neighbor rule gives the first
        # claim; competing claims die out under the precedence order).
        assert outcome.convergence_time < 2.0 * timeout + 10.0
        # Delivery never suffered: gossip carries the headless window.
        assert outcome.reliability_through_transition == 1.0
    # The paper's rule: a neighbor of the dead root takes over.
    assert any(o.new_root_was_neighbor for o in result.outcomes)
