"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table/figure of the paper (see
DESIGN.md's per-experiment index) and prints the same rows/series the
paper reports.  Simulations are expensive, so each benchmark runs its
experiment exactly once (``pedantic(rounds=1, iterations=1)``).

Scale is controlled by ``REPRO_BENCH_SCALE``:

* ``smoke``   (default) — 96 nodes, 40 s adaptation: minutes, preserves
  every qualitative result.
* ``default`` — 256 nodes, 120 s adaptation: tens of minutes, close to
  quantitative agreement.
* ``full``    — the paper's 1,024 nodes and 500 s adaptation: hours
  (pure Python is ~2 orders slower than the paper's C++ simulator).
"""

from __future__ import annotations

import os

import pytest

BENCH_SCALES = {
    "smoke": dict(n_nodes=96, adapt_time=40.0, n_messages=40),
    "default": dict(n_nodes=256, adapt_time=120.0, n_messages=100),
    "full": dict(n_nodes=1024, adapt_time=500.0, n_messages=1000),
}


@pytest.fixture(scope="session")
def bench_scale():
    name = os.environ.get("REPRO_BENCH_SCALE", "smoke")
    if name not in BENCH_SCALES:
        raise KeyError(f"REPRO_BENCH_SCALE={name!r}; choose from {sorted(BENCH_SCALES)}")
    return dict(BENCH_SCALES[name])


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
