"""Figure 4 — GoCast delay at two system sizes, 0% and 20% failures.

Paper shape to reproduce: with no failures the small- and large-system
CDFs nearly coincide (0.33 s vs 0.42 s full-coverage delay at 1k/8k);
with 20% failures the large system grows a longer tail (~1.6x the
worst-case delay).  Moderate growth under a 4-8x size increase is the
scalability claim.
"""

from benchmarks.conftest import run_once
from repro.experiments import fig4


def test_fig4_scalability(benchmark, bench_scale):
    small = bench_scale["n_nodes"]
    result = run_once(
        benchmark,
        lambda: fig4.run(
            small_n=small,
            large_n=4 * small,
            adapt_time=bench_scale["adapt_time"],
            n_messages=bench_scale["n_messages"],
        ),
    )
    print()
    print(result.format_table())

    # Reliability stays perfect at both sizes, with and without failures.
    for res in result.results.values():
        assert res.reliability == 1.0
    # No-failure delay grows only modestly with 4x the nodes.
    assert result.tail_stretch(0.0) < 2.0
    # Failures stretch the tail more at the larger size than the
    # no-failure case does (the paper's fragmentation argument).
    assert result.tail_stretch(0.2) >= result.tail_stretch(0.0) * 0.8
