"""Shim enabling legacy editable installs in offline environments.

The execution environment has no ``wheel`` package and no network, so
PEP-517 editable installs fail; ``pip install -e .`` falls back to this
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
