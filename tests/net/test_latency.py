"""Unit tests for the latency model hierarchy."""

import numpy as np
import pytest

from repro.net.latency import (
    ConstantLatencyModel,
    EuclideanLatencyModel,
    MatrixLatencyModel,
)


def test_constant_model_basics():
    model = ConstantLatencyModel(4, latency=0.05)
    assert model.size == 4
    assert model.one_way(0, 1) == 0.05
    assert model.one_way(1, 1) == 0.0
    assert model.rtt(0, 2) == 0.10


def test_constant_model_bounds_checked():
    model = ConstantLatencyModel(4)
    with pytest.raises(IndexError):
        model.one_way(0, 4)
    with pytest.raises(ValueError):
        ConstantLatencyModel(0)
    with pytest.raises(ValueError):
        ConstantLatencyModel(4, latency=-1.0)


def test_matrix_model_symmetric_lookup():
    m = np.array([[0.0, 0.1, 0.2], [0.1, 0.0, 0.3], [0.2, 0.3, 0.0]])
    model = MatrixLatencyModel(m)
    assert model.one_way(0, 2) == 0.2
    assert model.one_way(2, 0) == 0.2
    assert model.size == 3


@pytest.mark.parametrize(
    "bad",
    [
        np.ones((2, 3)),                               # not square
        np.array([[0.0, 1.0], [2.0, 0.0]]),            # asymmetric
        np.array([[0.5, 0.1], [0.1, 0.0]]),            # nonzero diagonal
        np.array([[0.0, -0.1], [-0.1, 0.0]]),          # negative
    ],
)
def test_matrix_model_validation(bad):
    with pytest.raises(ValueError):
        MatrixLatencyModel(bad)


def test_euclidean_model_distances():
    model = EuclideanLatencyModel([[0.0, 0.0], [3.0, 4.0]], seconds_per_unit=0.01)
    assert model.one_way(0, 1) == pytest.approx(0.05)
    assert model.one_way(0, 0) == 0.0


def test_euclidean_model_validation():
    with pytest.raises(ValueError):
        EuclideanLatencyModel([1.0, 2.0])
    with pytest.raises(ValueError):
        EuclideanLatencyModel([[0.0]], seconds_per_unit=0.0)


def test_mean_one_way_exact_for_small_models():
    m = np.array([[0.0, 0.1, 0.2], [0.1, 0.0, 0.3], [0.2, 0.3, 0.0]])
    model = MatrixLatencyModel(m)
    assert model.mean_one_way() == pytest.approx(0.2)


def test_mean_one_way_sampled_close_to_exact():
    rng = np.random.default_rng(0)
    n = 300
    m = rng.uniform(0.01, 0.2, size=(n, n))
    m = (m + m.T) / 2
    np.fill_diagonal(m, 0.0)
    model = MatrixLatencyModel(m)
    exact = m[np.triu_indices(n, k=1)].mean()
    assert model.mean_one_way(sample=20000) == pytest.approx(exact, rel=0.05)


def test_mean_one_way_sampling_honors_requested_size():
    """The sampled path must average exactly ``sample`` valid (a != b)
    pairs: self-pair collisions are redrawn, not silently dropped (the
    old masking bug shrank the effective sample)."""

    class CountingModel(ConstantLatencyModel):
        def __init__(self, size):
            super().__init__(size, latency=0.05)
            self.calls = 0

        def one_way(self, a, b):
            self.calls += 1
            return super().one_way(a, b)

    model = CountingModel(30)  # 435 pairs > sample -> sampling path
    assert model.mean_one_way(sample=50) == pytest.approx(0.05)
    assert model.calls == 50
