"""Unit tests for the AS-level topology substrate."""

import networkx as nx
import numpy as np
import pytest

from repro.net.astopo import ASTopology


@pytest.fixture(scope="module")
def topo():
    return ASTopology(n_as=128, n_members=64, seed=3)


def test_graph_connected(topo):
    assert nx.is_connected(topo.graph)


def test_power_law_shape(topo):
    degrees = topo.degree_distribution()
    # Preferential attachment: the top hub is far above the median.
    assert degrees[0] >= 4 * degrees[len(degrees) // 2]


def test_members_prefer_stub_ases(topo):
    member_degrees = [topo.graph.degree[topo.host_of(m)] for m in range(64)]
    all_degrees = [d for _, d in topo.graph.degree]
    assert np.mean(member_degrees) < np.mean(all_degrees) * 1.2
    assert np.median(member_degrees) <= np.median(all_degrees)


def test_route_edges_form_a_path(topo):
    edges = topo.route_edges(0, 1)
    ha, hb = topo.host_of(0), topo.host_of(1)
    if ha == hb:
        assert edges == []
        return
    # Consecutive edges share an endpoint; ends match the hosts.
    assert all(topo.graph.has_edge(*e) for e in edges)
    path_nodes = {ha, hb}
    for u, v in edges:
        path_nodes.update((u, v))
    assert ha in path_nodes and hb in path_nodes


def test_route_edges_canonicalized(topo):
    for u, v in topo.route_edges(2, 3):
        assert u <= v


def test_route_symmetric_same_links(topo):
    assert set(topo.route_edges(4, 5)) == set(topo.route_edges(5, 4))


def test_latency_model_matches_shortest_paths(topo):
    model = topo.latency_model
    assert model.size == 64
    ha, hb = topo.host_of(10), topo.host_of(20)
    if ha != hb:
        expected = nx.shortest_path_length(topo.graph, ha, hb, weight="latency")
        assert model.one_way(10, 20) == pytest.approx(expected + 0.002)


def test_same_host_members_have_small_latency():
    topo = ASTopology(n_as=16, n_members=64, seed=1)
    by_host = {}
    for m in range(64):
        by_host.setdefault(topo.host_of(m), []).append(m)
    multi = [ms for ms in by_host.values() if len(ms) >= 2]
    assert multi, "with 64 members on 16 ASes some must share a host"
    a, b = multi[0][:2]
    assert topo.latency_model.one_way(a, b) == pytest.approx(0.001)


def test_deterministic_for_seed():
    a = ASTopology(n_as=64, n_members=32, seed=2)
    b = ASTopology(n_as=64, n_members=32, seed=2)
    assert [a.host_of(m) for m in range(32)] == [b.host_of(m) for m in range(32)]
    assert np.array_equal(a.latency_model.matrix, b.latency_model.matrix)


def test_members_on_host_inverse_of_host_of(topo):
    for host in {topo.host_of(m) for m in range(64)}:
        for m in topo.members_on_host(host):
            assert topo.host_of(m) == host


def test_validation():
    with pytest.raises(ValueError):
        ASTopology(n_as=2)
    with pytest.raises(ValueError):
        ASTopology(n_as=16, n_members=0)
