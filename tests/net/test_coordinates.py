"""Tests for the GNP coordinate estimator."""

import numpy as np
import pytest

from repro.net.coordinates import GnpCoordinates
from repro.net.estimation import TriangularEstimator, default_landmarks
from repro.net.king import SyntheticKingModel
from repro.net.latency import EuclideanLatencyModel


@pytest.fixture(scope="module")
def king():
    return SyntheticKingModel(n_nodes=120, n_sites=120, seed=8)


@pytest.fixture(scope="module")
def gnp(king):
    return GnpCoordinates(king, default_landmarks(120, count=10, seed=1), dims=3, seed=1)


def test_self_estimate_zero(gnp):
    assert gnp.estimate_rtt(7, 7) == 0.0


def test_estimates_symmetric(gnp):
    assert gnp.estimate_rtt(3, 9) == pytest.approx(gnp.estimate_rtt(9, 3))


def test_exact_recovery_in_clean_euclidean_space():
    # Points genuinely in 2-D: GNP must recover distances near-exactly.
    rng = np.random.default_rng(5)
    coords = rng.uniform(0, 1, size=(30, 2))
    model = EuclideanLatencyModel(coords, seconds_per_unit=0.1)
    gnp = GnpCoordinates(model, landmarks=[0, 1, 2, 3, 4], dims=2, seed=3)
    pairs = [(10, 20), (5, 25), (7, 14), (11, 28)]
    assert gnp.estimation_error(pairs, relative=True) < 0.05


def test_useful_ranking_on_king(king, gnp):
    rng = np.random.default_rng(2)
    hits = 0
    trials = 30
    for _ in range(trials):
        node = int(rng.integers(0, 120))
        candidates = [int(c) for c in rng.choice(120, size=15, replace=False) if c != node]
        ranked = gnp.rank_candidates(node, candidates)
        true_best = min(candidates, key=lambda c: king.rtt(node, c))
        if ranked.index(true_best) < max(1, len(ranked) // 4):
            hits += 1
    assert hits >= trials * 0.55


def test_error_comparable_to_triangular(king, gnp):
    landmarks = list(gnp.landmarks)
    tri = TriangularEstimator(king, landmarks)
    rng = np.random.default_rng(3)
    pairs = [(int(a), int(b)) for a, b in rng.integers(0, 120, size=(60, 2)) if a != b]
    gnp_err = gnp.estimation_error(pairs, relative=False)
    tri_err = tri.estimation_error(pairs, relative=False)
    # Both should be decent; GNP within 2x of triangular either way.
    assert gnp_err < max(2.0 * tri_err, 0.08)


def test_coordinates_cached(gnp):
    a = gnp.coordinates(42)
    b = gnp.coordinates(42)
    assert a is b


def test_validation(king):
    with pytest.raises(ValueError):
        GnpCoordinates(king, landmarks=[0, 1], dims=3)
