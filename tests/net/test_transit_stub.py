"""Tests for the transit-stub physical topology."""

import networkx as nx
import numpy as np
import pytest

from repro.net.astopo import TransitStubTopology


@pytest.fixture(scope="module")
def topo():
    return TransitStubTopology(n_regions=6, stubs_per_region=5, n_members=48, seed=2)


def test_structure_counts(topo):
    # backbone + hubs + stubs
    assert topo.n_as == 12 + 6 + 6 * 5
    assert nx.is_connected(topo.graph)


def test_members_cover_all_regions(topo):
    regions = {topo.region_of_member(m) for m in range(48)}
    assert regions == set(range(6))


def test_intra_region_latency_much_lower(topo):
    intra, inter = [], []
    model = topo.latency_model
    for a in range(48):
        for b in range(a + 1, 48):
            lat = model.one_way(a, b)
            if topo.region_of_member(a) == topo.region_of_member(b):
                intra.append(lat)
            else:
                inter.append(lat)
    assert np.mean(intra) < 0.25 * np.mean(inter)
    # Intra-region pairs are single-digit milliseconds.
    assert np.median(intra) < 0.02


def test_inter_region_routes_cross_backbone(topo):
    backbone = set(topo.backbone_edges())
    crossed = 0
    checked = 0
    for a in range(0, 48, 5):
        for b in range(1, 48, 7):
            if a != b and topo.region_of_member(a) != topo.region_of_member(b):
                checked += 1
                if any(e in backbone for e in topo.route_edges(a, b)):
                    crossed += 1
    assert checked > 0
    assert crossed == checked  # every inter-region path uses long-haul links


def test_intra_region_routes_avoid_backbone(topo):
    backbone = set(topo.backbone_edges())
    for a in range(48):
        for b in range(a + 1, 48):
            if topo.region_of_member(a) == topo.region_of_member(b):
                assert not any(e in backbone for e in topo.route_edges(a, b))


def test_deterministic(topo):
    other = TransitStubTopology(n_regions=6, stubs_per_region=5, n_members=48, seed=2)
    assert [other.host_of(m) for m in range(48)] == [topo.host_of(m) for m in range(48)]


def test_validation():
    with pytest.raises(ValueError):
        TransitStubTopology(n_regions=1)
    with pytest.raises(ValueError):
        TransitStubTopology(backbone_as=2)
    with pytest.raises(ValueError):
        TransitStubTopology(n_members=0)
