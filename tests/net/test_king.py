"""Unit tests for the synthetic King latency model."""

import numpy as np
import pytest

from repro.net.king import (
    COLOCATED_LATENCY,
    KING_MAX_ONE_WAY,
    KING_MEAN_ONE_WAY,
    SyntheticKingModel,
)


@pytest.fixture(scope="module")
def model():
    return SyntheticKingModel(n_nodes=400, n_sites=400, seed=7)


def test_mean_calibrated_to_king(model):
    assert model.mean_one_way(sample=30000) == pytest.approx(KING_MEAN_ONE_WAY, rel=0.08)


def test_max_capped_near_king_max(model):
    assert model.site_matrix.max() <= KING_MAX_ONE_WAY + 1e-9
    assert model.site_matrix.max() > 0.8 * KING_MAX_ONE_WAY


def test_symmetry_and_zero_diagonal(model):
    m = model.site_matrix
    assert np.allclose(m, m.T)
    assert np.all(np.diag(m) == 0.0)
    assert np.all(m >= 0.0)


def test_clustering_intra_much_cheaper_than_inter(model):
    intra, inter = [], []
    rng = np.random.default_rng(0)
    for _ in range(4000):
        a, b = rng.integers(0, model.size, size=2)
        if a == b:
            continue
        lat = model.one_way(int(a), int(b))
        if model.cluster_of(int(a)) == model.cluster_of(int(b)):
            intra.append(lat)
        else:
            inter.append(lat)
    # Geographic clustering: intra-continent latency far below
    # inter-continent — the property driving Figures 5b and 6.
    assert np.mean(intra) < 0.4 * np.mean(inter)


def test_more_nodes_than_sites_share_sites():
    model = SyntheticKingModel(n_nodes=100, n_sites=40, seed=1)
    sites = {model.site_of(i) for i in range(100)}
    assert len(sites) == 40
    # Two nodes mapped to one site see the LAN latency.
    by_site = {}
    for i in range(100):
        by_site.setdefault(model.site_of(i), []).append(i)
    a, b = next(nodes for nodes in by_site.values() if len(nodes) >= 2)[:2]
    assert model.one_way(a, b) == COLOCATED_LATENCY


def test_fewer_nodes_than_sites_use_distinct_sites():
    model = SyntheticKingModel(n_nodes=50, n_sites=200, seed=1)
    sites = [model.site_of(i) for i in range(50)]
    assert len(set(sites)) == 50


def test_deterministic_for_seed():
    a = SyntheticKingModel(64, seed=3)
    b = SyntheticKingModel(64, seed=3)
    assert np.array_equal(a.site_matrix, b.site_matrix)
    assert a.one_way(3, 9) == b.one_way(3, 9)


def test_different_seeds_differ():
    a = SyntheticKingModel(64, seed=3)
    b = SyntheticKingModel(64, seed=4)
    assert not np.array_equal(a.site_matrix, b.site_matrix)


def test_submatrix_matches_pointwise(model):
    nodes = [1, 17, 100, 250]
    sub = model.node_latency_submatrix(nodes)
    for i, a in enumerate(nodes):
        for j, b in enumerate(nodes):
            assert sub[i, j] == pytest.approx(model.one_way(a, b))


def test_cluster_sizes_cover_all_sites(model):
    assert sum(model.cluster_sizes()) == model.n_sites
    assert len(model.cluster_sizes()) == model.n_clusters


def test_validation():
    with pytest.raises(ValueError):
        SyntheticKingModel(0)
    with pytest.raises(ValueError):
        SyntheticKingModel(10, n_sites=1)
