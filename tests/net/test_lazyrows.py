"""Unit tests for the ``lazylat`` on-demand latency-row backend.

The LRU row cache (:class:`repro.net.latency.LazyRowCache`) claims to be
a bit-identical, memory-bounded stand-in for the quadratic
``dense_rows`` tables.  These tests pin the mechanics — laziness,
capacity, eviction order, packing, the env knob, the site-sharing key
map — and the exact-equality contract against every model that wires it
(matrix, synthetic King, routed AS topologies).  The end-to-end
equivalence lives in tests/property/test_lazylat_properties.py and
tests/experiments/test_equivalence.py.
"""

from array import array

import numpy as np
import pytest

from repro.net.king import SyntheticKingModel
from repro.net.latency import (
    DEFAULT_CACHE_ROWS,
    ENV_CACHE_ROWS,
    LazyRowCache,
    MatrixLatencyModel,
    lazylat_capacity,
)
from repro.sim.optim import lazylat_enabled, parse_opts


def _sym_matrix(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    m = rng.random((n, n))
    m = (m + m.T) / 2.0
    np.fill_diagonal(m, 0.0)
    return m


# ----------------------------------------------------------------------
# the gate
# ----------------------------------------------------------------------
def test_lazylat_is_not_part_of_the_default_set(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_OPTS", raising=False)
    assert not lazylat_enabled()
    for value in ("1", "all", "true"):
        assert "lazylat" not in parse_opts(value)


def test_all_token_expands_inside_comma_lists():
    tokens = parse_opts("all,lazylat")
    assert "lazylat" in tokens
    assert {"wheel", "pool", "calqueue", "batch"} <= tokens


@pytest.mark.parametrize("value", ["lazylat", "all,lazylat", "calqueue,lazylat"])
def test_lazylat_enabled_when_named(monkeypatch, value):
    monkeypatch.setenv("REPRO_SIM_OPTS", value)
    assert lazylat_enabled()


# ----------------------------------------------------------------------
# LazyRowCache mechanics
# ----------------------------------------------------------------------
def test_rows_are_materialized_lazily_and_memoized():
    calls = []
    matrix = _sym_matrix(8)

    def build(key):
        calls.append(key)
        return matrix[key]

    cache = LazyRowCache(build, 8, capacity=8)
    assert len(cache) == 0
    row = cache[3]
    assert calls == [3]
    assert cache[3] is row  # memoized, not rebuilt
    assert calls == [3]
    assert cache.hits == 1 and cache.misses == 1


def test_rows_are_packed_doubles_with_identical_bits():
    matrix = _sym_matrix(6, seed=4)
    cache = LazyRowCache(matrix.__getitem__, 6, capacity=6)
    row = cache[2]
    assert isinstance(row, array) and row.typecode == "d"
    assert row.tobytes() == matrix[2].tobytes()
    value = row[5]
    assert type(value) is float


def test_unpacked_mode_returns_plain_lists():
    matrix = _sym_matrix(4)
    cache = LazyRowCache(matrix.__getitem__, 4, capacity=4, packed=False)
    assert cache[1] == matrix[1].tolist()
    assert isinstance(cache[1], list)


def test_capacity_evicts_least_recently_used_row():
    matrix = _sym_matrix(6)
    cache = LazyRowCache(matrix.__getitem__, 6, capacity=2)
    cache[0]
    cache[1]
    cache[0]  # refresh 0: now 1 is the LRU entry
    cache[2]  # evicts 1
    assert 0 in cache and 2 in cache and 1 not in cache
    assert cache.evictions == 1
    assert len(cache) == 2
    # Evicted rows rebuild transparently with the same bits.
    assert cache[1].tobytes() == matrix[1].tobytes()
    assert cache.evictions == 2


def test_key_of_shares_rows_between_colocated_nodes():
    matrix = _sym_matrix(3)
    site_of = [0, 0, 1, 1, 2, 2]
    cache = LazyRowCache(matrix.__getitem__, 6, capacity=3, key_of=site_of.__getitem__)
    assert cache[0] is cache[1]  # same site, one cache entry
    assert len(cache) == 1
    cache[2], cache[4]
    assert len(cache) == 3


def test_row_bytes_and_stats_track_residency():
    matrix = _sym_matrix(8)
    cache = LazyRowCache(matrix.__getitem__, 8, capacity=4)
    for a in range(8):
        cache[a]
    stats = cache.stats()
    assert stats["rows"] == 4 and stats["capacity"] == 4
    assert stats["misses"] == 8 and stats["evictions"] == 4
    assert stats["row_bytes"] == cache.row_bytes() > 4 * 8 * 8


def test_capacity_validation():
    matrix = _sym_matrix(4)
    with pytest.raises(ValueError):
        LazyRowCache(matrix.__getitem__, 4, capacity=0)
    with pytest.raises(ValueError):
        LazyRowCache(matrix.__getitem__, 0, capacity=4)


def test_capacity_env_knob(monkeypatch):
    monkeypatch.delenv(ENV_CACHE_ROWS, raising=False)
    assert lazylat_capacity() == DEFAULT_CACHE_ROWS
    monkeypatch.setenv(ENV_CACHE_ROWS, "7")
    assert lazylat_capacity() == 7
    matrix = _sym_matrix(4)
    assert LazyRowCache(matrix.__getitem__, 4).capacity == 7
    for bad in ("0", "-3", "many"):
        monkeypatch.setenv(ENV_CACHE_ROWS, bad)
        with pytest.raises(ValueError):
            lazylat_capacity()


# ----------------------------------------------------------------------
# model wiring: lazy vs dense bit-identity
# ----------------------------------------------------------------------
def test_matrix_model_lazy_rows_match_dense_rows(monkeypatch):
    matrix = _sym_matrix(24, seed=9)
    monkeypatch.setenv("REPRO_SIM_OPTS", "1")
    dense = MatrixLatencyModel(matrix)
    monkeypatch.setenv("REPRO_SIM_OPTS", "all,lazylat")
    lazy = MatrixLatencyModel(matrix)
    assert dense.dense_rows is not None and dense.lazy_rows is None
    assert lazy.dense_rows is None and lazy.lazy_rows is not None
    for a in range(24):
        for b in range(24):
            assert lazy.one_way(a, b) == dense.one_way(a, b)
            assert lazy.lazy_rows[a][b] == dense.dense_rows[a][b]


def test_king_model_lazy_rows_match_dense_rows(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_OPTS", "1")
    dense = SyntheticKingModel(96, n_sites=24, seed=5)
    monkeypatch.setenv("REPRO_SIM_OPTS", "all,lazylat")
    lazy = SyntheticKingModel(96, n_sites=24, seed=5)
    assert dense.dense_rows is not None and lazy.dense_rows is None
    # Rows are shared per site: at most n_sites cache entries ever.
    for a in range(96):
        for b in range(96):
            assert lazy.one_way(a, b) == dense.one_way(a, b)
            if a != b:  # the diagonal is outside the lazy_rows contract
                assert lazy.lazy_rows[a][b] == dense.dense_rows[a][b]
    assert len(lazy.lazy_rows) <= 24


def test_king_skips_quadratic_site_copy_under_lazylat(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_OPTS", "all,lazylat")
    model = SyntheticKingModel(64, n_sites=16, seed=2)
    assert model._site_rows is None  # the O(sites^2) float copy
    assert model._site_list is not None  # the O(N) int fast path stays
    monkeypatch.setenv("REPRO_SIM_OPTS", "0")
    plain = SyntheticKingModel(64, n_sites=16, seed=2)
    for a in range(64):
        for b in range(64):
            assert model.one_way(a, b) == plain.one_way(a, b)


def test_routed_topology_inherits_lazy_backend(monkeypatch):
    pytest.importorskip("networkx")
    from repro.net.astopo import ASTopology

    monkeypatch.setenv("REPRO_SIM_OPTS", "1")
    dense = ASTopology(n_as=12, n_members=20, seed=3)
    monkeypatch.setenv("REPRO_SIM_OPTS", "all,lazylat")
    lazy = ASTopology(n_as=12, n_members=20, seed=3)
    dm, lm = dense.latency_model, lazy.latency_model
    assert dm.dense_rows is not None and lm.lazy_rows is not None
    for a in range(20):
        for b in range(20):
            assert lm.one_way(a, b) == dm.one_way(a, b)
            assert lm.lazy_rows[a][b] == dm.dense_rows[a][b]


def test_transport_send_path_uses_lazy_rows(monkeypatch):
    """The inlined send loop indexes lazy rows exactly like dense ones."""
    import random

    from repro.sim.engine import Simulator
    from repro.sim.transport import Network

    monkeypatch.setenv("REPRO_SIM_OPTS", "all,lazylat")
    model = SyntheticKingModel(16, n_sites=8, seed=1)
    network = Network(Simulator(), model, rng=random.Random(0))
    assert network._dense_rows is model.lazy_rows
    monkeypatch.setenv("REPRO_SIM_OPTS", "1")
    model = SyntheticKingModel(16, n_sites=8, seed=1)
    network = Network(Simulator(), model, rng=random.Random(0))
    assert network._dense_rows is model.dense_rows
