"""Unit tests for the triangular distance estimator."""

import numpy as np
import pytest

from repro.net.estimation import TriangularEstimator, default_landmarks
from repro.net.king import SyntheticKingModel
from repro.net.latency import EuclideanLatencyModel


@pytest.fixture(scope="module")
def king():
    return SyntheticKingModel(n_nodes=200, n_sites=200, seed=5)


def test_estimate_zero_for_self(king):
    est = TriangularEstimator(king, default_landmarks(200, seed=1))
    assert est.estimate_rtt(5, 5) == 0.0


def test_bounds_hold_in_metric_space():
    # In a clean Euclidean space the true RTT must sit inside the
    # triangular bounds, so the midpoint error is bounded.
    rng = np.random.default_rng(2)
    coords = rng.uniform(0, 1, size=(50, 2))
    model = EuclideanLatencyModel(coords, seconds_per_unit=0.1)
    est = TriangularEstimator(model, landmarks=[0, 1, 2, 3, 4])
    for a, b in [(10, 20), (30, 40), (5, 45)]:
        true = model.rtt(a, b)
        da = np.array([model.rtt(a, l) for l in range(5)])
        db = np.array([model.rtt(b, l) for l in range(5)])
        lower = np.max(np.abs(da - db))
        upper = np.min(da + db)
        assert lower - 1e-12 <= true <= upper + 1e-12
        assert lower - 1e-12 <= est.estimate_rtt(a, b) <= upper + 1e-12


def test_ranking_quality_on_king(king):
    """The estimator's job is *ranking*: closest-cluster candidates must
    come out ahead of cross-continent ones."""
    est = TriangularEstimator(king, default_landmarks(200, count=12, seed=1))
    rng = np.random.default_rng(3)
    hits = 0
    trials = 40
    for _ in range(trials):
        node = int(rng.integers(0, 200))
        candidates = [int(c) for c in rng.choice(200, size=20, replace=False) if c != node]
        ranked = est.rank_candidates(node, candidates)
        true_best = min(candidates, key=lambda c: king.rtt(node, c))
        # The truly closest candidate should land in the top quartile.
        if ranked.index(true_best) < max(1, len(ranked) // 4):
            hits += 1
    assert hits >= trials * 0.6


def test_estimation_error_reasonable(king):
    est = TriangularEstimator(king, default_landmarks(200, count=12, seed=1))
    rng = np.random.default_rng(4)
    pairs = [
        (int(a), int(b))
        for a, b in rng.integers(0, 200, size=(100, 2))
        if a != b
    ]
    # Relative error is dominated by very-short-RTT pairs (the jittered
    # synthetic data deliberately violates the triangle inequality), so
    # assert on the typical (median) pair, which is what ranking uses.
    errors = sorted(
        abs(est.estimate_rtt(a, b) - king.rtt(a, b)) / king.rtt(a, b)
        for a, b in pairs
    )
    assert errors[len(errors) // 2] < 0.5
    # The absolute error metric should also be small in absolute terms.
    assert est.estimation_error(pairs, relative=False) < 0.15


def test_vector_cached(king):
    est = TriangularEstimator(king, default_landmarks(200, seed=1))
    v1 = est.vector(7)
    v2 = est.vector(7)
    assert v1 is v2


def test_measurement_noise_changes_estimates(king):
    landmarks = default_landmarks(200, seed=1)
    clean = TriangularEstimator(king, landmarks)
    noisy = TriangularEstimator(king, landmarks, measurement_noise=0.3, seed=9)
    diffs = [
        abs(clean.estimate_rtt(1, b) - noisy.estimate_rtt(1, b)) for b in range(2, 30)
    ]
    assert max(diffs) > 0.0


def test_default_landmarks_distinct_and_in_range():
    lm = default_landmarks(100, count=12, seed=0)
    assert len(lm) == len(set(lm)) == 12
    assert all(0 <= l < 100 for l in lm)
    assert default_landmarks(5, count=12) != []


def test_validation(king):
    with pytest.raises(ValueError):
        TriangularEstimator(king, landmarks=[])
    with pytest.raises(IndexError):
        TriangularEstimator(king, landmarks=[9999])
