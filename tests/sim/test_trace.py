"""Unit tests for delivery tracing and metrics."""

import numpy as np
import pytest

from repro.sim.trace import DeliveryTracer, TraceRecorder


def test_recorder_counters():
    rec = TraceRecorder()
    rec.count("x")
    rec.count("x", 4)
    rec.count("y")
    assert rec.counters == {"x": 5, "y": 1}


def test_recorder_series():
    rec = TraceRecorder()
    rec.record("lat", 1.0, 0.5)
    rec.record("lat", 2.0, 0.7)
    times, values = rec.series_arrays("lat")
    assert list(times) == [1.0, 2.0]
    assert list(values) == [0.5, 0.7]


def test_recorder_missing_series_is_empty():
    times, values = TraceRecorder().series_arrays("nope")
    assert times.size == 0 and values.size == 0


@pytest.fixture
def tracer():
    t = DeliveryTracer()
    t.injected("m1", 10.0, source=0)
    t.delivered("m1", 1, 10.2)
    t.delivered("m1", 2, 10.5)
    return t


def test_delays_exclude_source(tracer):
    delays = tracer.delays()
    assert sorted(delays) == pytest.approx([0.2, 0.5])


def test_delays_restricted_to_receivers(tracer):
    assert list(tracer.delays(receivers=[1])) == pytest.approx([0.2])


def test_reliability_full(tracer):
    assert tracer.reliability([0, 1, 2]) == 1.0


def test_reliability_partial(tracer):
    # Node 3 never received m1.
    assert tracer.reliability([0, 1, 2, 3]) == pytest.approx(2 / 3)
    assert tracer.undelivered_pairs([0, 1, 2, 3]) == 1


def test_source_counts_as_having_message(tracer):
    # Source 0 in receivers: it is excluded from the denominator.
    assert tracer.reliability([0, 1]) == 1.0


def test_duplicate_first_delivery_rejected(tracer):
    with pytest.raises(ValueError):
        tracer.delivered("m1", 1, 11.0)


def test_delivery_of_unknown_message_rejected(tracer):
    with pytest.raises(KeyError):
        tracer.delivered("m2", 1, 11.0)


def test_cdf_normalized_by_expected_pairs(tracer):
    x, y = tracer.delay_cdf([0, 1, 2, 3])
    assert list(x) == pytest.approx([0.2, 0.5])
    # 3 expected receivers, 2 served.
    assert list(y) == pytest.approx([1 / 3, 2 / 3])


def test_cdf_empty_when_no_receivers():
    t = DeliveryTracer()
    x, y = t.delay_cdf([])
    assert x.size == 0 and y.size == 0


def test_receptions_per_delivery(tracer):
    assert tracer.receptions_per_delivery() == 1.0
    tracer.redundant("m1", 2)
    assert tracer.receptions_per_delivery() == pytest.approx(1.5)


def test_percentiles_and_extremes(tracer):
    assert tracer.mean_delay() == pytest.approx(0.35)
    assert tracer.max_delay() == pytest.approx(0.5)
    assert tracer.delay_percentile(50) == pytest.approx(0.35)


def test_empty_tracer_metrics_are_nan():
    t = DeliveryTracer()
    assert np.isnan(t.mean_delay())
    assert np.isnan(t.delay_percentile(90))
    assert t.receptions_per_delivery() == 1.0


def test_receptions_per_delivery_nan_when_redundancy_without_deliveries():
    """Regression: redundant receptions with zero non-source deliveries
    used to report the ideal 1.0; the ratio is undefined, so NaN."""
    t = DeliveryTracer()
    t.injected("m1", 0.0, source=0)
    t.redundant("m1", 0)
    assert np.isnan(t.receptions_per_delivery())


def test_multiple_messages_pool_delays():
    t = DeliveryTracer()
    t.injected("a", 0.0, 0)
    t.injected("b", 1.0, 1)
    t.delivered("a", 1, 0.3)
    t.delivered("b", 0, 1.4)
    assert sorted(t.delays()) == pytest.approx([0.3, 0.4])
    assert t.n_messages == 2
    assert set(t.message_ids()) == {"a", "b"}
