"""Unit tests for PeriodicTimer."""

import pytest

from repro.sim.timers import PeriodicTimer


def test_fires_every_period(sim):
    fires = []
    timer = PeriodicTimer(sim, 1.0, lambda: fires.append(sim.now))
    timer.start()
    sim.run_until(5.5)
    assert fires == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_phase_controls_first_fire(sim):
    fires = []
    timer = PeriodicTimer(sim, 1.0, lambda: fires.append(sim.now))
    timer.start(phase=0.25)
    sim.run_until(3.0)
    assert fires == [0.25, 1.25, 2.25]


def test_zero_phase_fires_immediately(sim):
    fires = []
    timer = PeriodicTimer(sim, 1.0, lambda: fires.append(sim.now))
    timer.start(phase=0.0)
    sim.run_until(0.0)
    assert fires == [0.0]


def test_stop_halts_firing(sim):
    fires = []
    timer = PeriodicTimer(sim, 1.0, lambda: fires.append(sim.now))
    timer.start()
    sim.run_until(2.5)
    timer.stop()
    sim.run_until(10.0)
    assert fires == [1.0, 2.0]
    assert not timer.running


def test_restart_after_stop(sim):
    fires = []
    timer = PeriodicTimer(sim, 1.0, lambda: fires.append(sim.now))
    timer.start()
    sim.run_until(1.5)
    timer.stop()
    sim.run_until(5.0)
    timer.start()
    sim.run_until(7.0)
    assert fires == [1.0, 6.0, 7.0]


def test_stop_from_within_callback(sim):
    fires = []
    timer = PeriodicTimer(sim, 1.0, lambda: (fires.append(sim.now), timer.stop()))
    timer.start()
    sim.run_until(10.0)
    assert fires == [1.0]


def test_set_period_takes_effect_next_reschedule(sim):
    fires = []
    timer = PeriodicTimer(sim, 1.0, lambda: fires.append(sim.now))
    timer.start()
    sim.run_until(1.0)
    timer.set_period(2.0)
    sim.run_until(6.0)
    # Pending fire at 2.0 kept its time; subsequent gaps are 2.0.
    assert fires == [1.0, 2.0, 4.0, 6.0]


def test_double_start_is_idempotent(sim):
    fires = []
    timer = PeriodicTimer(sim, 1.0, lambda: fires.append(sim.now))
    timer.start()
    timer.start()
    sim.run_until(2.0)
    assert fires == [1.0, 2.0]


def test_invalid_period_rejected(sim):
    with pytest.raises(ValueError):
        PeriodicTimer(sim, 0.0, lambda: None)
    timer = PeriodicTimer(sim, 1.0, lambda: None)
    with pytest.raises(ValueError):
        timer.set_period(-1.0)
