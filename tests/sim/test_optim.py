"""Unit tests for the REPRO_SIM_OPTS token gate (see repro.sim.optim)."""

import pytest

from repro.sim.optim import (
    ALL_OPTS,
    ENV_VAR,
    KNOWN_OPTS,
    SimOptsError,
    optimizations_enabled,
    parse_opts,
    sim_opts,
)


@pytest.mark.parametrize("value", ["1", "true", "ON", "yes", "all", "", "  All "])
def test_truthy_values_enable_everything(value):
    assert parse_opts(value) == ALL_OPTS


@pytest.mark.parametrize("value", ["0", "false", "OFF", "no", "none", " 0 "])
def test_falsy_values_disable_everything(value):
    assert parse_opts(value) == frozenset()


def test_token_subsets_parse_exactly():
    assert parse_opts("wheel,pool") == {"wheel", "pool"}
    assert parse_opts(" calqueue , batch ") == {"calqueue", "batch"}
    assert parse_opts("wheel,,pool,") == {"wheel", "pool"}


@pytest.mark.parametrize("value", ["calender", "wheel,calender", "fast", "wheel pool"])
def test_unknown_tokens_raise(value):
    with pytest.raises(SimOptsError) as exc:
        parse_opts(value)
    # The message must name the offender and the known vocabulary.
    assert ENV_VAR in str(exc.value)
    for tok in sorted(KNOWN_OPTS):
        assert tok in str(exc.value)


def test_sim_opts_reads_environment(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert sim_opts() == ALL_OPTS
    assert sim_opts(default=False) == frozenset()
    monkeypatch.setenv(ENV_VAR, "wheel")
    assert sim_opts() == {"wheel"}
    assert optimizations_enabled()
    monkeypatch.setenv(ENV_VAR, "0")
    assert not optimizations_enabled()


def test_sim_opts_propagates_unknown_token(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "calender")
    with pytest.raises(SimOptsError):
        sim_opts()
