"""Unit tests for failure and churn injection."""

import random

import pytest

from repro.net.latency import ConstantLatencyModel
from repro.sim.engine import Simulator
from repro.sim.failures import ChurnProcess, FailureInjector, PoissonChurn
from repro.sim.transport import Network


class StubEndpoint:
    def __init__(self, node_id):
        self.node_id = node_id

    def handle_message(self, src, msg):
        pass

    def handle_send_failure(self, dst, msg):
        pass


@pytest.fixture
def setup():
    sim = Simulator()
    network = Network(sim, ConstantLatencyModel(32), rng=random.Random(1))
    for i in range(20):
        network.register(StubEndpoint(i))
    injector = FailureInjector(sim, network, random.Random(5))
    return sim, network, injector


def test_fail_nodes_at_kills_at_the_right_time(setup):
    sim, network, injector = setup
    injector.fail_nodes_at(10.0, [3, 7])
    sim.run_until(9.999)
    assert network.is_alive(3)
    sim.run_until(10.0)
    assert not network.is_alive(3)
    assert not network.is_alive(7)
    assert injector.failed_nodes == [3, 7]


def test_fail_fraction_selects_requested_count(setup):
    sim, network, injector = setup
    victims = injector.fail_fraction_at(1.0, 0.25, list(range(20)))
    assert len(victims) == 5
    sim.run_until(1.0)
    assert len(network.alive_nodes()) == 15


def test_fail_fraction_is_deterministic_for_seed():
    def run(seed):
        sim = Simulator()
        network = Network(sim, ConstantLatencyModel(32), rng=random.Random(1))
        for i in range(20):
            network.register(StubEndpoint(i))
        injector = FailureInjector(sim, network, random.Random(seed))
        return injector.fail_fraction_at(1.0, 0.3, list(range(20)))

    assert run(9) == run(9)
    assert run(9) != run(10)


def test_fail_fraction_bounds(setup):
    _, _, injector = setup
    with pytest.raises(ValueError):
        injector.fail_fraction_at(1.0, 1.5, list(range(20)))


def test_on_node_failed_callback_fires_per_victim(setup):
    sim, network, injector = setup
    killed = []
    injector.on_node_failed = killed.append
    injector.fail_nodes_at(2.0, [1, 2, 3])
    sim.run_until(2.0)
    assert killed == [1, 2, 3]


def test_link_failure_scheduling(setup):
    sim, network, injector = setup
    injector.fail_link_at(1.0, 0, 1)
    injector.restore_link_at(2.0, 0, 1)
    sim.run_until(1.0)
    assert not network.link_ok(0, 1)
    sim.run_until(2.0)
    assert network.link_ok(0, 1)


def test_churn_invokes_callbacks_each_interval():
    sim = Simulator()
    leaves, joins = [], []
    churn = ChurnProcess(
        sim, 5.0, lambda: leaves.append(sim.now), lambda: joins.append(sim.now)
    )
    churn.start()
    sim.run_until(16.0)
    assert leaves == [5.0, 10.0, 15.0]
    assert joins == leaves
    assert churn.events == 3


def test_churn_stop(setup):
    sim = Simulator()
    leaves = []
    churn = ChurnProcess(sim, 1.0, lambda: leaves.append(sim.now))
    churn.start()
    sim.run_until(2.0)
    churn.stop()
    sim.run_until(10.0)
    assert leaves == [1.0, 2.0]


def test_churn_invalid_interval():
    with pytest.raises(ValueError):
        ChurnProcess(Simulator(), 0.0, lambda: None)


# ----------------------------------------------------------------------
# Wave composition: dedup, counters, exactly-once callbacks
# ----------------------------------------------------------------------
def test_fail_fraction_excludes_already_scheduled_victims(setup):
    sim, network, injector = setup
    first = injector.fail_fraction_at(1.0, 0.25, list(range(20)))
    second = injector.fail_fraction_at(2.0, 0.25, list(range(20)))
    assert not set(first) & set(second)
    sim.run_until(3.0)
    assert len(network.alive_nodes()) == 10
    assert injector.kills_requested == 10
    assert injector.kills_executed == 10
    assert injector.kills_skipped == 0


def test_fail_fraction_excludes_already_failed_nodes(setup):
    sim, network, injector = setup
    injector.fail_now([0, 1, 2])
    victims = injector.fail_fraction_at(1.0, 0.5, list(range(20)))
    assert not {0, 1, 2} & set(victims)
    # The count is a fraction of the full population, served from what
    # remains.
    assert len(victims) == 10


def test_fail_fraction_caps_at_remaining_candidates(setup):
    sim, network, injector = setup
    injector.fail_now(list(range(15)))
    victims = injector.fail_fraction_at(1.0, 0.5, list(range(20)))
    # Half of 20 is 10, but only 5 candidates remain.
    assert len(victims) == 5
    sim.run_until(1.0)
    assert network.alive_nodes() == set()


def test_on_node_failed_fires_exactly_once_under_overlapping_waves(setup):
    sim, network, injector = setup
    killed = []
    injector.on_node_failed = killed.append
    injector.fail_nodes_at(1.0, [1, 2, 3])
    injector.fail_nodes_at(2.0, [3, 4])  # 3 claimed twice
    sim.run_until(3.0)
    assert sorted(killed) == [1, 2, 3, 4]
    assert injector.kills_requested == 5
    assert injector.kills_executed == 4
    assert injector.kills_skipped == 1
    assert injector.failed_nodes == [1, 2, 3, 4]


def test_fail_now_returns_only_actual_kills(setup):
    _, network, injector = setup
    assert injector.fail_now([5, 6]) == [5, 6]
    assert injector.fail_now([6, 7]) == [7]
    network.kill(8)  # died outside the injector (e.g. graceful leave)
    assert injector.fail_now([8]) == []
    assert injector.kills_skipped == 2


def test_forget_failed_allows_rescheduling(setup):
    sim, network, injector = setup
    injector.fail_now([4])
    network.remove(4)
    network.register(StubEndpoint(4))  # restarted with a fresh endpoint
    injector.forget_failed(4)
    assert injector.fail_now([4]) == [4]
    assert injector.kills_executed == 2


def test_same_time_fail_and_restore_execute_in_schedule_order(setup):
    sim, network, injector = setup
    # Same-instant events run in scheduling order (the engine's (time,
    # seq) heap): fail-then-restore nets out restored, and vice versa.
    injector.fail_link_at(1.0, 0, 1)
    injector.restore_link_at(1.0, 0, 1)
    sim.run_until(1.0)
    assert network.link_ok(0, 1)

    injector.restore_link_at(2.0, 2, 3)
    injector.fail_link_at(2.0, 2, 3)
    sim.run_until(2.0)
    assert not network.link_ok(2, 3)


def test_kill_drops_in_flight_messages(setup):
    sim, network, injector = setup
    network.send(1, 0, object())
    injector.fail_now([0])  # victim dies while the message is in flight
    before = network.messages_lost
    sim.run_until(1.0)
    assert network.messages_lost == before + 1


# ----------------------------------------------------------------------
# Partitions
# ----------------------------------------------------------------------
def test_partition_now_cuts_only_cross_group_links(setup):
    sim, network, injector = setup
    groups = [[0, 1, 2], [3, 4], [5]]
    cut = injector.partition_now(groups)
    # 3*2 + 3*1 + 2*1 = 11 cross-group pairs.
    assert len(cut) == 11
    assert not network.link_ok(0, 3)
    assert not network.link_ok(4, 5)
    assert network.link_ok(0, 1)  # intra-group survives
    assert network.link_ok(3, 4)


def test_heal_partition_restores_exactly_the_cut(setup):
    sim, network, injector = setup
    network.fail_link(0, 1)  # an unrelated pre-existing failure
    cut = injector.partition_now([[0, 1, 2], [3, 4, 5]])
    injector.heal_partition_now(cut)
    assert all(network.link_ok(a, b) for a, b in cut)
    assert not network.link_ok(0, 1)  # the unrelated failure persists


# ----------------------------------------------------------------------
# Poisson churn
# ----------------------------------------------------------------------
def test_poisson_churn_fires_leave_and_join(setup):
    sim = Simulator()
    leaves, joins = [], []
    churn = PoissonChurn(
        sim,
        rate=2.0,
        rng=random.Random(11),
        leave_callback=lambda: leaves.append(sim.now),
        join_callback=lambda: joins.append(sim.now),
    )
    churn.start()
    sim.run_until(10.0)
    assert churn.events == len(leaves) == len(joins) > 0
    assert leaves == joins
    # Exponential gaps: event times are irregular, not a metronome.
    gaps = [b - a for a, b in zip(leaves, leaves[1:])]
    assert len(set(round(g, 9) for g in gaps)) > 1


def test_poisson_churn_is_deterministic_for_seed():
    def run(seed):
        sim = Simulator()
        times = []
        churn = PoissonChurn(
            sim, rate=1.5, rng=random.Random(seed),
            leave_callback=lambda: times.append(sim.now),
        )
        churn.start()
        sim.run_until(20.0)
        return times

    assert run(3) == run(3)
    assert run(3) != run(4)


def test_poisson_churn_stop_halts_the_process():
    sim = Simulator()
    times = []
    churn = PoissonChurn(
        sim, rate=5.0, rng=random.Random(2),
        leave_callback=lambda: times.append(sim.now),
    )
    churn.start()
    sim.run_until(2.0)
    seen = len(times)
    assert seen > 0
    churn.stop()
    sim.run_until(20.0)
    assert len(times) == seen


def test_poisson_churn_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        PoissonChurn(Simulator(), 0.0, random.Random(1), lambda: None)


# ----------------------------------------------------------------------
# Churn vs in-flight pull repair
# ----------------------------------------------------------------------
def pull_repair_cluster():
    """Node 0 has heard message M advertised by neighbors 1 and 2 (both
    hold it) and has an in-flight PullRequest to node 1.  Gossip timers
    are stopped so the test controls every message."""
    from repro.core.messages import DegreeUpdate, Gossip
    from tests.conftest import TinyCluster

    cluster = TinyCluster(3)
    cluster.start_all()
    for node in cluster.nodes.values():
        node._gossip_timer.stop()
    cluster.connect(0, 1)
    cluster.connect(0, 2)
    msg_id = cluster.nodes[1].multicast(100)
    cluster.nodes[2].disseminator.buffer.insert(
        msg_id, 100, cluster.sim.now, age=0.0
    )
    summary = ((msg_id, 0.0),)
    degrees = DegreeUpdate(0, 0, 0.0, 0)
    # request_delay_f defaults to 0: the first advertisement triggers an
    # immediate PullRequest to node 1; node 2 joins the source set.
    cluster.nodes[0].disseminator.on_gossip(1, Gossip(summary, (), degrees))
    cluster.nodes[0].disseminator.on_gossip(2, Gossip(summary, (), degrees))
    assert cluster.nodes[0].disseminator.pending_pulls == 1
    return cluster, msg_id


def test_pull_retries_other_holder_when_target_dies_midflight():
    cluster, msg_id = pull_repair_cluster()
    # Kill the pull target while the request is in flight; node 0 only
    # discovers the death through its pull timeout, then must retry
    # against the other advertiser rather than the corpse.
    cluster.network.kill(1)
    cluster.run(cluster.config.pull_timeout + 1.0)
    assert 0 in cluster.tracer.delivered_nodes(msg_id)
    assert cluster.nodes[0].disseminator.pending_pulls == 0


def test_on_peer_failed_retries_pull_without_waiting_for_timeout():
    cluster, msg_id = pull_repair_cluster()
    cluster.network.kill(1)
    # Eviction noticed the death (e.g. a failed reliable send): the
    # disseminator must re-aim the pending pull at node 2 immediately.
    cluster.nodes[0].disseminator.on_peer_failed(1)
    cluster.run(cluster.config.pull_timeout / 2)
    assert 0 in cluster.tracer.delivered_nodes(msg_id)


def test_pull_abandoned_when_every_holder_dies():
    cluster, msg_id = pull_repair_cluster()
    cluster.network.kill(1)
    cluster.network.kill(2)
    cluster.nodes[0].disseminator.on_peer_failed(1)
    cluster.nodes[0].disseminator.on_peer_failed(2)
    # No sources remain: the pending pull is dropped (a future gossip
    # would restart it), not retried forever.
    assert cluster.nodes[0].disseminator.pending_pulls == 0
    cluster.run(5.0)
    assert 0 not in cluster.tracer.delivered_nodes(msg_id)
