"""Unit tests for failure and churn injection."""

import random

import pytest

from repro.net.latency import ConstantLatencyModel
from repro.sim.engine import Simulator
from repro.sim.failures import ChurnProcess, FailureInjector
from repro.sim.transport import Network


class StubEndpoint:
    def __init__(self, node_id):
        self.node_id = node_id

    def handle_message(self, src, msg):
        pass

    def handle_send_failure(self, dst, msg):
        pass


@pytest.fixture
def setup():
    sim = Simulator()
    network = Network(sim, ConstantLatencyModel(32), rng=random.Random(1))
    for i in range(20):
        network.register(StubEndpoint(i))
    injector = FailureInjector(sim, network, random.Random(5))
    return sim, network, injector


def test_fail_nodes_at_kills_at_the_right_time(setup):
    sim, network, injector = setup
    injector.fail_nodes_at(10.0, [3, 7])
    sim.run_until(9.999)
    assert network.is_alive(3)
    sim.run_until(10.0)
    assert not network.is_alive(3)
    assert not network.is_alive(7)
    assert injector.failed_nodes == [3, 7]


def test_fail_fraction_selects_requested_count(setup):
    sim, network, injector = setup
    victims = injector.fail_fraction_at(1.0, 0.25, list(range(20)))
    assert len(victims) == 5
    sim.run_until(1.0)
    assert len(network.alive_nodes()) == 15


def test_fail_fraction_is_deterministic_for_seed():
    def run(seed):
        sim = Simulator()
        network = Network(sim, ConstantLatencyModel(32), rng=random.Random(1))
        for i in range(20):
            network.register(StubEndpoint(i))
        injector = FailureInjector(sim, network, random.Random(seed))
        return injector.fail_fraction_at(1.0, 0.3, list(range(20)))

    assert run(9) == run(9)
    assert run(9) != run(10)


def test_fail_fraction_bounds(setup):
    _, _, injector = setup
    with pytest.raises(ValueError):
        injector.fail_fraction_at(1.0, 1.5, list(range(20)))


def test_on_node_failed_callback_fires_per_victim(setup):
    sim, network, injector = setup
    killed = []
    injector.on_node_failed = killed.append
    injector.fail_nodes_at(2.0, [1, 2, 3])
    sim.run_until(2.0)
    assert killed == [1, 2, 3]


def test_link_failure_scheduling(setup):
    sim, network, injector = setup
    injector.fail_link_at(1.0, 0, 1)
    injector.restore_link_at(2.0, 0, 1)
    sim.run_until(1.0)
    assert not network.link_ok(0, 1)
    sim.run_until(2.0)
    assert network.link_ok(0, 1)


def test_churn_invokes_callbacks_each_interval():
    sim = Simulator()
    leaves, joins = [], []
    churn = ChurnProcess(
        sim, 5.0, lambda: leaves.append(sim.now), lambda: joins.append(sim.now)
    )
    churn.start()
    sim.run_until(16.0)
    assert leaves == [5.0, 10.0, 15.0]
    assert joins == leaves
    assert churn.events == 3


def test_churn_stop(setup):
    sim = Simulator()
    leaves = []
    churn = ChurnProcess(sim, 1.0, lambda: leaves.append(sim.now))
    churn.start()
    sim.run_until(2.0)
    churn.stop()
    sim.run_until(10.0)
    assert leaves == [1.0, 2.0]


def test_churn_invalid_interval():
    with pytest.raises(ValueError):
        ChurnProcess(Simulator(), 0.0, lambda: None)
