"""Unit tests for the calendar queue (see repro.sim.calqueue).

The structure's contract — exact ``(time, seq)`` service order,
identical to a heap holding the same events — is hammered by the
hypothesis differential suite (``tests/property/
test_calqueue_properties.py``); these are the deterministic unit cases
for the moving parts: bucket promotion, the insort-into-current path,
adaptive growth, compaction, and the anonymous-entry format.
"""

import pytest

from repro.sim.calqueue import CalendarQueue
from repro.sim.engine import Simulator


class Handle:
    __slots__ = ("cancelled",)

    def __init__(self):
        self.cancelled = False


def keys(calq):
    out = []
    while True:
        item = calq.pop()
        if item is None:
            return out
        out.append((-item[0], -item[1]))


def test_serves_time_seq_order_across_buckets():
    calq = CalendarQueue()
    events = [(0.5, 3), (0.01, 0), (2.0, 7), (0.5, 2), (0.02, 1), (1.99, 6)]
    for time, seq in events:
        calq.push(time, seq, Handle())
    assert keys(calq) == sorted(events)
    assert len(calq) == 0


def test_anon_and_handle_entries_mix_in_one_bucket():
    calq = CalendarQueue()
    calq.push(1.0, 2, Handle())
    calq.push_anon(1.0, 1, "cb", ("args",))
    calq.push(1.0, 3, Handle())
    first = calq.pop()
    assert len(first) == 4 and (first[2], first[3]) == ("cb", ("args",))
    assert [( -i[0], -i[1]) for i in (calq.pop(), calq.pop())] == [(1.0, 2), (1.0, 3)]


def test_push_into_promoted_bucket_takes_insort_path():
    calq = CalendarQueue()
    calq.push_anon(10.0, 0, "a", ())
    assert calq.peek() is not None  # promotes the t=10 bucket
    # Same bucket, earlier time than the head: must pop first.
    calq.push_anon(10.0 - 1e-4, 1, "b", ())
    assert calq.pop()[2] == "b"
    assert calq.pop()[2] == "a"


def test_peek_is_nondestructive_and_pop_matches():
    calq = CalendarQueue()
    calq.push_anon(2.0, 5, "x", ())
    calq.push_anon(1.0, 6, "y", ())
    assert calq.next_key() == (1.0, 6)
    assert calq.next_key() == (1.0, 6)  # unchanged by peeking
    assert len(calq) == 2
    assert (-calq.pop()[0]) == 1.0


def test_growth_rescales_and_preserves_order():
    calq = CalendarQueue(scale=1, grow_threshold=8)
    # Distinct times inside one initial bucket; enough insorts into the
    # promoted current bucket to trip the threshold.
    times = [0.9 - i * 0.05 for i in range(9)]
    calq.push_anon(times[0], 0, 0, ())
    calq.peek()  # promote bucket 0 so subsequent pushes insort
    for seq, t in enumerate(times[1:], start=1):
        calq.push_anon(t, seq, seq, ())
    assert calq.grows >= 1
    assert calq.scale > 1
    assert keys(calq) == sorted((t, s) for s, t in enumerate(times))


def test_compact_drops_only_corpses():
    calq = CalendarQueue()
    live, dead = Handle(), Handle()
    calq.push(1.0, 0, live)
    calq.push(2.0, 1, dead)
    calq.push_anon(3.0, 2, "anon", ())
    dead.cancelled = True
    assert calq.compact() == 1
    assert len(calq) == 2
    assert keys(calq) == [(1.0, 0), (3.0, 2)]


def test_compact_while_bucket_promoted():
    calq = CalendarQueue()
    handles = [Handle() for _ in range(4)]
    for seq, h in enumerate(handles):
        calq.push(1.0 + seq, seq, h)
    calq.peek()  # promote the first bucket
    handles[0].cancelled = True
    handles[2].cancelled = True
    assert calq.compact() == 2
    assert keys(calq) == [(2.0, 1), (4.0, 3)]


def test_constructor_validates_knobs():
    with pytest.raises(ValueError):
        CalendarQueue(scale=0)
    with pytest.raises(ValueError):
        CalendarQueue(grow_threshold=2)


def test_empty_queue_pops_none():
    calq = CalendarQueue()
    assert calq.pop() is None
    assert calq.peek() is None
    assert calq.next_key() is None
    assert len(calq) == 0


# ----------------------------------------------------------------------
# Engine integration points specific to the calqueue configuration.
# ----------------------------------------------------------------------

def test_engine_routes_all_schedule_forms_through_calqueue():
    sim = Simulator(opts={"calqueue"})
    fired = []
    sim.schedule(1.0, fired.append, "handle")
    sim.schedule_at(0.5, fired.append, "at")
    sim.schedule_anon(2.0, fired.append, "anon")
    assert len(sim._calq) == 3 and not sim._queue
    assert sim.pending_events == 3
    sim.run()
    assert fired == ["at", "handle", "anon"]
    assert sim.events_executed == 3


def test_engine_compaction_goes_through_calqueue(monkeypatch):
    import repro.sim.engine as engine_mod

    monkeypatch.setattr(engine_mod, "_COMPACT_MIN_CORPSES", 4)
    sim = Simulator(opts={"calqueue"})
    keep = [sim.schedule(10.0 + i, lambda: None) for i in range(3)]
    drop = [sim.schedule(20.0 + i, lambda: None) for i in range(8)]
    for h in drop:
        h.cancel()
    # Compaction triggers as soon as corpses dominate, so corpses
    # cancelled *after* that pass may remain — but the survivors must.
    assert sim.compactions >= 1
    assert len(sim._calq) < 3 + len(drop)
    assert all(not h.cancelled for h in keep)
    sim.run()
    assert sim.events_executed == 3


def test_engine_pool_is_inert_under_calqueue():
    """`pool` has nothing to do when anonymous events are bare tuples."""
    sim = Simulator(opts={"calqueue", "pool"})
    assert sim._pool is None
    sim.schedule_anon(1.0, lambda: None)
    sim.run()
    assert sim.events_executed == 1


def test_engine_rejects_unknown_opts_token():
    from repro.sim.optim import SimOptsError

    with pytest.raises(SimOptsError, match="calender"):
        Simulator(opts={"calender"})
