"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_schedule_and_run_until_executes_in_time_order(sim):
    order = []
    sim.schedule(2.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(3.0, order.append, "c")
    sim.run_until(10.0)
    assert order == ["a", "b", "c"]
    assert sim.now == 10.0


def test_same_time_events_run_in_scheduling_order(sim):
    order = []
    for tag in "abcde":
        sim.schedule(1.0, order.append, tag)
    sim.run_until(1.0)
    assert order == list("abcde")


def test_run_until_is_inclusive_of_end_time(sim):
    fired = []
    sim.schedule(5.0, fired.append, 1)
    sim.run_until(5.0)
    assert fired == [1]


def test_events_after_end_time_stay_queued(sim):
    fired = []
    sim.schedule(5.0, fired.append, 1)
    sim.run_until(4.999)
    assert fired == []
    sim.run_until(5.0)
    assert fired == [1]


def test_schedule_at_absolute_time(sim):
    seen = []
    sim.schedule_at(7.5, lambda: seen.append(sim.now))
    sim.run_until(10.0)
    assert seen == [7.5]


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected(sim):
    sim.run_until(5.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(4.0, lambda: None)


def test_run_until_backwards_rejected(sim):
    sim.run_until(5.0)
    with pytest.raises(SimulationError):
        sim.run_until(4.0)


def test_cancelled_event_does_not_fire(sim):
    fired = []
    handle = sim.schedule(1.0, fired.append, 1)
    handle.cancel()
    sim.run_until(2.0)
    assert fired == []
    assert sim.events_executed == 0


def test_cancel_releases_callback_reference(sim):
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    assert handle.callback is None
    assert handle.args == ()


def test_events_scheduled_during_execution_run_same_pass(sim):
    order = []

    def first():
        order.append("first")
        sim.schedule(0.5, lambda: order.append("nested"))

    sim.schedule(1.0, first)
    sim.run_until(2.0)
    assert order == ["first", "nested"]


def test_zero_delay_event_runs_at_current_time(sim):
    times = []

    def outer():
        sim.schedule(0.0, lambda: times.append(sim.now))

    sim.schedule(1.0, outer)
    sim.run_until(1.0)
    assert times == [1.0]


def test_run_drains_queue_completely(sim):
    count = []
    for i in range(10):
        sim.schedule(float(i), count.append, i)
    sim.run()
    assert count == list(range(10))
    assert sim.pending_events == 0


def test_step_executes_single_event(sim):
    order = []
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    assert sim.step()
    assert order == ["a"]
    assert sim.now == 1.0
    assert sim.step()
    assert not sim.step()


def test_step_skips_cancelled(sim):
    order = []
    handle = sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    handle.cancel()
    assert sim.step()
    assert order == ["b"]


def test_clock_monotonic_through_callbacks(sim):
    observed = []
    for delay in (3.0, 1.0, 2.0, 1.0):
        sim.schedule(delay, lambda: observed.append(sim.now))
    sim.run_until(5.0)
    assert observed == sorted(observed)


def test_executed_counter_excludes_cancelled(sim):
    handles = [sim.schedule(1.0, lambda: None) for _ in range(5)]
    handles[0].cancel()
    handles[3].cancel()
    sim.run_until(2.0)
    assert sim.events_executed == 3


def test_not_reentrant():
    sim = Simulator()

    def recurse():
        sim.run_until(10.0)

    sim.schedule(1.0, recurse)
    with pytest.raises(SimulationError):
        sim.run_until(5.0)


def test_callback_args_passed_through(sim):
    seen = []
    sim.schedule(1.0, lambda a, b, c: seen.append((a, b, c)), 1, "x", None)
    sim.run_until(1.0)
    assert seen == [(1, "x", None)]


def test_many_events_keep_total_order(sim):
    import random

    rng = random.Random(0)
    fired = []
    expected = []
    for i in range(1000):
        t = rng.uniform(0, 100)
        expected.append((t, i))
        sim.schedule(t, fired.append, (t, i))
    sim.run()
    # Sort by (time, scheduling order) — exactly the engine's contract.
    assert fired == sorted(expected)
