"""Edge cases of the optimized engine paths.

The optimizations (calendar queue, batched dispatch, timer wheel, event
pool) are gated (``REPRO_SIM_OPTS`` / ``Simulator(optimize=/opts=)``)
and required to be observably identical to the plain heap.  These tests
pin the tricky interleavings: cancellation from inside a running
callback, same-timestamp FIFO across the wheel/queue merge (including
mid-drain under batched dispatch), corpse compaction in the middle of a
run, and GC state restoration.
"""

import gc

import pytest

from repro.sim.engine import _COMPACT_MIN_CORPSES, SimulationError, Simulator

#: Every engine configuration of interest; the edge cases below must
#: behave identically under all of them.
ALL_MODES = [
    pytest.param(frozenset(), id="plain"),
    pytest.param(frozenset({"wheel", "pool"}), id="wheel-pool"),
    pytest.param(frozenset({"calqueue", "wheel"}), id="calqueue"),
    pytest.param(frozenset({"calqueue", "wheel", "batch"}), id="batched"),
]

#: The calqueue-backed subset (with and without batched dispatch).
CALQ_MODES = [
    frozenset({"calqueue", "wheel"}),
    frozenset({"calqueue", "wheel", "batch"}),
]


@pytest.fixture(params=ALL_MODES)
def any_sim(request):
    return Simulator(opts=request.param)


# ----------------------------------------------------------------------
# Cancel during dispatch
# ----------------------------------------------------------------------
def test_cancel_during_dispatch_same_time(any_sim):
    """An event cancelled by an earlier same-timestamp event never fires."""
    sim = any_sim
    fired = []
    victim = None

    def killer():
        fired.append("killer")
        victim.cancel()

    sim.schedule(1.0, killer)
    victim = sim.schedule(1.0, fired.append, "victim")
    sim.run()
    assert fired == ["killer"]
    assert sim.events_executed == 1


def test_cancel_periodic_from_callback(any_sim):
    """A periodic timer cancelled mid-dispatch stops immediately, in both
    the wheel-backed and heap-backed implementations."""
    from repro.sim.timers import PeriodicTimer

    sim = any_sim
    ticks = []
    timer = PeriodicTimer(sim, period=1.0, callback=lambda: ticks.append(sim.now))

    def stop_it():
        timer.stop()

    timer.start(phase=1.0)
    sim.schedule(2.5, stop_it)
    sim.run_until(10.0)
    assert ticks == [1.0, 2.0]


# ----------------------------------------------------------------------
# Wheel/heap merge ordering
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "opts",
    [frozenset({"wheel", "pool"})] + CALQ_MODES,
    ids=["wheel-pool", "calqueue", "batched"],
)
def test_same_time_fifo_across_wheel_and_queue(opts):
    """Events at one timestamp run in scheduling order regardless of
    whether they live in the wheel or the main queue.  Under batched
    dispatch this is exactly the mid-drain wheel interleave: the drain
    must pause for the wheel entry whose seq falls between two queued
    events."""
    sim = Simulator(opts=opts)
    order = []
    # Interleave: queue, wheel, queue, wheel — all at t=1.0.
    sim.schedule(1.0, order.append, "queue-0")
    sim.schedule_periodic(1.0, lambda: order.append("wheel-1"))
    sim.schedule(1.0, order.append, "queue-2")
    sim.schedule_periodic(1.0, lambda: order.append("wheel-3"))
    sim.run_until(1.0)
    assert order == ["queue-0", "wheel-1", "queue-2", "wheel-3"]


@pytest.mark.parametrize("opts", CALQ_MODES, ids=["calqueue", "batched"])
def test_zero_delay_cascade_runs_after_queued_same_time_events(opts):
    """A delay-0 event spawned mid-dispatch carries a larger seq than
    everything already queued at that time, so a batched drain must
    fire it last — never before the pre-existing same-time events."""
    sim = Simulator(opts=opts)
    order = []

    def spawner():
        order.append("spawner")
        sim.schedule_anon(0.0, order.append, "spawned")
        sim.schedule(0.0, order.append, "spawned-handle")

    sim.schedule(1.0, spawner)
    sim.schedule(1.0, order.append, "pre-1")
    sim.schedule(1.0, order.append, "pre-2")
    sim.run()
    assert order == ["spawner", "pre-1", "pre-2", "spawned", "spawned-handle"]


@pytest.mark.parametrize("opts", CALQ_MODES, ids=["calqueue", "batched"])
def test_cancel_mid_drain_skips_victim(opts):
    """Cancellation of a later same-time event from inside the drain."""
    sim = Simulator(opts=opts)
    order = []
    victims = []

    def killer():
        order.append("killer")
        victims[0].cancel()

    sim.schedule(1.0, killer)
    victims.append(sim.schedule(1.0, order.append, "victim"))
    sim.schedule(1.0, order.append, "survivor")
    sim.run()
    assert order == ["killer", "survivor"]
    assert sim.events_executed == 2


def test_merge_order_matches_plain_engine():
    """The same scramble of one-shot and periodic work executes in the
    same order on every engine configuration."""
    def drive(opts):
        sim = Simulator(opts=opts)
        log = []

        def tick(tag):
            log.append((round(sim.now, 6), tag))

        from repro.sim.timers import PeriodicTimer

        timers = [
            PeriodicTimer(sim, period=0.3, callback=lambda: tick("a")),
            PeriodicTimer(sim, period=0.45, callback=lambda: tick("b")),
        ]
        for timer in timers:
            timer.start()
        for i in range(10):
            sim.schedule(0.1 + 0.17 * i, tick, f"one-{i}")
        sim.run_until(2.0)
        return log

    reference = drive(frozenset({"wheel"}))
    for mode in [frozenset({"wheel", "pool"})] + CALQ_MODES:
        assert drive(mode) == reference, f"mode {sorted(mode)} diverged"


@pytest.mark.parametrize(
    "opts",
    [frozenset({"wheel", "pool"})] + CALQ_MODES,
    ids=["wheel-pool", "calqueue", "batched"],
)
def test_step_serves_wheel_and_queue_in_order(opts):
    sim = Simulator(opts=opts)
    order = []
    sim.schedule_periodic(0.5, lambda: order.append("wheel"))
    sim.schedule(0.4, order.append, "early-queue")
    sim.schedule(0.6, order.append, "late-queue")
    while sim.step():
        pass
    assert order == ["early-queue", "wheel", "late-queue"]


# ----------------------------------------------------------------------
# Corpse compaction
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "opts",
    [frozenset({"wheel", "pool"})] + CALQ_MODES,
    ids=["wheel-pool", "calqueue", "batched"],
)
def test_compaction_mid_run_preserves_survivors(opts):
    """Mass-cancelling from inside a callback compacts the queue while
    the run loop is iterating; survivors still fire, in order."""
    sim = Simulator(opts=opts)
    fired = []
    n = 3 * _COMPACT_MIN_CORPSES
    handles = [
        sim.schedule(2.0 + i * 1e-4, fired.append, i) for i in range(n)
    ]
    survivors = list(range(0, n, 7))

    def mass_cancel():
        keep = set(survivors)
        for i, handle in enumerate(handles):
            if i not in keep:
                handle.cancel()

    sim.schedule(1.0, mass_cancel)
    sim.run()
    assert fired == survivors
    assert sim.compactions >= 1
    assert sim.events_executed == 1 + len(survivors)


def test_plain_engine_never_compacts():
    sim = Simulator(optimize=False)
    handles = [sim.schedule(1.0 + i * 1e-4, lambda: None) for i in range(200)]
    for handle in handles[:-1]:
        handle.cancel()
    sim.run()
    assert sim.compactions == 0
    assert sim.events_executed == 1


# ----------------------------------------------------------------------
# GC suspension
# ----------------------------------------------------------------------
def test_gc_restored_after_run(any_sim):
    sim = any_sim
    assert gc.isenabled()
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert gc.isenabled()


def test_gc_restored_after_callback_raises():
    sim = Simulator(optimize=True)

    def boom():
        raise RuntimeError("boom")

    sim.schedule(1.0, boom)
    with pytest.raises(RuntimeError):
        sim.run()
    assert gc.isenabled()


def test_gc_left_disabled_if_caller_disabled_it():
    sim = Simulator(optimize=True)
    sim.schedule(1.0, lambda: None)
    gc.disable()
    try:
        sim.run()
        assert not gc.isenabled()
    finally:
        gc.enable()


# ----------------------------------------------------------------------
# Guard rails
# ----------------------------------------------------------------------
def test_schedule_periodic_requires_wheel():
    sim = Simulator(optimize=False)
    with pytest.raises(SimulationError):
        sim.schedule_periodic(1.0, lambda: None)


def test_events_executed_identical_across_modes():
    def drive(opts):
        sim = Simulator(opts=opts)
        from repro.sim.timers import PeriodicTimer

        timer = PeriodicTimer(sim, period=0.25, callback=lambda: None)
        timer.start()
        for i in range(20):
            sim.schedule(0.05 * i, lambda: None)
        sim.run_until(5.0)
        return sim.events_executed

    counts = {
        ",".join(sorted(mode)) or "plain": drive(mode)
        for mode in [frozenset({"wheel"}), frozenset({"wheel", "pool"})] + CALQ_MODES
    }
    assert len(set(counts.values())) == 1, counts
