"""Unit tests for the declarative chaos scenario engine."""

import random

import pytest

from repro.net.latency import ConstantLatencyModel
from repro.sim.engine import Simulator
from repro.sim.failures import FailureInjector
from repro.sim.scenarios import (
    CANNED,
    Phase,
    Scenario,
    ScenarioEngine,
    resolve_scenario,
)
from repro.sim.transport import Network


class StubEndpoint:
    def __init__(self, node_id):
        self.node_id = node_id

    def handle_message(self, src, msg):
        pass

    def handle_send_failure(self, dst, msg):
        pass


class StubHarness:
    """Records lifecycle callbacks; spawns plain stub endpoints."""

    def __init__(self, network, first_id):
        self.network = network
        self.next_id = first_id
        self.spawned = []
        self.left = []
        self.restarted = []

    def spawn_node(self):
        node_id = self.next_id
        self.next_id += 1
        self.network.register(StubEndpoint(node_id))
        self.spawned.append(node_id)
        return node_id

    def leave_node(self, node_id):
        self.left.append(node_id)
        self.network.kill(node_id)

    def restart_node(self, node_id):
        self.restarted.append(node_id)
        self.network.remove(node_id)
        self.network.register(StubEndpoint(node_id))


def make_world(n=12, seed=5):
    sim = Simulator()
    network = Network(sim, ConstantLatencyModel(64), rng=random.Random(1))
    for i in range(n):
        network.register(StubEndpoint(i))
    injector = FailureInjector(sim, network, random.Random(seed))
    harness = StubHarness(network, first_id=n)
    return sim, network, injector, harness


def make_engine(scenario, n=12, seed=5, protected=()):
    sim, network, injector, harness = make_world(n=n, seed=seed)
    engine = ScenarioEngine(
        sim,
        network,
        injector,
        scenario,
        rng=random.Random(seed),
        spawn_node=harness.spawn_node,
        leave_node=harness.leave_node,
        restart_node=harness.restart_node,
        protected_ids=protected,
    )
    return sim, network, engine, harness


# ----------------------------------------------------------------------
# Phase validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        dict(kind="meteor"),
        dict(kind="crash", at=-1.0, fraction=0.1),
        dict(kind="crash", duration=1.0, fraction=0.1),
        dict(kind="crash"),  # neither count nor fraction
        dict(kind="crash", fraction=1.0),
        dict(kind="churn", duration=5.0),  # rate missing
        dict(kind="churn", rate=0.5),  # duration missing
        dict(kind="loss", duration=5.0, rate=0.0),
        dict(kind="loss", duration=5.0, rate=1.0),
        dict(kind="latency", duration=5.0, factor=0.0),
        dict(kind="partition", duration=1.0, parts=1),
        dict(kind="restart", count=2, downtime=0.0),
    ],
)
def test_phase_rejects_invalid(kwargs):
    with pytest.raises(ValueError):
        Phase(**kwargs)


def test_phase_end_accounts_for_downtime():
    assert Phase("crash", at=3.0, fraction=0.1).end == 3.0
    assert Phase("loss", at=1.0, duration=4.0, rate=0.1).end == 5.0
    assert Phase("restart", at=2.0, count=1, downtime=3.0).end == 5.0


def test_phase_dict_roundtrip_is_minimal():
    phase = Phase("churn", at=1.5, duration=6.0, rate=0.4, joins=False)
    data = phase.to_dict()
    # Only non-default fields are serialized.
    assert data == {
        "kind": "churn", "at": 1.5, "duration": 6.0, "rate": 0.4, "joins": False
    }
    assert Phase.from_dict(data) == phase


def test_phase_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown phase fields"):
        Phase.from_dict({"kind": "crash", "fraction": 0.1, "severity": 11})
    with pytest.raises(ValueError, match="needs a 'kind'"):
        Phase.from_dict({"fraction": 0.1})


# ----------------------------------------------------------------------
# Scenario validation, composition, serialization
# ----------------------------------------------------------------------
def test_scenario_duration_and_needs_joins():
    scenario = Scenario(
        name="x",
        phases=(
            Phase("crash", at=2.0, fraction=0.1),
            Phase("loss", at=1.0, duration=8.0, rate=0.1),
        ),
    )
    assert scenario.duration == 9.0
    assert not scenario.needs_joins
    churny = Scenario(
        name="y", phases=(Phase("churn", at=0.0, duration=2.0, rate=1.0),)
    )
    assert churny.needs_joins
    shrink = Scenario(
        name="z",
        phases=(Phase("churn", at=0.0, duration=2.0, rate=1.0, joins=False),),
    )
    assert not shrink.needs_joins
    assert Scenario(
        name="r", phases=(Phase("restart", at=0.0, count=1),)
    ).needs_joins


def test_scenario_requires_name_and_phase_instances():
    with pytest.raises(ValueError):
        Scenario(name="", phases=())
    with pytest.raises(TypeError):
        Scenario(name="x", phases=({"kind": "crash"},))


def test_scenario_shifted_and_compose():
    a = Scenario(name="a", phases=(Phase("crash", at=1.0, fraction=0.1),))
    b = Scenario(name="b", phases=(Phase("loss", at=0.5, duration=2.0, rate=0.1),))
    shifted = a.shifted(4.0)
    assert shifted.phases[0].at == 5.0
    assert shifted.name == "a"

    combo = Scenario.compose("combo", a, b, gap=1.0)
    # b starts after a.duration (1.0) + gap (1.0).
    assert [p.at for p in combo.phases] == [1.0, 2.5]
    assert combo.duration == 4.5


def test_scenario_json_roundtrip():
    scenario = CANNED["worst-day"]
    assert Scenario.from_json(scenario.to_json()) == scenario


def test_scenario_from_dict_rejects_garbage():
    with pytest.raises(ValueError, match="unknown scenario fields"):
        Scenario.from_dict({"name": "x", "phases": [], "color": "red"})
    with pytest.raises(ValueError, match="'phases' list"):
        Scenario.from_dict({"name": "x", "phases": "crash"})


def test_canned_library_integrity():
    assert set(CANNED) == {
        "paper-shock-25",
        "steady-churn",
        "flapping-partition",
        "loss-10",
        "latency-spike",
        "worst-day",
    }
    for name, scenario in CANNED.items():
        assert scenario.name == name
        assert scenario.description
        assert scenario.phases
        assert scenario.duration >= 0
        # Every canned scenario survives a serialization roundtrip.
        assert resolve_scenario(scenario.to_dict()) == scenario


def test_resolve_scenario_forms():
    assert resolve_scenario("loss-10") is CANNED["loss-10"]
    scenario = CANNED["latency-spike"]
    assert resolve_scenario(scenario) is scenario
    assert resolve_scenario(scenario.to_dict()) == scenario
    with pytest.raises(KeyError, match="unknown scenario"):
        resolve_scenario("tuesday")
    with pytest.raises(TypeError):
        resolve_scenario(42)


# ----------------------------------------------------------------------
# Engine execution
# ----------------------------------------------------------------------
def test_engine_crash_phase_kills_fraction():
    scenario = Scenario(name="c", phases=(Phase("crash", at=1.0, fraction=0.25),))
    sim, network, engine, _ = make_engine(scenario, n=12)
    end = engine.arm(start=0.0)
    assert end == 1.0
    sim.run_until(2.0)
    assert engine.counts["crashes"] == 3
    assert len(network.alive_nodes()) == 9
    assert engine.disturbed == set(range(12)) - network.alive_nodes()
    assert engine.veteran_ids(range(12)) == network.alive_nodes()


def test_engine_churn_runs_only_inside_window():
    scenario = Scenario(
        name="c", phases=(Phase("churn", at=1.0, duration=5.0, rate=2.0),)
    )
    sim, network, engine, harness = make_engine(scenario, n=12)
    engine.arm(start=0.0)
    sim.run_until(50.0)
    assert engine.counts["leaves"] == engine.counts["joins"]
    assert engine.counts["leaves"] > 0
    # Every leave victim is disturbed; every join is tracked.
    assert set(harness.left) <= engine.disturbed
    assert set(harness.spawned) == engine.joined
    # Veterans: original population minus the churned-out nodes.
    veterans = engine.veteran_ids(range(12))
    assert veterans == set(range(12)) - engine.disturbed


def test_engine_protected_ids_survive_churn_and_restart():
    scenario = Scenario(
        name="c",
        phases=(
            Phase("churn", at=0.0, duration=10.0, rate=2.0, joins=False),
            Phase("restart", at=11.0, count=3, downtime=1.0),
        ),
    )
    sim, network, engine, harness = make_engine(scenario, n=8, protected=(0,))
    engine.arm(start=0.0)
    sim.run_until(60.0)
    assert 0 not in harness.left
    assert 0 not in harness.restarted
    assert network.is_alive(0)


def test_engine_partition_heals_exactly_the_cut():
    scenario = Scenario(
        name="p", phases=(Phase("partition", at=1.0, duration=2.0, parts=2),)
    )
    sim, network, engine, _ = make_engine(scenario, n=10)
    engine.arm(start=0.0)
    sim.run_until(1.5)
    down = sum(
        1
        for a in range(10)
        for b in range(a + 1, 10)
        if not network.link_ok(a, b)
    )
    assert down == 25  # a 5/5 bisection cuts 25 links
    sim.run_until(4.0)
    assert all(
        network.link_ok(a, b) for a in range(10) for b in range(a + 1, 10)
    )
    assert engine.counts == {**engine.counts, "partitions": 1, "heals": 1}


def test_engine_loss_and_latency_windows_restore_previous_values():
    scenario = Scenario(
        name="w",
        phases=(
            Phase("loss", at=1.0, duration=2.0, rate=0.25),
            Phase("latency", at=2.0, duration=2.0, factor=4.0),
        ),
    )
    sim, network, engine, _ = make_engine(scenario, n=4)
    engine.arm(start=0.0)
    sim.run_until(1.5)
    assert network.loss_rate == 0.25
    sim.run_until(2.5)
    assert network.latency_factor == 4.0
    sim.run_until(3.5)
    assert network.loss_rate == 0.0
    assert network.latency_factor == 4.0
    sim.run_until(5.0)
    assert network.latency_factor == 1.0
    assert engine.counts["loss_windows"] == 1
    assert engine.counts["latency_windows"] == 1


def test_engine_restart_cycles_victims_through_downtime():
    scenario = Scenario(
        name="r", phases=(Phase("restart", at=1.0, count=2, downtime=3.0),)
    )
    sim, network, engine, harness = make_engine(scenario, n=8)
    engine.arm(start=0.0)
    sim.run_until(2.0)
    assert len(network.alive_nodes()) == 6
    assert not harness.restarted
    sim.run_until(4.0)
    assert sorted(harness.restarted) == sorted(engine.disturbed)
    assert len(network.alive_nodes()) == 8
    assert engine.counts["restarts"] == 2
    # Restarted nodes are joined *and* disturbed: never veterans.
    assert engine.veteran_ids(range(8)) == set(range(8)) - engine.disturbed


def test_engine_requires_harness_for_lifecycle_phases():
    sim, network, injector, _ = make_world(n=4)
    engine = ScenarioEngine(
        sim,
        network,
        injector,
        CANNED["steady-churn"],
        rng=random.Random(1),
    )
    with pytest.raises(ValueError, match="does not support"):
        engine.arm(start=0.0)


def test_engine_arm_is_single_shot():
    scenario = Scenario(name="c", phases=(Phase("crash", at=1.0, fraction=0.1),))
    sim, _, engine, _ = make_engine(scenario, n=4)
    engine.arm(start=0.0)
    with pytest.raises(RuntimeError, match="already armed"):
        engine.arm(start=5.0)


def test_engine_is_deterministic_for_seed():
    def run(seed):
        sim, network, engine, harness = make_engine(
            CANNED["worst-day"], n=16, seed=seed
        )
        engine.arm(start=0.0)
        sim.run_until(engine.end_time + 5.0)
        return (
            dict(engine.counts),
            sorted(engine.disturbed),
            sorted(engine.joined),
            sorted(network.alive_nodes()),
        )

    assert run(3) == run(3)
    assert run(3) != run(4)
