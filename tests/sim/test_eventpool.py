"""Unit tests for the event-handle freelist (see repro.sim.eventpool)."""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.eventpool import EventPool


def test_acquire_allocates_then_recycles():
    pool = EventPool(EventHandle)
    h1 = pool.acquire(1.0, 0, print, ())
    assert pool.created == 1 and pool.reused == 0
    pool.release(h1)
    h2 = pool.acquire(2.0, 1, print, ("x",))
    assert h2 is h1
    assert pool.reused == 1
    assert (h2.time, h2.seq, h2.args) == (2.0, 1, ("x",))


def test_release_strips_payload():
    pool = EventPool(EventHandle)
    handle = pool.acquire(1.0, 0, print, ("payload",))
    pool.release(handle)
    assert handle.callback is None and handle.args == ()
    assert not handle.cancelled


def test_freelist_is_bounded():
    pool = EventPool(EventHandle, max_size=2)
    handles = [pool.acquire(float(i), i, print, ()) for i in range(4)]
    for handle in handles:
        pool.release(handle)
    assert len(pool) == 2


def test_reuse_never_resurrects_previous_callback():
    """A recycled handle must only ever fire its *new* payload.

    The pool serves the heap path only (under ``calqueue`` anonymous
    events are bare tuples), so these tests pin the PR-4 token set.
    """
    sim = Simulator(opts={"wheel", "pool"})
    calls = []
    sim.schedule_anon(1.0, calls.append, "first")
    sim.run()
    # The fired handle is back on the freelist; reuse it.
    assert len(sim._pool) == 1
    sim.schedule_anon(1.0, calls.append, "second")
    sim.run()
    assert calls == ["first", "second"]


def test_cancelled_external_handle_never_enters_pool():
    """Only anonymous (engine-owned) handles are pooled: a handle the
    caller holds — and could still cancel — must not be recycled."""
    sim = Simulator(opts={"wheel", "pool"})
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule_anon(2.0, lambda: None)
    handle.cancel()
    sim.run()
    assert handle not in sim._pool._free
    assert all(h.pooled for h in sim._pool._free)


def test_cancel_then_reschedule_around_pool_reuse():
    """Cancelling a fired external handle must never poison a recycled
    pooled handle that fires at the same time later on."""
    sim = Simulator(opts={"wheel", "pool"})
    calls = []
    external = sim.schedule(1.0, calls.append, "external")
    sim.schedule_anon(1.0, calls.append, "anon-1")
    sim.run_until(2.0)
    assert calls == ["external", "anon-1"]
    # Both fired; the anon handle is back on the freelist.  Cancelling
    # the fired external handle is a harmless no-op...
    external.cancel()
    # ...and the recycled pooled handle starts life uncancelled.
    sim.schedule_anon(1.0, calls.append, "anon-2")
    recycled = sim._queue[0][2]
    assert recycled.pooled and not recycled.cancelled
    sim.run_until(4.0)
    assert calls == ["external", "anon-1", "anon-2"]
