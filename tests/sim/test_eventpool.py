"""Unit tests for the event-handle freelist (see repro.sim.eventpool)."""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.eventpool import EventPool


def test_acquire_allocates_then_recycles():
    pool = EventPool(EventHandle)
    h1 = pool.acquire(1.0, 0, print, ())
    assert pool.created == 1 and pool.reused == 0
    pool.release(h1)
    h2 = pool.acquire(2.0, 1, print, ("x",))
    assert h2 is h1
    assert pool.reused == 1
    assert (h2.time, h2.seq, h2.args) == (2.0, 1, ("x",))


def test_release_strips_payload():
    pool = EventPool(EventHandle)
    handle = pool.acquire(1.0, 0, print, ("payload",))
    pool.release(handle)
    assert handle.callback is None and handle.args == ()
    assert not handle.cancelled


def test_freelist_is_bounded():
    pool = EventPool(EventHandle, max_size=2)
    handles = [pool.acquire(float(i), i, print, ()) for i in range(4)]
    for handle in handles:
        pool.release(handle)
    assert len(pool) == 2


def test_reuse_never_resurrects_previous_callback():
    """A recycled handle must only ever fire its *new* payload."""
    sim = Simulator(optimize=True)
    calls = []
    sim.schedule_anon(1.0, calls.append, "first")
    sim.run()
    # The fired handle is back on the freelist; reuse it.
    assert len(sim._pool) == 1
    sim.schedule_anon(1.0, calls.append, "second")
    sim.run()
    assert calls == ["first", "second"]


def test_cancelled_external_handle_never_enters_pool():
    """Only anonymous (engine-owned) handles are pooled: a handle the
    caller holds — and could still cancel — must not be recycled."""
    sim = Simulator(optimize=True)
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule_anon(2.0, lambda: None)
    handle.cancel()
    sim.run()
    assert handle not in sim._pool._free
    assert all(h.pooled for h in sim._pool._free)
