"""Teeth tests for the runtime invariant checker.

Each test deliberately breaks one protocol invariant on a
:class:`TinyCluster` and asserts the checker catches exactly that
break — proving the chaos suite's "zero violations" verdicts mean
something.  The healthy-cluster test closes the loop: an undisturbed
run stays violation-free.
"""

import pytest

from repro.core.messages import NEARBY, RANDOM
from repro.sim.invariants import (
    INVARIANTS,
    InvariantChecker,
    InvariantError,
    format_invariant_report,
)
from repro.sim.trace import DeliveryTracer

from tests.conftest import TinyCluster


def make_checker(cluster, **overrides):
    kwargs = dict(period=0.25, config=cluster.config)
    kwargs.update(overrides)
    return InvariantChecker(cluster.nodes, cluster.network, **kwargs)


def violated(checker, invariant):
    return [v for v in checker.violations if v.invariant == invariant]


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def test_rejects_nonpositive_period():
    cluster = TinyCluster(2)
    with pytest.raises(ValueError, match="period"):
        make_checker(cluster, period=0.0)


def test_needs_a_config_source():
    with pytest.raises(ValueError, match="config"):
        InvariantChecker({}, network=None)


# ----------------------------------------------------------------------
# degree-bound
# ----------------------------------------------------------------------
def over_cap_cluster(n=12):
    """A build that bypassed the degree cap via force_link.

    The nodes are deliberately *not* started: running maintenance sheds
    a degree surplus within one period (the protocol self-heals), so the
    broken state only persists in a build whose maintenance is absent or
    whose cap enforcement is bypassed — which is exactly the bug class
    this invariant exists to catch.
    """
    cluster = TinyCluster(n)
    cfg = cluster.config
    bound = cfg.c_rand + cfg.degree_slack + 2  # checker's allowance
    for peer in range(1, bound + 2):
        cluster.connect(0, peer, kind=RANDOM)
    return cluster


def test_degree_cap_bypass_is_detected():
    """The ISSUE acceptance case: a build that bypasses the degree cap
    via force_link must produce a detected violation."""
    cluster = over_cap_cluster()
    checker = make_checker(cluster, period=0.02, degree_grace=0.0)
    checker.start(cluster.sim)
    cluster.run(0.05)
    bad = violated(checker, "degree-bound")
    assert bad and bad[0].node == 0
    assert "d_rand" in bad[0].detail


def test_degree_cap_bypass_hard_fails():
    cluster = over_cap_cluster()
    checker = make_checker(cluster, period=0.02, degree_grace=0.0, hard_fail=True)
    checker.start(cluster.sim)
    with pytest.raises(InvariantError, match="degree-bound"):
        cluster.run(0.05)


def test_maintenance_sheds_surplus_within_grace():
    """Started nodes shed a forced surplus before the default grace —
    the reason the bound carries a grace window at all."""
    cluster = over_cap_cluster()
    cluster.start_all()
    checker = make_checker(cluster, period=0.02)  # default degree_grace
    checker.start(cluster.sim)
    cluster.run(0.2)
    assert not violated(checker, "degree-bound")
    cfg = cluster.config
    assert cluster.nodes[0].overlay.d_rand <= cfg.c_rand + cfg.degree_slack


# ----------------------------------------------------------------------
# symmetry
# ----------------------------------------------------------------------
def one_sided_cluster():
    cluster = TinyCluster(4)
    cluster.start_all()
    # 0 lists 3 but 3 does not list 0 — and nothing repairs it because
    # the link was never installed via the handshake.
    rtt = cluster.latency_model.rtt(0, 3)
    cluster.nodes[0].overlay.force_link(3, NEARBY, rtt)
    return cluster


def test_persistent_asymmetry_is_detected():
    cluster = one_sided_cluster()
    checker = make_checker(cluster, period=0.1, asymmetry_grace=0.5)
    checker.start(cluster.sim)
    cluster.run(1.0)
    bad = violated(checker, "symmetry")
    assert bad and bad[0].node == 0
    assert "3" in bad[0].detail
    # Persistent condition, single report.
    assert len(bad) == 1


def test_asymmetry_within_grace_is_tolerated():
    cluster = one_sided_cluster()
    checker = make_checker(cluster, period=0.1, asymmetry_grace=30.0)
    checker.start(cluster.sim)
    cluster.run(1.0)
    assert not violated(checker, "symmetry")


def test_exempt_suppresses_symmetry_for_restarting_node():
    cluster = one_sided_cluster()
    checker = make_checker(cluster, period=0.1, asymmetry_grace=0.2)
    checker.start(cluster.sim)
    checker.exempt(3, until=5.0)
    cluster.run(1.0)
    assert not violated(checker, "symmetry")


# ----------------------------------------------------------------------
# tree invariants
# ----------------------------------------------------------------------
def test_parent_off_overlay_is_detected():
    cluster = TinyCluster(4)
    cluster.start_all()
    cluster.connect(0, 1)
    cluster.nodes[0].tree.parent = 2  # not an overlay neighbor
    checker = make_checker(cluster, period=0.1, tree_grace=0.3)
    checker.start(cluster.sim)
    cluster.run(1.0)
    bad = violated(checker, "tree-parent-link")
    assert bad and bad[0].node == 0
    assert "0->2" in bad[0].detail


def test_parent_cycle_is_detected():
    cluster = TinyCluster(4)
    cluster.start_all()
    cluster.connect(0, 1)
    cluster.connect(1, 2)
    cluster.connect(2, 0)
    cluster.nodes[0].tree.parent = 1
    cluster.nodes[1].tree.parent = 2
    cluster.nodes[2].tree.parent = 0
    checker = make_checker(cluster, period=0.1, tree_grace=0.3)
    checker.start(cluster.sim)
    cluster.run(1.0)
    bad = violated(checker, "tree-cycle")
    assert bad and "[0, 1, 2]" in bad[0].detail
    assert len(bad) == 1  # persistent cycle reports once


def test_healthy_parent_chain_is_clean():
    cluster = TinyCluster(4)
    cluster.start_all()
    cluster.connect_chain([0, 1, 2, 3])
    cluster.nodes[1].tree.parent = 0
    cluster.nodes[2].tree.parent = 1
    cluster.nodes[3].tree.parent = 2
    checker = make_checker(cluster, period=0.1, tree_grace=0.3)
    checker.start(cluster.sim)
    cluster.run(1.0)
    assert not violated(checker, "tree-parent-link")
    assert not violated(checker, "tree-cycle")


# ----------------------------------------------------------------------
# duplicate-delivery
# ----------------------------------------------------------------------
def test_duplicate_delivery_is_detected():
    cluster = TinyCluster(2)
    checker = make_checker(cluster)
    checker._sim = cluster.sim
    checker.watch_deliveries()
    node = cluster.nodes[0]
    for listener in node.delivery_listeners:
        listener("m1", 100)
    assert not checker.violations
    for listener in node.delivery_listeners:
        listener("m1", 100)
    bad = violated(checker, "duplicate-delivery")
    assert bad and bad[0].node == 0


def test_forget_node_resets_duplicate_audit():
    cluster = TinyCluster(2)
    checker = make_checker(cluster)
    checker._sim = cluster.sim
    checker.watch_deliveries()
    node = cluster.nodes[0]
    for listener in node.delivery_listeners:
        listener("m1", 100)
    checker.forget_node(0)
    checker.watch_deliveries(0)
    # The rebuilt node may legitimately re-receive old messages — but
    # the fresh listener from watch_deliveries is additive, so deliver
    # through the checker hook directly.
    checker._on_delivery(0, "m1")
    assert not violated(checker, "duplicate-delivery")


# ----------------------------------------------------------------------
# gossip-starvation
# ----------------------------------------------------------------------
def test_stopped_gossip_timer_starves_neighbors():
    cluster = TinyCluster(2)
    cluster.start_all()
    cluster.connect(0, 1)
    cluster.nodes[0]._gossip_timer.stop()  # the deliberately broken build
    cluster.nodes[1]._gossip_timer.stop()
    # Silent-neighbor eviction would heal the starvation before the
    # fairness bound trips; disable it to keep the broken link in place.
    cluster.nodes[0].overlay.evict_silent_neighbors = lambda: None
    cluster.nodes[1].overlay.evict_silent_neighbors = lambda: None
    checker = make_checker(cluster, period=0.5)
    checker.start(cluster.sim)
    cluster.run(8.0)
    bad = violated(checker, "gossip-starvation")
    assert bad
    assert "sent nothing" in bad[0].detail


def test_running_gossip_timers_are_fair():
    cluster = TinyCluster(3)
    cluster.start_all()
    cluster.connect(0, 1)
    cluster.connect(1, 2)
    checker = make_checker(cluster, period=0.5)
    checker.start(cluster.sim)
    cluster.run(8.0)
    assert not violated(checker, "gossip-starvation")


# ----------------------------------------------------------------------
# eventual-delivery (final check)
# ----------------------------------------------------------------------
def tracer_with(deliveries, source=0, msg="m1"):
    tracer = DeliveryTracer()
    tracer.injected(msg, 0.0, source)  # the source trivially has it
    for node in deliveries:
        if node != source:
            tracer.delivered(msg, node, 1.0)
    return tracer


def test_final_check_flags_missing_receiver():
    cluster = TinyCluster(4)
    cluster.start_all()
    checker = make_checker(cluster)
    checker._sim = cluster.sim
    tracer = tracer_with(deliveries=[0, 1, 2], source=0)
    added = checker.final_delivery_check(tracer, receivers=[0, 1, 2, 3])
    assert added == 1
    bad = violated(checker, "eventual-delivery")
    assert bad and "missed 1 of 4" in bad[0].detail


def test_final_check_passes_when_all_receivers_served():
    cluster = TinyCluster(4)
    cluster.start_all()
    checker = make_checker(cluster)
    checker._sim = cluster.sim
    tracer = tracer_with(deliveries=[0, 1, 2, 3], source=0)
    assert checker.final_delivery_check(tracer, receivers=[0, 1, 2, 3]) == 0
    assert not checker.violations


def test_final_check_counts_stranded_message_not_violation():
    cluster = TinyCluster(4)
    cluster.start_all()
    cluster.network.kill(0)  # the source died before any handoff
    checker = make_checker(cluster)
    checker._sim = cluster.sim
    tracer = tracer_with(deliveries=[0], source=0)  # only the source saw it
    assert checker.final_delivery_check(tracer, receivers=[1, 2, 3]) == 0
    assert checker.stranded_messages == 1
    assert not checker.violations


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def test_report_shape_and_formatting():
    cluster = one_sided_cluster()
    checker = make_checker(cluster, period=0.1, asymmetry_grace=0.2)
    checker.start(cluster.sim)
    cluster.run(1.0)
    checker.stop()
    report = checker.report()
    assert report["checked"] == list(INVARIANTS)
    assert report["total_violations"] == 1
    assert report["counts"]["symmetry"] == 1
    assert report["samples"] >= 9
    text = format_invariant_report(report)
    assert "symmetry" in text and "FAIL" in text
    assert "1 violation(s)" in text


def test_max_violations_caps_the_record():
    cluster = TinyCluster(12)
    cluster.start_all()
    for peer in range(1, 11):
        cluster.nodes[0].overlay.force_link(
            peer, NEARBY, cluster.latency_model.rtt(0, peer)
        )
    checker = make_checker(
        cluster, period=0.1, asymmetry_grace=0.0, max_violations=3
    )
    checker.start(cluster.sim)
    cluster.run(0.5)
    assert len(checker.violations) == 3


# ----------------------------------------------------------------------
# Bounded sampling at scale
# ----------------------------------------------------------------------
def test_rejects_nonpositive_sample_cap():
    cluster = TinyCluster(2)
    with pytest.raises(ValueError, match="sample_cap"):
        make_checker(cluster, sample_cap=0)


def test_sample_ids_is_full_population_below_cap():
    cluster = TinyCluster(3)
    checker = make_checker(cluster, sample_cap=1024)
    live = {nid: None for nid in range(40, 0, -1)}
    assert checker._sample_ids(live) == sorted(live)


def test_sample_ids_is_bounded_sorted_and_deterministic():
    """Above the cap, equal-seed checkers draw the identical subset
    sequence — the pinned-determinism contract for paper-scale runs."""
    cluster = TinyCluster(3)
    a = make_checker(cluster, sample_cap=8, sample_seed=77)
    b = make_checker(cluster, sample_cap=8, sample_seed=77)
    live = {nid: None for nid in range(500)}
    draws_a = [a._sample_ids(live) for _ in range(5)]
    draws_b = [b._sample_ids(live) for _ in range(5)]
    assert draws_a == draws_b
    for draw in draws_a:
        assert len(draw) == 8
        assert draw == sorted(draw)
        assert set(draw) <= set(live)
    # Consecutive samples rotate coverage (the RNG advances).
    assert len({tuple(d) for d in draws_a}) > 1


def test_sample_seed_changes_the_subset():
    cluster = TinyCluster(3)
    a = make_checker(cluster, sample_cap=8, sample_seed=1)
    b = make_checker(cluster, sample_cap=8, sample_seed=2)
    live = {nid: None for nid in range(500)}
    assert a._sample_ids(live) != b._sample_ids(live)


def test_subset_sampling_still_catches_a_covered_violation():
    """With the cap below the population, a violation at a node the
    subset covers is still reported; rotation over periods makes
    coverage an eventually-certain event for persistent conditions."""
    cluster = over_cap_cluster()
    checker = make_checker(
        cluster, period=0.02, degree_grace=0.0, sample_cap=4, sample_seed=0
    )
    checker.start(cluster.sim)
    cluster.run(0.5)  # many periods: rotation reaches node 0
    assert violated(checker, "degree-bound")


def test_report_carries_sample_cap():
    cluster = TinyCluster(2)
    checker = make_checker(cluster, sample_cap=16)
    assert checker.report()["sample_cap"] == 16


def test_healthy_cluster_stays_violation_free():
    """A fully wired, undisturbed cluster with all timers running must
    produce zero violations over a multi-second window."""
    cluster = TinyCluster(6)
    cluster.seed_views()
    cluster.start_all()
    cluster.connect_chain(range(6))
    checker = make_checker(cluster, period=0.5)
    checker.start(cluster.sim)
    cluster.run(6.0)
    checker.stop()
    assert checker.report()["total_violations"] == 0
    assert checker.samples == 12
