"""Unit tests for the named-stream RNG registry."""

from repro.sim.rng import RngRegistry


def test_same_name_returns_same_stream():
    reg = RngRegistry(1)
    assert reg.stream("a") is reg.stream("a")


def test_streams_reproducible_across_registries():
    a = RngRegistry(123).stream("workload")
    b = RngRegistry(123).stream("workload")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_give_independent_streams():
    reg = RngRegistry(1)
    xs = [reg.stream("x").random() for _ in range(5)]
    ys = [reg.stream("y").random() for _ in range(5)]
    assert xs != ys


def test_different_seeds_give_different_streams():
    a = RngRegistry(1).stream("s")
    b = RngRegistry(2).stream("s")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_creation_order_does_not_matter():
    reg1 = RngRegistry(9)
    reg1.stream("first")
    late = [reg1.stream("second").random() for _ in range(3)]

    reg2 = RngRegistry(9)
    early = [reg2.stream("second").random() for _ in range(3)]
    assert late == early


def test_node_stream_is_namespaced():
    reg = RngRegistry(5)
    assert reg.node_stream(3) is reg.stream("node/3")
    assert reg.node_stream(3) is not reg.node_stream(4)
