"""Unit tests for the timer wheel (see repro.sim.wheel).

The wheel's contract is exact ``(time, seq)`` service order — identical
to a heap holding the same events — with in-place reschedule and lazy
cancellation.  These tests drive the structure directly; the engine
merge and the end-to-end bit-identity claims are covered by
``test_engine_optimized.py`` and the golden equivalence gate.
"""

import pytest

from repro.sim.wheel import TimerWheel, WheelEntry, _SCALE


def _drain(wheel):
    """Pop everything in service order, returning (time, seq) pairs."""
    out = []
    while wheel.peek() is not None:
        entry = wheel.pop()
        out.append((entry.time, entry.seq))
    return out


def test_serves_in_time_seq_order_across_buckets():
    wheel = TimerWheel()
    # Deliberately out of order, spanning several 1/64 s buckets.
    events = [(0.5, 3), (0.01, 0), (2.0, 7), (0.5, 2), (0.02, 1), (1.99, 6)]
    for time, seq in events:
        wheel.schedule(time, seq, callback=lambda: None)
    assert _drain(wheel) == sorted(events)
    assert wheel.count == 0


def test_same_time_fifo_by_sequence():
    wheel = TimerWheel()
    for seq in (5, 1, 3):
        wheel.schedule(1.0, seq, callback=lambda: None)
    assert [seq for _, seq in _drain(wheel)] == [1, 3, 5]


def test_in_place_reschedule_strands_stale_position():
    wheel = TimerWheel()
    entry = wheel.schedule(1.0, 0, callback=lambda: None)
    # Rearm the same object before the first position is served: the old
    # (1.0, 0) tuple becomes a corpse that must never be served.
    wheel.schedule(2.0, 1, callback=lambda: None, entry=entry)
    assert wheel.count == 1
    assert _drain(wheel) == [(2.0, 1)]


def test_cancel_is_lazy_idempotent_and_updates_count():
    wheel = TimerWheel()
    keep = wheel.schedule(1.0, 0, callback=lambda: None)
    drop = wheel.schedule(1.5, 1, callback=lambda: None)
    wheel.cancel(drop)
    wheel.cancel(drop)
    assert wheel.count == 1
    assert _drain(wheel) == [(1.0, 0)]
    assert not keep.queued


def test_cancel_of_cached_head_invalidates_next_key():
    wheel = TimerWheel()
    first = wheel.schedule(1.0, 0, callback=lambda: None)
    wheel.schedule(2.0, 1, callback=lambda: None)
    assert wheel.peek() == (1.0, 0)  # caches next_key
    wheel.cancel(first)
    assert wheel.peek() == (2.0, 1)


def test_later_schedule_into_earlier_bucket_becomes_head():
    wheel = TimerWheel()
    wheel.schedule(5.0, 0, callback=lambda: None)
    assert wheel.peek() == (5.0, 0)  # promotes the 5.0 bucket
    # New event in a *strictly earlier* bucket than the promoted one —
    # the demote/reload path must line the buckets back up.
    wheel.schedule(1.0, 1, callback=lambda: None)
    assert wheel.peek() == (1.0, 1)
    assert _drain(wheel) == [(1.0, 1), (5.0, 0)]


def test_pop_resolves_next_head_without_peek():
    wheel = TimerWheel()
    for seq, time in enumerate((1.0, 1.0 + 1.0 / (2 * _SCALE), 3.0)):
        wheel.schedule(time, seq, callback=lambda: None)
    wheel.peek()
    wheel.pop()
    # Same bucket: pop pre-computed the next head.
    assert wheel.next_key is not None
    assert wheel.peek() == wheel.next_key


def test_entry_payload_survives_pop_for_refire():
    wheel = TimerWheel()
    marker = object()
    entry = wheel.schedule(1.0, 0, callback=marker, args=(1, 2))
    popped = wheel.pop() if wheel.peek() else None
    assert popped is entry
    assert popped.callback is marker and popped.args == (1, 2)
    assert not popped.queued


def test_fresh_entry_allocated_only_when_needed():
    wheel = TimerWheel()
    entry = wheel.schedule(1.0, 0, callback=lambda: None)
    assert isinstance(entry, WheelEntry)
    again = wheel.schedule(2.0, 1, callback=lambda: None, entry=entry)
    assert again is entry


def test_reschedule_of_already_fired_entry_does_not_drift_count():
    """Rearming an entry that was popped (fired) must not double-count:
    its old position is gone, so there is no corpse to strand."""
    wheel = TimerWheel()
    entry = wheel.schedule(1.0, 0, callback=lambda: None)
    assert wheel.peek() == (1.0, 0)
    fired = wheel.pop()
    assert fired is entry and not entry.queued
    assert wheel.count == 0
    wheel.schedule(2.0, 1, callback=lambda: None, entry=entry)
    assert wheel.count == 1
    assert _drain(wheel) == [(2.0, 1)]
    assert wheel.count == 0


def test_cancel_then_reschedule_revives_entry_and_strands_corpse():
    """Cancel followed by rearm of the same entry: the cancelled flag is
    cleared, the stale old position is never served, and count is 1."""
    wheel = TimerWheel()
    entry = wheel.schedule(1.0, 0, callback=lambda: None)
    wheel.cancel(entry)
    assert wheel.count == 0 and entry.cancelled
    wheel.schedule(3.0, 1, callback=lambda: None, entry=entry)
    assert wheel.count == 1 and not entry.cancelled
    # The (1.0, 0) corpse sits in an earlier bucket than the live
    # position — promotion must discard it by the seq-mismatch test.
    assert _drain(wheel) == [(3.0, 1)]


def test_cancel_after_pop_is_harmless_and_reschedulable():
    """A timer popped-but-not-yet-fired can still be cancelled (queued
    is already False, so count must not go negative) and later rearmed."""
    wheel = TimerWheel()
    entry = wheel.schedule(1.0, 0, callback=lambda: None)
    wheel.peek()
    popped = wheel.pop()
    wheel.cancel(popped)
    assert wheel.count == 0 and popped.cancelled
    wheel.schedule(2.0, 1, callback=lambda: None, entry=popped)
    assert wheel.count == 1
    assert _drain(wheel) == [(2.0, 1)]


def test_reschedule_of_cached_head_into_later_bucket():
    """Rearming the entry that *is* the cached head must invalidate the
    cache — the head moves to the other pending entry."""
    wheel = TimerWheel()
    head = wheel.schedule(1.0, 0, callback=lambda: None)
    wheel.schedule(1.5, 1, callback=lambda: None)
    assert wheel.peek() == (1.0, 0)
    wheel.schedule(5.0, 2, callback=lambda: None, entry=head)
    assert wheel.peek() == (1.5, 1)
    assert _drain(wheel) == [(1.5, 1), (5.0, 2)]
