"""Unit tests for the simulated network transport."""

import random

import pytest

from repro.net.latency import ConstantLatencyModel
from repro.sim.engine import Simulator
from repro.sim.transport import Network


class StubEndpoint:
    def __init__(self, node_id):
        self.node_id = node_id
        self.received = []
        self.failures = []

    def handle_message(self, src, msg):
        self.received.append((src, msg))

    def handle_send_failure(self, dst, msg):
        self.failures.append((dst, msg))


@pytest.fixture
def net():
    sim = Simulator()
    network = Network(sim, ConstantLatencyModel(8, latency=0.010), rng=random.Random(1))
    endpoints = {i: StubEndpoint(i) for i in range(4)}
    for ep in endpoints.values():
        network.register(ep)
    return sim, network, endpoints


def test_delivery_after_one_way_latency(net):
    sim, network, eps = net
    network.send(0, 1, "hello")
    sim.run_until(0.009)
    assert eps[1].received == []
    sim.run_until(0.010)
    assert eps[1].received == [(0, "hello")]


def test_fifo_per_pair(net):
    sim, network, eps = net
    for i in range(5):
        network.send(0, 1, i)
    sim.run_until(1.0)
    assert [msg for _, msg in eps[1].received] == [0, 1, 2, 3, 4]


def test_send_to_self_rejected(net):
    _, network, _ = net
    with pytest.raises(ValueError):
        network.send(2, 2, "loop")


def test_duplicate_registration_rejected(net):
    _, network, eps = net
    with pytest.raises(ValueError):
        network.register(StubEndpoint(0))


def test_reliable_send_to_dead_node_notifies_sender_after_rtt(net):
    sim, network, eps = net
    network.kill(1)
    network.send(0, 1, "x")
    sim.run_until(0.019)
    assert eps[0].failures == []
    sim.run_until(0.020)
    assert eps[0].failures == [(1, "x")]
    assert eps[1].received == []


def test_unreliable_send_to_dead_node_silently_dropped(net):
    sim, network, eps = net
    network.kill(1)
    network.send(0, 1, "x", reliable=False)
    sim.run_until(1.0)
    assert eps[0].failures == []
    assert eps[1].received == []


def test_message_in_flight_to_node_that_dies_is_lost(net):
    sim, network, eps = net
    network.send(0, 1, "x")
    sim.run_until(0.005)
    network.kill(1)
    sim.run_until(1.0)
    assert eps[1].received == []
    assert network.messages_lost == 1


def test_failed_link_blocks_both_reliable_and_unreliable(net):
    sim, network, eps = net
    network.fail_link(0, 1)
    network.send(0, 1, "a")
    network.send(1, 0, "b", reliable=False)
    sim.run_until(1.0)
    assert eps[1].received == []
    assert eps[0].received == []
    assert eps[0].failures == [(1, "a")]


def test_restored_link_carries_traffic_again(net):
    sim, network, eps = net
    network.fail_link(0, 1)
    network.restore_link(0, 1)
    network.send(0, 1, "a")
    sim.run_until(1.0)
    assert eps[1].received == [(0, "a")]


def test_loss_rate_drops_fraction_of_datagrams():
    sim = Simulator()
    network = Network(
        sim, ConstantLatencyModel(4, latency=0.001), loss_rate=0.5, rng=random.Random(3)
    )
    a, b = StubEndpoint(0), StubEndpoint(1)
    network.register(a)
    network.register(b)
    for _ in range(400):
        network.send(0, 1, "m", reliable=False)
    sim.run_until(1.0)
    assert 120 < len(b.received) < 280  # ~200 expected


def test_loss_rate_never_applies_to_reliable_sends():
    sim = Simulator()
    network = Network(
        sim, ConstantLatencyModel(4, latency=0.001), loss_rate=0.9, rng=random.Random(3)
    )
    a, b = StubEndpoint(0), StubEndpoint(1)
    network.register(a)
    network.register(b)
    for _ in range(50):
        network.send(0, 1, "m", reliable=True)
    sim.run_until(1.0)
    assert len(b.received) == 50


def test_counters(net):
    sim, network, eps = net
    network.send(0, 1, "x")
    network.send(0, 2, "y")
    sim.run_until(1.0)
    assert network.messages_sent == 2
    assert network.messages_delivered == 2
    assert network.sent_by_type == {"str": 2}
    assert network.bytes_by_type == {}  # str has no wire_size


def test_byte_accounting_uses_wire_size(net):
    sim, network, eps = net

    class Sized:
        def wire_size(self):
            return 77

    network.send(0, 1, Sized())
    network.send(0, 2, Sized())
    assert network.bytes_by_type == {"Sized": 154}


def test_on_send_hook_observes_every_send(net):
    sim, network, eps = net
    seen = []
    network.on_send = lambda src, dst, msg: seen.append((src, dst, msg))
    network.send(0, 1, "x")
    network.send(1, 2, "y", reliable=False)
    assert seen == [(0, 1, "x"), (1, 2, "y")]


def test_revive_restores_delivery(net):
    sim, network, eps = net
    network.kill(1)
    network.revive(1)
    network.send(0, 1, "x")
    sim.run_until(1.0)
    assert eps[1].received == [(0, "x")]


def test_remove_deregisters(net):
    sim, network, eps = net
    network.remove(1)
    assert not network.is_alive(1)
    assert 1 not in network.alive_nodes()


def test_invalid_loss_rate_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Network(sim, ConstantLatencyModel(2), loss_rate=1.0)
