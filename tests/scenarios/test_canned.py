"""Scenario regression suite: the canned chaos library under invariants.

Every canned scenario runs small-N with the invariant checker in
**hard-fail** mode — any violation of the protocol invariant catalogue
aborts the run and fails the test immediately.  On top of that, each
run's summary (delivery statistics, fault counts, invariant report) is
pinned to a golden fixture under ``tests/goldens/chaos_<name>.json``,
so an intended behaviour change shows up as a reviewable diff::

    PYTHONPATH=src python -m pytest tests/scenarios --update-goldens
    git diff tests/goldens/

The determinism tests re-run scenarios with ``REPRO_SIM_OPTS`` forced
off and on: the chaos engine sits on the same deterministic event loop
as the protocols, so the fast-path toggles must not change a single
fault decision or delivery.  The fast lane covers the two scenarios
that exercise the most machinery; the slow lane sweeps the full matrix.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.chaos import ChaosReport, run_chaos
from repro.sim.scenarios import CANNED

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "goldens"

#: Small-N parameters shared by every suite run: big enough for a real
#: overlay+tree (24 nodes, several sites), small enough for the fast
#: lane.  ``hard_fail`` makes every invariant violation a test error.
CHAOS_PARAMS = dict(
    n_nodes=24,
    seed=3,
    adapt_time=10.0,
    n_messages=8,
    drain_time=15.0,
    invariant_period=0.5,
    hard_fail=True,
)

ROUND = 9


def _round(value):
    if value is None or value != value:  # None or NaN
        return "nan"
    return round(float(value), ROUND)


def chaos_summary(report: ChaosReport) -> dict:
    """The committed fingerprint of a chaos run."""
    data = report.to_json_dict()
    for field in ("reliability", "mean_delay", "max_delay", "end_time"):
        data[field] = _round(data[field])
    return data


def run_canned(name: str) -> ChaosReport:
    return run_chaos(CANNED[name], **CHAOS_PARAMS)


@pytest.mark.parametrize("name", sorted(CANNED))
def test_canned_scenario_golden(name, update_goldens):
    report = run_canned(name)
    # hard_fail would have raised already; make the verdict explicit.
    assert report.total_violations == 0
    summary = chaos_summary(report)
    path = GOLDEN_DIR / f"chaos_{name}.json"

    if update_goldens:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"updated golden {path.name}")

    assert path.exists(), (
        f"missing golden fixture {path}; generate it with "
        "pytest tests/scenarios --update-goldens"
    )
    expected = json.loads(path.read_text())
    assert summary == expected, (
        f"chaos golden mismatch for {name}; if this change is intended, "
        "rerun with --update-goldens and review the tests/goldens/ diff"
    )


def _identical_on_and_off(monkeypatch, name: str) -> None:
    monkeypatch.setenv("REPRO_SIM_OPTS", "0")
    plain = chaos_summary(run_canned(name))
    monkeypatch.setenv("REPRO_SIM_OPTS", "1")
    fast = chaos_summary(run_canned(name))
    assert plain == fast


@pytest.mark.parametrize("name", ["steady-churn", "worst-day"])
def test_chaos_identical_with_and_without_sim_opts(monkeypatch, name):
    """Fast lane: the chaos trajectory is independent of the simulator
    fast-path toggles for the churn and kitchen-sink scenarios."""
    _identical_on_and_off(monkeypatch, name)


@pytest.mark.slow
@pytest.mark.parametrize(
    "name", sorted(set(CANNED) - {"steady-churn", "worst-day"})
)
def test_chaos_identical_with_and_without_sim_opts_full_matrix(monkeypatch, name):
    _identical_on_and_off(monkeypatch, name)


def test_reports_are_deterministic_for_seed():
    a = chaos_summary(run_canned("flapping-partition"))
    b = chaos_summary(run_canned("flapping-partition"))
    assert a == b
    different = run_chaos(
        CANNED["flapping-partition"], **{**CHAOS_PARAMS, "seed": 4}
    )
    assert chaos_summary(different) != a
