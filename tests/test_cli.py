"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_list_covers_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_every_experiment_has_description_and_runner():
    for name, (description, runner) in EXPERIMENTS.items():
        assert description
        assert callable(runner)


def test_run_unknown_experiment_fails(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_fig1(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "smoke")
    assert main(["run", "fig1"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "min fanout" in out


def test_scale_flag_sets_env(monkeypatch, capsys):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert main(["run", "fig1", "--scale", "smoke"]) == 0
    import os

    assert os.environ["REPRO_SCALE"] == "smoke"


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


OBS_ARGS = ["--nodes", "24", "--adapt", "4", "--messages", "4", "--seed", "3"]


def test_obs_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["obs"])


def test_obs_summary(capsys):
    assert main(["obs", "summary", *OBS_ARGS]) == 0
    out = capsys.readouterr().out
    assert "== counters ==" in out
    assert "net.sent{type=Gossip}" in out
    assert "net.link.stress" in out


def test_obs_trace_prints_events(capsys):
    assert main(["obs", "trace", *OBS_ARGS, "--category", "tree.push",
                 "--limit", "5"]) == 0
    out = capsys.readouterr().out
    assert "tree.push" in out
    assert "events in category tree.push" in out


def test_obs_trace_exports_jsonl(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    assert main(["obs", "trace", *OBS_ARGS, "--out", str(path)]) == 0
    assert "wrote" in capsys.readouterr().out
    header, first_event = path.read_text().splitlines()[:2]
    assert '"header"' in header and '"emitted"' in header
    assert '"cat"' in first_event


def test_obs_profile(capsys):
    assert main(["obs", "profile", *OBS_ARGS, "--top-k", "3"]) == 0
    out = capsys.readouterr().out
    assert "events/sec" in out
    assert "timer.fire" in out


BATCH_ARGS = ["batch", "--protocol", "push_gossip", "--nodes", "16",
              "--messages", "4", "--adapt", "4", "--seed", "5"]


def test_batch_table_output(capsys):
    assert main([*BATCH_ARGS, "--trials", "2"]) == 0
    out = capsys.readouterr().out
    assert "2 trials" in out
    assert "mean_delay" in out
    assert "95% CI" in out


def test_batch_json_output(capsys):
    import json

    assert main([*BATCH_ARGS, "--trials", "2", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["n_trials"] == 2
    assert payload["root_seed"] == 5
    assert len(payload["trials"]) == 2
    assert payload["scenario"]["protocol"] == "push_gossip"
    assert len(payload["cdf"]["delay"]) == len(payload["cdf"]["fraction"])


def test_batch_json_file_output(tmp_path, capsys):
    import json

    path = tmp_path / "batch.json"
    assert main([*BATCH_ARGS, "--trials", "2", "--out", str(path)]) == 0
    assert "wrote JSON report" in capsys.readouterr().out
    payload = json.loads(path.read_text())
    assert payload["n_trials"] == 2


def test_batch_metrics_flag(capsys):
    import json

    assert main([*BATCH_ARGS, "--trials", "2", "--metrics", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["metrics"]["n_snapshots"] == 2


def test_batch_rejects_bad_arguments(capsys):
    assert main([*BATCH_ARGS, "--trials", "0"]) == 2
    assert "invalid batch" in capsys.readouterr().err


CHAOS_ARGS = ["chaos", "run", "paper-shock-25", "--n", "16", "--seed", "3",
              "--adapt", "5", "--messages", "3", "--drain", "8"]


def test_chaos_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["chaos"])


def test_chaos_list_covers_every_canned_scenario(capsys):
    from repro.sim.scenarios import CANNED

    assert main(["chaos", "list"]) == 0
    out = capsys.readouterr().out
    for name in CANNED:
        assert name in out


def test_chaos_run_text_report(capsys):
    assert main(CHAOS_ARGS) == 0
    out = capsys.readouterr().out
    assert "== chaos paper-shock-25" in out
    assert "veteran reliability" in out
    assert "crashes=" in out


def test_chaos_run_json_report(capsys):
    import json

    assert main([*CHAOS_ARGS, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["chaos"]["name"] == "paper-shock-25"
    assert payload["invariants"]["total_violations"] == 0
    assert payload["faults"]["crashes"] > 0
    assert set(payload["invariants"]["counts"]) == set(
        payload["invariants"]["checked"]
    )


def test_chaos_run_json_file_output(tmp_path, capsys):
    import json

    path = tmp_path / "chaos.json"
    assert main([*CHAOS_ARGS, "--out", str(path)]) == 0
    assert "wrote JSON report" in capsys.readouterr().out
    assert json.loads(path.read_text())["n_nodes"] == 16


def test_chaos_run_scenario_from_json_file(tmp_path, capsys):
    import json

    from repro.sim.scenarios import CANNED

    path = tmp_path / "custom.json"
    path.write_text(json.dumps(CANNED["paper-shock-25"].to_dict()))
    args = [*CHAOS_ARGS, "--json"]
    args[2] = str(path)
    assert main(args) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["chaos"]["name"] == "paper-shock-25"


def test_chaos_run_unknown_scenario_fails(capsys):
    assert main(["chaos", "run", "no-such-scenario"]) == 2
    assert "invalid scenario" in capsys.readouterr().err


def test_obs_trace_scenario_flag_emits_fault_events(capsys):
    assert main(["obs", "trace", "--nodes", "16", "--adapt", "4",
                 "--messages", "3", "--seed", "3", "--drain", "6",
                 "--scenario", "paper-shock-25",
                 "--category", "chaos.phase"]) == 0
    out = capsys.readouterr().out
    assert "chaos.phase" in out
    assert "phase=crash" in out and "killed=" in out


def test_seed_passed_through(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_SCALE", "smoke")
    seen = {}

    def fake_runner(seed):
        seen["seed"] = seed

        class Result:
            def format_table(self):
                return "table"

        return Result()

    monkeypatch.setitem(EXPERIMENTS, "fake", ("fake experiment", fake_runner))
    assert main(["run", "fake", "--seed", "42"]) == 0
    assert seen["seed"] == 42
    assert "table" in capsys.readouterr().out


# ----------------------------------------------------------------------
# repro obs ledger / compare / regress / export
# ----------------------------------------------------------------------
def test_obs_ledger_empty_list(capsys):
    assert main(["obs", "ledger"]) == 0
    assert "ledger is empty" in capsys.readouterr().out


def test_obs_ledger_lists_batch_run(capsys):
    assert main([*BATCH_ARGS, "--trials", "1"]) == 0
    capsys.readouterr()
    assert main(["obs", "ledger"]) == 0
    out = capsys.readouterr().out
    assert "batch:push_gossip" in out


def test_obs_ledger_json_and_show(capsys):
    import json

    assert main([*BATCH_ARGS, "--trials", "1"]) == 0
    capsys.readouterr()
    assert main(["obs", "ledger", "--json"]) == 0
    records = json.loads(capsys.readouterr().out)
    assert len(records) == 1
    assert records[0]["kind"] == "batch"
    assert records[0]["env"]["cpu_count"] >= 1

    assert main(["obs", "ledger", "--show", "latest"]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["run_id"] == records[0]["run_id"]


def test_obs_ledger_import_bench_missing_file(capsys):
    assert main(["obs", "ledger", "--import-bench", "/no/such/file.json"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "Traceback" not in err


def test_obs_compare_self_is_clean(capsys):
    assert main([*BATCH_ARGS, "--trials", "1"]) == 0
    capsys.readouterr()
    assert main(["obs", "compare", "latest", "latest"]) == 0
    assert "ok:" in capsys.readouterr().out


def test_obs_compare_unknown_ref_fails_cleanly(capsys):
    assert main([*BATCH_ARGS, "--trials", "1"]) == 0
    capsys.readouterr()
    assert main(["obs", "compare", "nonesuch", "latest"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "Traceback" not in err


def test_obs_regress_empty_ledger_fails_cleanly(capsys):
    assert main(["obs", "regress", "--against", "latest"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "Traceback" not in err


def test_obs_regress_single_run_self_compares(capsys):
    import json

    assert main([*BATCH_ARGS, "--trials", "1"]) == 0
    capsys.readouterr()
    # Only one run in the ledger: HEAD~0 resolves to the candidate
    # itself, which trivially passes (the round-trip acceptance case).
    assert main(["obs", "regress", "--against", "latest"]) == 0
    assert "ok:" in capsys.readouterr().out
    assert main(["obs", "regress", "--against", "latest", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["ok"] is True and data["n_regressions"] == 0


def test_obs_export_missing_trace_file(tmp_path, capsys):
    assert main(["obs", "export", "--trace", "/no/such/trace.jsonl",
                 "--out", str(tmp_path / "trace.json")]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "Traceback" not in err


def test_obs_export_runs_scenario_and_validates(tmp_path, capsys):
    import json

    out_path = tmp_path / "trace.json"
    assert main(["obs", "export", *OBS_ARGS, "--out", str(out_path),
                 "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["problems"] == []
    assert data["n_events"] > 0
    assert data["tracks"]["protocol"]
    loaded = json.loads(out_path.read_text())
    assert loaded["traceEvents"]


def test_obs_export_round_trips_saved_trace(tmp_path, capsys):
    jsonl = tmp_path / "trace.jsonl"
    assert main(["obs", "trace", *OBS_ARGS, "--out", str(jsonl)]) == 0
    capsys.readouterr()
    out_path = tmp_path / "trace.json"
    assert main(["obs", "export", "--trace", str(jsonl),
                 "--out", str(out_path), "--json"]) == 0
    import json

    data = json.loads(capsys.readouterr().out)
    assert data["problems"] == [] and data["n_events"] > 0


# ----------------------------------------------------------------------
# --json on the pre-existing obs subcommands (satellite: every
# subcommand is scriptable)
# ----------------------------------------------------------------------
def test_obs_summary_json(capsys):
    import json

    assert main(["obs", "summary", *OBS_ARGS, "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert any(k.startswith("dissem.delivered") for k in data["counters"])


def test_obs_profile_json(capsys):
    import json

    assert main(["obs", "profile", *OBS_ARGS, "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["total_events"] > 0
    assert data["categories"]


def test_obs_trace_json(capsys):
    import json

    assert main(["obs", "trace", *OBS_ARGS, "--json", "--limit", "5"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["emitted"] > 0
    assert len(data["events"]) <= 5
    assert all("t" in e and "cat" in e for e in data["events"])


def test_obs_health_json(capsys):
    import json

    assert main(["obs", "health", *OBS_ARGS, "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["n_samples"] >= 1


def test_obs_series_prints_trajectory(capsys):
    assert main(["obs", "series", *OBS_ARGS, "--period", "2"]) == 0
    out = capsys.readouterr().out
    assert "capacity trajectory" in out
    assert "ev/s" in out and "kB/s" in out
    assert "events/sim-second: peak" in out


def test_obs_series_json(capsys):
    import json

    assert main(["obs", "series", *OBS_ARGS, "--period", "2", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["n_samples"] >= 1
    assert "events_per_sec" in data["summary"]


def test_obs_mem_prints_census(capsys):
    assert main(["obs", "mem", "--nodes", "12", "--adapt", "4",
                 "--messages", "2", "--drain", "3", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "memory census" in out
    assert "bytes/node" in out
    assert "dissemination" in out


def test_obs_mem_json_and_out_and_ledger(tmp_path, capsys):
    import json
    import os

    from repro.obs.ledger import Ledger

    out_file = tmp_path / "census.json"
    assert main(["obs", "mem", "--nodes", "12", "--adapt", "4",
                 "--messages", "2", "--drain", "3", "--seed", "3",
                 "--json", "--out", str(out_file)]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["census"]["bytes_per_node"] > 0
    assert json.loads(out_file.read_text()) == data
    record = Ledger(os.environ["REPRO_LEDGER_DIR"]).records()[-1]
    assert record.name == "obs-mem"
    assert record.metrics["bytes_per_node"] > 0


def test_obs_mem_rejects_non_overlay_protocol(capsys):
    assert main(["obs", "mem", "--protocol", "push_gossip",
                 "--nodes", "12"]) == 2
    assert "overlay" in capsys.readouterr().err
