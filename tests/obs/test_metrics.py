"""Unit tests for the metrics registry and streaming histograms."""

import math

import pytest

from repro.obs.metrics import (
    OVERFLOW_LABELS,
    MetricsRegistry,
    StreamingHistogram,
    format_labels,
    merge_snapshots,
)

# ----------------------------------------------------------------------
# StreamingHistogram
# ----------------------------------------------------------------------


def test_histogram_empty_stats_are_nan():
    h = StreamingHistogram()
    assert h.count == 0
    assert math.isnan(h.mean)
    assert math.isnan(h.percentile(50))


def test_histogram_counts_and_mean():
    h = StreamingHistogram()
    for v in (0.1, 0.2, 0.3, 0.4):
        h.observe(v)
    assert h.count == 4
    assert h.mean == pytest.approx(0.25)
    assert h.min == pytest.approx(0.1)
    assert h.max == pytest.approx(0.4)


def test_histogram_percentiles_bounded_by_buckets():
    """Percentile estimates land inside the bucket holding the rank.

    With growth 2.0 from 1e-4, a value v falls into the bucket whose
    upper bound is the first power-of-two multiple >= v, so the estimate
    can be off by at most one bucket width.
    """
    h = StreamingHistogram()
    values = [0.01 * i for i in range(1, 101)]  # 0.01 .. 1.0
    for v in values:
        h.observe(v)
    # p50 of the uniform grid is ~0.5; its bucket is (0.4096, 0.8192].
    assert 0.4 <= h.percentile(50) <= 0.82
    assert h.percentile(0) == pytest.approx(h.min)
    assert h.percentile(100) == pytest.approx(h.max)
    # Monotone in q.
    qs = [h.percentile(q) for q in (10, 30, 50, 70, 90, 99)]
    assert qs == sorted(qs)


def test_histogram_percentile_clamped_to_observed_range():
    h = StreamingHistogram()
    h.observe(0.5)
    # A single observation: every percentile is that observation.
    for q in (0, 50, 99, 100):
        assert h.percentile(q) == pytest.approx(0.5)


def test_histogram_single_bucket_interpolation():
    """Within one bucket, ranks interpolate linearly between bounds."""
    h = StreamingHistogram(first_bound=1.0, growth=2.0, n_buckets=4)
    # Bucket (1, 2] gets 4 observations spanning the bucket.
    for v in (1.2, 1.4, 1.6, 2.0):
        h.observe(v)
    p25 = h.percentile(25)
    p75 = h.percentile(75)
    assert h.min <= p25 <= p75 <= h.max
    assert p25 == pytest.approx(1.25, abs=0.06)
    assert p75 == pytest.approx(1.75, abs=0.06)


def test_histogram_overflow_bucket():
    h = StreamingHistogram(first_bound=1.0, growth=2.0, n_buckets=2)
    h.observe(100.0)  # way past the last bound (2.0)
    assert h.count == 1
    assert h.percentile(99) == pytest.approx(100.0)


def test_histogram_rejects_bad_parameters():
    with pytest.raises(ValueError):
        StreamingHistogram(first_bound=0.0)
    with pytest.raises(ValueError):
        StreamingHistogram(growth=1.0)
    with pytest.raises(ValueError):
        StreamingHistogram(n_buckets=1)
    with pytest.raises(ValueError):
        StreamingHistogram().percentile(101)


def test_histogram_to_dict_keys():
    h = StreamingHistogram()
    h.observe(0.2)
    d = h.to_dict()
    assert set(d) == {"count", "sum", "mean", "min", "max", "p50", "p90", "p99"}
    assert d["count"] == 1


# ----------------------------------------------------------------------
# MetricsRegistry counters / gauges / labels
# ----------------------------------------------------------------------


def test_counters_with_labels_are_independent_cells():
    m = MetricsRegistry()
    m.inc("net.sent", type="Gossip")
    m.inc("net.sent", type="Gossip")
    m.inc("net.sent", type="Ping")
    m.inc("net.sent")
    assert m.counter_value("net.sent", type="Gossip") == 2
    assert m.counter_value("net.sent", type="Ping") == 1
    assert m.counter_value("net.sent") == 1
    assert m.counter_total("net.sent") == 4


def test_counter_labels_may_shadow_parameter_names():
    # The positional-only signature lets labels be called "name"/"amount".
    m = MetricsRegistry()
    m.inc("timer.fire", name="gossip")
    m.inc("timer.fire", 2, name="gossip")
    assert m.counter_value("timer.fire", name="gossip") == 3


def test_label_cardinality_cap_collapses_to_overflow():
    m = MetricsRegistry(max_label_sets=2)
    m.inc("x", peer=1)
    m.inc("x", peer=2)
    m.inc("x", peer=3)  # third distinct label set: over budget
    m.inc("x", peer=4)
    m.inc("x", peer=1)  # existing set still tracked exactly
    assert m.counter_value("x", peer=1) == 2
    assert m.counter_value("x", peer=2) == 1
    assert dict(m._counters["x"])[OVERFLOW_LABELS] == 2
    assert len(list(m.label_sets("x"))) == 3  # 2 exact + 1 overflow


def test_flattened_counters_view():
    m = MetricsRegistry()
    m.inc("a")
    m.inc("b", 2, kind="x")
    assert m.counters == {"a": 1, "b{kind=x}": 2}


def test_format_labels():
    assert format_labels("n", ()) == "n"
    assert format_labels("n", (("a", 1), ("b", "z"))) == "n{a=1,b=z}"


def test_gauges_overwrite():
    m = MetricsRegistry()
    m.set_gauge("depth", 3.0)
    m.set_gauge("depth", 5.0)
    assert m.gauges == {"depth": 5.0}


def test_disabled_registry_is_noop():
    m = MetricsRegistry(enabled=False)
    m.inc("a")
    m.set_gauge("g", 1.0)
    m.observe("h", 0.5)
    m.record("s", 1.0, 2.0)
    assert m.counters == {}
    assert m.gauges == {}
    assert m.histogram("h") is None
    assert m.series == {}


def test_snapshot_shape():
    m = MetricsRegistry()
    m.inc("c", type="t")
    m.set_gauge("g", 1.5)
    m.observe("h", 0.25)
    m.record("s", 0.0, 1.0)
    snap = m.snapshot()
    assert snap["counters"] == {"c{type=t}": 1}
    assert snap["gauges"] == {"g": 1.5}
    assert snap["histograms"]["h"]["count"] == 1
    assert snap["series"] == {"s": 1}


# ----------------------------------------------------------------------
# merge_snapshots
# ----------------------------------------------------------------------
def _snap(counter=1, gauge=1.0, obs=(0.5,), extra=None):
    m = MetricsRegistry()
    m.inc("c", counter)
    m.set_gauge("g", gauge)
    for value in obs:
        m.observe("h", value)
        m.record("s", 0.0, value)
    snap = m.snapshot()
    snap.update(extra or {})
    return snap


def test_merge_snapshots_sections():
    merged = merge_snapshots([_snap(1, 1.0, (0.5,)), _snap(2, 3.0, (1.5, 2.5))])
    assert merged["n_snapshots"] == 2
    assert merged["counters"] == {"c": 3}
    assert merged["gauges"] == {"g": 2.0}  # mean, not sum
    assert merged["series"] == {"s": 3}
    h = merged["histograms"]["h"]
    assert h["count"] == 3
    assert h["min"] == 0.5 and h["max"] == 2.5
    assert h["mean"] == pytest.approx((0.5 + 1.5 + 2.5) / 3)
    # Per-trial percentiles are unrecoverable post-merge and dropped.
    assert "p50" not in h


def test_merge_snapshots_skips_none_and_empty_histograms():
    empty = MetricsRegistry()
    empty.histogram("h")  # registered but never observed
    merged = merge_snapshots([None, _snap(), empty.snapshot(), None])
    assert merged["n_snapshots"] == 2
    assert merged["histograms"]["h"]["count"] == 1
    assert merge_snapshots([None, None]) is None


def test_merge_snapshots_carries_health_and_provenance():
    health = {
        "period": 1.0, "n_samples": 2,
        "summary": {"live": {"min": 12.0, "max": 16.0, "final": 12.0}},
        "recovery": {"fragmented_at": 1.0, "recovered_at": 4.0},
    }
    prov = {
        "messages": 3, "paths": 30, "complete": 30, "incomplete": 0,
        "attribution": {"tree": 25, "pull-repair": 5},
        "hops": {"1": 10, "2": 20}, "max_hops": 2,
    }
    with_sections = _snap(extra={"health": health, "provenance": prov})
    merged = merge_snapshots([with_sections, _snap()])
    assert merged["health"]["n_trials"] == 1
    assert merged["health"]["summary"]["live"]["final_mean"] == 12.0
    assert merged["health"]["recovery"]["recovered_trials"] == 1
    assert merged["provenance"]["attribution"] == {"tree": 25, "pull-repair": 5}
    # Without the sections, the merged snapshot omits them entirely.
    plain = merge_snapshots([_snap(), _snap()])
    assert "health" not in plain and "provenance" not in plain


def test_merge_snapshots_is_order_invariant():
    a = _snap(1, 1.0, (0.5,), extra={
        "health": {
            "period": 1.0, "n_samples": 1,
            "summary": {"live": {"min": 16.0, "max": 16.0, "final": 16.0}},
            "recovery": {"fragmented_at": None, "recovered_at": None},
        },
        "provenance": {
            "messages": 1, "paths": 5, "complete": 5, "incomplete": 0,
            "attribution": {"tree": 5, "pull-repair": 0},
            "hops": {"1": 5}, "max_hops": 1,
        },
    })
    b = _snap(2, 3.0, (1.5,), extra={
        "health": {
            "period": 1.0, "n_samples": 2,
            "summary": {"live": {"min": 12.0, "max": 16.0, "final": 12.0}},
            "recovery": {"fragmented_at": 1.0, "recovered_at": 4.0},
        },
        "provenance": {
            "messages": 2, "paths": 8, "complete": 7, "incomplete": 1,
            "attribution": {"tree": 6, "pull-repair": 2},
            "hops": {"1": 4, "2": 4}, "max_hops": 2,
        },
    })
    assert merge_snapshots([a, b]) == merge_snapshots([b, a])


def test_merge_snapshots_empty_snapshot_dicts_are_skipped():
    """A snapshot with no recorded data contributes nothing (but an
    empty-dict entry is skipped entirely, like None)."""
    empty_registry = MetricsRegistry().snapshot()
    merged = merge_snapshots([{}, empty_registry, _snap(5)])
    # {} is skipped; the empty registry snapshot still counts as a trial.
    assert merged["n_snapshots"] == 2
    assert merged["counters"] == {"c": 5}
    assert merged["histograms"]["h"]["count"] == 1


def test_merge_snapshots_single_trial_is_identity_like():
    snap = _snap(3, 2.0, (0.5, 1.5))
    merged = merge_snapshots([snap])
    assert merged["n_snapshots"] == 1
    assert merged["counters"] == snap["counters"]
    assert merged["gauges"] == snap["gauges"]
    assert merged["series"] == snap["series"]
    h = merged["histograms"]["h"]
    assert h["count"] == snap["histograms"]["h"]["count"]
    assert h["mean"] == pytest.approx(snap["histograms"]["h"]["mean"])


def test_merge_snapshots_label_collisions_sum_per_cell():
    """Identical label sets collide (sum); distinct label sets stay
    independent cells across trials."""
    a = MetricsRegistry()
    a.inc("sent", 3, type="Gossip")
    a.inc("sent", 1, type="Pull")
    b = MetricsRegistry()
    b.inc("sent", 4, type="Gossip")
    b.inc("sent", 2, type="Heartbeat")
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    assert merged["counters"] == {
        "sent{type=Gossip}": 7,
        "sent{type=Pull}": 1,
        "sent{type=Heartbeat}": 2,
    }
