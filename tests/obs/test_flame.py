"""Tests for the stack-sampling flamegraph exporter.

The speedscope validator is the schema checker the acceptance criteria
call for: ``repro obs flame`` refuses to write a document the checker
rejects, and these tests pin both directions — real sampler output
passes, and each class of structural corruption is caught.
"""

import json

import pytest

from repro.obs.flame import (
    SPEEDSCOPE_SCHEMA,
    FlameSampler,
    sample_run,
    validate_speedscope,
    write_speedscope,
)


def _busy(seconds=0.08):
    """Deterministically-shaped CPU work the sampler can catch."""
    import time

    end = time.perf_counter() + seconds
    acc = 0
    while time.perf_counter() < end:
        acc += sum(i * i for i in range(200))
    return acc


@pytest.fixture(scope="module")
def sampler():
    return sample_run(_busy, interval=0.001)


# ----------------------------------------------------------------------
# Sampler mechanics
# ----------------------------------------------------------------------
def test_sampler_collects_stacks_from_the_target_thread(sampler):
    assert sampler.samples, "a busy 80ms window at 1ms must yield samples"
    names = {frame[0] for stack, _w in sampler.samples for frame in stack}
    assert "_busy" in names
    assert sampler.total_weight > 0
    assert all(weight > 0 for _stack, weight in sampler.samples)


def test_sampler_rejects_nonpositive_interval():
    with pytest.raises(ValueError):
        FlameSampler(interval=0.0)


def test_sampler_drops_beyond_max_samples():
    sampler = sample_run(_busy, interval=0.001)
    sampler.max_samples = len(sampler.samples)  # pretend the cap is hit
    with sampler:
        _busy(0.02)
    assert sampler.dropped > 0


def test_collapsed_output_format(sampler):
    text = sampler.collapsed_text()
    lines = text.splitlines()
    assert lines
    for line in lines:
        stack, _space, count = line.rpartition(" ")
        assert stack and int(count) >= 1
        assert ";" in stack or stack  # frame;frame;frame count
    assert any("_busy" in line for line in lines)


# ----------------------------------------------------------------------
# Speedscope export + validator
# ----------------------------------------------------------------------
def test_speedscope_document_validates_and_round_trips(sampler, tmp_path):
    doc = sampler.speedscope(name="unit")
    assert validate_speedscope(doc) == []
    assert doc["$schema"] == SPEEDSCOPE_SCHEMA
    profile = doc["profiles"][0]
    assert profile["type"] == "sampled"
    assert len(profile["samples"]) == len(profile["weights"])
    assert profile["name"] == "unit"
    path = tmp_path / "prof.speedscope.json"
    write_speedscope(doc, str(path))
    reloaded = json.loads(path.read_text())
    assert validate_speedscope(reloaded) == []


def test_validator_rejects_structural_corruption(sampler):
    def corrupt(mutate):
        doc = sampler.speedscope()
        mutate(doc)
        return validate_speedscope(doc)

    assert corrupt(lambda d: d.pop("$schema"))
    assert corrupt(lambda d: d["profiles"][0]["weights"].append(1.0))
    assert corrupt(lambda d: d["profiles"][0].update(type="evented"))
    assert corrupt(lambda d: d["profiles"][0].update(unit="parsecs"))
    assert corrupt(lambda d: d["profiles"][0]["samples"][0].append(10 ** 9))
    assert corrupt(
        lambda d: d["profiles"][0]["weights"].__setitem__(0, -1.0)
    )
    assert corrupt(lambda d: d["shared"]["frames"][0].pop("name"))
    assert corrupt(lambda d: d.update(profiles=[]))
    assert validate_speedscope("not a dict")
    assert validate_speedscope({}) != []


def test_validator_rejects_weights_exceeding_value_range(sampler):
    doc = sampler.speedscope()
    profile = doc["profiles"][0]
    profile["endValue"] = profile["startValue"]  # zero span, nonzero weights
    assert any("weight" in p for p in validate_speedscope(doc))


# ----------------------------------------------------------------------
# CLI smoke
# ----------------------------------------------------------------------
def test_cli_obs_flame_writes_valid_speedscope(tmp_path, capsys):
    from repro import cli

    out = tmp_path / "flame.speedscope.json"
    rc = cli.main([
        "obs", "flame", "--nodes", "8", "--adapt", "3", "--messages", "2",
        "--drain", "2", "--interval", "0.001", "--out", str(out),
    ])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert validate_speedscope(doc) == []
    assert "speedscope" in capsys.readouterr().out


def test_cli_obs_flame_collapsed_format(tmp_path):
    from repro import cli

    out = tmp_path / "stacks.collapsed"
    rc = cli.main([
        "obs", "flame", "--nodes", "8", "--adapt", "3", "--messages", "2",
        "--drain", "2", "--interval", "0.001", "--format", "collapsed",
        "--out", str(out),
    ])
    assert rc == 0
    lines = out.read_text().splitlines()
    assert lines
    stack, _space, count = lines[0].rpartition(" ")
    assert int(count) >= 1
