"""Unit tests for the structured simulation tracer."""

import pytest

from repro.obs.tracer import SimTracer, TraceEvent


def test_emit_and_query_by_category():
    t = SimTracer()
    t.emit(1.0, "tree.push", node=1, fanout=2)
    t.emit(2.0, "gossip.pull", node=3)
    t.emit(3.0, "tree.push", node=4, fanout=1)
    assert len(t) == 3
    pushes = t.events("tree.push")
    assert [e.time for e in pushes] == [1.0, 3.0]
    assert pushes[0].fields == {"node": 1, "fanout": 2}
    assert t.counts_by_category() == {"tree.push": 2, "gossip.pull": 1}


def test_ring_buffer_drops_oldest():
    t = SimTracer(capacity=3)
    for i in range(5):
        t.emit(float(i), "c", i=i)
    assert len(t) == 3
    assert t.dropped == 2
    assert [e.fields["i"] for e in t.events()] == [2, 3, 4]


def test_disabled_tracer_is_noop():
    t = SimTracer(enabled=False)
    t.emit(0.0, "c")
    assert len(t) == 0
    assert t.emitted == 0
    assert t.dropped == 0


def test_clear_resets_drop_accounting():
    t = SimTracer(capacity=2)
    for i in range(4):
        t.emit(float(i), "c")
    t.clear()
    assert len(t) == 0 and t.dropped == 0


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        SimTracer(capacity=0)


def test_jsonl_round_trip(tmp_path):
    t = SimTracer()
    t.emit(0.5, "tree.push", node=1, msg="3:0", fanout=2)
    t.emit(1.25, "node.crash", node=9)
    path = str(tmp_path / "trace.jsonl")
    assert t.export_jsonl(path) == 2

    loaded = t.load_jsonl(path)
    assert loaded == [
        TraceEvent(0.5, "tree.push", {"fanout": 2, "msg": "3:0", "node": 1}),
        TraceEvent(1.25, "node.crash", {"node": 9}),
    ]


def test_jsonl_non_json_fields_stringified(tmp_path):
    t = SimTracer()
    t.emit(0.0, "c", obj=object())
    path = str(tmp_path / "t.jsonl")
    t.export_jsonl(path)
    (event,) = t.load_jsonl(path)
    assert isinstance(event.fields["obj"], str)


def test_jsonl_skips_blank_lines(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"t": 1.0, "cat": "c"}\n\n')
    (event,) = SimTracer.load_jsonl(str(path))
    assert event == TraceEvent(1.0, "c", {})
