"""Unit tests for the structured simulation tracer."""

import pytest

from repro.obs.tracer import TRACE_SCHEMA, SimTracer, TraceEvent, validate_events


def test_emit_and_query_by_category():
    t = SimTracer()
    t.emit(1.0, "tree.push", node=1, fanout=2)
    t.emit(2.0, "gossip.pull", node=3)
    t.emit(3.0, "tree.push", node=4, fanout=1)
    assert len(t) == 3
    pushes = t.events("tree.push")
    assert [e.time for e in pushes] == [1.0, 3.0]
    assert pushes[0].fields == {"node": 1, "fanout": 2}
    assert t.counts_by_category() == {"tree.push": 2, "gossip.pull": 1}


def test_ring_buffer_drops_oldest():
    t = SimTracer(capacity=3)
    for i in range(5):
        t.emit(float(i), "c", i=i)
    assert len(t) == 3
    assert t.dropped == 2
    assert [e.fields["i"] for e in t.events()] == [2, 3, 4]


def test_disabled_tracer_is_noop():
    t = SimTracer(enabled=False)
    t.emit(0.0, "c")
    assert len(t) == 0
    assert t.emitted == 0
    assert t.dropped == 0


def test_clear_resets_drop_accounting():
    t = SimTracer(capacity=2)
    for i in range(4):
        t.emit(float(i), "c")
    t.clear()
    assert len(t) == 0 and t.dropped == 0


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        SimTracer(capacity=0)


def test_jsonl_round_trip(tmp_path):
    t = SimTracer()
    t.emit(0.5, "tree.push", node=1, msg="3:0", fanout=2)
    t.emit(1.25, "node.crash", node=9)
    path = str(tmp_path / "trace.jsonl")
    assert t.export_jsonl(path) == 2

    loaded = t.load_jsonl(path)
    assert loaded == [
        TraceEvent(0.5, "tree.push", {"fanout": 2, "msg": "3:0", "node": 1}),
        TraceEvent(1.25, "node.crash", {"node": 9}),
    ]


def test_jsonl_non_json_fields_stringified(tmp_path):
    t = SimTracer()
    t.emit(0.0, "c", obj=object())
    path = str(tmp_path / "t.jsonl")
    t.export_jsonl(path)
    (event,) = t.load_jsonl(path)
    assert isinstance(event.fields["obj"], str)


def test_jsonl_skips_blank_lines(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"t": 1.0, "cat": "c"}\n\n')
    (event,) = SimTracer.load_jsonl(str(path))
    assert event == TraceEvent(1.0, "c", {})


# ----------------------------------------------------------------------
# Ring-buffer wraparound
# ----------------------------------------------------------------------
def test_category_filtering_after_wraparound():
    """Wrap must evict oldest-first regardless of category, and category
    queries must reflect only what survived."""
    t = SimTracer(capacity=4)
    for i in range(6):
        t.emit(float(i), "even" if i % 2 == 0 else "odd", i=i)
    # Events 0 and 1 fell off; 2..5 remain.
    assert t.emitted == 6
    assert t.dropped == 2
    assert [e.fields["i"] for e in t.events("even")] == [2, 4]
    assert [e.fields["i"] for e in t.events("odd")] == [3, 5]
    assert t.counts_by_category() == {"even": 2, "odd": 2}


def test_wraparound_drop_counter_keeps_growing():
    t = SimTracer(capacity=2)
    for i in range(10):
        t.emit(float(i), "c")
        assert t.dropped == max(0, i - 1)
    assert len(t) == 2


# ----------------------------------------------------------------------
# Export header: honest drop accounting across the round trip
# ----------------------------------------------------------------------
def test_export_header_carries_run_accounting(tmp_path):
    t = SimTracer(capacity=3)
    for i in range(5):
        t.emit(float(i), "c", i=i)
    path = str(tmp_path / "trace.jsonl")
    assert t.export_jsonl(path) == 3  # events written (header excluded)

    reloaded = SimTracer.from_jsonl(path)
    assert reloaded.emitted == 5
    assert reloaded.dropped == 2
    assert reloaded.capacity == 3
    assert [e.fields["i"] for e in reloaded.events()] == [2, 3, 4]


def test_load_jsonl_still_returns_events_only(tmp_path):
    t = SimTracer(capacity=2)
    for i in range(4):
        t.emit(float(i), "c", i=i)
    path = str(tmp_path / "trace.jsonl")
    t.export_jsonl(path)
    events = SimTracer.load_jsonl(path)
    assert [e.fields["i"] for e in events] == [2, 3]


def test_from_jsonl_tolerates_headerless_legacy_files(tmp_path):
    path = tmp_path / "legacy.jsonl"
    path.write_text('{"t": 1.0, "cat": "c", "fields": {"i": 1}}\n')
    t = SimTracer.from_jsonl(str(path))
    assert t.emitted == 1
    assert t.dropped == 0
    assert len(t) == 1


# ----------------------------------------------------------------------
# Schema validation
# ----------------------------------------------------------------------
def test_validate_events_accepts_declared_shape():
    events = [
        TraceEvent(1.0, "node.crash", {"node": 3}),
        TraceEvent(2.0, "gossip.summary", {"node": 1, "peer": 2, "summaries": 4}),
    ]
    assert validate_events(events) == []


def test_validate_events_flags_unknown_missing_and_extra():
    events = [
        TraceEvent(1.0, "no.such.category", {}),
        TraceEvent(2.0, "node.crash", {}),  # missing "node"
        TraceEvent(3.0, "node.crash", {"node": 1, "bogus": 2}),
    ]
    problems = validate_events(events)
    assert len(problems) == 3
    assert "undeclared category" in problems[0]
    assert "missing fields" in problems[1]
    assert "undeclared fields" in problems[2]


def test_schema_field_sets_are_frozen():
    for category, (required, optional) in TRACE_SCHEMA.items():
        assert isinstance(required, frozenset), category
        assert isinstance(optional, frozenset), category
        assert not (required & optional), category
