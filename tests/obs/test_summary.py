"""Tests for metrics-summary rendering and derived ratios."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.summary import (
    derived_ratios,
    format_metrics_summary,
    record_link_stress,
)


def _snapshot():
    m = MetricsRegistry()
    m.inc("gossip.summaries_heard", 10)
    m.inc("gossip.summaries_new", 4)
    m.inc("dissem.delivered", 30, via="tree")
    m.inc("dissem.delivered", 10, via="pull")
    m.inc("gossip.sent", 25)
    m.inc("gossip.saved", 75)
    m.set_gauge("sim.events_executed", 123)
    m.record("link_changes", 1.0, 2.0)
    record_link_stress(m, {(0, 1): 5, (1, 2): 9})
    return m.snapshot()


def test_derived_ratios():
    ratios = derived_ratios(_snapshot())
    assert ratios["gossip.effectiveness"] == pytest.approx(0.4)
    assert ratios["dissem.pull_share"] == pytest.approx(0.25)
    assert ratios["gossip.saved_share"] == pytest.approx(0.75)


def test_derived_ratios_empty_snapshot():
    assert derived_ratios({"counters": {}}) == {}


def test_record_link_stress_builds_histogram():
    m = MetricsRegistry()
    record_link_stress(m, {(0, 1): 3, (2, 3): 7, (4, 5): 7})
    h = m.histogram("net.link.stress")
    assert h.count == 3
    assert h.min == 3 and h.max == 7


def test_format_metrics_summary_sections():
    text = format_metrics_summary(_snapshot())
    assert "== counters ==" in text
    assert "== gauges ==" in text
    assert "== derived ==" in text
    assert "== histograms ==" in text
    assert "== series (points) ==" in text
    assert "net.link.stress" in text
    assert "dissem.delivered{via=pull}" in text


def test_format_metrics_summary_empty():
    assert "(none)" in format_metrics_summary({"counters": {}})


def test_derived_ratios_single_trial_snapshot():
    m = MetricsRegistry()
    m.inc("gossip.summaries_heard", 8)
    m.inc("gossip.summaries_new", 2)
    ratios = derived_ratios(m.snapshot())
    assert ratios["gossip.effectiveness"] == pytest.approx(0.25)
    assert "dissem.pull_share" not in ratios  # no deliveries recorded


def test_derived_ratios_counts_exact_label_cells():
    """pull_share reads exactly the ``via=tree``/``via=pull`` cells.

    Other label cells (e.g. a hypothetical ``via=pull-repair``) do not
    contribute — the ratio is tree-vs-gossip-pull as in the paper.
    """
    m = MetricsRegistry()
    m.inc("dissem.delivered", 6, via="tree")
    m.inc("dissem.delivered", 2, via="pull")
    m.inc("dissem.delivered", 2, via="pull-repair")
    ratios = derived_ratios(m.snapshot())
    assert ratios["dissem.pull_share"] == pytest.approx(0.25)


def test_format_metrics_summary_merged_snapshot():
    from repro.obs.metrics import merge_snapshots

    merged = merge_snapshots([_snapshot(), _snapshot()])
    text = format_metrics_summary(merged)
    assert "== counters ==" in text
    assert "dissem.delivered{via=tree}" in text
    # Merged histograms drop per-trial percentiles but keep count/mean.
    assert "net.link.stress" in text
