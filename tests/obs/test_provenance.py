"""Unit tests for causal delivery-path reconstruction.

Most tests drive :class:`PathReconstructor` with hand-built trace
events, where every expected hop is known exactly; the final test runs
a real instrumented failure scenario and checks the global invariants
the diagnostics CLI relies on (complete paths, counter identity).
"""

import math

import pytest

from repro.obs import Observability
from repro.obs.provenance import (
    PULL_REPAIR,
    TREE,
    DeliveryPath,
    Hop,
    PathReconstructor,
    format_provenance_summary,
    merge_provenance_summaries,
)
from repro.obs.tracer import TraceEvent


def _inject(t, node, msg):
    return TraceEvent(t, "dissem.inject", {"node": node, "msg": msg})


def _deliver(t, node, msg, src, via, owl, waited=0.0):
    return TraceEvent(
        t, "dissem.deliver",
        {"node": node, "msg": msg, "src": src, "via": via, "owl": owl,
         "waited": waited},
    )


def _request(t, node, msg, attempt, source=0):
    return TraceEvent(
        t, "pull.request",
        {"node": node, "source": source, "msg": msg, "attempt": attempt},
    )


#: A message from node 0: tree chain 0 -> 1 -> 2, and node 3 pulls the
#: payload from node 1 after hearing it advertised.
CHAIN = [
    _inject(0.0, 0, "0:0"),
    _deliver(0.010, 1, "0:0", src=0, via="tree", owl=0.010),
    _deliver(0.025, 2, "0:0", src=1, via="tree", owl=0.012),
    _request(0.100, 3, "0:0", attempt=1, source=0),
    _deliver(0.150, 3, "0:0", src=1, via="pull", owl=0.011, waited=0.120),
]


def test_path_walks_back_to_source():
    r = PathReconstructor(CHAIN)
    p = r.path("0:0", 2)
    assert p.complete
    assert p.source == 0 and p.inject_time == 0.0
    assert [(h.src, h.node) for h in p.hops] == [(0, 1), (1, 2)]
    assert p.attribution == TREE
    assert p.delay == pytest.approx(0.025)
    assert p.n_hops == 2


def test_pull_path_shares_tree_prefix():
    r = PathReconstructor(CHAIN)
    p = r.path("0:0", 3)
    assert p.complete
    assert [(h.src, h.node) for h in p.hops] == [(0, 1), (1, 3)]
    assert p.attribution == PULL_REPAIR  # final hop decides
    assert p.hops[-1].waited == pytest.approx(0.120)


def test_segments_split_wire_and_queueing():
    r = PathReconstructor(CHAIN)
    segments = r.path("0:0", 2).segments()
    assert segments[0] == pytest.approx((0.010, 0.010, 0.0))
    # 1 -> 2 took 0.015 s total, 0.012 s on the wire, 0.003 s queued.
    assert segments[1] == pytest.approx((0.015, 0.012, 0.003))


def test_unknown_pair_returns_none():
    r = PathReconstructor(CHAIN)
    assert r.path("0:0", 99) is None
    assert r.path("no-such-msg", 1) is None


def test_incomplete_path_when_predecessor_record_missing():
    events = [
        _inject(0.0, 0, "m"),
        # Node 5 got it from node 4, but node 4's own record was lost
        # (e.g. evicted from the ring buffer).
        _deliver(0.5, 5, "m", src=4, via="tree", owl=0.01),
    ]
    p = PathReconstructor(events).path("m", 5)
    assert not p.complete
    assert [(h.src, h.node) for h in p.hops] == [(4, 5)]
    # The head segment duration is unknowable without the predecessor.
    (duration, wire, queued) = p.segments()[0]
    assert math.isnan(duration) and math.isnan(queued)
    assert wire == pytest.approx(0.01)
    assert "INCOMPLETE" in p.format()


def test_malformed_cycle_terminates():
    events = [
        _deliver(1.0, 6, "m", src=7, via="tree", owl=0.01),
        _deliver(2.0, 7, "m", src=6, via="tree", owl=0.01),
    ]
    p = PathReconstructor(events).path("m", 6)
    assert p is not None and not p.complete
    assert p.n_hops == 2


def test_attribution_counts_and_counter_identity():
    r = PathReconstructor(CHAIN)
    assert r.attribution_counts() == {TREE: 2, PULL_REPAIR: 1}
    assert r.matches_counters(
        {"dissem.delivered{via=tree}": 2, "dissem.delivered{via=pull}": 1}
    )
    assert not r.matches_counters(
        {"dissem.delivered{via=tree}": 3, "dissem.delivered{via=pull}": 0}
    )


def test_summary_rollup():
    s = PathReconstructor(CHAIN).summary()
    assert s["messages"] == 1
    assert s["paths"] == 3 and s["complete"] == 3 and s["incomplete"] == 0
    assert s["hops"] == {"1": 1, "2": 2}
    assert s["max_hops"] == 2


def test_delay_anomalies_flag_slow_deliveries():
    events = [
        _inject(0.0, 0, "m"),
        _deliver(0.010, 1, "m", src=0, via="tree", owl=0.010),
        _deliver(0.020, 2, "m", src=1, via="tree", owl=0.010),
        # 1.0 s for a direct pull: way beyond 3 * depth(2) * rtt(0.02).
        _deliver(1.000, 3, "m", src=0, via="pull", owl=0.010, waited=0.9),
    ]
    r = PathReconstructor(events)
    anomalies = r.delay_anomalies(factor=3.0)
    assert [a["node"] for a in anomalies] == [3]
    assert anomalies[0]["delay"] == pytest.approx(1.0)
    assert anomalies[0]["bound"] == pytest.approx(3.0 * 2 * 0.020)
    # A permissive factor clears it.
    assert r.delay_anomalies(factor=100.0) == []


def test_retry_anomalies_flag_multi_retry_pulls():
    events = [
        _request(0.1, 3, "m", attempt=1),
        _request(0.4, 3, "m", attempt=2),
        _request(0.7, 3, "m", attempt=3),
        _request(0.2, 9, "m", attempt=1),
        _request(0.5, 9, "m", attempt=2),
        _deliver(0.8, 3, "m", src=1, via="pull", owl=0.01, waited=0.7),
    ]
    anomalies = PathReconstructor(events).retry_anomalies(min_retries=2)
    assert [a["node"] for a in anomalies] == [3]
    assert anomalies[0]["retries"] == 2 and anomalies[0]["delivered"]
    # Threshold 1 also catches node 9, which never got the payload.
    both = PathReconstructor(events).retry_anomalies(min_retries=1)
    assert [(a["node"], a["delivered"]) for a in both] == [(3, True), (9, False)]


def test_merge_summaries_is_order_invariant():
    a = PathReconstructor(CHAIN).summary()
    b = PathReconstructor(
        [
            _inject(0.0, 4, "4:0"),
            _deliver(0.3, 5, "4:0", src=4, via="pull", owl=0.02, waited=0.1),
        ]
    ).summary()
    ab, ba = merge_provenance_summaries([a, b]), merge_provenance_summaries([b, a])
    assert ab == ba
    assert ab["paths"] == 4 and ab["n_trials"] == 2
    assert ab["attribution"] == {TREE: 2, PULL_REPAIR: 2}
    assert ab["hops"] == {"1": 2, "2": 2}


def test_format_summary_reports_counter_verdict():
    summary = PathReconstructor(CHAIN).summary()
    ok = format_provenance_summary(
        summary,
        {"dissem.delivered{via=tree}": 2, "dissem.delivered{via=pull}": 1},
    )
    assert "MATCH" in ok and "MISMATCH" not in ok
    bad = format_provenance_summary(summary, {"dissem.delivered{via=tree}": 9})
    assert "MISMATCH" in bad


def test_delivery_path_properties_on_hand_built_path():
    path = DeliveryPath(
        msg="m", node=2, source=0, inject_time=None,
        hops=[Hop(node=2, src=0, via="tree", time=1.0, owl=0.01, waited=0.0)],
    )
    assert math.isnan(path.delay)  # inject record unknown
    assert path.delivered_at == 1.0


# ----------------------------------------------------------------------
# End-to-end: a real instrumented failure run
# ----------------------------------------------------------------------
def test_reconstruction_covers_every_delivery_in_a_real_run():
    from repro.experiments.runner import run_delay_experiment
    from repro.experiments.scenarios import ScenarioConfig

    obs = Observability(enabled=True)
    result = run_delay_experiment(
        ScenarioConfig(
            protocol="gocast", n_nodes=16, adapt_time=5.0, n_messages=3,
            drain_time=8.0, fail_fraction=0.25, seed=7,
        ),
        obs=obs,
    )
    assert obs.tracer.dropped == 0
    r = PathReconstructor(obs.tracer.events())
    # Every delivered (message, node) pair has a record and a complete path.
    assert r.n_deliveries == result.delays.size > 0
    paths = r.all_paths()
    assert len(paths) == r.n_deliveries
    assert all(p.complete for p in paths)
    # Attribution totals reproduce the dissemination counters exactly.
    assert r.matches_counters(obs.metrics.snapshot()["counters"])
