"""Unit tests for the periodic overlay/tree health monitor.

The sampling math is tested against hand-built stub nodes where every
structural fact (fragments, orphans, stale routes, degrees, queues) is
known by construction; one end-to-end test checks the monitor rides a
real instrumented run and lands its rollup in the result snapshot.
"""

import math
from types import SimpleNamespace

import pytest

from repro.obs import Observability
from repro.obs.health import (
    HEALTH_FIELDS,
    HealthMonitor,
    HealthSample,
    _on_target,
    format_health,
    merge_health_sections,
    orphan_anomalies,
)


def _node(parent=None, is_root=False, neighbors=(), d_rand=3, d_near=2,
          pending=0, use_tree=True, table=()):
    tree = SimpleNamespace(
        parent=parent, is_root=is_root,
        tree_neighbors=lambda n=tuple(neighbors): list(n),
    )
    return SimpleNamespace(
        config=SimpleNamespace(use_tree=use_tree, c_rand=3, c_near=2),
        tree=tree,
        overlay=SimpleNamespace(d_rand=d_rand, d_near=d_near, table=set(table)),
        disseminator=SimpleNamespace(pending_pulls=pending),
    )


def _monitor(nodes, alive=None, period=1.0):
    alive = set(nodes) if alive is None else alive
    network = SimpleNamespace(alive_nodes=lambda: alive)
    obs = Observability(enabled=True)
    return HealthMonitor(nodes, network, obs, period=period), obs


#: Three tree fragments among five live nodes: {0, 1} rooted at 0,
#: {2} cut off behind a dead parent, and the orphan pair {3, 4}.
def _fragmented_nodes():
    return {
        0: _node(parent=None, is_root=True, neighbors=[1], d_rand=3, d_near=2,
                 table=[1]),
        1: _node(parent=0, neighbors=[0], d_rand=3, d_near=2, pending=2,
                 table=[0]),
        2: _node(parent=9, neighbors=[], d_rand=4, d_near=3, table=[]),
        3: _node(parent=None, neighbors=[4], d_rand=2, d_near=2, pending=1,
                 table=[4]),
        4: _node(parent=3, neighbors=[3], d_rand=5, d_near=1, table=[3]),
    }


def test_sample_measures_fragments_orphans_and_queues():
    monitor, _obs = _monitor(_fragmented_nodes())
    monitor._sample()
    (s,) = monitor.samples
    assert s.live == 5
    assert s.tree_fragments == 3
    assert s.orphaned == 1  # node 3: live, non-root, no parent
    assert s.stale_root == 1  # node 2: parent 9 is not alive
    assert s.pending_pulls == 3 and s.pending_pulls_max == 2
    assert s.mean_d_rand == pytest.approx((3 + 3 + 4 + 2 + 5) / 5)
    assert s.mean_d_near == pytest.approx((2 + 2 + 3 + 2 + 1) / 5)
    # Stable band [C, C+1]: d_rand hits 3/5 of nodes, d_near 4/5.
    assert s.d_rand_on_target == pytest.approx(0.6)
    assert s.d_near_on_target == pytest.approx(0.8)


def test_sample_lands_in_metrics_series_and_trace():
    monitor, obs = _monitor(_fragmented_nodes())
    monitor._sample()
    snapshot = obs.metrics.snapshot()
    for field in HEALTH_FIELDS:
        assert f"health.{field}" in snapshot["series"]
    (event,) = obs.tracer.events("health.sample")
    assert event.fields["live"] == 5
    assert event.fields["tree_fragments"] == 3


def test_stale_parent_present_but_unrouted_counts_stale():
    # Parent 0 is alive but missing from node 1's overlay table.
    nodes = {
        0: _node(parent=None, is_root=True, neighbors=[1], table=[1]),
        1: _node(parent=0, neighbors=[0], table=[]),
    }
    monitor, _obs = _monitor(nodes)
    monitor._sample()
    assert monitor.samples[0].stale_root == 1


def test_dead_nodes_are_excluded():
    monitor, _obs = _monitor(_fragmented_nodes(), alive={0, 1})
    monitor._sample()
    (s,) = monitor.samples
    assert s.live == 2
    assert s.tree_fragments == 1
    assert s.orphaned == 0 and s.stale_root == 0


def test_treeless_protocol_reports_nan_tree_fields():
    nodes = {0: _node(use_tree=False), 1: _node(use_tree=False)}
    monitor, _obs = _monitor(nodes)
    monitor._sample()
    (s,) = monitor.samples
    assert math.isnan(s.tree_fragments)
    assert math.isnan(s.orphaned) and math.isnan(s.stale_root)
    assert "tree_fragments" not in monitor.to_dict()["summary"]


def test_orphan_streaks_accumulate_and_reset():
    nodes = _fragmented_nodes()
    monitor, _obs = _monitor(nodes)
    monitor._sample()
    monitor._sample()
    assert monitor.orphan_streaks() == {2: 2, 3: 2}
    # Node 3 reattaches: its streak resets, its maximum is retained.
    nodes[3].tree.parent = 0
    nodes[3].overlay.table.add(0)
    monitor._sample()
    assert monitor._streak[3] == 0
    assert monitor.orphan_streaks()[3] == 2
    assert monitor.orphan_streaks()[2] == 3


def test_orphan_anomalies_threshold():
    monitor, _obs = _monitor(_fragmented_nodes(), period=2.0)
    for _ in range(3):
        monitor._sample()
    flagged = orphan_anomalies(monitor.to_dict(), min_intervals=3)
    assert [(a["node"], a["intervals"], a["seconds"]) for a in flagged] == [
        (2, 3, 6.0), (3, 3, 6.0),
    ]
    assert orphan_anomalies(monitor.to_dict(), min_intervals=4) == []


def test_recovery_detects_fragmentation_and_healing():
    monitor, _obs = _monitor({0: _node(is_root=True)})

    def row(t, frags):
        return HealthSample(t, 1, frags, 0.0, 0.0, 0, 0, 3.0, 2.0, 1.0, 1.0)
    monitor.samples = [row(1.0, 1), row(2.0, 3), row(3.0, 2), row(4.0, 1)]
    assert monitor.recovery() == {"fragmented_at": 2.0, "recovered_at": 4.0}
    monitor.samples = monitor.samples[:3]
    assert monitor.recovery() == {"fragmented_at": 2.0, "recovered_at": None}
    monitor.samples = [row(1.0, 1)]
    assert monitor.recovery() == {"fragmented_at": None, "recovered_at": None}


def test_on_target_band():
    assert _on_target([3, 4, 2, 5], 3) == pytest.approx(0.5)
    assert math.isnan(_on_target([], 3))


def test_to_dict_is_plain_data():
    monitor, _obs = _monitor(_fragmented_nodes(), period=0.5)
    monitor._sample()
    d = monitor.to_dict()
    assert d["period"] == 0.5 and d["n_samples"] == 1
    assert d["fields"] == list(HealthSample._fields)
    assert len(d["samples"][0]) == len(d["fields"])
    assert d["summary"]["tree_fragments"] == {"min": 3.0, "max": 3.0, "final": 3.0}
    assert d["orphan_streaks"] == {2: 1, 3: 1}


def test_merge_health_sections_is_order_invariant():
    m1, _ = _monitor(_fragmented_nodes(), period=1.0)
    m1._sample()
    m1._sample()
    m2, _ = _monitor({0: _node(is_root=True, table=[])}, period=2.0)
    m2._sample()
    a, b = m1.to_dict(), m2.to_dict()
    # Give one trial a recovery so that branch merges too.
    a["recovery"] = {"fragmented_at": 3.0, "recovered_at": 7.0}
    ab, ba = merge_health_sections([a, b]), merge_health_sections([b, a])
    assert ab == ba
    assert ab["n_trials"] == 2 and ab["n_samples"] == 3
    assert ab["period"] == pytest.approx(1.5)
    frag = ab["summary"]["tree_fragments"]
    assert frag["min"] == 1.0 and frag["max"] == 3.0
    assert frag["final_mean"] == pytest.approx((3.0 + 1.0) / 2)
    assert ab["recovery"] == {
        "fragmented_trials": 1, "recovered_trials": 1, "mean_recovered_at": 7.0,
    }


def test_format_health_renders_table_and_streaks():
    monitor, _obs = _monitor(_fragmented_nodes())
    monitor._sample()
    d = monitor.to_dict()
    d["recovery"] = {"fragmented_at": 1.0, "recovered_at": None}
    text = format_health(d)
    assert "frags" in text and "rand@C" in text
    assert "NOT recovered" in text
    assert "longest orphan streaks" in text


def test_monitor_rejects_nonpositive_period():
    with pytest.raises(ValueError):
        _monitor({0: _node(is_root=True)}, period=0.0)


# ----------------------------------------------------------------------
# End-to-end: the monitor rides a real instrumented run
# ----------------------------------------------------------------------
def test_health_section_lands_in_run_snapshot():
    from repro.experiments.runner import run_delay_experiment
    from repro.experiments.scenarios import ScenarioConfig

    obs = Observability(enabled=True, health_period=1.0)
    result = run_delay_experiment(
        ScenarioConfig(
            protocol="gocast", n_nodes=16, adapt_time=5.0, n_messages=3,
            drain_time=8.0, fail_fraction=0.25, seed=7,
        ),
        obs=obs,
    )
    health = result.metrics["health"]
    assert health["n_samples"] > 0
    # After the crash, exactly 12 of 16 nodes remain and the final
    # sample sees them all.
    assert health["summary"]["live"]["final"] == 12
    assert health["summary"]["tree_fragments"]["min"] >= 1
    assert set(health["fields"]) == set(HealthSample._fields)
