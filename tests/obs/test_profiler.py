"""Profiler tests: category attribution on a toy simulation."""

from repro.obs.profiler import Profiler, categorize
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer


def _unmatched_callback():
    pass


def test_categorize_known_and_fallback():
    assert categorize("PeriodicTimer._fire") == "timer.fire"
    assert categorize("Network._deliver") == "transport.deliver"
    assert categorize("Disseminator._send_pull") == "gossip.pull"
    assert categorize("mystery_callback") == "other:mystery_callback"


def test_profiler_attributes_toy_simulation():
    sim = Simulator()
    profiler = Profiler()
    profiler.install(sim)

    fires = []
    timer = PeriodicTimer(sim, 0.5, lambda: fires.append(sim.now))
    timer.start()

    sim.schedule(0.25, _unmatched_callback)
    sim.run_until(5.0)
    timer.stop()
    profiler.uninstall(sim)

    report = profiler.report(top_k=5)
    assert report.total_events == sim.events_executed == 11  # 10 fires + 1
    by_category = {row.category: row for row in report.categories}
    assert by_category["timer.fire"].events == 10
    assert by_category["other:_unmatched_callback"].events == 1
    assert report.total_seconds <= report.wall_seconds
    assert any("PeriodicTimer._fire" in row.category for row in report.hot_callbacks)


def test_attributed_fraction_counts_named_categories_only():
    sim = Simulator()
    profiler = Profiler()
    profiler.install(sim)
    timer = PeriodicTimer(sim, 0.1, lambda: None)
    timer.start()
    sim.run_until(10.0)
    timer.stop()
    profiler.uninstall(sim)
    # Only timer fires ran: everything attributes to timer.fire.
    assert profiler.report().attributed_fraction == 1.0


def test_uninstall_restores_direct_dispatch():
    sim = Simulator()
    profiler = Profiler()
    profiler.install(sim)
    sim.schedule(0.1, lambda: None)
    sim.run_until(1.0)
    profiler.uninstall(sim)
    before = profiler.report().total_events
    sim.schedule(0.1, lambda: None)
    sim.run_until(2.0)
    assert profiler.report().total_events == before  # no longer timing


def test_format_table_renders():
    sim = Simulator()
    profiler = Profiler()
    profiler.install(sim)
    sim.schedule(0.1, lambda: None)
    sim.run_until(1.0)
    profiler.uninstall(sim)
    table = profiler.report().format_table()
    assert "events/sec" in table
    assert "hot callbacks" in table
