"""Trace-schema conformance over a real instrumented run.

Runs the fixed-seed smoke scenario (small enough for the fast CI lane)
with full observability and checks every emitted event against
``TRACE_SCHEMA``.  This is the guard that keeps instrumentation honest:
adding an emit site with a typo'd field name, or forgetting to declare a
new category, fails here rather than silently producing a trace the
provenance/health tooling cannot parse.
"""

import pytest

from repro.obs import Observability
from repro.obs.tracer import TRACE_SCHEMA, validate_events
from repro.experiments.runner import run_delay_experiment
from repro.experiments.scenarios import ScenarioConfig


@pytest.fixture(scope="module")
def smoke_trace():
    """One instrumented 16-node failure run, shared across tests."""
    obs = Observability(enabled=True, health_period=1.0)
    run_delay_experiment(
        ScenarioConfig(
            protocol="gocast", n_nodes=16, adapt_time=5.0, n_messages=3,
            drain_time=8.0, fail_fraction=0.25, seed=7,
        ),
        obs=obs,
    )
    return obs.tracer


def test_no_events_dropped(smoke_trace):
    # A wrapped ring would make conformance (and provenance) vacuous.
    assert smoke_trace.dropped == 0


def test_every_event_conforms_to_schema(smoke_trace):
    problems = validate_events(smoke_trace.events())
    assert problems == [], "\n".join(problems[:20])


def test_run_exercises_the_load_bearing_categories(smoke_trace):
    """The categories the diagnostics CLI depends on must actually occur
    in a failure run — an instrumentation regression that stops emitting
    them would otherwise pass schema validation trivially."""
    present = set(smoke_trace.counts_by_category())
    assert {
        "dissem.inject", "dissem.deliver", "tree.push", "gossip.summary",
        "node.crash", "health.sample", "tree.parent_switch",
    } <= present
    assert present <= set(TRACE_SCHEMA)


def test_jsonl_round_trip_preserves_conformance(smoke_trace, tmp_path):
    path = str(tmp_path / "smoke.jsonl")
    smoke_trace.export_jsonl(path)
    reloaded = smoke_trace.from_jsonl(path)
    assert validate_events(reloaded.events()) == []
    assert reloaded.emitted == smoke_trace.emitted
